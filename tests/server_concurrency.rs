//! The job-service guarantees, end to end: concurrent tenants over one
//! shared store must be **byte-identical** to serial one-shot runs (on
//! both the in-process and the networked backend), admission quotas must
//! refuse with typed errors, the fair scheduler must interleave tenants
//! instead of serializing them, serving-mode SSSP must answer point
//! queries between barriers while mutations stream in, and per-job step
//! accounting must land in the server's profile JSON.

use std::sync::Arc;

use ripple::graph::generate::{random_change_batch, random_undirected};
use ripple::graph::sssp::{bfs_oracle, distances_from_snapshot};
use ripple::prelude::*;
use ripple::server::{AdmitError, JobQuota};

type Mixer = ripple::ebsp::SimpleJob<u32, u64, u64>;

/// Rounds each key runs before going quiet (packed into the state's top
/// bits so the job carries its own termination).
const MIXER_ROUNDS: u64 = 12;

/// A small state-mutating job with per-key work: each key folds its id
/// into a rolling hash and pokes its ring neighbor, for a bounded number
/// of rounds.  Deterministic under BSP semantics, so any two runs — no
/// matter how their part-tasks were scheduled — must agree byte for byte.
fn mixer(name: &str, keys: u32) -> Mixer {
    Mixer::builder(name)
        .compute(move |ctx| {
            let key = *ctx.key();
            let v = ctx.read_state(0)?.unwrap_or(0);
            let rounds = v >> 48;
            if rounds == 0 {
                return Ok(false);
            }
            let mixed = v
                .wrapping_mul(6364136223846793005)
                .wrapping_add(u64::from(key) | 1)
                & 0x0000_FFFF_FFFF_FFFF;
            ctx.write_state(0, &(((rounds - 1) << 48) | mixed))?;
            if rounds > 1 {
                ctx.send((key + 1) % keys, mixed);
            }
            Ok(rounds > 1)
        })
        .build()
}

fn mixer_loader(keys: u32, seed: u64) -> Box<dyn ripple::ebsp::Loader<Mixer>> {
    Box::new(ripple::ebsp::FnLoader::new(
        move |sink: &mut dyn LoadSink<Mixer>| {
            for k in 0..keys {
                let low = seed.wrapping_add(u64::from(k)) & 0x0000_FFFF_FFFF_FFFF;
                sink.state(0, k, (MIXER_ROUNDS << 48) | low)?;
                sink.enable(k)?;
            }
            Ok(())
        },
    ))
}

const TENANT_PARTS: u32 = 4;
const TENANT_KEYS: u32 = 32;

/// Runs `jobs` tenants concurrently through a server over one shared
/// store; returns each tenant's final state digest and steps/work.
fn concurrent_digests<S: KvStore>(shared: S, jobs: usize) -> Vec<(u64, u32, u64)> {
    use ripple::server::{JobServer, JobSpec, ServerConfig};
    let server = JobServer::single(ServerConfig::with_workers(3), shared);

    let mut handles = Vec::new();
    for j in 0..jobs {
        let name = format!("mix{j}");
        let handle = server
            .submit(
                &name,
                JobSpec::new(TENANT_PARTS),
                Arc::new(mixer(&name, TENANT_KEYS)),
                RunOptions::new().loader(mixer_loader(TENANT_KEYS, 1000 + j as u64)),
            )
            .expect("admit tenant");
        handles.push(handle);
    }
    handles
        .into_iter()
        .enumerate()
        .map(|(j, handle)| {
            let outcome = handle.wait().expect("tenant run");
            let d = digest(server.store(0), &format!("mix{j}"));
            (d, outcome.steps, outcome.metrics.invocations)
        })
        .collect()
}

/// Runs the same tenants serially, each on a fresh store with a plain
/// one-shot runner; digests are canonical, so they compare across
/// backends.
fn serial_digests<S: KvStore>(mut fresh: impl FnMut() -> S, jobs: usize) -> Vec<(u64, u32, u64)> {
    (0..jobs)
        .map(|j| {
            let name = format!("mix{j}");
            let store = fresh();
            let outcome = JobRunner::new(store.clone())
                .launch(
                    Arc::new(mixer(&name, TENANT_KEYS)),
                    RunOptions::new().loader(mixer_loader(TENANT_KEYS, 1000 + j as u64)),
                )
                .expect("serial run");
            (
                digest(&store, &name),
                outcome.steps,
                outcome.metrics.invocations,
            )
        })
        .collect()
}

fn digest<S: KvStore>(store: &S, table: &str) -> u64 {
    let handle = store.lookup_table(table).expect("table exists");
    store.snapshot_table(&handle).expect("snapshot").digest()
}

fn assert_identical(concurrent: &[(u64, u32, u64)], serial: &[(u64, u32, u64)], backend: &str) {
    for (j, (c, s)) in concurrent.iter().zip(serial).enumerate() {
        assert_eq!(c.1, s.1, "tenant mix{j} on {backend}: step count diverged");
        assert_eq!(c.2, s.2, "tenant mix{j} on {backend}: work diverged");
        assert_eq!(
            c.0, s.0,
            "tenant mix{j} on {backend}: concurrent state diverged from serial"
        );
    }
}

#[test]
fn four_concurrent_jobs_over_shared_memstore_match_serial_byte_for_byte() {
    let shared = MemStore::builder().default_parts(4).build();
    let concurrent = concurrent_digests(shared, 4);
    let serial = serial_digests(|| MemStore::builder().default_parts(4).build(), 4);
    assert_identical(&concurrent, &serial, "mem");
}

#[test]
fn four_concurrent_jobs_over_shared_netstore_match_serial_byte_for_byte() {
    let cluster = LoopbackCluster::spawn(2, 4);
    let concurrent = concurrent_digests(cluster.store.clone(), 4);
    // Digests are canonical (sorted key/value bytes), so the serial
    // baseline can run on the in-process store: same answer, one claim.
    let serial = serial_digests(|| MemStore::builder().default_parts(4).build(), 4);
    assert_identical(&concurrent, &serial, "net");
}

#[test]
fn admission_quotas_reject_with_typed_errors() {
    use ripple::server::{JobServer, JobSpec, ServerConfig};
    let store = MemStore::builder().default_parts(4).build();
    let config = ServerConfig {
        workers: 2,
        max_jobs: 1,
        default_quota: JobQuota {
            max_parts: 8,
            max_state_bytes: 1 << 20,
            max_supersteps: 100,
        },
        ..ServerConfig::default()
    };
    let server = JobServer::single(config, store);

    // Parts quota.
    let err = server
        .admit_resident("wide", JobSpec::new(16))
        .expect_err("parts over quota");
    assert_eq!(
        err,
        AdmitError::PartsQuota {
            requested: 16,
            max: 8
        }
    );

    // Memory quota.
    let err = server
        .admit_resident("fat", JobSpec::new(4).state_bytes(1 << 21))
        .expect_err("memory over quota");
    assert_eq!(
        err,
        AdmitError::MemoryQuota {
            declared: 1 << 21,
            max: 1 << 20
        }
    );

    // A per-job quota override relaxes the default.
    let resident = server
        .admit_resident(
            "wide-ok",
            JobSpec::new(16).quota(JobQuota {
                max_parts: 32,
                max_state_bytes: 1 << 20,
                max_supersteps: 100,
            }),
        )
        .expect("override admits");

    // Job-count limit (the resident holds the only slot)...
    let err = server
        .admit_resident("second", JobSpec::new(4))
        .expect_err("job limit");
    assert_eq!(
        err,
        AdmitError::TooManyJobs {
            admitted: 1,
            max: 1
        }
    );

    // ...while a duplicate name reports the more specific refusal even
    // with the server full.
    let err = server
        .admit_resident("wide-ok", JobSpec::new(4))
        .expect_err("name collision");
    assert_eq!(err, AdmitError::NameTaken("wide-ok".into()));

    // Dropping the resident frees both the slot and the name.
    drop(resident);
    let resident = server
        .admit_resident("wide-ok", JobSpec::new(4))
        .expect("slot and name freed");
    drop(resident);

    // Shutdown refuses everything.
    server.shutdown();
    let err = server
        .admit_resident("late", JobSpec::new(4))
        .expect_err("shutting down");
    assert_eq!(err, AdmitError::ShuttingDown);
}

#[test]
fn superstep_quota_caps_a_runaway_job() {
    use ripple::server::{JobServer, JobSpec, ServerConfig};
    let store = MemStore::builder().default_parts(2).build();
    let server = JobServer::single(ServerConfig::with_workers(2), store);

    // A job that never converges; the quota's step cap must stop it.
    let forever = Mixer::builder("forever")
        .compute(|ctx| {
            let v = ctx.read_state(0)?.unwrap_or(0);
            ctx.write_state(0, &(v + 1))?;
            Ok(true)
        })
        .build();
    let handle = server
        .submit(
            "forever",
            JobSpec::new(2).quota(JobQuota {
                max_parts: 8,
                max_state_bytes: 1 << 20,
                max_supersteps: 7,
            }),
            Arc::new(forever),
            RunOptions::new().loader(mixer_loader(4, 1)),
        )
        .expect("admit");
    // The step cap surfaces as an engine error at the quota boundary —
    // the runaway yields its workers back instead of spinning.
    let err = handle.wait().expect_err("step quota must cap the run");
    assert!(
        matches!(err, EbspError::StepLimitExceeded { limit: 7 }),
        "unexpected error: {err:?}"
    );
    use ripple::server::JobStatus;
    let account = server.account("forever").expect("account exists");
    assert_eq!(account.status, JobStatus::Failed);
    assert_eq!(server.admitted(), 0, "failed job must free its slot");
}

#[test]
fn fair_scheduler_interleaves_concurrent_tenants() {
    use ripple::server::{JobServer, JobSpec, ServerConfig};
    let store = MemStore::builder().default_parts(4).build();
    // One compute slot: without fair scheduling the first tenant would
    // hold it for its entire run.
    let server = JobServer::single(ServerConfig::with_workers(1), store);

    let mut handles = Vec::new();
    for name in ["alpha", "beta"] {
        let handle = server
            .submit(
                name,
                JobSpec::new(4),
                Arc::new(mixer(name, 48)),
                RunOptions::new().loader(mixer_loader(48, 7)),
            )
            .expect("admit tenant");
        handles.push(handle);
    }
    for handle in handles {
        let outcome = handle.wait().expect("tenant run");
        assert!(outcome.steps > 0);
    }

    let log = server.scheduler().grant_log();
    let accounts = server.accounts();
    assert_eq!(accounts.len(), 2);
    for account in &accounts {
        assert!(
            account.sched_granted > 0,
            "tenant {} was never granted a slot",
            account.name
        );
    }
    // Not serialized: the second tenant's first grant lands before the
    // first tenant's last grant.
    let first_of_beta = log.iter().position(|&id| id == accounts[1].sched_id);
    let last_of_alpha = log.iter().rposition(|&id| id == accounts[0].sched_id);
    match (first_of_beta, last_of_alpha) {
        (Some(b), Some(a)) => assert!(
            b < a,
            "tenants were serialized: beta first grant {b} after alpha last grant {a}"
        ),
        _ => panic!("both tenants must appear in the grant log"),
    }
}

#[test]
fn serving_sssp_answers_between_barriers_while_mutations_stream() {
    use ripple::server::{JobServer, JobSpec, ServerConfig, ServingSssp};
    let n = 800u32;
    let mut graph = random_undirected(n, 6_400, 0.8, 0xBEEF);
    let source = 0;

    let store = MemStore::builder().default_parts(4).build();
    let server = JobServer::single(ServerConfig::with_workers(3), store);
    let serving = ServingSssp::start(&server, "serve", JobSpec::new(4), graph.graph(), source)
        .expect("start serving");
    let version_after_init = serving.version();
    assert!(
        version_after_init > 0,
        "the initial solve must refresh the snapshot at its barriers"
    );

    // Queries answered against the initial graph are already exact.
    let initial_oracle = bfs_oracle(&graph, source);
    for v in [0u32, 1, n / 2, n - 1] {
        let answer = serving.query(v);
        assert_eq!(answer.dist, Some(initial_oracle[v as usize]));
    }

    // Stream mutation batches; query between barriers the whole time.
    let mut last_version = serving.version();
    for round in 0..6u64 {
        let batch = random_change_batch(n, 40, 0.8, 0xF00D + round);
        for c in &batch {
            graph.apply(*c);
        }
        serving.push_batch(&batch);
        for q in 0..40u64 {
            let v = ((round * 40 + q) * 2_654_435_761 % u64::from(n)) as u32;
            let answer = serving.query(v);
            assert!(
                answer.version >= last_version,
                "snapshot version must be monotonic"
            );
            last_version = answer.version;
        }
    }
    while serving.pending() > 0 {
        std::thread::sleep(std::time::Duration::from_millis(2));
    }
    let queries_issued = 4 + 6 * 40;
    let report = serving.finish().expect("finish serving");
    assert_eq!(report.mutations_applied, 6 * 40);
    assert!(report.waves >= 1, "mutations must have run as waves");
    assert_eq!(report.queries, queries_issued);
    assert!(
        report.final_version > version_after_init,
        "waves must refresh the snapshot"
    );
    assert_eq!(report.refresh_errors, 0);

    // The served distances converge to a BFS oracle over the mutated
    // graph — streaming changed *when* answers update, never *what* they
    // converge to.
    let oracle = bfs_oracle(&graph, source);
    let table = server
        .store(0)
        .lookup_table("serve__sssp")
        .expect("serving table");
    let snapshot = server.store(0).snapshot_table(&table).expect("snapshot");
    for (v, d) in distances_from_snapshot(&snapshot).expect("decode") {
        assert_eq!(d, oracle[v as usize], "served distance diverged at {v}");
    }
}

#[test]
fn per_job_step_accounting_lands_in_profile_json() {
    use ripple::server::{JobServer, JobSpec, JobStatus, ServerConfig};
    let store = MemStore::builder().default_parts(4).build();
    let server = JobServer::single(ServerConfig::with_workers(2), store);

    let handle = server
        .submit(
            "metered",
            JobSpec::new(4),
            Arc::new(mixer("metered", 24)),
            RunOptions::new().loader(mixer_loader(24, 99)),
        )
        .expect("admit");
    let outcome = handle.wait().expect("run");

    let account = server.account("metered").expect("account exists");
    assert_eq!(account.status, JobStatus::Done);
    assert_eq!(account.steps, u64::from(outcome.steps));
    assert_eq!(account.invocations, outcome.metrics.invocations);
    assert!(account.sched_granted > 0);
    assert!(
        account.compute_wall > std::time::Duration::ZERO,
        "profiles must feed the BSP cost terms"
    );

    let json = server.accounting_json();
    assert!(json.contains("\"name\":\"metered\""));
    assert!(json.contains("\"status\":\"done\""));
    assert!(json.contains(&format!("\"steps\":{}", outcome.steps)));
    assert!(json.contains("\"w_us\":"));
    assert!(json.contains("\"h_bytes\":"));
    assert!(json.contains("\"sched_wait_us\":"));
}
