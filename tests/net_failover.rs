//! Barrier-consistent recovery over replicated part servers, end to end:
//! a 4-part PageRank whose primary part server for one slot is killed
//! mid-superstep completes via replica promotion, and its output is
//! **byte-identical** to the fault-free in-process run.  The failover is
//! visible everywhere the issue demands it: the store metrics, the step
//! profiles, the profile JSON, and the run observer.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ripple::ebsp::{step_profiles_json, AggregateSnapshot, RunObserver};
use ripple::graph::generate::power_law_graph;
use ripple::graph::pagerank::{read_ranks, run_direct, run_direct_on, PageRankConfig};
use ripple::prelude::*;
use ripple::store_net::{LoopbackCluster, NetConfig};

/// Sorted (vertex, bit-exact rank) pairs — equality means byte-identical.
fn rank_bits<S: KvStore>(store: &S, table: &str) -> Vec<(u32, u64)> {
    let mut ranks: Vec<(u32, u64)> = read_ranks(store, table)
        .expect("read ranks")
        .into_iter()
        .map(|(v, r)| (v, r.to_bits()))
        .collect();
    ranks.sort_unstable();
    ranks
}

/// Aborts a primary part server at a fixed step, and records the
/// failure-detector callbacks the store surfaces through the observer.
struct PrimaryKiller {
    victim: Arc<ripple::store_net::ServerHandle>,
    kill_at: u32,
    killed: AtomicBool,
    part_downs: AtomicU64,
    failovers: AtomicU64,
}

impl RunObserver for PrimaryKiller {
    fn on_step(&self, step: u32, _enabled_next: u64, _aggregates: &AggregateSnapshot) {
        if step >= self.kill_at && !self.killed.swap(true, Ordering::SeqCst) {
            self.victim.abort();
        }
    }
    fn on_part_down(&self, _part: u32, _epoch: u64) {
        self.part_downs.fetch_add(1, Ordering::SeqCst);
    }
    fn on_failover(&self, _part: u32, _epoch: u64) {
        self.failovers.fetch_add(1, Ordering::SeqCst);
    }
}

#[test]
fn pagerank_survives_primary_kill_mid_superstep_byte_for_byte() {
    let parts = 4u32;
    let replicas = 2usize;
    let graph = power_law_graph(300, 3000, 0.8, 0xA11CE);
    let config = PageRankConfig {
        damping: 0.85,
        iterations: 10,
    };

    // Fault-free local reference run.
    let local_store = MemStore::builder().default_parts(parts).build();
    let local = run_direct(&local_store, "pr", &graph, config).expect("local run");

    // Replicated cluster: 4 slots x (primary + 1 standby).  Pull slot 1's
    // initial primary out of the cluster so the observer can kill it from
    // inside the run; handles are slot-major, so that is index 1*2+0 = 2.
    let mut cluster =
        LoopbackCluster::spawn_replicated(parts as usize, replicas, parts, &NetConfig::default());
    let victim = Arc::new(cluster.handles.remove(replicas));
    let killer = Arc::new(PrimaryKiller {
        victim: Arc::clone(&victim),
        kill_at: 3,
        killed: AtomicBool::new(false),
        part_downs: AtomicU64::new(0),
        failovers: AtomicU64::new(0),
    });

    let mut runner = JobRunner::new(cluster.store.clone());
    runner.profile(true);
    runner.observer(Arc::clone(&killer) as Arc<dyn RunObserver>);
    let remote = run_direct_on(&runner, "pr", &graph, config).expect("run with primary kill");

    assert!(killer.killed.load(Ordering::SeqCst), "victim never killed");

    // Same iterative structure, byte-identical ranks: the promoted
    // replica replayed the interrupted work to the same result.
    assert_eq!(remote.steps, local.steps);
    let local_ranks = rank_bits(&local_store, "pr");
    let remote_ranks = rank_bits(&cluster.store, "pr");
    assert_eq!(remote_ranks.len(), 300);
    assert_eq!(remote_ranks, local_ranks, "ranks diverged after failover");

    // The failover is visible in the store totals...
    let m = cluster.store.metrics();
    assert!(m.failovers >= 1, "no failover counted: {m}");

    // ...in the step profiles and the JSON the bench bins emit...
    let profiles = remote.profiles.as_deref().expect("profiling was on");
    let failovers: u64 = profiles.iter().map(|p| p.store.failovers).sum();
    assert!(failovers >= 1, "failover missing from step profiles");
    let json = step_profiles_json(profiles);
    assert!(json.contains("\"failovers\":"));
    assert!(json.contains("\"retries\":"));
    assert!(json.contains("\"reconnects\":"));

    // ...and through the observer, via the store event sink the runner
    // installs.
    assert!(
        killer.failovers.load(Ordering::SeqCst) >= 1,
        "observer missed the failover"
    );
    assert!(
        killer.part_downs.load(Ordering::SeqCst) >= 1,
        "observer missed the part-down"
    );
}
