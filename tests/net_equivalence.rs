//! The distributability claim, end to end: a 4-part PageRank run through
//! [`NetStore`] over loopback TCP part servers produces **byte-identical**
//! output to the same job on the in-process `MemStore`, and the run's
//! step profiles report real network activity (`rpcs`, `net_bytes_in`,
//! `net_bytes_out`).

use ripple::ebsp::step_profiles_json;
use ripple::graph::generate::power_law_graph;
use ripple::graph::pagerank::{read_ranks, run_direct, run_direct_on, PageRankConfig};
use ripple::prelude::*;

/// Sorted (vertex, bit-exact rank) pairs — equality means byte-identical.
fn rank_bits<S: KvStore>(store: &S, table: &str) -> Vec<(u32, u64)> {
    let mut ranks: Vec<(u32, u64)> = read_ranks(store, table)
        .expect("read ranks")
        .into_iter()
        .map(|(v, r)| (v, r.to_bits()))
        .collect();
    ranks.sort_unstable();
    ranks
}

#[test]
fn pagerank_over_loopback_matches_memstore_byte_for_byte() {
    let parts = 4u32;
    let graph = power_law_graph(300, 3000, 0.8, 0xA11CE);
    let config = PageRankConfig {
        damping: 0.85,
        iterations: 10,
    };

    // Local reference run.
    let local_store = MemStore::builder().default_parts(parts).build();
    let local = run_direct(&local_store, "pr", &graph, config).expect("local run");

    // The same job over a loopback cluster, profiled so the step profiles
    // capture the store counter deltas.
    let cluster = LoopbackCluster::spawn(parts as usize, parts);
    let mut runner = JobRunner::new(cluster.store.clone());
    runner.profile(true);
    let remote = run_direct_on(&runner, "pr", &graph, config).expect("remote run");

    // Identical iterative structure...
    assert_eq!(remote.steps, local.steps);
    assert_eq!(remote.metrics.invocations, local.metrics.invocations);
    assert_eq!(remote.metrics.barriers, local.metrics.barriers);

    // ...and byte-identical ranks.
    let local_ranks = rank_bits(&local_store, "pr");
    let remote_ranks = rank_bits(&cluster.store, "pr");
    assert_eq!(local_ranks.len(), 300);
    assert_eq!(remote_ranks, local_ranks, "ranks diverged across the wire");

    // The remote run really crossed the network: the per-step profiles
    // carry non-zero RPC and byte counters, and they surface in the
    // profile JSON the bench bins write.
    let profiles = remote.profiles.as_deref().expect("profiling was on");
    assert!(!profiles.is_empty());
    let rpcs: u64 = profiles.iter().map(|p| p.store.rpcs).sum();
    let bytes_in: u64 = profiles.iter().map(|p| p.store.net_bytes_in).sum();
    let bytes_out: u64 = profiles.iter().map(|p| p.store.net_bytes_out).sum();
    assert!(rpcs > 0, "no rpcs recorded in step profiles");
    assert!(bytes_in > 0, "no inbound bytes recorded in step profiles");
    assert!(bytes_out > 0, "no outbound bytes recorded in step profiles");

    let json = step_profiles_json(profiles);
    assert!(json.contains("\"rpcs\":"));
    assert!(json.contains("\"net_bytes_in\":"));
    assert!(json.contains("\"net_bytes_out\":"));

    // Whole-store totals agree with the claim too.
    let m = cluster.store.metrics();
    assert!(m.rpcs > 0 && m.net_bytes_in > 0 && m.net_bytes_out > 0);
}
