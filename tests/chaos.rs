//! Seeded chaos testing (the ISSUE's differential-oracle criterion):
//! incremental SSSP runs to completion under a randomized [`FaultPlan`] —
//! transient store faults absorbed by the retry policy, a scripted part
//! crash absorbed by checkpoint recovery — and its output is compared
//! against a fault-free run on the minimal reference store.  The same seed
//! must also reproduce the exact same injected-fault trace.

use proptest::prelude::*;
use ripple::graph::generate::{GraphChange, MutableGraph};
use ripple::graph::sssp::{bfs_oracle, SelectiveInstance};
use ripple::store::{FaultPlan, MemStore};
use ripple::store_simple::SimpleStore;

const TABLE: &str = "sel_chaos";

/// A store whose views fail transiently at a low rate and whose part 0
/// crashes at the `crash_at`-th operation, all derived from `seed`.
fn chaos_store(seed: u64, crash_at: u64) -> MemStore {
    let plan = FaultPlan::seeded(seed)
        .transient_ops(0.03)
        .crash_part(0, crash_at);
    MemStore::builder()
        .default_parts(3)
        .fault_plan(plan)
        .build()
}

/// Pin one dense configuration and check the chaos machinery actually
/// engages: transient faults are injected (and retried away), the part-0
/// crash fires, and the run still matches the fault-free reference.
#[test]
fn chaos_machinery_engages_on_a_dense_run() {
    let n = 24u32;
    let mut graph = MutableGraph::new(n);
    for v in 0..n - 1 {
        graph.apply(GraphChange::AddEdge(v, v + 1));
    }
    let initial_graph = graph.graph().clone();
    let batch = vec![GraphChange::RemoveEdge(10, 11), GraphChange::AddEdge(0, 20)];
    for c in &batch {
        graph.apply(*c);
    }

    let simple = SimpleStore::new(3);
    let (reference, _) = SelectiveInstance::initialize(&simple, TABLE, &initial_graph, 0).unwrap();
    reference.apply_batch(&batch).unwrap();
    let expected = reference.distances().unwrap();

    let store = chaos_store(7, 40);
    let (inst, init_metrics) =
        SelectiveInstance::initialize_recoverable(&store, TABLE, &initial_graph, 0, 1).unwrap();
    let update_metrics = inst.apply_batch_recoverable(&batch, 1).unwrap();
    assert_eq!(inst.distances().unwrap(), expected);

    let trace = store.fault_trace();
    assert!(
        trace
            .iter()
            .any(|r| r.kind == ripple::store::FaultKind::Transient),
        "a 3% transient rate over a dense run must inject something: {trace:?}"
    );
    assert!(
        trace
            .iter()
            .any(|r| r.kind == ripple::store::FaultKind::Crash),
        "the scripted crash at op 40 must fire: {trace:?}"
    );
    let retries = init_metrics.retries + update_metrics.retries;
    assert!(retries >= 1, "injected transients must surface as retries");
    let recoveries = init_metrics.recoveries + update_metrics.recoveries;
    assert!(recoveries >= 1, "the crash must surface as a recovery");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn chaos_sssp_matches_fault_free_reference(
        n in 6u32..20,
        initial in prop::collection::vec((0u32..20, 0u32..20), 0..30),
        batch in prop::collection::vec((any::<bool>(), 0u32..20, 0u32..20), 1..8),
        fault_seed in 0u64..1_000,
        crash_at in 1u64..400,
    ) {
        let mut graph = MutableGraph::new(n);
        for (u, v) in initial {
            if u < n && v < n {
                graph.apply(GraphChange::AddEdge(u, v));
            }
        }
        let initial_graph = graph.graph().clone();
        let batch: Vec<GraphChange> = batch
            .into_iter()
            .filter(|(_, u, v)| *u < n && *v < n)
            .map(|(add, u, v)| if add {
                GraphChange::AddEdge(u, v)
            } else {
                GraphChange::RemoveEdge(u, v)
            })
            .collect();
        for c in &batch {
            graph.apply(*c);
        }

        // Differential oracle: the same workload, fault-free, on the
        // minimal reference store.
        let simple = SimpleStore::new(3);
        let (reference, _) =
            SelectiveInstance::initialize(&simple, TABLE, &initial_graph, 0).unwrap();
        reference.apply_batch(&batch).unwrap();
        let expected = reference.distances().unwrap();

        // Chaos runs: checkpoint every barrier, recover through whatever
        // the plan injects.
        let run = || {
            let store = chaos_store(fault_seed, crash_at);
            let (inst, _) = SelectiveInstance::initialize_recoverable(
                &store,
                TABLE,
                &initial_graph,
                0,
                1,
            )
            .unwrap();
            inst.apply_batch_recoverable(&batch, 1).unwrap();
            (inst.distances().unwrap(), store.fault_trace())
        };
        let (got, trace) = run();
        let (got_again, trace_again) = run();

        prop_assert_eq!(&got, &expected, "chaos run diverged from the reference store");
        let oracle = bfs_oracle(&graph, 0);
        for (v, d) in &got {
            prop_assert_eq!(*d, oracle[*v as usize], "vertex {} off the BFS oracle", v);
        }
        prop_assert_eq!(got, got_again, "same seed must reach the same output");
        prop_assert_eq!(
            trace, trace_again,
            "same seed must inject the exact same fault trace"
        );
    }
}
