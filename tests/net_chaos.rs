//! Jobs under seeded network chaos: a deterministic fault-injecting proxy
//! sits between the client store and every part server, and the engine's
//! retry policy must absorb whatever it throws.  Every failure message
//! carries the seed (`replay with RIPPLE_CHAOS_SEED=<seed>`), and the
//! `RIPPLE_CHAOS_SEED` environment variable pins a single seed for
//! replay.
//!
//! The heavier PageRank sweep is `#[ignore]`d out of the default test
//! pass; the CI chaos job runs it with `--ignored`.

use std::time::Duration;

use ripple::ebsp::step_profiles_json;
use ripple::graph::generate::power_law_graph;
use ripple::graph::pagerank::{read_ranks, run_direct, run_direct_on, PageRankConfig};
use ripple::prelude::*;
use ripple::store_net::{ChaosCluster, NetConfig, NetFaultPlan};

/// Sorted (vertex, bit-exact rank) pairs — equality means byte-identical.
fn rank_bits<S: KvStore>(store: &S, table: &str) -> Vec<(u32, u64)> {
    let mut ranks: Vec<(u32, u64)> = read_ranks(store, table)
        .expect("read ranks")
        .into_iter()
        .map(|(v, r)| (v, r.to_bits()))
        .collect();
    ranks.sort_unstable();
    ranks
}

/// The seeds to sweep, or the single seed from `RIPPLE_CHAOS_SEED`.
fn seeds() -> Vec<u64> {
    match std::env::var("RIPPLE_CHAOS_SEED") {
        Ok(s) => vec![s.parse().expect("RIPPLE_CHAOS_SEED must be a u64")],
        Err(_) => vec![0xB5D_0001, 0xB5D_0002, 0xB5D_0003],
    }
}

/// Mild chaos: delays hit every frame; the destructive faults target the
/// hot data plane (state reads/writes), where each strike severs a
/// connection and the engine's retry policy must reconnect and reissue.
fn mild_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan::seeded(seed)
        .delay(10_000, Duration::from_micros(200))
        .corrupt(2_000)
        .on_kind(ripple::store_net::proto::REQ_GET)
        .sever(1_000)
        .on_kind(ripple::store_net::proto::REQ_PUT)
}

/// Fast default-pass test: a run whose frames are corrupted at a high
/// rate still completes through the engine's retry policy, and the step
/// profiles record the healing (retries/reconnects) that made it happen.
#[test]
fn pagerank_heals_corrupt_frames_via_retry_policy() {
    let seed: u64 = 0xC0DE;
    let parts = 2u32;
    let graph = power_law_graph(60, 400, 0.8, 0xBEEF);
    let config = PageRankConfig {
        damping: 0.85,
        iterations: 4,
    };
    let local_store = MemStore::builder().default_parts(parts).build();
    let local = run_direct(&local_store, "pr", &graph, config).expect("local run");

    // 2% of state reads/writes corrupted: each strike severs a
    // connection, so the whole run exercises reconnect + retry dozens of
    // times on the paths the engine retries.
    let plan = NetFaultPlan::seeded(seed)
        .corrupt(20_000)
        .on_kind(ripple::store_net::proto::REQ_GET)
        .corrupt(20_000)
        .on_kind(ripple::store_net::proto::REQ_PUT);
    let cluster = ChaosCluster::spawn(parts as usize, parts, &plan, &NetConfig::default());
    let mut runner = JobRunner::new(cluster.store.clone());
    runner.profile(true);
    runner.retry_policy(RetryPolicy::default().max_attempts(12));
    let remote = run_direct_on(&runner, "pr", &graph, config)
        .unwrap_or_else(|e| panic!("chaos run failed: {e}; replay with RIPPLE_CHAOS_SEED={seed}"));

    assert_eq!(
        rank_bits(&cluster.store, "pr"),
        rank_bits(&local_store, "pr"),
        "ranks diverged under corruption; replay with RIPPLE_CHAOS_SEED={seed}"
    );
    assert_eq!(remote.steps, local.steps);
    assert!(
        !cluster.trace().is_empty(),
        "chaos proxy injected nothing; replay with RIPPLE_CHAOS_SEED={seed}"
    );
    // Healing is visible in the profile stream the bench bins export.
    let profiles = remote.profiles.as_deref().expect("profiling was on");
    let json = step_profiles_json(profiles);
    assert!(json.contains("\"retries\":"));
    let m = cluster.store.metrics();
    assert!(
        m.reconnects >= 1,
        "no reconnects under 2% corruption ({m}); replay with RIPPLE_CHAOS_SEED={seed}"
    );
}

/// CI chaos-job sweep: PageRank under the full mild fault mix (delays,
/// corruption, severs) across several seeds, each run byte-identical to
/// the fault-free reference.  Ignored in the default pass — run with
/// `cargo test --test net_chaos -- --ignored`.
#[test]
#[ignore = "chaos sweep; run by the dedicated CI chaos job"]
fn pagerank_under_mild_chaos_sweep() {
    let parts = 4u32;
    let graph = power_law_graph(200, 1500, 0.8, 0xA11CE);
    let config = PageRankConfig {
        damping: 0.85,
        iterations: 8,
    };
    let local_store = MemStore::builder().default_parts(parts).build();
    let local = run_direct(&local_store, "pr", &graph, config).expect("local run");
    let local_ranks = rank_bits(&local_store, "pr");

    for seed in seeds() {
        let cluster = ChaosCluster::spawn(
            parts as usize,
            parts,
            &mild_plan(seed),
            &NetConfig::default(),
        );
        let mut runner = JobRunner::new(cluster.store.clone());
        runner.retry_policy(RetryPolicy::default().max_attempts(12));
        let remote = run_direct_on(&runner, "pr", &graph, config).unwrap_or_else(|e| {
            panic!("chaos run failed: {e}; replay with RIPPLE_CHAOS_SEED={seed}")
        });
        assert_eq!(remote.steps, local.steps);
        assert_eq!(
            rank_bits(&cluster.store, "pr"),
            local_ranks,
            "ranks diverged under chaos; replay with RIPPLE_CHAOS_SEED={seed}"
        );
        assert!(
            !cluster.trace().is_empty(),
            "seed {seed} injected nothing; replay with RIPPLE_CHAOS_SEED={seed}"
        );
    }
}
