//! Every shipped job, audited: the property auditor runs each evaluation
//! job of the repo (both PageRank variants, the adaptive variant, both
//! SSSP variants, SUMMA, MapReduce word count, and a compact k-means
//! replica of `examples/kmeans.rs`) and each must come back **clean** —
//! no declared property contradicted by observed behavior.
//!
//! Advisories (inference suggestions) are allowed; violations are not.

use std::sync::Arc;

use ripple::graph::generate::power_law_graph;
use ripple::graph::pagerank::{
    structure_loader, AdaptivePageRank, DirectPageRank, MapReducePageRank, PageRankConfig,
};
use ripple::graph::sssp::{FsState, FullScanSssp, SelState, SelectiveSssp, Wave};
use ripple::graph::INF;
use ripple::mapreduce::{MapReduce, MapReduceJob, MrKey, MrState};
use ripple::prelude::*;
use ripple::summa::{block_loader, DenseMatrix, SummaJob};
use ripple_audit::{audit_job, AuditConfig, AuditReport};
use ripple_wire::to_wire;

const PARTS: u32 = 4;

fn store() -> MemStore {
    MemStore::builder().default_parts(PARTS).build()
}

fn assert_clean(report: &AuditReport) {
    assert!(
        report.clean(),
        "job '{}' must audit clean:\n{}",
        report.job,
        report.render()
    );
}

// ---------------------------------------------------------------------------
// PageRank
// ---------------------------------------------------------------------------

fn pr_graph() -> ripple::graph::generate::Graph {
    power_law_graph(60, 240, 0.8, 7)
}

#[test]
fn direct_pagerank_audits_clean() {
    let graph = pr_graph();
    let n = u64::from(graph.vertex_count());
    let config = PageRankConfig {
        iterations: 5,
        ..PageRankConfig::default()
    };
    let report = audit_job(
        "direct-pagerank",
        &AuditConfig::default(),
        store,
        move || Arc::new(DirectPageRank::new("pr_direct", n, config)),
        move || vec![structure_loader(&graph)],
    )
    .expect("audit runs");
    assert_clean(&report);
    // one-msg + no-continue are declared, so no-collect is already active.
    assert!(!report.plan_declared.collect);
}

#[test]
fn mapreduce_pagerank_audits_clean() {
    let graph = pr_graph();
    let n = u64::from(graph.vertex_count());
    let config = PageRankConfig {
        iterations: 5,
        ..PageRankConfig::default()
    };
    let report = audit_job(
        "mapreduce-pagerank",
        &AuditConfig::default(),
        store,
        move || Arc::new(MapReducePageRank::new("pr_mr", n, config)),
        move || vec![structure_loader(&graph)],
    )
    .expect("audit runs");
    assert_clean(&report);
    // The reduce step drives the iteration with the continue signal, so
    // the auditor must observe it and must not suggest no-continue.
    assert!(!report.suggested.no_continue);
}

#[test]
fn adaptive_pagerank_audits_clean() {
    let graph = pr_graph();
    let n = u64::from(graph.vertex_count());
    let report = audit_job(
        "adaptive-pagerank",
        &AuditConfig::default(),
        store,
        move || Arc::new(AdaptivePageRank::new("pr_adaptive", n, 0.85, 1e-4)),
        move || vec![structure_loader(&graph)],
    )
    .expect("audit runs");
    assert_clean(&report);
}

// ---------------------------------------------------------------------------
// SSSP
// ---------------------------------------------------------------------------

const RING: u32 = 24;

/// Ring adjacency: vertex `v` neighbors `v ± 1 (mod n)`.
fn ring_neighbors(v: u32, n: u32) -> Vec<u32> {
    vec![(v + 1) % n, (v + n - 1) % n]
}

#[test]
fn selective_sssp_audits_clean() {
    let report = audit_job(
        "selective-sssp",
        &AuditConfig::default(),
        store,
        || Arc::new(SelectiveSssp::new("sssp_sel", 0, RING)),
        || {
            vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<SelectiveSssp>| {
                    for v in 0..RING {
                        let neighbors = ring_neighbors(v, RING);
                        sink.state(
                            0,
                            v,
                            SelState {
                                neighbor_dists: vec![INF; neighbors.len()],
                                neighbors,
                                dist: INF,
                            },
                        )?;
                        sink.enable(v)?;
                    }
                    Ok(())
                },
            ))]
        },
    )
    .expect("audit runs");
    assert_clean(&report);
}

#[test]
fn full_scan_sssp_audits_clean() {
    let report = audit_job(
        "full-scan-sssp",
        &AuditConfig::default(),
        store,
        || Arc::new(FullScanSssp::new("sssp_fs", 0, Wave::Relax, RING)),
        || {
            vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<FullScanSssp>| {
                    for v in 0..RING {
                        sink.state(
                            0,
                            v,
                            FsState {
                                neighbors: ring_neighbors(v, RING),
                                dist: if v == 0 { 0 } else { INF },
                            },
                        )?;
                        sink.enable(v)?;
                    }
                    Ok(())
                },
            ))]
        },
    )
    .expect("audit runs");
    assert_clean(&report);
}

// ---------------------------------------------------------------------------
// SUMMA
// ---------------------------------------------------------------------------

#[test]
fn summa_audits_clean() {
    let a = DenseMatrix::random(6, 6, 11);
    let b = DenseMatrix::random(6, 6, 13);
    let report = audit_job(
        "summa",
        &AuditConfig::default(),
        store,
        || Arc::new(SummaJob::new("summa_audit", 3)),
        move || vec![block_loader(&a, &b, 3)],
    )
    .expect("audit runs");
    assert_clean(&report);
}

// ---------------------------------------------------------------------------
// MapReduce word count
// ---------------------------------------------------------------------------

struct WordCount;

impl MapReduce for WordCount {
    type InKey = u32;
    type InValue = String;
    type MidKey = String;
    type MidValue = u64;
    type OutValue = u64;

    fn map(&self, _doc: &u32, text: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in text.split_whitespace() {
            emit(word.to_owned(), 1);
        }
    }

    fn reduce(&self, _word: &String, counts: Vec<u64>) -> Option<u64> {
        Some(counts.into_iter().sum())
    }

    fn combine(&self, _word: &String, a: &u64, b: &u64) -> Option<u64> {
        Some(a + b)
    }
}

#[test]
fn mapreduce_wordcount_audits_clean() {
    let report = audit_job(
        "wordcount",
        &AuditConfig::default(),
        store,
        || Arc::new(MapReduceJob::new(Arc::new(WordCount), "audit_wc")),
        || {
            let docs = [
                (1u32, "the quick brown fox jumps over the lazy dog"),
                (2, "the dog barks at the quick fox"),
                (3, "lazy afternoons suit the lazy dog"),
            ];
            vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<MapReduceJob<WordCount>>| {
                    for (id, text) in docs {
                        sink.enable(MrKey::In(id))?;
                        sink.state(0, MrKey::In(id), MrState::In(text.to_owned()))?;
                    }
                    Ok(())
                },
            ))]
        },
    )
    .expect("audit runs");
    assert_clean(&report);
    // The always-merging combiner means every reduce key sees one message;
    // the auditor should notice and suggest declaring it.
    assert!(report.suggested.one_msg);
}

// ---------------------------------------------------------------------------
// k-means (compact replica of examples/kmeans.rs)
// ---------------------------------------------------------------------------

const K: usize = 3;
const POINTS: u32 = 90;

/// One assignment round of k-means: points read the broadcast centroids,
/// pick the closest, and feed per-cluster sums into aggregators — the
/// broadcast-data + aggregator shape of `examples/kmeans.rs`.
struct AssignPoints;

impl Job for AssignPoints {
    type Key = u32;
    type State = (f64, f64, u32);
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["audit_points".to_owned()]
    }

    fn broadcast_table(&self) -> Option<String> {
        Some("audit_centroids".to_owned())
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        let mut aggs: Vec<(String, Arc<dyn Aggregate>)> = Vec::new();
        for c in 0..K {
            aggs.push((format!("sx{c}"), Arc::new(ripple::ebsp::SumF64)));
            aggs.push((format!("sy{c}"), Arc::new(ripple::ebsp::SumF64)));
            aggs.push((format!("n{c}"), Arc::new(ripple::ebsp::SumF64)));
        }
        aggs
    }

    fn properties(&self) -> JobProperties {
        // One assignment pass per launch: compute never continues.
        JobProperties {
            no_continue: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let (x, y, _) = ctx.read_state(0)?.expect("points are preloaded");
        let mut best = (0usize, f64::INFINITY);
        for c in 0..K {
            let (cx, cy): (f64, f64) = ctx
                .broadcast(&(c as u32))?
                .expect("centroids are broadcast");
            let d = (x - cx).powi(2) + (y - cy).powi(2);
            if d < best.1 {
                best = (c, d);
            }
        }
        let c = best.0;
        ctx.write_state(0, &(x, y, c as u32))?;
        ctx.aggregate(&format!("sx{c}"), AggValue::F64(x))?;
        ctx.aggregate(&format!("sy{c}"), AggValue::F64(y))?;
        ctx.aggregate(&format!("n{c}"), AggValue::F64(1.0))?;
        Ok(false)
    }
}

/// Deterministic point cloud: three blobs, no RNG so every audited run
/// regenerates the same input.
fn kmeans_point(i: u32) -> (f64, f64) {
    let blobs = [(0.0, 0.0), (8.0, 8.0), (0.0, 9.0)];
    let (bx, by) = blobs[i as usize % 3];
    let jitter = f64::from(i % 7) / 10.0 - 0.3;
    (bx + jitter, by - jitter)
}

fn kmeans_store() -> MemStore {
    let store = store();
    let centroids = store
        .create_table(TableSpec::new("audit_centroids").ubiquitous())
        .expect("create centroid table");
    for c in 0..K {
        let (x, y) = kmeans_point(c as u32);
        centroids
            .put(ripple::ebsp::key_to_routed(&(c as u32)), to_wire(&(x, y)))
            .expect("seed centroid");
    }
    store
}

#[test]
fn kmeans_round_audits_clean() {
    let report = audit_job(
        "kmeans-round",
        &AuditConfig::default(),
        kmeans_store,
        || Arc::new(AssignPoints),
        || {
            vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<AssignPoints>| {
                    for i in 0..POINTS {
                        let (x, y) = kmeans_point(i);
                        sink.state(0, i, (x, y, 0))?;
                        sink.enable(i)?;
                    }
                    Ok(())
                },
            ))]
        },
    )
    .expect("audit runs");
    assert_clean(&report);
    assert!(report.suggested.no_continue);
}
