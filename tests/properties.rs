//! Workspace-level property tests: the headline invariants of the
//! reproduced applications hold on *arbitrary* inputs, not just the
//! evaluation workloads.

use std::sync::Arc;

use proptest::prelude::*;
use ripple::graph::generate::{Graph, GraphChange, MutableGraph};
use ripple::graph::pagerank::{read_ranks, reference_ranks, run_direct, PageRankConfig};
use ripple::graph::sssp::{bfs_oracle, SelectiveInstance};
use ripple::prelude::*;
use ripple::store_simple::SimpleStore;
use ripple::summa::{multiply, DenseMatrix, SummaOptions};

fn store(parts: u32) -> MemStore {
    MemStore::builder().default_parts(parts).build()
}

/// An arbitrary directed graph as an edge list over `n` vertices.
fn arb_digraph(max_n: u32, max_edges: usize) -> impl Strategy<Value = Graph> {
    (2..max_n).prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0..n), 0..max_edges).prop_map(move |edges| {
            let mut g = Graph::empty(n);
            for (u, v) in edges {
                g.add_edge(u, v);
            }
            g
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// PageRank on any graph: the distributed direct variant matches the
    /// sequential reference and conserves rank mass.
    #[test]
    fn pagerank_invariants(graph in arb_digraph(40, 150), parts in 1u32..5) {
        let config = PageRankConfig { damping: 0.85, iterations: 6 };
        let s = store(parts);
        run_direct(&s, "pr", &graph, config).unwrap();
        let ranks = read_ranks(&s, "pr").unwrap();
        let reference = reference_ranks(&graph, config);
        let mut sum = 0.0;
        for (v, r) in &ranks {
            prop_assert!((r - reference[*v as usize]).abs() < 1e-10);
            sum += r;
        }
        prop_assert!((sum - 1.0).abs() < 1e-9, "mass {sum}");
    }

    /// SUMMA on any compatible shapes, both modes, equals the sequential
    /// kernel.
    #[test]
    fn summa_matches_kernel(
        grid in 1u32..4,
        blocks in 1usize..4,
        seed in 0u64..1000,
        sync in any::<bool>(),
    ) {
        let dim = grid as usize * blocks * 2;
        let a = DenseMatrix::random(dim, dim, seed);
        let b = DenseMatrix::random(dim, dim, seed + 1);
        let mode = if sync { ExecMode::Synchronized } else { ExecMode::Unsynchronized };
        let s = store(grid.min(3));
        let (c, _) = multiply(&s, &a, &b, &SummaOptions { grid, mode, ..SummaOptions::default() }).unwrap();
        prop_assert!(c.approx_eq(&a.multiply(&b), 1e-9));
    }

    /// Incremental SSSP tracks any mutation sequence exactly (vs BFS).
    #[test]
    fn incremental_sssp_tracks_arbitrary_mutations(
        n in 5u32..30,
        initial in prop::collection::vec((0u32..30, 0u32..30), 0..40),
        batches in prop::collection::vec(
            prop::collection::vec((any::<bool>(), 0u32..30, 0u32..30), 1..10),
            1..4
        ),
    ) {
        let mut graph = MutableGraph::new(n);
        for (u, v) in initial {
            if u < n && v < n {
                graph.apply(GraphChange::AddEdge(u, v));
            }
        }
        let s = store(3);
        let (inst, _) = SelectiveInstance::initialize(&s, "sel", graph.graph(), 0).unwrap();
        let oracle = bfs_oracle(&graph, 0);
        for (v, d) in inst.distances().unwrap() {
            prop_assert_eq!(d, oracle[v as usize], "initial, vertex {}", v);
        }
        for batch_spec in batches {
            let batch: Vec<GraphChange> = batch_spec
                .into_iter()
                .filter(|(_, u, v)| *u < n && *v < n)
                .map(|(add, u, v)| if add {
                    GraphChange::AddEdge(u, v)
                } else {
                    GraphChange::RemoveEdge(u, v)
                })
                .collect();
            for c in &batch {
                graph.apply(*c);
            }
            inst.apply_batch(&batch).unwrap();
            let oracle = bfs_oracle(&graph, 0);
            for (v, d) in inst.distances().unwrap() {
                prop_assert_eq!(d, oracle[v as usize], "vertex {}", v);
            }
        }
    }

    /// A min-propagation job reaches the same fixpoint with and without
    /// barriers (the no-sync soundness property), for arbitrary graphs.
    #[test]
    fn sync_and_nosync_agree_on_arbitrary_graphs(
        n in 2u32..25,
        edges in prop::collection::vec((0u32..25, 0u32..25), 0..60),
    ) {
        struct Flood {
            adj: Arc<Vec<Vec<u32>>>,
        }
        impl Job for Flood {
            type Key = u32;
            type State = u32;
            type Message = u32;
            type OutKey = ();
            type OutValue = ();
            fn state_tables(&self) -> Vec<String> {
                vec!["flood".to_owned()]
            }
            fn properties(&self) -> JobProperties {
                JobProperties { incremental: true, deterministic: true, ..Default::default() }
            }
            fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
                let me = *ctx.key();
                let current = ctx.read_state(0)?;
                let best = ctx.messages().iter().copied().min()
                    .map_or(me, |m| m.min(current.unwrap_or(me)));
                if current != Some(best.min(current.unwrap_or(u32::MAX))) || current.is_none() {
                    let new = best.min(current.unwrap_or(best));
                    if current != Some(new) {
                        ctx.write_state(0, &new)?;
                        for &nb in &self.adj[me as usize] {
                            ctx.send(nb, new);
                        }
                    }
                }
                Ok(false)
            }
        }
        let mut adj = vec![Vec::new(); n as usize];
        for (u, v) in edges {
            if u < n && v < n && u != v {
                adj[u as usize].push(v);
                adj[v as usize].push(u);
            }
        }
        let adj = Arc::new(adj);
        let run = |mode: Option<ExecMode>| {
            let s = store(3);
            let job = Arc::new(Flood { adj: Arc::clone(&adj) });
            let mut runner = JobRunner::new(s.clone());
            if let Some(m) = mode {
                runner.force_mode(m);
            }
            runner
                .launch(job, RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                    move |sink: &mut dyn LoadSink<Flood>| {
                        for v in 0..n {
                            sink.message(v, v)?;
                        }
                        Ok(())
                    },
                ))]))
                .unwrap();
            let table = s.lookup_table("flood").unwrap();
            let exporter = Arc::new(CollectingExporter::<u32, u32>::new());
            export_state_table(&s, &table, Arc::clone(&exporter)).unwrap();
            let mut out = exporter.take();
            out.sort();
            out
        };
        let synced = run(Some(ExecMode::Synchronized));
        let nosync = run(None);
        prop_assert_eq!(synced, nosync);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Differential store test: PageRank over the debugging store and the
    /// minimal reference store must agree bit-for-bit on arbitrary graphs.
    #[test]
    fn stores_agree_on_arbitrary_graphs(graph in arb_digraph(30, 100)) {
        let config = PageRankConfig { damping: 0.85, iterations: 5 };
        let mem = store(3);
        run_direct(&mem, "pr_d", &graph, config).unwrap();
        let a = read_ranks(&mem, "pr_d").unwrap();
        let simple = SimpleStore::new(3);
        run_direct(&simple, "pr_d", &graph, config).unwrap();
        let b = read_ranks(&simple, "pr_d").unwrap();
        prop_assert_eq!(a.len(), b.len());
        for ((v1, r1), (v2, r2)) in a.iter().zip(&b) {
            prop_assert_eq!(v1, v2);
            prop_assert!((r1 - r2).abs() < 1e-13, "vertex {}: {} vs {}", v1, r1, r2);
        }
    }
}
