//! Cross-crate integration tests: whole-platform flows through the facade
//! crate — store + engine + layered models together, concurrent jobs on
//! one store, recovery under fault injection in a real application, and
//! the architecture claims (same data, multiple styles of analytics).

use std::sync::Arc;

use ripple::graph::algorithms::bfs;
use ripple::graph::generate::{power_law_graph, random_change_batch, random_undirected};
use ripple::graph::pagerank::{read_ranks, reference_ranks, run_direct, PageRankConfig};
use ripple::graph::sssp::{bfs_oracle, SelectiveInstance};
use ripple::mapreduce::{run_map_reduce, MapReduce};
use ripple::prelude::*;
use ripple::summa::{multiply, DenseMatrix, SummaOptions};

#[test]
fn pagerank_and_sssp_share_one_store() {
    // The architecture pitch: various styles of analytics in the same
    // platform and on the same store.  Run PageRank and incremental SSSP
    // against one MemStore, in different tables, and verify both.
    let store = MemStore::builder().default_parts(6).build();

    let pr_graph = power_law_graph(400, 4000, 0.8, 1);
    let config = PageRankConfig {
        damping: 0.85,
        iterations: 8,
    };
    run_direct(&store, "ranks", &pr_graph, config).unwrap();

    let mut sssp_graph = random_undirected(300, 1500, 0.8, 2);
    let (sssp, _) = SelectiveInstance::initialize(&store, "dists", sssp_graph.graph(), 0).unwrap();
    let batch = random_change_batch(300, 30, 0.8, 3);
    for c in &batch {
        sssp_graph.apply(*c);
    }
    sssp.apply_batch(&batch).unwrap();

    // Both results are correct and coexist.
    let ranks = read_ranks(&store, "ranks").unwrap();
    let reference = reference_ranks(&pr_graph, config);
    for (v, r) in &ranks {
        assert!((r - reference[*v as usize]).abs() < 1e-10);
    }
    let oracle = bfs_oracle(&sssp_graph, 0);
    for (v, d) in sssp.distances().unwrap() {
        assert_eq!(d, oracle[v as usize]);
    }
    let mut names = store.table_names();
    names.sort();
    assert!(names.contains(&"ranks".to_owned()));
    assert!(names.contains(&"dists".to_owned()));
}

#[test]
fn concurrent_jobs_on_one_store() {
    // Two jobs run simultaneously from different threads against disjoint
    // tables of the same store.
    let store = MemStore::builder().default_parts(4).build();
    let s1 = store.clone();
    let s2 = store.clone();
    let t1 = std::thread::spawn(move || {
        let graph = power_law_graph(300, 2500, 0.8, 7);
        let config = PageRankConfig {
            damping: 0.85,
            iterations: 6,
        };
        run_direct(&s1, "pr_a", &graph, config).unwrap();
        let ranks = read_ranks(&s1, "pr_a").unwrap();
        let reference = reference_ranks(&graph, config);
        for (v, r) in ranks {
            assert!((r - reference[v as usize]).abs() < 1e-10);
        }
    });
    let t2 = std::thread::spawn(move || {
        let a = DenseMatrix::random(24, 24, 5);
        let b = DenseMatrix::random(24, 24, 6);
        let (c, _) = multiply(&s2, &a, &b, &SummaOptions::default()).unwrap();
        assert!(c.approx_eq(&a.multiply(&b), 1e-9));
    });
    t1.join().unwrap();
    t2.join().unwrap();
}

#[test]
fn mapreduce_over_pagerank_output() {
    // Layering: feed PageRank's direct output (state table) into a
    // MapReduce couplet that buckets vertices by rank magnitude.
    let store = MemStore::builder().default_parts(4).build();
    let graph = power_law_graph(200, 2000, 0.8, 9);
    run_direct(
        &store,
        "pr",
        &graph,
        PageRankConfig {
            damping: 0.85,
            iterations: 8,
        },
    )
    .unwrap();
    let ranks = read_ranks(&store, "pr").unwrap();

    struct BucketRanks;
    impl MapReduce for BucketRanks {
        type InKey = u32;
        type InValue = f64;
        type MidKey = u32; // order-of-magnitude bucket
        type MidValue = u64;
        type OutValue = u64;
        fn map(&self, _v: &u32, rank: &f64, emit: &mut dyn FnMut(u32, u64)) {
            let bucket = (-rank.log10()).floor() as u32;
            emit(bucket, 1);
        }
        fn reduce(&self, _b: &u32, counts: Vec<u64>) -> Option<u64> {
            Some(counts.into_iter().sum())
        }
        fn combine(&self, _b: &u32, a: &u64, b: &u64) -> Option<u64> {
            Some(a + b)
        }
    }

    let histogram = run_map_reduce(&store, Arc::new(BucketRanks), ranks.clone()).unwrap();
    let total: u64 = histogram.iter().map(|(_, n)| n).sum();
    assert_eq!(total, 200, "every vertex lands in exactly one bucket");
}

#[test]
fn recovery_during_a_real_application() {
    // Inject a shard failure into a BFS run with checkpointing on; the
    // distances must still be exact.
    use ripple_kv::PartId;

    struct FaultyBfs {
        store: MemStore,
        injected: std::sync::atomic::AtomicBool,
    }
    impl Job for FaultyBfs {
        type Key = u32;
        type State = u32;
        type Message = u32;
        type OutKey = ();
        type OutValue = ();
        fn state_tables(&self) -> Vec<String> {
            vec!["fbfs".to_owned()]
        }
        fn properties(&self) -> JobProperties {
            JobProperties {
                deterministic: true,
                ..Default::default()
            }
        }
        fn combine_messages(&self, _k: &u32, a: &u32, b: &u32) -> Option<u32> {
            Some(*a.min(b))
        }
        fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
            if ctx.step() == 3
                && !self
                    .injected
                    .swap(true, std::sync::atomic::Ordering::SeqCst)
            {
                let t = self.store.lookup_table("fbfs").unwrap();
                self.store.fail_part(&t, PartId(1)).unwrap();
            }
            let me = *ctx.key();
            let offered = ctx.messages().iter().copied().min().unwrap_or(u32::MAX);
            let current = ctx.read_state(0)?.unwrap_or(u32::MAX);
            if offered < current {
                ctx.write_state(0, &offered)?;
                // Chain graph: forward along the line.
                if me + 1 < 40 {
                    ctx.send(me + 1, offered + 1);
                }
            }
            Ok(false)
        }
    }

    let store = MemStore::builder().default_parts(3).build();
    let job = Arc::new(FaultyBfs {
        store: store.clone(),
        injected: std::sync::atomic::AtomicBool::new(false),
    });
    let outcome = JobRunner::new(store.clone())
        .checkpoint_interval(1)
        .launch(
            job,
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<FaultyBfs>| sink.message(0, 0),
                ))])
                .recovery(),
        )
        .unwrap();
    assert!(outcome.metrics.recoveries >= 1, "the failure must be seen");

    // Every vertex on the chain got its exact distance.
    let table = store.lookup_table("fbfs").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u32>::new());
    export_state_table(&store, &table, Arc::clone(&exporter)).unwrap();
    let mut got = exporter.take();
    got.sort();
    assert_eq!(got.len(), 40);
    for (v, d) in got {
        assert_eq!(d, v, "chain distance = index");
    }
}

#[test]
fn graph_ebsp_runs_on_table_backed_queues_too() {
    // The whole stack over the paper's generic table-backed queue sets:
    // graph layer -> EBSP -> queue-over-table -> store.
    struct Gossip;
    impl Job for Gossip {
        type Key = u32;
        type State = u32;
        type Message = u32;
        type OutKey = ();
        type OutValue = ();
        fn state_tables(&self) -> Vec<String> {
            vec!["gossip".to_owned()]
        }
        fn properties(&self) -> JobProperties {
            JobProperties {
                incremental: true,
                ..Default::default()
            }
        }
        fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
            let best = ctx.messages().iter().copied().min().unwrap_or(u32::MAX);
            let current = ctx.read_state(0)?.unwrap_or(u32::MAX);
            if best < current {
                ctx.write_state(0, &best)?;
                let me = *ctx.key();
                for n in [me.wrapping_sub(1), me + 1] {
                    if n < 16 {
                        ctx.send(n, best);
                    }
                }
            }
            Ok(false)
        }
    }
    let store = MemStore::builder().default_parts(4).build();
    JobRunner::new(store.clone())
        .queue_kind(QueueKind::Table)
        .launch(
            Arc::new(Gossip),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<Gossip>| sink.message(7, 0),
            ))]),
        )
        .unwrap();
    let table = store.lookup_table("gossip").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u32>::new());
    export_state_table(&store, &table, Arc::clone(&exporter)).unwrap();
    assert_eq!(exporter.take().len(), 16, "gossip reached all 16 vertices");
}

#[test]
fn bfs_through_facade_prelude() {
    let mut g = ripple::graph::generate::MutableGraph::new(6);
    for (u, v) in [(0u32, 1u32), (1, 2), (2, 3), (3, 4), (4, 5)] {
        g.apply(ripple::graph::generate::GraphChange::AddEdge(u, v));
    }
    let store = MemStore::builder().default_parts(2).build();
    let dists = bfs(&store, "b", g.graph(), 0).unwrap();
    assert_eq!(dists.last(), Some(&(5u32, 5u32)));
}
