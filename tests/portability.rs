//! Store portability: the openness claim of the architecture.  Everything
//! above the SPI — engine, layered models, applications — runs unchanged
//! against *any* `KvStore`.  These tests run the same workloads,
//! generically, over the partitioned debugging store and the minimal
//! single-map reference store, and require identical results.

use std::sync::Arc;

use ripple::graph::generate::power_law_graph;
use ripple::graph::pagerank::{read_ranks, run_direct, PageRankConfig};
use ripple::prelude::*;
use ripple::store_simple::SimpleStore;
use ripple::summa::{multiply, DenseMatrix, SummaOptions};
use ripple_kv::KvStore;

/// A store-generic workload: PageRank over the same graph.
fn pagerank_over<S: KvStore>(store: &S) -> Vec<(u32, f64)> {
    let graph = power_law_graph(250, 2500, 0.8, 77);
    run_direct(
        store,
        "pr_port",
        &graph,
        PageRankConfig {
            damping: 0.85,
            iterations: 8,
        },
    )
    .unwrap();
    read_ranks(store, "pr_port").unwrap()
}

#[test]
fn pagerank_is_store_independent() {
    let mem = pagerank_over(&MemStore::builder().default_parts(4).build());
    let simple = pagerank_over(&SimpleStore::new(4));
    assert_eq!(mem.len(), simple.len());
    for ((v1, r1), (v2, r2)) in mem.iter().zip(&simple) {
        assert_eq!(v1, v2);
        assert!(
            (r1 - r2).abs() < 1e-12,
            "vertex {v1}: {r1} (mem) vs {r2} (simple)"
        );
    }
}

#[test]
fn summa_is_store_independent_in_both_modes() {
    let a = DenseMatrix::random(18, 18, 3);
    let b = DenseMatrix::random(18, 18, 4);
    let want = a.multiply(&b);
    for mode in [ExecMode::Synchronized, ExecMode::Unsynchronized] {
        let opts = SummaOptions {
            grid: 3,
            mode,
            ..SummaOptions::default()
        };
        let (c_mem, _) =
            multiply(&MemStore::builder().default_parts(3).build(), &a, &b, &opts).unwrap();
        let (c_simple, _) = multiply(&SimpleStore::new(3), &a, &b, &opts).unwrap();
        assert!(c_mem.approx_eq(&want, 1e-9), "{mode:?} mem");
        assert!(c_simple.approx_eq(&want, 1e-9), "{mode:?} simple");
    }
}

/// The table-backed queue sets also work over the simple store: the whole
/// no-sync stack without a single store-specific line.
#[test]
fn table_queues_over_the_simple_store() {
    struct Gossip;
    impl Job for Gossip {
        type Key = u32;
        type State = u32;
        type Message = u32;
        type OutKey = ();
        type OutValue = ();
        fn state_tables(&self) -> Vec<String> {
            vec!["gossip_s".to_owned()]
        }
        fn properties(&self) -> JobProperties {
            JobProperties {
                incremental: true,
                ..Default::default()
            }
        }
        fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
            let best = ctx.messages().iter().copied().min().unwrap_or(u32::MAX);
            let current = ctx.read_state(0)?.unwrap_or(u32::MAX);
            if best < current {
                ctx.write_state(0, &best)?;
                let me = *ctx.key();
                for n in [me.wrapping_sub(1), me + 1] {
                    if n < 12 {
                        ctx.send(n, best);
                    }
                }
            }
            Ok(false)
        }
    }
    let store = SimpleStore::new(3);
    JobRunner::new(store.clone())
        .queue_kind(QueueKind::Table)
        .launch(
            Arc::new(Gossip),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<Gossip>| sink.message(5, 0),
            ))]),
        )
        .unwrap();
    let table = store.lookup_table("gossip_s").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u32>::new());
    export_state_table(&store, &table, Arc::clone(&exporter)).unwrap();
    assert_eq!(exporter.take().len(), 12);
}

/// The simple store reports no marshalling (everything local); the
/// debugging store reports plenty — the difference is the class of cost
/// the paper's debugging store exists to expose.
#[test]
fn stores_expose_different_cost_models() {
    let mem = MemStore::builder().default_parts(4).build();
    pagerank_over(&mem);
    let simple = SimpleStore::new(4);
    pagerank_over(&simple);
    assert!(mem.metrics().bytes_marshalled > 0);
    assert_eq!(simple.metrics().bytes_marshalled, 0);
    assert_eq!(simple.metrics().remote_ops, 0);
}
