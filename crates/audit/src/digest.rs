//! Order-independent digests of final state-table contents, used to
//! compare runs without materializing (or even decoding) the state.

use ripple_core::EbspError;
use ripple_kv::{fnv64, KvStore, PairConsumer, PartId, RoutedKey, ScanControl};

/// Sums a salted hash of every raw (key, value) pair; wrapping addition
/// makes the result independent of enumeration order across parts.
#[derive(Debug, Clone)]
struct DigestConsumer {
    salt: u64,
    sum: u64,
}

impl PairConsumer for DigestConsumer {
    type Output = u64;

    fn pair(&mut self, key: &RoutedKey, value: &[u8]) -> ScanControl {
        let h = self
            .salt
            .wrapping_add(fnv64(key.body()).rotate_left(17))
            .wrapping_add(fnv64(value));
        self.sum = self.sum.wrapping_add(h.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        ScanControl::Continue
    }

    fn finish(&mut self, _part: PartId) -> u64 {
        self.sum
    }

    fn combine(&self, a: u64, b: u64) -> u64 {
        a.wrapping_add(b)
    }
}

/// Digests the current contents of the named state tables.  Two stores
/// digest equal exactly when every table holds the same set of raw pairs;
/// the table's *position* is salted in, so moving an entry between tables
/// changes the digest even when the bytes match.
///
/// # Errors
///
/// Fails when a table is missing or the store cannot enumerate it.
pub fn state_digest<S: KvStore>(store: &S, table_names: &[String]) -> Result<u64, EbspError> {
    let mut total = 0u64;
    for (index, name) in table_names.iter().enumerate() {
        let table = store.lookup_table(name)?;
        let salt = fnv64(&(index as u64).to_le_bytes());
        let sum = store.enumerate_pairs(&table, DigestConsumer { salt, sum: 0 })?;
        total = total.wrapping_add(sum);
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_kv::{RoutedKey, Table, TableSpec};
    use ripple_store_mem::MemStore;
    use ripple_wire::to_wire;

    fn make_store() -> MemStore {
        MemStore::builder().default_parts(2).build()
    }

    fn put(store: &MemStore, table: &str, key: u32, value: u32) {
        let t = store.lookup_table(table).unwrap();
        t.put(RoutedKey::from_body(to_wire(&key)), to_wire(&value))
            .unwrap();
    }

    #[test]
    fn equal_contents_digest_equal_across_part_counts() {
        let names = vec!["t".to_owned()];
        let a = make_store();
        a.create_table(&TableSpec::new("t")).unwrap();
        let b = MemStore::builder().default_parts(5).build();
        b.create_table(&TableSpec::new("t")).unwrap();
        for k in 0..20u32 {
            put(&a, "t", k, k * 3);
            put(&b, "t", k, k * 3);
        }
        assert_eq!(
            state_digest(&a, &names).unwrap(),
            state_digest(&b, &names).unwrap()
        );
    }

    #[test]
    fn differing_value_changes_digest() {
        let names = vec!["t".to_owned()];
        let a = make_store();
        a.create_table(&TableSpec::new("t")).unwrap();
        let b = make_store();
        b.create_table(&TableSpec::new("t")).unwrap();
        put(&a, "t", 1, 10);
        put(&b, "t", 1, 11);
        assert_ne!(
            state_digest(&a, &names).unwrap(),
            state_digest(&b, &names).unwrap()
        );
    }

    #[test]
    fn table_position_is_salted_in() {
        let store = make_store();
        store.create_table(&TableSpec::new("x")).unwrap();
        store.create_table(&TableSpec::new("y")).unwrap();
        put(&store, "x", 1, 10);
        let forward = state_digest(&store, &["x".to_owned(), "y".to_owned()]).unwrap();
        let backward = state_digest(&store, &["y".to_owned(), "x".to_owned()]).unwrap();
        assert_ne!(forward, backward);
    }
}
