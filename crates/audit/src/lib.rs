//! **ripple-audit** — the property conformance auditor.
//!
//! The engines *trust* a job's declared
//! [`JobProperties`](ripple_core::JobProperties): a job that wrongly
//! declares `one-msg` gets no-collect semantics and silently drops
//! messages; one that wrongly declares `deterministic` gets fast recovery
//! that replays into a different world.  Where cheap the engines check at
//! run time, but most properties cannot be checked from inside one run.
//!
//! [`audit_job`] checks them from *outside*: it executes the job several
//! times against fresh stores with an [`AuditProbe`](ripple_core::AuditProbe)
//! installed, compares the runs, and reports structured
//! [`AuditFinding`](ripple_core::AuditFinding)s —
//!
//! - **`one-msg`** — the probe counts post-combine deliveries per
//!   (key, step); a second message is a violation of a declaration and an
//!   inference blocker otherwise.
//! - **`no-continue`** — the probe sees every continue signal.
//! - **`deterministic`** — the job is re-run on a fresh store and the two
//!   runs' per-step message digests and final state digests are compared;
//!   the first diverging step is the evidence.
//! - **`needs-order` / `no-ss-order` / `incremental`** — further runs
//!   replace the engine's invocation order with seeded random permutations
//!   ([`RunOptions::shuffle_delivery`](ripple_core::RunOptions::shuffle_delivery));
//!   a divergent result means the job depends on an order it waived (or
//!   never declared it needs), an invariant result means a declared
//!   `needs-order` was never exercised.
//! - **`rare-state`** — advisory only, from the ratio of observed state
//!   accesses to messages.
//!
//! Properties that *held* but were not declared come back as the
//! [`AuditReport::suggested`] set together with the stronger
//! [`ExecutionPlan`](ripple_core::ExecutionPlan) declaring them would
//! unlock.  Inference is evidence, not proof: it says the property held in
//! every audited run.

mod digest;
mod recorder;
mod report;

use std::sync::Arc;

use ripple_core::{
    AuditFinding, EbspError, ExecMode, ExecutionPlan, FindingKind, Job, JobProperties, JobRunner,
    Loader, RunOptions,
};
use ripple_kv::KvStore;

pub use digest::state_digest;
pub use recorder::{Recorder, RunObservations};
pub use report::AuditReport;

/// How hard [`audit_job`] probes.
#[derive(Debug, Clone, Copy)]
pub struct AuditConfig {
    /// Seed for the shuffled-delivery permutations.
    pub seed: u64,
    /// Extra identical re-runs for the determinism comparison (beyond the
    /// baseline run).
    pub determinism_runs: u32,
    /// Shuffled-delivery runs for the order-dependence probe.
    pub permutation_runs: u32,
    /// Step cap applied to every audited run.
    pub max_steps: u32,
}

impl Default for AuditConfig {
    fn default() -> Self {
        Self {
            seed: 0x5eed_0000_0000_0001,
            determinism_runs: 1,
            permutation_runs: 2,
            max_steps: 100_000,
        }
    }
}

/// What one instrumented run produced: the probe's observations plus the
/// final state digest and step count (absent when the engine aborted the
/// run on an enforced property).
struct RunRecord {
    obs: RunObservations,
    digest: Option<u64>,
    steps: u32,
    enforced: Option<(&'static str, String)>,
}

/// Audits one job: runs it (forced synchronized, so every property can be
/// observed under instrumentation) against fresh stores from `mk_store`,
/// with fresh loaders from `mk_loaders`, and checks every declared
/// property against what actually happened.
///
/// `mk_job` is called once per run.  Return the *same* `Arc` each time to
/// audit a job instance with interior state, or a fresh instance for a
/// stateless job — sharing is what lets the auditor see nondeterminism
/// that leaks through instance state.
///
/// # Errors
///
/// Fails on contradictory declarations
/// ([`EbspError::ConfigUnsupported`]) and on store or wire errors from the
/// audited runs themselves.  A *property violation* is not an error: it
/// comes back as a finding in the report.
pub fn audit_job<S, J, MS, MJ, ML>(
    label: &str,
    config: &AuditConfig,
    mk_store: MS,
    mk_job: MJ,
    mk_loaders: ML,
) -> Result<AuditReport, EbspError>
where
    S: KvStore,
    J: Job,
    MS: Fn() -> S,
    MJ: Fn() -> Arc<J>,
    ML: Fn() -> Vec<Box<dyn Loader<J>>>,
{
    let job = mk_job();
    let declared = job.properties();
    declared.validate()?;
    let no_agg = job.aggregators().is_empty();
    let no_client_sync = !job.has_aborter();
    let table_names = job.state_tables();
    let plan_declared = ExecutionPlan::derive(&declared, no_agg, no_client_sync);
    drop(job);

    // Every audited run pins its invocation order with the seeded shuffle,
    // the baseline included.  The engine's default order for jobs without
    // `needs-order` is arrival order, which the backing store does not
    // promise to reproduce (hash-map iteration); pinning the order makes
    // same-seed runs exactly comparable, so the determinism phase measures
    // the *job*, and different-seed runs isolate order-dependence.
    let run_once = |seed: u64| -> Result<RunRecord, EbspError> {
        let store = mk_store();
        let mut runner = JobRunner::new(store.clone());
        runner
            .force_mode(ExecMode::Synchronized)
            .max_steps(config.max_steps);
        let probe = Arc::new(Recorder::new());
        let options = RunOptions::new()
            .loaders(mk_loaders())
            .audit(Arc::clone(&probe) as Arc<dyn ripple_core::AuditProbe>)
            .shuffle_delivery(seed);
        match runner.launch(mk_job(), options) {
            Ok(outcome) => Ok(RunRecord {
                obs: probe.take(),
                digest: Some(state_digest(&store, &table_names)?),
                steps: outcome.steps,
                enforced: None,
            }),
            Err(EbspError::PropertyViolation { property, detail }) => Ok(RunRecord {
                obs: probe.take(),
                digest: None,
                steps: 0,
                enforced: Some((property, detail)),
            }),
            Err(e) => Err(e),
        }
    };

    let mut findings = FindingSet::new();
    let mut runs = 1;
    let baseline = run_once(config.seed)?;
    baseline_findings(&declared, &baseline, &mut findings);

    let mut suggested = declared;
    if !findings.any_violation() {
        let observed_deterministic = determinism_phase(
            &declared,
            &baseline,
            config,
            &run_once,
            &mut runs,
            &mut findings,
        )?;
        // Shuffling only reaches the sorted/arrival-ordered compute path;
        // under a run-anywhere plan the work queue has no per-part order to
        // permute, and without observed determinism a divergence proves
        // nothing.
        if observed_deterministic && !plan_declared.run_anywhere && baseline.obs.invocations > 0 {
            permutation_phase(
                &declared,
                &baseline,
                config,
                &run_once,
                &mut runs,
                &mut findings,
            )?;
        }
        infer(
            &declared,
            &baseline.obs,
            observed_deterministic,
            runs,
            &mut suggested,
            &mut findings,
        );
    }

    Ok(AuditReport {
        job: label.to_owned(),
        declared,
        findings: findings.into_vec(),
        suggested,
        plan_declared,
        plan_suggested: ExecutionPlan::derive(&suggested, no_agg, no_client_sync),
        runs,
        steps: baseline.steps,
    })
}

/// At most one finding per property, violations shadowing advisories.
struct FindingSet {
    findings: Vec<AuditFinding>,
}

impl FindingSet {
    fn new() -> Self {
        Self {
            findings: Vec::new(),
        }
    }

    fn add(&mut self, finding: AuditFinding) {
        match self
            .findings
            .iter_mut()
            .find(|f| f.property == finding.property)
        {
            Some(existing) => {
                if existing.kind == FindingKind::Advisory && finding.kind == FindingKind::Violation
                {
                    *existing = finding;
                }
            }
            None => self.findings.push(finding),
        }
    }

    fn any_violation(&self) -> bool {
        self.findings
            .iter()
            .any(|f| f.kind == FindingKind::Violation)
    }

    fn into_vec(mut self) -> Vec<AuditFinding> {
        self.findings
            .sort_by_key(|f| (f.kind != FindingKind::Violation, f.property));
        self.findings
    }
}

/// Findings established by the baseline run alone: enforced aborts plus
/// probe-observed violations of `one-msg` and `no-continue`.
fn baseline_findings(declared: &JobProperties, baseline: &RunRecord, findings: &mut FindingSet) {
    if declared.one_msg {
        if let Some((step, part, key, count)) = &baseline.obs.first_multi_delivery {
            findings.add(AuditFinding {
                property: "one-msg",
                kind: FindingKind::Violation,
                step: *step,
                part: *part,
                key: Some(key.clone()),
                evidence: format!("{count} messages arrived for one key in one step"),
            });
        }
    }
    if declared.no_continue {
        if let Some((step, part, key)) = &baseline.obs.first_continue {
            findings.add(AuditFinding {
                property: "no-continue",
                kind: FindingKind::Violation,
                step: *step,
                part: *part,
                key: Some(key.clone()),
                evidence: "compute returned the positive continue signal".to_owned(),
            });
        }
    }
    // An engine abort the probe did not witness first (both enforced
    // properties are probed above, so this is a safety net).
    if let Some((property, detail)) = &baseline.enforced {
        findings.add(AuditFinding {
            property,
            kind: FindingKind::Violation,
            step: baseline.obs.last_step,
            part: 0,
            key: None,
            evidence: format!("engine aborted the run: {detail}"),
        });
    }
}

/// Re-runs the job identically and compares; returns whether every run
/// matched the baseline.
fn determinism_phase(
    declared: &JobProperties,
    baseline: &RunRecord,
    config: &AuditConfig,
    run_once: &dyn Fn(u64) -> Result<RunRecord, EbspError>,
    runs: &mut u32,
    findings: &mut FindingSet,
) -> Result<bool, EbspError> {
    let mut deterministic = config.determinism_runs > 0;
    for _ in 0..config.determinism_runs {
        let rerun = run_once(config.seed)?;
        *runs += 1;
        let matches = rerun.digest == baseline.digest
            && rerun.steps == baseline.steps
            && rerun.obs.send_digests == baseline.obs.send_digests
            && rerun.obs.deliver_digests == baseline.obs.deliver_digests;
        if matches {
            continue;
        }
        deterministic = false;
        if declared.deterministic {
            let step = baseline
                .obs
                .first_divergence(&rerun.obs)
                .unwrap_or(baseline.steps);
            findings.add(AuditFinding {
                property: "deterministic",
                kind: FindingKind::Violation,
                step,
                part: 0,
                key: None,
                evidence: "two identical runs produced different messages or final state"
                    .to_owned(),
            });
        }
        break;
    }
    Ok(deterministic)
}

/// Runs the job under seeded random invocation orders and interprets a
/// divergence against the declared order properties.
fn permutation_phase(
    declared: &JobProperties,
    baseline: &RunRecord,
    config: &AuditConfig,
    run_once: &dyn Fn(u64) -> Result<RunRecord, EbspError>,
    runs: &mut u32,
    findings: &mut FindingSet,
) -> Result<(), EbspError> {
    let mut diverged_at: Option<u32> = None;
    for i in 0..config.permutation_runs {
        let shuffled = run_once(config.seed.wrapping_add(1 + u64::from(i)))?;
        *runs += 1;
        if shuffled.digest != baseline.digest || shuffled.steps != baseline.steps {
            diverged_at = Some(
                baseline
                    .obs
                    .first_divergence(&shuffled.obs)
                    .unwrap_or(baseline.steps),
            );
            break;
        }
    }
    match diverged_at {
        Some(step) => {
            // One order-related finding, most specific declaration first:
            // waiving step order or declaring incremental delivery while
            // being order-dependent is a lie; being order-dependent while
            // declaring nothing is a missing needs-order.
            let (property, evidence) = if declared.no_ss_order {
                (
                    "no-ss-order",
                    "declared order-free, but a shuffled invocation order changed the result",
                )
            } else if declared.incremental {
                (
                    "incremental",
                    "declared delivery-order-free, but a shuffled invocation order changed the \
                     result",
                )
            } else if declared.needs_order {
                // Order-dependence under a declared needs-order is the
                // declaration working as intended.
                return Ok(());
            } else {
                (
                    "needs-order",
                    "the result depends on invocation order but needs-order is not declared",
                )
            };
            findings.add(AuditFinding {
                property,
                kind: FindingKind::Violation,
                step,
                part: 0,
                key: None,
                evidence: evidence.to_owned(),
            });
        }
        None => {
            if declared.needs_order {
                findings.add(AuditFinding {
                    property: "needs-order",
                    kind: FindingKind::Advisory,
                    step: 0,
                    part: 0,
                    key: None,
                    evidence: format!(
                        "declared, but the result was invariant under {} random invocation \
                         orders; consider dropping it",
                        config.permutation_runs
                    ),
                });
            }
        }
    }
    Ok(())
}

/// Inference mode: properties that held across every audited run but were
/// not declared become suggestions (advisories), building the strongest
/// property set the evidence supports.
fn infer(
    declared: &JobProperties,
    obs: &RunObservations,
    observed_deterministic: bool,
    runs: u32,
    suggested: &mut JobProperties,
    findings: &mut FindingSet,
) {
    if obs.invocations == 0 {
        return;
    }
    if !declared.no_continue && obs.first_continue.is_none() {
        suggested.no_continue = true;
        findings.add(advisory(
            "no-continue",
            format!("no invocation continued across {runs} runs; consider declaring it"),
        ));
    }
    if !declared.one_msg && !obs.deliver_digests.is_empty() && obs.max_delivery <= 1 {
        suggested.one_msg = true;
        findings.add(advisory(
            "one-msg",
            format!("no key received a second message in a step across {runs} runs; consider declaring it"),
        ));
    }
    if !declared.deterministic && observed_deterministic {
        suggested.deterministic = true;
        findings.add(advisory(
            "deterministic",
            format!("{runs} runs produced identical messages and state; consider declaring it"),
        ));
    }
    if !declared.rare_state && obs.sends > 0 && obs.state_ops * 4 <= obs.sends {
        suggested.rare_state = true;
        findings.add(advisory(
            "rare-state",
            format!(
                "{} state accesses vs {} messages; consider declaring it",
                obs.state_ops, obs.sends
            ),
        ));
    }
    if declared.rare_state && obs.state_ops > obs.sends.saturating_mul(4) {
        findings.add(advisory(
            "rare-state",
            format!(
                "declared, but {} state accesses dominate {} messages",
                obs.state_ops, obs.sends
            ),
        ));
    }
}

fn advisory(property: &'static str, evidence: String) -> AuditFinding {
    AuditFinding {
        property,
        kind: FindingKind::Advisory,
        step: 0,
        part: 0,
        key: None,
        evidence,
    }
}
