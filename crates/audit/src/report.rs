//! The audit's result: findings, the inferred property set, and the plans
//! the declared and suggested properties derive to.

use std::fmt::Write as _;

use ripple_core::{AuditFinding, ExecMode, ExecutionPlan, FindingKind, JobProperties, RunObserver};

/// The outcome of auditing one job: every established finding, plus the
/// strongest property set the audited runs are consistent with and what
/// declaring it would unlock.
#[derive(Debug, Clone)]
pub struct AuditReport {
    /// The label the caller gave the job.
    pub job: String,
    /// The properties the job declared.
    pub declared: JobProperties,
    /// Every finding, violations first, at most one per property.
    pub findings: Vec<AuditFinding>,
    /// The strongest property set consistent with the audited runs.  For
    /// properties the auditor cannot probe the declaration is kept as-is;
    /// an *inferred* property held in every audited run but is not proven
    /// in general — treat the suggestion as a review prompt, not a proof.
    pub suggested: JobProperties,
    /// The plan the declared properties derive to.
    pub plan_declared: ExecutionPlan,
    /// The plan the suggested properties would derive to.
    pub plan_suggested: ExecutionPlan,
    /// Instrumented runs the audit performed.
    pub runs: u32,
    /// Steps the baseline run took.
    pub steps: u32,
}

impl AuditReport {
    /// True when no declared property was observed to be violated.
    /// Advisories (inference suggestions, unexercised declarations) do not
    /// make a report unclean.
    pub fn clean(&self) -> bool {
        self.findings
            .iter()
            .all(|f| f.kind != FindingKind::Violation)
    }

    /// The violations alone.
    pub fn violations(&self) -> impl Iterator<Item = &AuditFinding> {
        self.findings
            .iter()
            .filter(|f| f.kind == FindingKind::Violation)
    }

    /// Replays every finding into `observer`'s
    /// [`on_audit_finding`](RunObserver::on_audit_finding) hook, so audit
    /// results flow through the same observer pipeline as step profiles
    /// and recovery events.
    pub fn emit_to(&self, observer: &dyn RunObserver) {
        for finding in &self.findings {
            observer.on_audit_finding(finding);
        }
    }

    /// The optimizations the suggested properties would unlock over the
    /// declared ones, as human-readable names; empty when declaring the
    /// suggestions changes nothing.
    pub fn unlocked(&self) -> Vec<&'static str> {
        let (now, then) = (&self.plan_declared, &self.plan_suggested);
        let mut unlocked = Vec::new();
        if now.collect && !then.collect {
            unlocked.push("no-collect");
        }
        if !now.run_anywhere && then.run_anywhere {
            unlocked.push("run-anywhere (work stealing)");
        }
        if now.mode == ExecMode::Synchronized && then.mode == ExecMode::Unsynchronized {
            unlocked.push("no-sync (barrier-free execution)");
        }
        if !now.fast_recovery && then.fast_recovery {
            unlocked.push("fast-recovery (single-part replay)");
        }
        if now.sort && !then.sort {
            unlocked.push("no-sort");
        }
        unlocked
    }

    /// Renders the report as a terminal-friendly block.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let verdict = if self.clean() { "CLEAN" } else { "VIOLATIONS" };
        let _ = writeln!(
            s,
            "audit of {}: {verdict} ({} runs, {} steps)",
            self.job, self.runs, self.steps
        );
        let _ = writeln!(s, "  declared:  {}", props_line(&self.declared));
        if self.suggested != self.declared {
            let _ = writeln!(s, "  suggested: {}", props_line(&self.suggested));
        }
        for finding in &self.findings {
            let _ = writeln!(s, "  {finding}");
        }
        let unlocked = self.unlocked();
        if !unlocked.is_empty() {
            let _ = writeln!(
                s,
                "  declaring the suggested set unlocks: {}",
                unlocked.join(", ")
            );
        }
        s
    }
}

/// One-line rendering of a property set, `-` for an empty one.
fn props_line(p: &JobProperties) -> String {
    let names = [
        (p.needs_order, "needs-order"),
        (p.no_continue, "no-continue"),
        (p.one_msg, "one-msg"),
        (p.rare_state, "rare-state"),
        (p.no_ss_order, "no-ss-order"),
        (p.incremental, "incremental"),
        (p.deterministic, "deterministic"),
    ];
    let set: Vec<&str> = names
        .iter()
        .filter_map(|(on, name)| on.then_some(*name))
        .collect();
    if set.is_empty() {
        "-".to_owned()
    } else {
        set.join(", ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(findings: Vec<AuditFinding>) -> AuditReport {
        let declared = JobProperties::default();
        let suggested = JobProperties {
            one_msg: true,
            no_continue: true,
            ..JobProperties::default()
        };
        AuditReport {
            job: "t".to_owned(),
            declared,
            findings,
            suggested,
            plan_declared: ExecutionPlan::derive(&declared, true, true),
            plan_suggested: ExecutionPlan::derive(&suggested, true, true),
            runs: 3,
            steps: 4,
        }
    }

    #[test]
    fn clean_distinguishes_violations_from_advisories() {
        let advisory = AuditFinding {
            property: "one-msg",
            kind: FindingKind::Advisory,
            step: 0,
            part: 0,
            key: None,
            evidence: "held".to_owned(),
        };
        assert!(report(vec![advisory.clone()]).clean());
        let violation = AuditFinding {
            kind: FindingKind::Violation,
            ..advisory
        };
        let r = report(vec![violation]);
        assert!(!r.clean());
        assert_eq!(r.violations().count(), 1);
    }

    #[test]
    fn unlocked_names_the_plan_delta() {
        let r = report(Vec::new());
        assert_eq!(r.unlocked(), vec!["no-collect"]);
    }

    #[test]
    fn render_mentions_verdict_and_suggestion() {
        let r = report(Vec::new());
        let text = r.render();
        assert!(text.contains("CLEAN"));
        assert!(text.contains("suggested: no-continue, one-msg"));
        assert!(text.contains("no-collect"));
    }
}
