//! The recording [`AuditProbe`]: accumulates everything one instrumented
//! run reveals about the job's actual behavior.

use std::collections::BTreeMap;

use parking_lot::Mutex;
use ripple_core::{AuditProbe, StateOp};
use ripple_kv::fnv64;

/// Renders a wire-encoded component key for humans: hex of the first bytes.
pub(crate) fn render_key(bytes: &[u8]) -> String {
    const SHOWN: usize = 16;
    let mut s = String::with_capacity(2 * SHOWN + 1);
    for b in bytes.iter().take(SHOWN) {
        s.push_str(&format!("{b:02x}"));
    }
    if bytes.len() > SHOWN {
        s.push('…');
    }
    s
}

/// What one instrumented run looked like, summarized for conformance
/// checking.  Digests are order-independent (wrapping sums of FNV hashes)
/// so two runs compare equal exactly when they produced the same multiset
/// of sends and deliveries, regardless of scheduling.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RunObservations {
    /// Compute invocations observed.
    pub invocations: u64,
    /// Messages sent.
    pub sends: u64,
    /// State-table reads, writes and deletes, summed over all invocations.
    pub state_ops: u64,
    /// The largest post-combine per-(key, step) delivery count seen.
    pub max_delivery: u32,
    /// First delivery of more than one message: (step, part, key, count).
    pub first_multi_delivery: Option<(u32, u32, String, u32)>,
    /// First positive continue signal: (step, part, key).
    pub first_continue: Option<(u32, u32, String)>,
    /// Per-step order-independent digest of every (destination, payload)
    /// sent during that step.
    pub send_digests: BTreeMap<u32, u64>,
    /// Per-step order-independent digest of every (key, count) delivered.
    pub deliver_digests: BTreeMap<u32, u64>,
    /// Highest step any probe callback reported.
    pub last_step: u32,
}

impl RunObservations {
    /// The first step whose send or delivery digest differs from `other`'s,
    /// if the two runs diverged.
    pub fn first_divergence(&self, other: &RunObservations) -> Option<u32> {
        let steps = self
            .send_digests
            .keys()
            .chain(other.send_digests.keys())
            .chain(self.deliver_digests.keys())
            .chain(other.deliver_digests.keys());
        let mut diverged: Option<u32> = None;
        for &step in steps {
            if self.send_digests.get(&step) != other.send_digests.get(&step)
                || self.deliver_digests.get(&step) != other.deliver_digests.get(&step)
            {
                diverged = Some(diverged.map_or(step, |s| s.min(step)));
            }
        }
        diverged
    }
}

/// An [`AuditProbe`] that records a [`RunObservations`].  Probes run
/// concurrently across part tasks; one mutex around the whole record keeps
/// this simple — audit runs are not performance runs.
#[derive(Debug, Default)]
pub struct Recorder {
    inner: Mutex<RunObservations>,
}

impl Recorder {
    /// A fresh recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes the accumulated observations, resetting the recorder.
    pub fn take(&self) -> RunObservations {
        std::mem::take(&mut self.inner.lock())
    }
}

/// Hashes one `(a, b)` pair as a unit: FNV over the length-prefixed
/// concatenation, so neither swapping the pair nor re-pairing values
/// across two pairs preserves the wrapping sum of the hashes.
fn pair_hash(a: &[u8], b: &[u8]) -> u64 {
    let mut buf = Vec::with_capacity(8 + a.len() + b.len());
    buf.extend_from_slice(&(a.len() as u64).to_le_bytes());
    buf.extend_from_slice(a);
    buf.extend_from_slice(b);
    fnv64(&buf)
}

impl AuditProbe for Recorder {
    fn on_invocation(&self, step: u32, _part: u32, _key: &[u8]) {
        let mut inner = self.inner.lock();
        inner.invocations += 1;
        inner.last_step = inner.last_step.max(step);
    }

    fn on_continue(&self, step: u32, part: u32, key: &[u8], continued: bool) {
        if !continued {
            return;
        }
        let mut inner = self.inner.lock();
        if inner.first_continue.is_none() {
            inner.first_continue = Some((step, part, render_key(key)));
        }
    }

    fn on_send(&self, step: u32, _part: u32, _from: &[u8], to: &[u8], msg: &[u8]) {
        let mut inner = self.inner.lock();
        inner.sends += 1;
        let digest = inner.send_digests.entry(step).or_insert(0);
        *digest = digest.wrapping_add(pair_hash(to, msg));
    }

    fn on_state_access(&self, _step: u32, _part: u32, _op: StateOp, _table: usize) {
        self.inner.lock().state_ops += 1;
    }

    fn on_deliver(&self, step: u32, part: u32, key: &[u8], msgs: u32) {
        let mut inner = self.inner.lock();
        inner.max_delivery = inner.max_delivery.max(msgs);
        inner.last_step = inner.last_step.max(step);
        if msgs > 1 && inner.first_multi_delivery.is_none() {
            inner.first_multi_delivery = Some((step, part, render_key(key), msgs));
        }
        let digest = inner.deliver_digests.entry(step).or_insert(0);
        *digest = digest.wrapping_add(pair_hash(key, &msgs.to_le_bytes()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_and_resets() {
        let r = Recorder::new();
        r.on_invocation(1, 0, b"k");
        r.on_send(1, 0, b"k", b"d", b"m");
        r.on_state_access(1, 0, StateOp::Write, 0);
        r.on_deliver(2, 1, b"d", 3);
        r.on_continue(2, 1, b"d", true);
        let obs = r.take();
        assert_eq!(obs.invocations, 1);
        assert_eq!(obs.sends, 1);
        assert_eq!(obs.state_ops, 1);
        assert_eq!(obs.max_delivery, 3);
        assert_eq!(obs.first_multi_delivery.as_ref().unwrap().0, 2);
        assert_eq!(obs.first_continue.as_ref().unwrap().0, 2);
        assert_eq!(r.take(), RunObservations::default());
    }

    #[test]
    fn digests_are_order_independent_but_content_sensitive() {
        let a = Recorder::new();
        a.on_send(1, 0, b"x", b"d1", b"m1");
        a.on_send(1, 0, b"x", b"d2", b"m2");
        let b = Recorder::new();
        b.on_send(1, 3, b"y", b"d2", b"m2");
        b.on_send(1, 3, b"y", b"d1", b"m1");
        assert_eq!(a.take().send_digests, b.take().send_digests);

        let c = Recorder::new();
        c.on_send(1, 0, b"x", b"d1", b"m2");
        c.on_send(1, 0, b"x", b"d2", b"m1");
        let d = Recorder::new();
        d.on_send(1, 0, b"x", b"d1", b"m1");
        d.on_send(1, 0, b"x", b"d2", b"m2");
        assert_ne!(c.take().send_digests, d.take().send_digests);
    }

    #[test]
    fn first_divergence_names_the_earliest_differing_step() {
        let a = Recorder::new();
        a.on_send(1, 0, b"k", b"d", b"m");
        a.on_send(2, 0, b"k", b"d", b"m");
        let b = Recorder::new();
        b.on_send(1, 0, b"k", b"d", b"m");
        b.on_send(2, 0, b"k", b"d", b"DIFFERENT");
        let (oa, ob) = (a.take(), b.take());
        assert_eq!(oa.first_divergence(&ob), Some(2));
        assert_eq!(oa.first_divergence(&oa), None);
    }
}
