//! Liar-job regression tests: each job declares a property it does not
//! have, and the auditor must catch it with exactly one violation naming
//! the right property at the right step.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ripple_audit::{audit_job, AuditConfig, AuditReport};
use ripple_core::{
    ComputeContext, EbspError, FindingKind, FnLoader, Job, JobProperties, LoadSink, Loader,
};
use ripple_store_mem::MemStore;

const PARTS: u32 = 3;
const KEYS: u32 = 6;

fn store() -> MemStore {
    MemStore::builder().default_parts(PARTS).build()
}

fn enable_all_loader<J: Job<Key = u32, State = u64>>() -> Vec<Box<dyn Loader<J>>> {
    vec![Box::new(FnLoader::new(|sink: &mut dyn LoadSink<J>| {
        for k in 0..KEYS {
            sink.state(0, k, 0)?;
            sink.enable(k)?;
        }
        Ok(())
    }))]
}

fn audit<J: Job<Key = u32, State = u64>>(job: Arc<J>) -> AuditReport {
    audit_job(
        "liar",
        &AuditConfig::default(),
        store,
        move || Arc::clone(&job),
        enable_all_loader,
    )
    .expect("audit runs")
}

/// The single violation of a report, asserting there is exactly one.
fn the_violation(report: &AuditReport) -> &ripple_core::AuditFinding {
    let violations: Vec<_> = report.violations().collect();
    assert_eq!(
        violations.len(),
        1,
        "expected exactly one violation, got {:?}",
        report.findings
    );
    violations[0]
}

/// Declares `one-msg` but sends two (uncombinable) messages to the same
/// destination in step 1, so step 2 delivers a pair.
struct LiarOneMsg;

impl Job for LiarOneMsg {
    type Key = u32;
    type State = u64;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["liar_one_msg".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            one_msg: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == 1 {
            let to = (*ctx.key() + 1) % KEYS;
            ctx.send(to, 1);
            ctx.send(to, 2);
        }
        Ok(false)
    }
}

#[test]
fn one_msg_liar_is_caught_at_the_delivering_step() {
    let report = audit(Arc::new(LiarOneMsg));
    assert!(!report.clean());
    let v = the_violation(&report);
    assert_eq!(v.property, "one-msg");
    assert_eq!(v.kind, FindingKind::Violation);
    // Sent in step 1, delivered (and caught) in step 2.
    assert_eq!(v.step, 2);
    assert!(v.key.is_some());
}

/// Declares `no-continue` but returns the positive continue signal in
/// step 1.
struct LiarNoContinue;

impl Job for LiarNoContinue {
    type Key = u32;
    type State = u64;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["liar_no_continue".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            no_continue: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        Ok(ctx.step() == 1)
    }
}

#[test]
fn no_continue_liar_is_caught_at_the_continuing_step() {
    let report = audit(Arc::new(LiarNoContinue));
    assert!(!report.clean());
    let v = the_violation(&report);
    assert_eq!(v.property, "no-continue");
    assert_eq!(v.step, 1);
    assert!(v.key.is_some());
}

/// Declares `deterministic` but the message payload comes from a shared
/// counter that keeps incrementing across runs.
struct LiarDeterministic {
    counter: AtomicU64,
}

impl Job for LiarDeterministic {
    type Key = u32;
    type State = u64;
    type Message = u64;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["liar_deterministic".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            deterministic: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == 1 {
            let stamp = self.counter.fetch_add(1, Ordering::Relaxed);
            ctx.write_state(0, &stamp)?;
            ctx.send((*ctx.key() + 1) % KEYS, stamp);
        }
        Ok(false)
    }
}

#[test]
fn deterministic_liar_is_caught_at_the_diverging_step() {
    let report = audit(Arc::new(LiarDeterministic {
        counter: AtomicU64::new(0),
    }));
    assert!(!report.clean());
    let v = the_violation(&report);
    assert_eq!(v.property, "deterministic");
    assert_eq!(v.step, 1);
}

/// An honest quiet job: one message per destination, never continues,
/// fully deterministic — declares nothing.
struct HonestUndeclared;

impl Job for HonestUndeclared {
    type Key = u32;
    type State = u64;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["honest".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let step = ctx.step();
        if step < 3 {
            ctx.write_state(0, &u64::from(step))?;
            ctx.send((*ctx.key() + 1) % KEYS, step);
        }
        Ok(false)
    }
}

#[test]
fn honest_job_audits_clean_and_gets_inference_suggestions() {
    let report = audit(Arc::new(HonestUndeclared));
    assert!(report.clean(), "findings: {:?}", report.findings);
    assert!(report.suggested.no_continue);
    assert!(report.suggested.one_msg);
    assert!(report.suggested.deterministic);
    // one-msg + no-continue unlock no-collect in the suggested plan.
    assert!(report.plan_declared.collect);
    assert!(!report.plan_suggested.collect);
    assert!(report.unlocked().contains(&"no-collect"));
    // Every suggestion arrives as an advisory finding.
    assert!(report
        .findings
        .iter()
        .all(|f| f.kind == FindingKind::Advisory));
    let text = report.render();
    assert!(text.contains("CLEAN"));
    assert!(text.contains("suggested"));
}

/// An order-dependent job that fails to declare `needs-order`: each
/// invocation takes the next value of a per-part sequence and folds it
/// into its state, so a different invocation order within a part gives a
/// different result.  The sequence is per-part (not global) so that
/// cross-part thread interleaving cannot perturb it — only the order the
/// auditor's shuffle controls can.
struct OrderDependentUndeclared {
    seq: std::sync::Mutex<std::collections::HashMap<u32, u64>>,
}

impl Job for OrderDependentUndeclared {
    type Key = u32;
    type State = u64;
    type Message = u64;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["order_dep".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == 1 {
            let part = ctx.part().0;
            let order = {
                let mut seq = self.seq.lock().unwrap();
                let slot = seq.entry(part).or_insert(0);
                let v = *slot;
                *slot += 1;
                v
            };
            let key = *ctx.key();
            ctx.write_state(0, &(u64::from(key) * 100 + order))?;
        }
        Ok(false)
    }
}

#[test]
fn order_dependence_without_needs_order_is_a_violation() {
    let report = audit_job(
        "order-dep",
        &AuditConfig::default(),
        store,
        // A fresh job each run: the sequences restart at zero, so
        // same-seed runs match (deterministic) and only shuffled orders
        // diverge.
        || {
            Arc::new(OrderDependentUndeclared {
                seq: std::sync::Mutex::new(std::collections::HashMap::new()),
            })
        },
        enable_all_loader,
    )
    .expect("audit runs");
    assert!(!report.clean());
    let v = the_violation(&report);
    assert_eq!(v.property, "needs-order");
}
