//! A deliberately minimal [`ripple_kv`] store: one map per table, no
//! worker lanes, no marshalling simulation, mobile code on plain spawned
//! threads.
//!
//! Its purpose is the paper's *openness* claim: the platform above the SPI
//! is store-independent.  The engine, queue sets, and all the applications
//! run unchanged against [`SimpleStore`] (this crate) and against the
//! partitioned debugging store (`ripple-store-mem`) — the SPI is the only
//! contact surface.  `SimpleStore` is also the natural reference model in
//! differential tests: trivially correct, nothing clever.
//!
//! Parts still exist *logically* (keys route to `route % parts`, part
//! views only see their slice, co-partitioning is honoured) — they are
//! just not backed by separate threads or storage.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::bounded;
use parking_lot::{Mutex, RwLock};
use ripple_kv::{
    KvError, KvStore, PartId, PartView, RoutedKey, ScanControl, StoreMetrics, Table, TableSpec,
    TaskHandle,
};

#[derive(Debug)]
struct TableInner {
    name: String,
    parts: u32,
    ubiquitous: bool,
    partitioning_id: u64,
    data: Mutex<HashMap<RoutedKey, Bytes>>,
    dropped: AtomicBool,
}

impl TableInner {
    fn check_live(&self) -> Result<(), KvError> {
        if self.dropped.load(Ordering::Acquire) {
            return Err(KvError::TableDropped {
                name: self.name.clone(),
            });
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct Inner {
    tables: RwLock<HashMap<String, Arc<TableInner>>>,
    ops: AtomicU64,
    tasks: AtomicU64,
    enumerations: AtomicU64,
    next_partitioning: AtomicU64,
}

/// The minimal reference store.  See the crate docs.
#[derive(Debug, Clone, Default)]
pub struct SimpleStore {
    inner: Arc<Inner>,
    default_parts: u32,
}

impl SimpleStore {
    /// Creates a store whose tables default to `parts` logical parts.
    pub fn new(parts: u32) -> Self {
        assert!(parts > 0, "a store needs at least one part");
        Self {
            inner: Arc::new(Inner {
                next_partitioning: AtomicU64::new(1),
                ..Inner::default()
            }),
            default_parts: parts,
        }
    }

    fn table_inner(&self, name: &str) -> Result<Arc<TableInner>, KvError> {
        self.inner
            .tables
            .read()
            .get(name)
            .cloned()
            .ok_or_else(|| KvError::NoSuchTable {
                name: name.to_owned(),
            })
    }

    fn insert(&self, inner: TableInner) -> Result<SimpleTable, KvError> {
        let mut tables = self.inner.tables.write();
        if tables.contains_key(&inner.name) {
            return Err(KvError::TableExists { name: inner.name });
        }
        let arc = Arc::new(inner);
        tables.insert(arc.name.clone(), Arc::clone(&arc));
        Ok(SimpleTable {
            store: Arc::clone(&self.inner),
            inner: arc,
        })
    }
}

/// Handle to a [`SimpleStore`] table.
#[derive(Debug, Clone)]
pub struct SimpleTable {
    store: Arc<Inner>,
    inner: Arc<TableInner>,
}

impl Table for SimpleTable {
    fn name(&self) -> &str {
        &self.inner.name
    }
    fn part_count(&self) -> u32 {
        self.inner.parts
    }
    fn is_ubiquitous(&self) -> bool {
        self.inner.ubiquitous
    }
    fn partitioning_id(&self) -> u64 {
        self.inner.partitioning_id
    }
    fn get(&self, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        self.inner.check_live()?;
        self.store.ops.fetch_add(1, Ordering::Relaxed);
        Ok(self.inner.data.lock().get(key).cloned())
    }
    fn put(&self, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        self.inner.check_live()?;
        self.store.ops.fetch_add(1, Ordering::Relaxed);
        Ok(self.inner.data.lock().insert(key, value))
    }
    fn delete(&self, key: &RoutedKey) -> Result<bool, KvError> {
        self.inner.check_live()?;
        self.store.ops.fetch_add(1, Ordering::Relaxed);
        Ok(self.inner.data.lock().remove(key).is_some())
    }
    fn len(&self) -> Result<usize, KvError> {
        self.inner.check_live()?;
        Ok(self.inner.data.lock().len())
    }
    fn clear(&self) -> Result<(), KvError> {
        self.inner.check_live()?;
        self.inner.data.lock().clear();
        Ok(())
    }
}

struct SimplePartView {
    store: Arc<Inner>,
    part: PartId,
    partitioning_id: u64,
    reference_name: String,
}

impl SimplePartView {
    fn resolve(&self, table: &str, write: bool) -> Result<Arc<TableInner>, KvError> {
        let t = self
            .store
            .tables
            .read()
            .get(table)
            .cloned()
            .ok_or_else(|| KvError::NoSuchTable {
                name: table.to_owned(),
            })?;
        t.check_live()?;
        if t.ubiquitous {
            if write {
                return Err(KvError::UbiquityMismatch {
                    name: table.to_owned(),
                });
            }
            return Ok(t);
        }
        if t.partitioning_id != self.partitioning_id {
            return Err(KvError::NotCopartitioned {
                left: table.to_owned(),
                right: self.reference_name.clone(),
            });
        }
        Ok(t)
    }

    fn in_part(&self, t: &TableInner, key: &RoutedKey) -> bool {
        t.ubiquitous || key.part_for(t.parts) == self.part
    }
}

impl PartView for SimplePartView {
    fn part(&self) -> PartId {
        self.part
    }
    fn get(&self, table: &str, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        let t = self.resolve(table, false)?;
        self.store.ops.fetch_add(1, Ordering::Relaxed);
        let out = t.data.lock().get(key).cloned();
        Ok(out)
    }
    fn put(&self, table: &str, key: RoutedKey, value: Bytes) -> Result<Option<Bytes>, KvError> {
        let t = self.resolve(table, true)?;
        self.store.ops.fetch_add(1, Ordering::Relaxed);
        let out = t.data.lock().insert(key, value);
        Ok(out)
    }
    fn delete(&self, table: &str, key: &RoutedKey) -> Result<bool, KvError> {
        let t = self.resolve(table, true)?;
        self.store.ops.fetch_add(1, Ordering::Relaxed);
        let out = t.data.lock().remove(key).is_some();
        Ok(out)
    }
    fn scan(
        &self,
        table: &str,
        f: &mut dyn FnMut(&RoutedKey, &[u8]) -> ScanControl,
    ) -> Result<(), KvError> {
        let t = self.resolve(table, false)?;
        self.store.enumerations.fetch_add(1, Ordering::Relaxed);
        let data = t.data.lock();
        for (k, v) in data.iter() {
            if self.in_part(&t, k) && !f(k, v).should_continue() {
                break;
            }
        }
        Ok(())
    }
    fn drain(
        &self,
        table: &str,
        f: &mut dyn FnMut(RoutedKey, Bytes) -> ScanControl,
    ) -> Result<(), KvError> {
        let t = self.resolve(table, true)?;
        self.store.enumerations.fetch_add(1, Ordering::Relaxed);
        // Extract this part's slice, then feed it out; unconsumed entries
        // return on early stop.
        let mine: Vec<RoutedKey> = {
            let data = t.data.lock();
            data.keys()
                .filter(|k| self.in_part(&t, k))
                .cloned()
                .collect()
        };
        let mut iter = mine.into_iter();
        for key in iter.by_ref() {
            let Some(value) = t.data.lock().remove(&key) else {
                continue;
            };
            if !f(key, value).should_continue() {
                break;
            }
        }
        Ok(())
    }
    fn len(&self, table: &str) -> Result<usize, KvError> {
        let t = self.resolve(table, false)?;
        let n = t.data.lock().keys().filter(|k| self.in_part(&t, k)).count();
        Ok(n)
    }
}

impl KvStore for SimpleStore {
    type Table = SimpleTable;

    fn create_table(&self, spec: &TableSpec) -> Result<SimpleTable, KvError> {
        let parts = if spec.is_ubiquitous() {
            1
        } else if spec.part_count() == 1 {
            self.default_parts
        } else {
            spec.part_count()
        };
        let id = self.inner.next_partitioning.fetch_add(1, Ordering::Relaxed);
        self.insert(TableInner {
            name: spec.name().to_owned(),
            parts,
            ubiquitous: spec.is_ubiquitous(),
            partitioning_id: id,
            data: Mutex::new(HashMap::new()),
            dropped: AtomicBool::new(false),
        })
    }

    fn create_table_like(&self, name: &str, like: &SimpleTable) -> Result<SimpleTable, KvError> {
        like.inner.check_live()?;
        self.insert(TableInner {
            name: name.to_owned(),
            parts: like.inner.parts,
            ubiquitous: like.inner.ubiquitous,
            partitioning_id: like.inner.partitioning_id,
            data: Mutex::new(HashMap::new()),
            dropped: AtomicBool::new(false),
        })
    }

    fn lookup_table(&self, name: &str) -> Result<SimpleTable, KvError> {
        Ok(SimpleTable {
            store: Arc::clone(&self.inner),
            inner: self.table_inner(name)?,
        })
    }

    fn drop_table(&self, name: &str) -> Result<(), KvError> {
        match self.inner.tables.write().remove(name) {
            Some(t) => {
                t.dropped.store(true, Ordering::Release);
                Ok(())
            }
            None => Err(KvError::NoSuchTable {
                name: name.to_owned(),
            }),
        }
    }

    fn table_names(&self) -> Vec<String> {
        self.inner.tables.read().keys().cloned().collect()
    }

    fn run_at<R, F>(&self, reference: &SimpleTable, part: PartId, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(&dyn PartView) -> R + Send + 'static,
    {
        assert!(
            part.0 < reference.part_count(),
            "part {part} out of range for {:?}",
            reference.name()
        );
        self.inner.tasks.fetch_add(1, Ordering::Relaxed);
        let (tx, rx) = bounded(1);
        let view = SimplePartView {
            store: Arc::clone(&self.inner),
            part,
            partitioning_id: reference.inner.partitioning_id,
            reference_name: reference.inner.name.clone(),
        };
        std::thread::Builder::new()
            .name(format!("simple-store-{part}"))
            .spawn(move || {
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(&view)));
                let _ = tx.send(result);
            })
            .expect("spawn simple store task");
        TaskHandle::from_channel(part, rx)
    }

    fn metrics(&self) -> StoreMetrics {
        StoreMetrics {
            local_ops: self.inner.ops.load(Ordering::Relaxed),
            remote_ops: 0,
            bytes_marshalled: 0,
            tasks_dispatched: self.inner.tasks.load(Ordering::Relaxed),
            enumerations: self.inner.enumerations.load(Ordering::Relaxed),
            // Memory-only: no log, no fsync, no replay.
            ..StoreMetrics::default()
        }
    }

    /// One map, one mutex: a single lock acquisition is a consistent cut
    /// even against concurrent writers.
    fn snapshot_table(&self, table: &SimpleTable) -> Result<ripple_kv::TableSnapshot, KvError> {
        table.inner.check_live()?;
        self.inner.enumerations.fetch_add(1, Ordering::Relaxed);
        let entries = table
            .inner
            .data
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        Ok(ripple_kv::TableSnapshot::from_entries(entries))
    }
}

/// Memory-only durability: every method keeps its no-op default.
impl ripple_kv::DurableStore for SimpleStore {}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(route: u64, body: &str) -> RoutedKey {
        RoutedKey::with_route(route, Bytes::copy_from_slice(body.as_bytes()))
    }

    #[test]
    fn basic_table_operations() {
        let store = SimpleStore::new(3);
        let t = store.create_table(&TableSpec::new("t")).unwrap();
        assert_eq!(t.part_count(), 3);
        assert_eq!(t.put(key(0, "a"), Bytes::from_static(b"1")).unwrap(), None);
        assert_eq!(t.get(&key(0, "a")).unwrap(), Some(Bytes::from_static(b"1")));
        assert!(t.delete(&key(0, "a")).unwrap());
        assert_eq!(t.len().unwrap(), 0);
    }

    #[test]
    fn part_views_are_scoped() {
        let store = SimpleStore::new(2);
        let t = store.create_table(&TableSpec::new("t")).unwrap();
        t.put(key(0, "even"), Bytes::from_static(b"x")).unwrap();
        t.put(key(1, "odd"), Bytes::from_static(b"y")).unwrap();
        for p in 0..2u32 {
            let n = store
                .run_at(&t, PartId(p), |view| view.len("t").unwrap())
                .join()
                .unwrap();
            assert_eq!(n, 1, "part {p} sees only its slice");
        }
    }

    #[test]
    fn drain_is_part_scoped() {
        let store = SimpleStore::new(2);
        let t = store.create_table(&TableSpec::new("t")).unwrap();
        for i in 0..10u64 {
            t.put(key(i, &format!("k{i}")), Bytes::from_static(b"v"))
                .unwrap();
        }
        let drained = store
            .run_at(&t, PartId(0), |view| {
                let mut n = 0;
                view.drain("t", &mut |_k, _v| {
                    n += 1;
                    ScanControl::Continue
                })
                .unwrap();
                n
            })
            .join()
            .unwrap();
        assert_eq!(drained, 5);
        assert_eq!(t.len().unwrap(), 5, "the other part's entries remain");
    }

    #[test]
    fn copartitioning_is_enforced() {
        let store = SimpleStore::new(2);
        let a = store.create_table(&TableSpec::new("a")).unwrap();
        let b = store.create_table_like("b", &a).unwrap();
        let c = store.create_table(&TableSpec::new("c")).unwrap();
        assert_eq!(a.partitioning_id(), b.partitioning_id());
        assert_ne!(a.partitioning_id(), c.partitioning_id());
        let err = store
            .run_at(&a, PartId(0), |view| view.len("c"))
            .join()
            .unwrap()
            .unwrap_err();
        assert!(matches!(err, KvError::NotCopartitioned { .. }));
    }

    #[test]
    fn panics_are_contained() {
        let store = SimpleStore::new(1);
        let t = store.create_table(&TableSpec::new("t")).unwrap();
        let h = store.run_at(&t, PartId(0), |_| panic!("boom"));
        assert!(matches!(h.join(), Err(KvError::TaskPanicked { .. })));
    }
}
