//! The BSPified SUMMA job and its driver.

use std::sync::Arc;

use ripple_core::{
    CollectingExporter, ComputeContext, EbspError, ExecMode, Exporter, FnLoader, Job,
    JobProperties, JobRunner, LoadSink, RunOptions, RunOutcome,
};
use ripple_kv::KvStore;
use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

use crate::DenseMatrix;

/// Which multicast stream a block belongs to.
const AXIS_A: u8 = 0; // horizontal, along grid rows
const AXIS_B: u8 = 1; // vertical, along grid columns

/// A pipelined block transfer: one panel of `A` or `B` hopping to the next
/// grid neighbor.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockMsg {
    /// `0` for an `A` panel (horizontal), `1` for a `B` panel (vertical).
    pub axis: u8,
    /// The SUMMA panel index.
    pub k: u8,
    /// The block payload.
    pub block: DenseMatrix,
}

impl Encode for BlockMsg {
    fn encode(&self, w: &mut ByteWriter) {
        self.axis.encode(w);
        self.k.encode(w);
        self.block.encode(w);
    }
    fn size_hint(&self) -> usize {
        2 + self.block.size_hint()
    }
}

impl Decode for BlockMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            axis: u8::decode(r)?,
            k: u8::decode(r)?,
            block: DenseMatrix::decode(r)?,
        })
    }
}

/// Per-component schedule state: the running `C` total, buffered panels,
/// and progress cursors into the multiply and send queues.
#[derive(Debug, Clone, PartialEq)]
pub struct SummaState {
    c: DenseMatrix,
    a_have: Vec<(u8, DenseMatrix)>,
    b_have: Vec<(u8, DenseMatrix)>,
    next_mul: u8,
    h_sent: u8,
    v_sent: u8,
}

impl Encode for SummaState {
    fn encode(&self, w: &mut ByteWriter) {
        self.c.encode(w);
        self.a_have.encode(w);
        self.b_have.encode(w);
        self.next_mul.encode(w);
        self.h_sent.encode(w);
        self.v_sent.encode(w);
    }
    fn size_hint(&self) -> usize {
        self.c.size_hint() + 64
    }
}

impl Decode for SummaState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            c: DenseMatrix::decode(r)?,
            a_have: Vec::decode(r)?,
            b_have: Vec::decode(r)?,
            next_mul: u8::decode(r)?,
            h_sent: u8::decode(r)?,
            v_sent: u8::decode(r)?,
        })
    }
}

fn panel_queue(own: u8, n: u8) -> Vec<u8> {
    // A component sends every panel except the one whose pipeline ends at
    // it: panel k's chain is owner, owner+1, ..., owner+n-1; the last hop
    // ((k - 1) mod n relative to the axis index) does not forward.
    (0..n).filter(|&k| k != (own + 1) % n).collect()
}

fn peek_block(have: &[(u8, DenseMatrix)], k: u8) -> Option<&DenseMatrix> {
    have.iter().find(|(kk, _)| *kk == k).map(|(_, b)| b)
}

/// The SUMMA job: component `(i, j)` owns `A[i][j]`, `B[i][j]` and the
/// running total for `C[i][j]`.
pub struct SummaJob {
    table: String,
    n: u8,
    trace: Option<Arc<CollectingExporter<u32, u32>>>,
}

impl SummaJob {
    /// A SUMMA job on a `grid × grid` component grid whose schedule state
    /// lives in `table`, without a multiply trace.
    pub fn new(table: impl Into<String>, grid: u8) -> Self {
        Self {
            table: table.into(),
            n: grid,
            trace: None,
        }
    }
}

/// A loader seeding the `grid × grid` SUMMA component states from `a` and
/// `b`: component `(i, j)` starts with `A[i][j]`, `B[i][j]` and a zero `C`
/// block.  Public so external harnesses (e.g. the property auditor) can
/// drive [`SummaJob`] directly; [`multiply`] validates dimensions before
/// calling this.
pub fn block_loader(
    a: &DenseMatrix,
    b: &DenseMatrix,
    grid: u8,
) -> Box<dyn ripple_core::Loader<SummaJob>> {
    let n = grid as usize;
    let a_blocks = a.split(n);
    let b_blocks = b.split(n);
    let (c_rows, c_cols) = (a.rows() / n, b.cols() / n);
    let mut entries = Vec::with_capacity(n * n);
    for (bi, row) in a_blocks.into_iter().enumerate() {
        for (bj, a_block) in row.into_iter().enumerate() {
            let b_block = b_blocks[bi][bj].clone();
            entries.push(((bi as u32, bj as u32), a_block, b_block));
        }
    }
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<SummaJob>| {
        for ((i, j), a_block, b_block) in entries {
            sink.state(
                0,
                (i, j),
                SummaState {
                    c: DenseMatrix::zeros(c_rows, c_cols),
                    a_have: vec![(j as u8, a_block)],
                    b_have: vec![(i as u8, b_block)],
                    next_mul: 0,
                    h_sent: 0,
                    v_sent: 0,
                },
            )?;
            sink.enable((i, j))?;
        }
        Ok(())
    }))
}

impl Job for SummaJob {
    type Key = (u32, u32);
    type State = SummaState;
    type Message = BlockMsg;
    type OutKey = u32; // step
    type OutValue = u32; // one multiply

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            // Blocks can be delivered in any grouping as long as
            // per-(sender, receiver) order holds; the schedule state machine
            // orders them by panel index anyway.
            incremental: true,
            deterministic: true,
            ..JobProperties::default()
        }
    }

    fn direct_output(&self) -> Option<Arc<dyn Exporter<u32, u32>>> {
        self.trace.clone().map(|t| t as Arc<dyn Exporter<u32, u32>>)
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let (i, j) = *ctx.key();
        let n = self.n;
        let Some(mut state) = ctx.read_state(0)? else {
            return Ok(false);
        };
        // Absorb arriving panels.
        for msg in ctx.take_messages() {
            match msg.axis {
                AXIS_A => state.a_have.push((msg.k, msg.block)),
                _ => state.b_have.push((msg.k, msg.block)),
            }
        }

        let h_queue = panel_queue(j as u8, n);
        let v_queue = panel_queue(i as u8, n);
        // Per-step budgets: the BSPification allows one multiply and one
        // send per direction per step; without barriers a component deals
        // with blocks as they arrive, so it drains everything it can.
        let (mut mul_budget, mut h_budget, mut v_budget) = match ctx.mode() {
            ExecMode::Synchronized => (1u32, 1u32, 1u32),
            ExecMode::Unsynchronized => (u32::MAX, u32::MAX, u32::MAX),
        };

        loop {
            let mut progressed = false;
            // Horizontal pipeline: next A panel in queue order.
            if h_budget > 0 {
                if let Some(&k) = h_queue.get(state.h_sent as usize) {
                    if let Some(block) = peek_block(&state.a_have, k) {
                        ctx.send(
                            (i, (j + 1) % u32::from(n)),
                            BlockMsg {
                                axis: AXIS_A,
                                k,
                                block: block.clone(),
                            },
                        );
                        state.h_sent += 1;
                        h_budget -= 1;
                        progressed = true;
                    }
                }
            }
            // Vertical pipeline: next B panel in queue order.
            if v_budget > 0 {
                if let Some(&k) = v_queue.get(state.v_sent as usize) {
                    if let Some(block) = peek_block(&state.b_have, k) {
                        ctx.send(
                            ((i + 1) % u32::from(n), j),
                            BlockMsg {
                                axis: AXIS_B,
                                k,
                                block: block.clone(),
                            },
                        );
                        state.v_sent += 1;
                        v_budget -= 1;
                        progressed = true;
                    }
                }
            }
            // Multiply-add: strictly in panel order.
            if mul_budget > 0 && state.next_mul < n {
                let k = state.next_mul;
                if peek_block(&state.a_have, k).is_some() && peek_block(&state.b_have, k).is_some()
                {
                    let a = peek_block(&state.a_have, k).expect("checked").clone();
                    let b = peek_block(&state.b_have, k).expect("checked").clone();
                    state.c.add_assign(&a.multiply(&b));
                    state.next_mul += 1;
                    mul_budget -= 1;
                    progressed = true;
                    if self.trace.is_some() {
                        ctx.output(ctx.step(), 1)?;
                    }
                }
            }
            if !progressed {
                break;
            }
        }

        // Drop panels that are fully consumed: multiplied and (if this
        // component forwards them) already sent.
        prune(&mut state.a_have, state.next_mul, &h_queue, state.h_sent);
        prune(&mut state.b_have, state.next_mul, &v_queue, state.v_sent);

        let done = state.next_mul == n
            && state.h_sent as usize == h_queue.len()
            && state.v_sent as usize == v_queue.len();
        ctx.write_state(0, &state)?;
        Ok(!done)
    }
}

/// Removes buffered panels that no pending multiply or send still needs —
/// the "limited buffering" virtue of SUMMA.
fn prune(have: &mut Vec<(u8, DenseMatrix)>, next_mul: u8, queue: &[u8], sent: u8) {
    have.retain(|(k, _)| {
        let mul_pending = *k >= next_mul;
        let send_pending = queue
            .iter()
            .position(|q| q == k)
            .is_some_and(|pos| pos >= sent as usize);
        mul_pending || send_pending
    });
}

/// Options for a SUMMA multiplication.
#[derive(Debug, Clone)]
pub struct SummaOptions {
    /// Grid dimension N (the paper's experiment uses 3).
    pub grid: u32,
    /// Run with barriers ([`ExecMode::Synchronized`]) or without.
    pub mode: ExecMode,
    /// Capture per-step multiply counts (Table II); synchronized runs only.
    pub trace: bool,
    /// Collect engine-level profiles on the outcome: per-step
    /// [`StepProfile`](ripple_core::StepProfile)s when synchronized,
    /// per-worker [`WorkerProfile`](ripple_core::WorkerProfile)s when not.
    pub profile: bool,
}

impl Default for SummaOptions {
    fn default() -> Self {
        Self {
            grid: 3,
            mode: ExecMode::Unsynchronized,
            trace: false,
            profile: false,
        }
    }
}

/// Cost report of one SUMMA multiplication.
#[derive(Debug)]
pub struct SummaReport {
    /// The engine outcome (barriers, invocations, elapsed, ...).
    pub outcome: RunOutcome,
    /// Multiplies per step (index 0 = step 1), when tracing was on.
    pub multiplies_per_step: Option<Vec<u64>>,
}

/// Multiplies `a × b` on an `N × N` grid of EBSP components, with or
/// without synchronization barriers per `options`.
///
/// # Errors
///
/// Fails with [`EbspError::InvalidJob`] on dimension mismatches, and
/// propagates engine errors.
pub fn multiply<S: KvStore>(
    store: &S,
    a: &DenseMatrix,
    b: &DenseMatrix,
    options: &SummaOptions,
) -> Result<(DenseMatrix, SummaReport), EbspError> {
    let n = options.grid as usize;
    if a.cols() != b.rows() {
        return Err(EbspError::InvalidJob {
            reason: format!(
                "inner dimensions disagree: {}x{} times {}x{}",
                a.rows(),
                a.cols(),
                b.rows(),
                b.cols()
            ),
        });
    }
    if n == 0
        || n > u8::MAX as usize
        || !a.rows().is_multiple_of(n)
        || !a.cols().is_multiple_of(n)
        || !b.cols().is_multiple_of(n)
    {
        return Err(EbspError::InvalidJob {
            reason: format!("matrices do not divide into a {n}x{n} grid"),
        });
    }
    let table = fresh_table_name();
    let trace = options.trace.then(|| Arc::new(CollectingExporter::new()));
    let job = Arc::new(SummaJob {
        table: table.clone(),
        n: n as u8,
        trace: trace.clone(),
    });
    let loader = block_loader(a, b, n as u8);

    let mut runner = JobRunner::new(store.clone());
    runner.force_mode(options.mode).profile(options.profile);
    let outcome = runner.launch(job, RunOptions::new().loaders(vec![loader]))?;

    // Gather and assemble the C blocks.
    let handle = store.lookup_table(&table).map_err(EbspError::Kv)?;
    let exporter = Arc::new(CollectingExporter::new());
    ripple_core::export_state_table::<S, (u32, u32), SummaState, _>(
        store,
        &handle,
        Arc::clone(&exporter),
    )?;
    let mut grid: Vec<Vec<Option<DenseMatrix>>> = (0..n).map(|_| vec![None; n]).collect();
    for ((i, j), state) in exporter.take() {
        grid[i as usize][j as usize] = Some(state.c);
    }
    let blocks: Vec<Vec<DenseMatrix>> = grid
        .into_iter()
        .map(|row| {
            row.into_iter()
                .map(|b| b.expect("every component wrote its C block"))
                .collect()
        })
        .collect();
    let c = DenseMatrix::assemble(&blocks);
    store.drop_table(&table).map_err(EbspError::Kv)?;

    let multiplies_per_step = trace.map(|t| {
        let pairs = t.take();
        let max_step = pairs.iter().map(|(s, _)| *s).max().unwrap_or(0) as usize;
        let mut hist = vec![0u64; max_step];
        for (step, count) in pairs {
            hist[step as usize - 1] += u64::from(count);
        }
        hist
    });
    Ok((
        c,
        SummaReport {
            outcome,
            multiplies_per_step,
        },
    ))
}

fn fresh_table_name() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(1);
    format!("__summa_{}", NONCE.fetch_add(1, Ordering::Relaxed))
}
