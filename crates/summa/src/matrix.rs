use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

/// A dense row-major `f64` matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// An all-zero matrix.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// A matrix of uniform random values in [-1, 1), seeded.
    pub fn random(rows: usize, cols: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = Self::zeros(rows, cols);
        for x in &mut m.data {
            *x = rng.gen_range(-1.0..1.0);
        }
        m
    }

    /// Builds from a row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        assert!(rows > 0 && cols > 0, "matrix dimensions must be positive");
        Self { rows, cols, data }
    }

    /// Row count.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column count.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// The element at (r, c).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c]
    }

    /// Sets the element at (r, c).
    ///
    /// # Panics
    ///
    /// Panics when out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// Naive `self × rhs` — the sequential reference and the per-block
    /// kernel.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn multiply(&self, rhs: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, rhs.rows, "inner dimensions must agree");
        let mut out = DenseMatrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.data[i * self.cols + k];
                if aik == 0.0 {
                    continue;
                }
                let row = k * rhs.cols;
                let orow = i * rhs.cols;
                for j in 0..rhs.cols {
                    out.data[orow + j] += aik * rhs.data[row + j];
                }
            }
        }
        out
    }

    /// `self += rhs`, elementwise.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add_assign(&mut self, rhs: &DenseMatrix) {
        assert_eq!((self.rows, self.cols), (rhs.rows, rhs.cols));
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }

    /// Elementwise approximate equality.
    pub fn approx_eq(&self, rhs: &DenseMatrix, tol: f64) -> bool {
        self.rows == rhs.rows
            && self.cols == rhs.cols
            && self
                .data
                .iter()
                .zip(&rhs.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Splits into an `n × n` grid of equal blocks.
    ///
    /// # Panics
    ///
    /// Panics unless both dimensions are divisible by `n`.
    pub fn split(&self, n: usize) -> Vec<Vec<DenseMatrix>> {
        assert!(
            n > 0 && self.rows.is_multiple_of(n) && self.cols.is_multiple_of(n),
            "dimensions {}x{} not divisible into a {n}x{n} grid",
            self.rows,
            self.cols
        );
        let (br, bc) = (self.rows / n, self.cols / n);
        (0..n)
            .map(|bi| {
                (0..n)
                    .map(|bj| {
                        let mut block = DenseMatrix::zeros(br, bc);
                        for r in 0..br {
                            for c in 0..bc {
                                block.data[r * bc + c] = self.get(bi * br + r, bj * bc + c);
                            }
                        }
                        block
                    })
                    .collect()
            })
            .collect()
    }

    /// Reassembles an `n × n` grid of equal blocks.
    ///
    /// # Panics
    ///
    /// Panics if the grid is ragged.
    pub fn assemble(blocks: &[Vec<DenseMatrix>]) -> DenseMatrix {
        let n = blocks.len();
        assert!(n > 0 && blocks.iter().all(|row| row.len() == n));
        let (br, bc) = (blocks[0][0].rows, blocks[0][0].cols);
        let mut out = DenseMatrix::zeros(n * br, n * bc);
        for (bi, row) in blocks.iter().enumerate() {
            for (bj, block) in row.iter().enumerate() {
                assert_eq!((block.rows, block.cols), (br, bc), "ragged grid");
                for r in 0..br {
                    for c in 0..bc {
                        out.set(bi * br + r, bj * bc + c, block.get(r, c));
                    }
                }
            }
        }
        out
    }
}

impl Encode for DenseMatrix {
    fn encode(&self, w: &mut ByteWriter) {
        (self.rows as u32).encode(w);
        (self.cols as u32).encode(w);
        for v in &self.data {
            v.encode(w);
        }
    }
    fn size_hint(&self) -> usize {
        10 + 8 * self.data.len()
    }
}

impl Decode for DenseMatrix {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let rows = u32::decode(r)? as usize;
        let cols = u32::decode(r)? as usize;
        let len = rows.checked_mul(cols).ok_or(WireError::IntOutOfRange {
            target: "matrix size",
        })?;
        r.check_len(len as u64, 8)?;
        let mut data = Vec::with_capacity(len);
        for _ in 0..len {
            data.push(f64::decode(r)?);
        }
        Ok(Self { rows, cols, data })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_wire::{from_wire, to_wire};

    #[test]
    fn multiply_matches_hand_example() {
        let a = DenseMatrix::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = DenseMatrix::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.multiply(&b);
        assert_eq!(c, DenseMatrix::from_vec(2, 2, vec![58., 64., 139., 154.]));
    }

    #[test]
    fn split_assemble_roundtrip() {
        let m = DenseMatrix::random(12, 12, 3);
        for n in [1usize, 2, 3, 4, 6] {
            let blocks = m.split(n);
            assert_eq!(blocks.len(), n);
            assert_eq!(DenseMatrix::assemble(&blocks), m, "grid {n}");
        }
    }

    #[test]
    fn blockwise_multiply_equals_direct() {
        let a = DenseMatrix::random(6, 6, 10);
        let b = DenseMatrix::random(6, 6, 11);
        let (ab, bb) = (a.split(3), b.split(3));
        let mut blocks: Vec<Vec<DenseMatrix>> = (0..3)
            .map(|_| (0..3).map(|_| DenseMatrix::zeros(2, 2)).collect())
            .collect();
        for i in 0..3 {
            for j in 0..3 {
                for k in 0..3 {
                    blocks[i][j].add_assign(&ab[i][k].multiply(&bb[k][j]));
                }
            }
        }
        assert!(DenseMatrix::assemble(&blocks).approx_eq(&a.multiply(&b), 1e-12));
    }

    #[test]
    fn wire_roundtrip() {
        let m = DenseMatrix::random(4, 5, 9);
        let back: DenseMatrix = from_wire(&to_wire(&m)).unwrap();
        assert_eq!(m, back);
    }

    #[test]
    fn hostile_matrix_header_rejected() {
        // Claims 1e9 x 1e9 with no data.
        let mut w = ripple_wire::ByteWriter::new();
        1_000_000_000u32.encode(&mut w);
        1_000_000_000u32.encode(&mut w);
        assert!(from_wire::<DenseMatrix>(&w.into_bytes()).is_err());
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn ragged_split_panics() {
        DenseMatrix::zeros(5, 5).split(2);
    }

    #[test]
    fn add_assign_and_approx_eq() {
        let mut a = DenseMatrix::zeros(2, 2);
        let b = DenseMatrix::from_vec(2, 2, vec![1., 2., 3., 4.]);
        a.add_assign(&b);
        a.add_assign(&b);
        assert!(a.approx_eq(&DenseMatrix::from_vec(2, 2, vec![2., 4., 6., 8.]), 0.0));
        assert!(!a.approx_eq(&b, 1e-9));
    }
}
