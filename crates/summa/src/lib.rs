//! Dense matrix multiplication in the SUMMA communication/computation
//! pattern, BSPified per the Ripple paper (§V-B).
//!
//! `C ← A × B` with all three matrices decomposed into an `N × N` grid of
//! blocks held by the same `N²` components.  Each block of `A` is multicast
//! through its grid row and each block of `B` through its grid column — not
//! with a multicast primitive, but *pipelined* as point-to-point sends from
//! one grid neighbor to the next, interleaved with the block
//! multiply-adds, so no component ever buffers much.
//!
//! Moving SUMMA onto BSP introduces synchronization the algorithm does not
//! need.  The BSPified schedule (exactly the paper's):
//!
//! - a component does **at most one block multiply-add per step**;
//! - it sends **at most one block per direction per step** (so blocks do
//!   not pile up);
//! - all sends and multiplies respect the SUMMA panel order, with the
//!   liberalization that the horizontal and vertical streams progress
//!   independently;
//! - a component does as much work per step as those rules allow.
//!
//! On a 3×3 grid this takes 7 steps whose per-step multiply counts are
//! `1, 3, 6, 3, 6, 3, 5` (Table II) even though each component only does 3
//! multiplies — a 7/3 slowdown in serial multiply steps.  The same job
//! declares the `incremental` property (messages per (sender, receiver)
//! arrive in order; steps are irrelevant), so Ripple can also run it
//! **with no synchronization at all**, where each component simply drains
//! every block as it arrives — the §V-B experiment's 90 s vs 51 s
//! comparison.
//!
//! # Examples
//!
//! ```
//! use ripple_store_mem::MemStore;
//! use ripple_summa::{multiply, DenseMatrix, SummaOptions};
//!
//! # fn main() -> Result<(), ripple_core::EbspError> {
//! let store = MemStore::builder().default_parts(3).build();
//! let a = DenseMatrix::random(12, 12, 1);
//! let b = DenseMatrix::random(12, 12, 2);
//! let (c, _report) = multiply(&store, &a, &b, &SummaOptions::default())?;
//! assert!(c.approx_eq(&a.multiply(&b), 1e-9));
//! # Ok(())
//! # }
//! ```

mod job;
mod matrix;

pub use job::{block_loader, multiply, BlockMsg, SummaJob, SummaOptions, SummaReport};
pub use matrix::DenseMatrix;
