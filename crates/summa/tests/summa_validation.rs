//! SUMMA validation: correctness against the sequential kernel in both
//! modes, the Table II schedule trace, and the sync-vs-nosync cost shape.

use ripple_core::ExecMode;
use ripple_store_mem::MemStore;
use ripple_summa::{multiply, DenseMatrix, SummaOptions};

fn store() -> MemStore {
    MemStore::builder().default_parts(3).build()
}

fn opts(grid: u32, mode: ExecMode) -> SummaOptions {
    SummaOptions {
        grid,
        mode,
        ..SummaOptions::default()
    }
}

#[test]
fn synchronized_multiply_is_correct() {
    let a = DenseMatrix::random(12, 12, 1);
    let b = DenseMatrix::random(12, 12, 2);
    let (c, report) = multiply(&store(), &a, &b, &opts(3, ExecMode::Synchronized)).unwrap();
    assert!(c.approx_eq(&a.multiply(&b), 1e-9));
    assert!(report.outcome.metrics.barriers > 0);
}

#[test]
fn unsynchronized_multiply_is_correct() {
    let a = DenseMatrix::random(12, 12, 3);
    let b = DenseMatrix::random(12, 12, 4);
    let (c, report) = multiply(&store(), &a, &b, &opts(3, ExecMode::Unsynchronized)).unwrap();
    assert!(c.approx_eq(&a.multiply(&b), 1e-9));
    assert_eq!(report.outcome.metrics.barriers, 0);
}

#[test]
fn rectangular_matrices_multiply_correctly() {
    // (12x6) x (6x9) on a 3x3 grid.
    let a = DenseMatrix::random(12, 6, 5);
    let b = DenseMatrix::random(6, 9, 6);
    for mode in [ExecMode::Synchronized, ExecMode::Unsynchronized] {
        let (c, _) = multiply(&store(), &a, &b, &opts(3, mode)).unwrap();
        assert!(c.approx_eq(&a.multiply(&b), 1e-9), "{mode:?}");
    }
}

#[test]
fn various_grid_sizes() {
    let a = DenseMatrix::random(8, 8, 7);
    let b = DenseMatrix::random(8, 8, 8);
    let want = a.multiply(&b);
    for grid in [1u32, 2, 4] {
        for mode in [ExecMode::Synchronized, ExecMode::Unsynchronized] {
            let (c, _) = multiply(&store(), &a, &b, &opts(grid, mode)).unwrap();
            assert!(c.approx_eq(&want, 1e-9), "grid {grid} {mode:?}");
        }
    }
}

#[test]
fn table2_schedule_trace_matches_paper() {
    // M = N = 3, equal blocks: the BSPified schedule takes 7 steps with
    // 1, 3, 6, 3, 6, 3, 5 block multiplications per step (Table II), 27 in
    // total — even though each component does only 3.
    let a = DenseMatrix::random(6, 6, 9);
    let b = DenseMatrix::random(6, 6, 10);
    let options = SummaOptions {
        grid: 3,
        mode: ExecMode::Synchronized,
        trace: true,
        ..SummaOptions::default()
    };
    let (c, report) = multiply(&store(), &a, &b, &options).unwrap();
    assert!(c.approx_eq(&a.multiply(&b), 1e-9));
    let trace = report.multiplies_per_step.expect("tracing was on");
    assert_eq!(trace, vec![1, 3, 6, 3, 6, 3, 5], "Table II");
    assert_eq!(trace.iter().sum::<u64>(), 27);
    assert_eq!(report.outcome.steps, 7);
}

#[test]
fn nosync_needs_fewer_serial_multiply_rounds() {
    // The 7/3 claim: with barriers, 7 serial multiply steps; without, a
    // component is bounded only by its own 3 multiplies and the pipeline.
    let a = DenseMatrix::random(6, 6, 11);
    let b = DenseMatrix::random(6, 6, 12);
    let (_, with_sync) = multiply(&store(), &a, &b, &opts(3, ExecMode::Synchronized)).unwrap();
    let (_, without) = multiply(&store(), &a, &b, &opts(3, ExecMode::Unsynchronized)).unwrap();
    assert_eq!(with_sync.outcome.steps, 7);
    assert_eq!(without.outcome.steps, 0);
    // Per-component invocations collapse without barriers: 9 components
    // need 7 steps * enabled components with sync, but only a handful of
    // message-driven invocations without.
    assert!(
        without.outcome.metrics.invocations < with_sync.outcome.metrics.invocations,
        "nosync {} vs sync {}",
        without.outcome.metrics.invocations,
        with_sync.outcome.metrics.invocations
    );
}

#[test]
fn dimension_mismatch_is_rejected() {
    let a = DenseMatrix::random(6, 6, 1);
    let b = DenseMatrix::random(9, 6, 2);
    assert!(multiply(&store(), &a, &b, &opts(3, ExecMode::Synchronized)).is_err());
    // Not divisible by the grid.
    let b2 = DenseMatrix::random(6, 7, 3);
    assert!(multiply(&store(), &a, &b2, &opts(3, ExecMode::Synchronized)).is_err());
}

#[test]
fn identity_multiplication() {
    let n = 9;
    let mut eye = DenseMatrix::zeros(n, n);
    for i in 0..n {
        eye.set(i, i, 1.0);
    }
    let a = DenseMatrix::random(n, n, 13);
    let (c, _) = multiply(&store(), &a, &eye, &opts(3, ExecMode::Unsynchronized)).unwrap();
    assert!(c.approx_eq(&a, 1e-12));
}
