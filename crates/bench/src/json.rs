//! A minimal JSON reader for the bench trajectory tooling.
//!
//! The repo emits all its JSON by hand (no serde in the offline build),
//! and `ripple-bench compare` needs to read those documents back.  This
//! is a small recursive-descent parser over the JSON grammar — objects,
//! arrays, strings (with escapes), numbers as `f64`, booleans, null —
//! with just enough accessor surface for record comparison.  It is not a
//! streaming parser and not hardened against adversarial input; it reads
//! files this repo wrote.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number, as `f64` (the only number type JSON itself has).
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order (duplicate keys keep the first).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON document.
    ///
    /// # Errors
    ///
    /// A human-readable description with a byte offset on malformed input
    /// or trailing garbage.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing garbage at byte {pos}"));
        }
        Ok(value)
    }

    /// Member `key` of an object, if this is an object that has it.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Convenience: `self.get(key)` as a number.
    pub fn num(&self, key: &str) -> Option<f64> {
        self.get(key).and_then(Json::as_f64)
    }

    /// Convenience: `self.get(key)` as a string.
    pub fn str(&self, key: &str) -> Option<&str> {
        self.get(key).and_then(Json::as_str)
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while let Some(b) = bytes.get(*pos) {
        match b {
            b' ' | b'\t' | b'\n' | b'\r' => *pos += 1,
            _ => break,
        }
    }
}

fn expect(bytes: &[u8], pos: &mut usize, want: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&want) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", want as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, word: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(format!("expected '{word}' at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while let Some(b) = bytes.get(*pos) {
        match b {
            b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => *pos += 1,
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|e| format!("bad number '{text}' at byte {start}: {e}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_owned()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|e| format!("\\u{hex}: {e}"))?;
                        // Surrogate pairs are not emitted by this repo's
                        // writers; map lone surrogates to the replacement
                        // character rather than failing the document.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    other => return Err(format!("bad escape {other:?} at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Multi-byte UTF-8 sequences pass through untouched.
                let s = &bytes[*pos..];
                let ch_len = match s[0] {
                    b if b < 0x80 => 1,
                    b if b >= 0xF0 => 4,
                    b if b >= 0xE0 => 3,
                    _ => 2,
                };
                let chunk = s.get(..ch_len).ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += ch_len;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        if !members.iter().any(|(k, _)| *k == key) {
            members.push((key, value));
        }
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num(-1500.0));
        assert_eq!(
            Json::parse("\"a\\\"b\\u00e9\\n\"").unwrap(),
            Json::Str("a\"bé\n".to_owned())
        );
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"steps":[{"w_us":1.5,"h_bytes":100},{"w_us":2.0,"h_bytes":0}],
                      "backend":"mem","g":null,"ok":true}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.str("backend"), Some("mem"));
        assert_eq!(v.get("g"), Some(&Json::Null));
        let steps = v.get("steps").unwrap().as_arr().unwrap();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].num("w_us"), Some(1.5));
        assert_eq!(steps[1].num("h_bytes"), Some(0.0));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} garbage").is_err());
        assert!(Json::parse("\"unterminated").is_err());
    }

    #[test]
    fn round_trips_repo_emitted_profile_json() {
        // The exact shape step_profiles_json emits.
        let doc = "[{\"step\":1,\"start_us\":0.000,\"parts\":[{\"part\":0,\
                    \"compute_us\":12.500}]}]";
        let v = Json::parse(doc).unwrap();
        let steps = v.as_arr().unwrap();
        assert_eq!(steps[0].num("step"), Some(1.0));
        let parts = steps[0].get("parts").unwrap().as_arr().unwrap();
        assert_eq!(parts[0].num("compute_us"), Some(12.5));
    }

    #[test]
    fn duplicate_keys_keep_the_first() {
        let v = Json::parse("{\"a\":1,\"a\":2}").unwrap();
        assert_eq!(v.num("a"), Some(1.0));
    }

    #[test]
    fn unicode_passthrough() {
        assert_eq!(
            Json::parse("\"héllo → wörld\"").unwrap(),
            Json::Str("héllo → wörld".to_owned())
        );
    }
}
