//! **§V-C experiment** — incremental single-source shortest paths:
//! selective enablement vs full scans.
//!
//! The paper's workload: 100,000 unconnected vertices, one chosen as the
//! source; ~1.8 million random power-law edges added; initial distances
//! solved; then, ten times, a batch of 1,000 random primitive changes is
//! generated and applied, and the distance annotations are updated.  The
//! elapsed time for the ten batch-updates is summed per trial.
//!
//! Paper: selective enablement took **0.21 ± 0.03 s** for the ten batches,
//! full scanning took **78 ± 5 s** — roughly 370×, even though the
//! selective variant does extra bookkeeping.
//!
//! Usage: `cargo run --release -p ripple-bench --bin sssp_incremental --
//! [--scale 50] [--batches 10] [--batch-size 1000] [--trials 3]
//! [--parts 6] [--skip-fullscan] [--store mem|simple|disk|net]
//! [--data-dir path] [--profile steps.json]
//! [--bench-out BENCH_<date>.json]`
//!
//! `--profile <path>` additionally applies one extra profiled batch on the
//! selective instance after the timed trials and writes its per-step
//! engine profiles to `<path>` as JSON tagged with the backend
//! (`{"store":"...","steps":[...]}`) — the step-level view of a change
//! wave's blast radius.
//!
//! `--bench-out <path>` appends a BSP cost trajectory record for the same
//! profiled change wave (per superstep `w`/`h`/`g`/`l` plus run totals)
//! to the JSON array at `<path>` (see `ripple-bench compare`).

use ripple_bench::trajectory::BenchOut;
use ripple_bench::{dispatch, Args, Stats, StoreBench, StoreChoice};
use ripple_core::{step_profiles_json, JobRunner};
use ripple_graph::generate::{random_change_batch, random_undirected};
use ripple_graph::sssp::{bfs_oracle, FullScanInstance, SelectiveInstance};
use ripple_kv::KvStore;

struct Sssp {
    args: Args,
    parts: u32,
}

impl StoreBench for Sssp {
    fn run<S: KvStore>(self, choice: StoreChoice, make_store: impl FnMut() -> S) {
        run(&self.args, self.parts, choice, make_store);
    }
}

fn main() {
    let args = Args::capture();
    let parts = args.get("parts", 6u32);
    let bench = Sssp {
        args: args.clone(),
        parts,
    };
    dispatch(&args, "sssp_incremental", parts, bench);
}

fn run<S: KvStore>(
    args: &Args,
    parts: u32,
    choice: StoreChoice,
    mut make_store: impl FnMut() -> S,
) {
    let scale = args.get("scale", 50u64);
    let batches = args.get("batches", 10usize);
    let batch_size = args.get("batch-size", 1000usize) / scale.max(1) as usize;
    let batch_size = batch_size.max(10);
    let trials = args.get("trials", 3usize);
    let skip_fullscan = args.has("skip-fullscan");
    let profile_path = args.get_opt::<String>("profile");
    let bench_out = BenchOut::from_args(args, choice.name(), parts);

    let n = (100_000u64 / scale).max(500) as u32;
    let edges = 1_800_000u64 / scale;
    println!(
        "incremental SSSP: {n} vertices, ~{edges} undirected edges, \
         {batches} batches of {batch_size} changes, {trials} trials, \
         {parts} parts, {choice} store (paper scale /{scale})"
    );

    let mut selective_times = Vec::new();
    let mut fullscan_times = Vec::new();
    let mut sel_invocations = 0u64;
    let mut fs_invocations = 0u64;

    for trial in 0..trials {
        let seed = 0xD15C0 + trial as u64;
        let mut graph = random_undirected(n, edges, 0.8, seed);
        let source = 0;

        let sel_store = make_store();
        let (sel, _) = SelectiveInstance::initialize(&sel_store, "sel", graph.graph(), source)
            .expect("selective init");
        let fs = if skip_fullscan {
            None
        } else {
            let fs_store = make_store();
            Some(
                FullScanInstance::initialize(&fs_store, "fs", graph.graph(), source)
                    .expect("full-scan init")
                    .0,
            )
        };

        let mut sel_elapsed = 0.0;
        let mut fs_elapsed = 0.0;
        for b in 0..batches {
            let batch = random_change_batch(n, batch_size, 0.8, seed * 1000 + b as u64);
            for c in &batch {
                graph.apply(*c);
            }
            let t = std::time::Instant::now();
            let m = sel.apply_batch(&batch).expect("selective update");
            sel_elapsed += t.elapsed().as_secs_f64();
            sel_invocations += m.invocations;
            if let Some(fs) = &fs {
                let t = std::time::Instant::now();
                let m = fs.apply_batch(&batch).expect("full-scan update");
                fs_elapsed += t.elapsed().as_secs_f64();
                fs_invocations += m.invocations;
            }
        }
        // Verify against the oracle at end of trial.
        let oracle = bfs_oracle(&graph, source);
        for (v, d) in sel.distances().expect("read distances") {
            assert_eq!(d, oracle[v as usize], "selective diverged at vertex {v}");
        }
        if let Some(fs) = &fs {
            for (v, d) in fs.distances().expect("read distances") {
                assert_eq!(d, oracle[v as usize], "full-scan diverged at vertex {v}");
            }
        }
        selective_times.push(sel_elapsed);
        if fs.is_some() {
            fullscan_times.push(fs_elapsed);
        }
    }

    let sel = Stats::of(&selective_times);
    println!(
        "  selective enablement: {sel} s for {batches} batches \
         ({sel_invocations} component invocations total)"
    );
    if fullscan_times.is_empty() {
        println!("  full scan: skipped (--skip-fullscan)");
    } else {
        let fs = Stats::of(&fullscan_times);
        println!(
            "  full scan:            {fs} s for {batches} batches \
             ({fs_invocations} component invocations total)"
        );
        println!(
            "  speedup: {:.0}x (paper: 78 / 0.21 = ~370x)",
            fs.mean / sel.mean
        );
    }

    if profile_path.is_some() || bench_out.is_some() {
        let seed = 0xD15C0u64;
        let graph = random_undirected(n, edges, 0.8, seed);
        let store = make_store();
        let (sel, _) = SelectiveInstance::initialize(&store, "sel_profiled", graph.graph(), 0)
            .expect("selective init");
        let batch = random_change_batch(n, batch_size, 0.8, seed * 7919);
        let mut runner = JobRunner::new(store);
        runner.profile(true);
        let out = sel
            .apply_batch_on(&runner, &batch)
            .expect("profiled update");
        let profiles = out.profiles.as_deref().unwrap_or(&[]);
        if let Some(path) = profile_path {
            let json = format!(
                "{{\"store\":\"{choice}\",\"steps\":{}}}",
                step_profiles_json(profiles)
            );
            std::fs::write(&path, json).expect("write profile JSON");
            println!(
                "  wrote {} step profiles of one change wave to {path}",
                profiles.len()
            );
        }
        if let Some(bench_out) = bench_out {
            let sel_mean = Stats::of(&selective_times).mean;
            bench_out.record("sssp_incremental/selective", trials, Some(sel_mean), &out);
        }
    }
}
