//! **Table II** — Block multiplications in each step (BSPified SUMMA,
//! M = N = 3, equal blocks).
//!
//! Paper:
//!
//! | Step            | 1 | 2 | 3 | 4 | 5 | 6 | 7 |
//! |-----------------|---|---|---|---|---|---|---|
//! | Multiplications | 1 | 3 | 6 | 3 | 6 | 3 | 5 |
//!
//! Seven steps even though a component does only three block multiplies:
//! measuring time as block multiplications done in series, the BSP
//! synchronization slows this example by 7/3.
//!
//! Usage: `cargo run --release -p ripple-bench --bin table2 --
//! [--grid 3] [--block 8] [--store mem|simple|disk|net] [--data-dir path]
//! [--profile steps.json] [--bench-out BENCH_<date>.json]`
//!
//! `--profile <path>` writes the run's per-step engine profiles (per-part
//! compute times, barrier skew, store deltas) to `<path>` as JSON, tagged
//! with the backend: `{"store":"...","steps":[...]}`.
//!
//! `--bench-out <path>` appends a schema-versioned BSP cost trajectory
//! record (per superstep `w`/`h`/`g`/`l` plus run totals) to the JSON
//! array at `<path>` (see `ripple-bench compare`).

use ripple_bench::trajectory::BenchOut;
use ripple_bench::{dispatch, Args, StoreBench, StoreChoice};
use ripple_core::{step_profiles_json, ExecMode};
use ripple_kv::KvStore;
use ripple_summa::{multiply, DenseMatrix, SummaOptions};

struct Table2 {
    args: Args,
    grid: u32,
    block: usize,
}

impl StoreBench for Table2 {
    fn run<S: KvStore>(self, choice: StoreChoice, mut make_store: impl FnMut() -> S) {
        run(&self.args, self.grid, self.block, choice, make_store());
    }
}

fn main() {
    let args = Args::capture();
    let grid = args.get("grid", 3u32);
    let block = args.get("block", 8usize);
    let bench = Table2 {
        args: args.clone(),
        grid,
        block,
    };
    dispatch(&args, "table2", grid, bench);
}

fn run<S: KvStore>(args: &Args, grid: u32, block: usize, choice: StoreChoice, store: S) {
    let profile_path = args.get_opt::<String>("profile");
    let bench_out = BenchOut::from_args(args, choice.name(), grid);
    let dim = grid as usize * block;

    let a = DenseMatrix::random(dim, dim, 0xBEEF);
    let b = DenseMatrix::random(dim, dim, 0xF00D);
    let (c, report) = multiply(
        &store,
        &a,
        &b,
        &SummaOptions {
            grid,
            mode: ExecMode::Synchronized,
            trace: true,
            profile: profile_path.is_some() || bench_out.is_some(),
        },
    )
    .expect("SUMMA multiply");
    assert!(
        c.approx_eq(&a.multiply(&b), 1e-9),
        "distributed result must match the sequential kernel"
    );

    let trace = report.multiplies_per_step.expect("tracing was on");
    println!("Table II: block multiplications in each step ({grid}x{grid} grid, {choice} store)");
    let header: Vec<String> = (1..=trace.len()).map(|s| format!("{s:>4}")).collect();
    println!("step {}", header.join(""));
    let counts: Vec<String> = trace.iter().map(|c| format!("{c:>4}")).collect();
    println!("muls {}", counts.join(""));

    let per_component = grid as u64;
    let serial_steps = trace.len() as u64;
    println!(
        "\ntotal multiplies: {} ({} per component); serial multiply steps: {}; \
         BSP slowdown factor {}/{}",
        trace.iter().sum::<u64>(),
        per_component,
        serial_steps,
        serial_steps,
        per_component,
    );
    if grid == 3 {
        assert_eq!(trace, vec![1, 3, 6, 3, 6, 3, 5], "must reproduce Table II");
        println!("matches the paper's Table II exactly");
    }

    if let Some(path) = profile_path {
        let profiles = report.outcome.profiles.as_deref().unwrap_or(&[]);
        let json = format!(
            "{{\"store\":\"{choice}\",\"steps\":{}}}",
            step_profiles_json(profiles)
        );
        std::fs::write(&path, json).expect("write profile JSON");
        println!("wrote {} step profiles to {path}", profiles.len());
    }
    if let Some(bench_out) = bench_out {
        bench_out.record("table2/summa-sync", 1, None, &report.outcome);
    }
}
