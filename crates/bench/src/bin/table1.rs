//! **Table I** — Elapsed time (sec) for PageRank variants.
//!
//! Ranks the paper's three biased power-law graphs (scaled down by
//! `--scale`, default 100, for this machine) with the direct K/V EBSP
//! variant and the MapReduce-emulating variant, reporting avg ± stddev
//! over `--trials` trials of ranking the same randomly generated graph —
//! the same graph for both alternatives, as in the paper.
//!
//! Paper (on its 2013 testbed, 6-part debugging store):
//!
//! | Vertices | Edges     | Direct       | MapReduce    |
//! |---------:|----------:|-------------:|-------------:|
//! |  132,000 | 4,341,659 | 28.5 ± 0.4 s | 32.9 ± 0.7 s |
//! |  132,000 | 8,683,970 | 44.8 ± 0.5 s | 53.2 ± 0.4 s |
//! |  262,000 | 8,683,970 | 55.3 ± 0.6 s | 63.5 ± 0.7 s |
//!
//! Expected shape: direct 15–19% faster, because it has 50% fewer I/O and
//! synchronization rounds (verified exactly via the engine metrics printed
//! below).
//!
//! Usage: `cargo run --release -p ripple-bench --bin table1 --
//! [--scale 100] [--trials 5] [--iterations 10] [--parts 6]
//! [--store mem|simple|disk|net] [--data-dir path] [--profile steps.json]
//! [--bench-out BENCH_<date>.json] [--audit]`
//!
//! `--profile <path>` additionally runs one profiled direct ranking of the
//! first graph shape and writes its per-step profiles (per-part compute
//! times, barrier skew, store deltas) to `<path>` as JSON, tagged with the
//! backend: `{"store":"...","steps":[...]}`.
//!
//! `--bench-out <path>` appends a schema-versioned trajectory record for
//! the same profiled ranking — per superstep BSP cost terms `w`/`h`/`g`/`l`
//! plus run totals — to the JSON array at `<path>` (see `ripple-bench
//! compare`).
//!
//! `--audit` runs the property conformance auditor over both PageRank
//! variants (on the first graph shape) before timing anything and prints
//! each report: declared vs. observed properties, violations, inferred
//! stronger properties, and the execution-plan features they would unlock.

use std::cell::RefCell;
use std::sync::Arc;

use ripple_audit::{audit_job, AuditConfig};
use ripple_bench::trajectory::BenchOut;
use ripple_bench::{dispatch, row, timed_trials, Args, Stats, StoreBench, StoreChoice};
use ripple_core::{step_profiles_json, JobRunner};
use ripple_graph::generate::power_law_graph;
use ripple_graph::pagerank::{
    run_direct, run_direct_on, run_mapreduce_variant, structure_loader, DirectPageRank,
    MapReducePageRank, PageRankConfig,
};
use ripple_kv::KvStore;

struct Table1 {
    args: Args,
    parts: u32,
}

impl StoreBench for Table1 {
    fn run<S: KvStore>(self, choice: StoreChoice, make_store: impl FnMut() -> S) {
        run(&self.args, self.parts, choice, make_store);
    }
}

fn main() {
    let args = Args::capture();
    let parts = args.get("parts", 6u32);
    let bench = Table1 {
        args: args.clone(),
        parts,
    };
    dispatch(&args, "table1", parts, bench);
}

fn run<S: KvStore>(
    args: &Args,
    parts: u32,
    choice: StoreChoice,
    mut make_store: impl FnMut() -> S,
) {
    let scale = args.get("scale", 100u64);
    let trials = args.get("trials", 5usize);
    let iterations = args.get("iterations", 10u32);
    let profile_path = args.get_opt::<String>("profile");
    let bench_out = BenchOut::from_args(args, choice.name(), parts);
    let config = PageRankConfig {
        damping: 0.85,
        iterations,
    };

    // The paper's three graph shapes, scaled.
    let shapes: [(u64, u64); 3] = [
        (132_000, 4_341_659),
        (132_000, 8_683_970),
        (262_000, 8_683_970),
    ];

    if args.has("audit") {
        let (v_full, e_full) = shapes[0];
        let vertices = (v_full / scale).max(100) as u32;
        let edges = (e_full / scale).max(1000);
        let graph = power_law_graph(vertices, edges, 0.8, 0xA11CE);
        let n = u64::from(vertices);
        // The auditor re-creates the store per instrumented run; adapt the
        // bench's stateful factory to its `Fn` interface.
        let factory = RefCell::new(&mut make_store);
        let mk_store = || (factory.borrow_mut())();
        let audit = AuditConfig::default();

        let direct = audit_job(
            "table1/direct",
            &audit,
            mk_store,
            || Arc::new(DirectPageRank::new("pr_audit_d", n, config)),
            || vec![structure_loader(&graph)],
        )
        .expect("audit direct variant");
        println!("{}", direct.render());
        let mapreduce = audit_job(
            "table1/mapreduce",
            &audit,
            mk_store,
            || Arc::new(MapReducePageRank::new("pr_audit_mr", n, config)),
            || vec![structure_loader(&graph)],
        )
        .expect("audit MapReduce variant");
        println!("{}", mapreduce.render());
        assert!(
            direct.clean() && mapreduce.clean(),
            "PageRank property declarations failed their audit; \
             fix the declarations before trusting the timings"
        );
    }

    println!(
        "Table I: PageRank elapsed time (s), {iterations} iterations, \
         {parts}-part {choice} store, scale 1/{scale}, {trials} trials"
    );
    let widths = [9, 9, 16, 16, 8, 14, 14];
    row(
        &[
            "vertices".into(),
            "edges".into(),
            "direct (s)".into(),
            "mapreduce (s)".into(),
            "direct%".into(),
            "syncs d/mr".into(),
            "state-IO d/mr".into(),
        ],
        &widths,
    );

    let mut first_direct_mean = None;
    for (v_full, e_full) in shapes {
        let vertices = (v_full / scale).max(100) as u32;
        let edges = (e_full / scale).max(1000);
        let graph = power_law_graph(vertices, edges, 0.8, 0xA11CE);

        let mut direct_barriers = 0;
        let mut mr_barriers = 0;
        let mut direct_io = 0;
        let mut mr_io = 0;

        let direct_times = timed_trials(trials, |_| {
            let store = make_store();
            let out = run_direct(&store, "pr", &graph, config).expect("direct variant");
            direct_barriers = out.metrics.barriers;
            direct_io = out.metrics.state_reads + out.metrics.state_writes;
        });
        let mr_times = timed_trials(trials, |_| {
            let store = make_store();
            let out =
                run_mapreduce_variant(&store, "pr", &graph, config).expect("MapReduce variant");
            mr_barriers = out.metrics.barriers;
            mr_io = out.metrics.state_reads + out.metrics.state_writes;
        });

        let d = Stats::of(&direct_times);
        let m = Stats::of(&mr_times);
        if first_direct_mean.is_none() {
            first_direct_mean = Some(d.mean);
        }
        let pct = 100.0 * (m.mean - d.mean) / m.mean;
        row(
            &[
                vertices.to_string(),
                edges.to_string(),
                d.to_string(),
                m.to_string(),
                format!("{pct:.1}%"),
                format!("{direct_barriers}/{mr_barriers}"),
                format!("{direct_io}/{mr_io}"),
            ],
            &widths,
        );
    }
    println!(
        "\npaper shape: direct 15-19% faster with 50% fewer I/O and \
         synchronization rounds"
    );

    if profile_path.is_some() || bench_out.is_some() {
        let (v_full, e_full) = shapes[0];
        let vertices = (v_full / scale).max(100) as u32;
        let edges = (e_full / scale).max(1000);
        let graph = power_law_graph(vertices, edges, 0.8, 0xA11CE);
        let store = make_store();
        let mut runner = JobRunner::new(store);
        runner.profile(true);
        let out = run_direct_on(&runner, "pr_profiled", &graph, config).expect("profiled run");
        let profiles = out.profiles.as_deref().unwrap_or(&[]);
        if let Some(path) = profile_path {
            let json = format!(
                "{{\"store\":\"{choice}\",\"steps\":{}}}",
                step_profiles_json(profiles)
            );
            std::fs::write(&path, json).expect("write profile JSON");
            println!(
                "wrote {} step profiles of a direct ranking to {path}",
                profiles.len()
            );
        }
        if let Some(bench_out) = bench_out {
            bench_out.record("table1/pagerank-direct", trials, first_direct_mean, &out);
        }
    }
}
