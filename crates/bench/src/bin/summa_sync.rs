//! **§V-B experiment** — SUMMA matrix multiply with and without
//! synchronization.
//!
//! The paper ran M = N = 3 on WebSphere eXtreme Scale with 10 containers:
//! 8 trials with synchronization averaged 90 s (σ 0.5), 8 trials without
//! averaged 51 s (σ 0.5) — a 1.76× speedup, short of the 7/3 ≈ 2.33 bound
//! because of various overheads, but "a worthwhile improvement clearly
//! demonstrating the benefits of a programming framework that allows
//! synchronization to be controlled by the programmer".
//!
//! Usage: `cargo run --release -p ripple-bench --bin summa_sync --
//! [--grid 3] [--block 64] [--trials 8] [--parts 3]
//! [--store mem|simple|disk|net] [--data-dir path] [--profile profiles.json]
//! [--bench-out BENCH_<date>.json]`
//!
//! `--profile <path>` additionally runs one profiled multiply per mode and
//! writes both profile shapes to `<path>` as JSON: per-step profiles of
//! the synchronized run, per-worker busy/idle profiles of the
//! unsynchronized run — the two sides of the §V-B comparison — plus the
//! backend name and the synchronized run's whole-store counter deltas
//! (which for `--store disk` include WAL bytes and fsyncs).
//!
//! `--bench-out <path>` appends BSP cost trajectory records for both modes
//! to the JSON array at `<path>`: the synchronized record carries per
//! superstep `w`/`h`/`g`/`l`, the unsynchronized one only run totals
//! (no supersteps to decompose).  See `ripple-bench compare`.

use ripple_bench::trajectory::BenchOut;
use ripple_bench::{dispatch, timed_trials, Args, Stats, StoreBench, StoreChoice};
use ripple_core::{step_profiles_json, worker_profiles_json, ExecMode};
use ripple_kv::KvStore;
use ripple_summa::{multiply, DenseMatrix, SummaOptions};

struct SummaSync {
    args: Args,
}

impl StoreBench for SummaSync {
    fn run<S: KvStore>(self, choice: StoreChoice, make_store: impl FnMut() -> S) {
        run(&self.args, choice, make_store);
    }
}

fn main() {
    let args = Args::capture();
    let parts = args.get("parts", 3u32);
    let bench = SummaSync { args: args.clone() };
    dispatch(&args, "summa_sync", parts, bench);
}

fn run<S: KvStore>(args: &Args, choice: StoreChoice, mut make_store: impl FnMut() -> S) {
    let grid = args.get("grid", 3u32);
    let block = args.get("block", 64usize);
    let trials = args.get("trials", 8usize);
    let profile_path = args.get_opt::<String>("profile");
    let bench_out = BenchOut::from_args(args, choice.name(), args.get("parts", 3u32));
    let dim = grid as usize * block;

    let a = DenseMatrix::random(dim, dim, 1);
    let b = DenseMatrix::random(dim, dim, 2);
    let reference = a.multiply(&b);

    let mut run = |mode: ExecMode| -> (Stats, u32) {
        let mut barriers = 0;
        let times = timed_trials(trials, |_| {
            let store = make_store();
            let (c, report) = multiply(
                &store,
                &a,
                &b,
                &SummaOptions {
                    grid,
                    mode,
                    trace: false,
                    profile: false,
                },
            )
            .expect("SUMMA multiply");
            assert!(c.approx_eq(&reference, 1e-6));
            barriers = report.outcome.metrics.barriers;
        });
        (Stats::of(&times), barriers)
    };

    println!(
        "SUMMA {dim}x{dim} (grid {grid}x{grid}, block {block}), {trials} trials, \
         {choice} store"
    );
    let (with_sync, sync_barriers) = run(ExecMode::Synchronized);
    let (without, nosync_barriers) = run(ExecMode::Unsynchronized);
    println!("  with synchronization:    {with_sync} s  ({sync_barriers} barriers)");
    println!("  without synchronization: {without} s  ({nosync_barriers} barriers)");
    println!(
        "  speedup: {:.2}x (paper: 90/51 = 1.76x; upper bound 7/3 = 2.33x)",
        with_sync.mean / without.mean
    );

    if profile_path.is_some() || bench_out.is_some() {
        let mut profiled = |mode: ExecMode| {
            let store = make_store();
            let before = store.metrics();
            let (_, report) = multiply(
                &store,
                &a,
                &b,
                &SummaOptions {
                    grid,
                    mode,
                    trace: false,
                    profile: true,
                },
            )
            .expect("profiled SUMMA multiply");
            let delta = store.metrics() - before;
            (report.outcome, delta)
        };
        let (sync_out, sync_store) = profiled(ExecMode::Synchronized);
        let (nosync_out, _) = profiled(ExecMode::Unsynchronized);
        if let Some(bench_out) = &bench_out {
            bench_out.record(
                "summa_sync/synchronized",
                trials,
                Some(with_sync.mean),
                &sync_out,
            );
            bench_out.record(
                "summa_sync/unsynchronized",
                trials,
                Some(without.mean),
                &nosync_out,
            );
        }
        let Some(path) = profile_path else {
            return;
        };
        let json = format!(
            "{{\"store\":\"{choice}\",\
             \"store_totals\":{{\"local_ops\":{},\"remote_ops\":{},\
             \"bytes_marshalled\":{},\"wal_bytes\":{},\"fsyncs\":{},\
             \"replayed_records\":{}}},\
             \"synchronized_steps\":{},\"unsynchronized_workers\":{}}}",
            sync_store.local_ops,
            sync_store.remote_ops,
            sync_store.bytes_marshalled,
            sync_store.wal_bytes,
            sync_store.fsyncs,
            sync_store.replayed_records,
            step_profiles_json(sync_out.profiles.as_deref().unwrap_or(&[])),
            worker_profiles_json(nosync_out.worker_profiles.as_deref().unwrap_or(&[])),
        );
        std::fs::write(&path, json).expect("write profile JSON");
        println!("  wrote step + worker profiles to {path}");
    }
}
