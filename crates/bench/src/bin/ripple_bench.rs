//! `ripple-bench` — trajectory tooling for the bench suite.
//!
//! ```text
//! ripple-bench compare <baseline.json> <candidate.json> [--threshold 0.30]
//! ripple-bench show <trajectory.json>
//! ```
//!
//! `compare` pairs the latest record per `(workload, backend, parts)`
//! configuration in both files and fails (exit 1) when any tracked
//! metric — elapsed wall, trial mean, total `w`, total `l`, total
//! `h`-bytes — grew past `old * (1 + threshold) + slack`.  The slack
//! floors absorb timer noise near zero so a 2 ms workload cannot fail
//! CI for becoming 3 ms.  Exit 2 on usage or malformed documents.

use std::process::ExitCode;

use ripple_bench::json::Json;
use ripple_bench::trajectory::{compare, SCHEMA_VERSION};

fn usage() -> ExitCode {
    eprintln!("usage: ripple-bench compare <baseline.json> <candidate.json> [--threshold 0.30]");
    eprintln!("       ripple-bench show <trajectory.json>");
    ExitCode::from(2)
}

fn load(path: &str) -> Result<Json, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    Json::parse(&text).map_err(|e| format!("{path}: {e}"))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("compare") => run_compare(&args[1..]),
        Some("show") => run_show(&args[1..]),
        _ => usage(),
    }
}

fn run_compare(args: &[String]) -> ExitCode {
    let mut threshold = 0.30;
    let mut paths = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--threshold" {
            let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                return usage();
            };
            threshold = v;
        } else {
            paths.push(arg.as_str());
        }
    }
    let [old_path, new_path] = paths[..] else {
        return usage();
    };
    let (old, new) = match (load(old_path), load(new_path)) {
        (Ok(o), Ok(n)) => (o, n),
        (Err(e), _) | (_, Err(e)) => {
            eprintln!("ripple-bench: {e}");
            return ExitCode::from(2);
        }
    };
    let report = match compare(&old, &new, threshold) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("ripple-bench: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "comparing {new_path} against {old_path} (threshold {:.0}%)",
        threshold * 100.0
    );
    for line in &report.lines {
        println!("  {line}");
    }
    for key in &report.missing {
        println!("  {key}: missing from candidate (not a failure)");
    }
    if report.regressions.is_empty() {
        println!("OK: no tracked metric regressed");
        ExitCode::SUCCESS
    } else {
        for r in &report.regressions {
            eprintln!(
                "REGRESSION: {} {} {:.3} -> {:.3} (+{:.0}%)",
                r.key,
                r.metric,
                r.old,
                r.new,
                (r.new / r.old - 1.0) * 100.0
            );
        }
        ExitCode::FAILURE
    }
}

fn run_show(args: &[String]) -> ExitCode {
    let [path] = args else {
        return usage();
    };
    let doc = match load(path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("ripple-bench: {e}");
            return ExitCode::from(2);
        }
    };
    let Some(records) = doc.as_arr() else {
        eprintln!("ripple-bench: {path}: not a trajectory array");
        return ExitCode::from(2);
    };
    println!(
        "{path}: {} record(s), schema {SCHEMA_VERSION}",
        records.len()
    );
    for r in records {
        let steps = r.get("steps").and_then(Json::as_arr).map_or(0, <[_]>::len);
        println!(
            "  {} [{} parts {}] sha {} elapsed {:.3}s mean {:.3}s steps {} w {:.0}us h {:.0}B l {:.0}us",
            r.str("workload").unwrap_or("?"),
            r.str("backend").unwrap_or("?"),
            r.num("parts").unwrap_or(0.0),
            r.str("git_sha").unwrap_or("?"),
            r.num("elapsed_secs").unwrap_or(0.0),
            r.num("trial_mean_secs").unwrap_or(0.0),
            steps,
            r.get("totals").and_then(|t| t.num("w_us")).unwrap_or(0.0),
            r.get("totals").and_then(|t| t.num("h_bytes")).unwrap_or(0.0),
            r.get("totals").and_then(|t| t.num("l_us")).unwrap_or(0.0),
        );
    }
    ExitCode::SUCCESS
}
