//! **Serving-mode experiment** — a resident multi-tenant job server under
//! mixed load.
//!
//! The paper's runtime is a standing service that many jobs share (§III);
//! this bench stands one up in-process and measures it: a serving-mode
//! incremental SSSP tenant answers point queries from the last barrier
//! snapshot while graph mutations stream in, and a crowd of background
//! batch jobs contends for the same worker pool under the fair scheduler.
//! At the end the served distances are checked against a BFS oracle over
//! the mutated graph — concurrency must never change answers.
//!
//! Usage: `cargo run --release -p ripple-bench --bin serve --
//! [--scale 50] [--jobs 3] [--bg-steps 12] [--bg-keys 64]
//! [--mutations 400] [--queries 2000] [--trials 2] [--parts 6]
//! [--workers 4] [--store mem|simple|disk|net] [--data-dir path]
//! [--profile accounting.json] [--bench-out BENCH_<date>.json]`
//!
//! `--profile <path>` writes the server's per-job accounting JSON
//! (launches, steps, BSP cost terms, scheduler grants and queue wait per
//! tenant) for the last trial.
//!
//! `--bench-out <path>` appends a BSP cost trajectory record for one
//! profiled mutation wave driven through the server's gated resident
//! runner (see `ripple-bench compare`).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ripple_bench::trajectory::BenchOut;
use ripple_bench::{dispatch, Args, Stats, StoreBench, StoreChoice};
use ripple_core::{FnLoader, LoadSink, RunOptions, SimpleJob};
use ripple_graph::generate::{random_change_batch, random_undirected};
use ripple_graph::sssp::{bfs_oracle, distances_from_snapshot, SelectiveInstance};
use ripple_kv::KvStore;
use ripple_server::{JobServer, JobSpec, ServerConfig, ServingSssp};

type BgJob = SimpleJob<u32, u32, u32>;

struct Serve {
    args: Args,
    parts: u32,
}

impl StoreBench for Serve {
    fn run<S: KvStore>(self, choice: StoreChoice, make_store: impl FnMut() -> S) {
        run(&self.args, self.parts, choice, make_store);
    }
}

fn main() {
    let args = Args::capture();
    let parts = args.get("parts", 6u32);
    let bench = Serve {
        args: args.clone(),
        parts,
    };
    dispatch(&args, "serve", parts, bench);
}

/// A background tenant: `keys` counters that each tick down once per
/// step for `steps` steps — pure worker-pool pressure.
fn bg_job(name: &str) -> BgJob {
    SimpleJob::<u32, u32, u32>::builder(name)
        .compute(|ctx| {
            let v = ctx.read_state(0)?.unwrap_or(0);
            ctx.write_state(0, &v.saturating_sub(1))?;
            Ok(v > 1)
        })
        .build()
}

fn bg_loader(keys: u32, steps: u32) -> Box<dyn ripple_core::Loader<BgJob>> {
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<BgJob>| {
        for k in 0..keys {
            sink.state(0, k, steps)?;
            sink.enable(k)?;
        }
        Ok(())
    }))
}

fn run<S: KvStore>(
    args: &Args,
    parts: u32,
    choice: StoreChoice,
    mut make_store: impl FnMut() -> S,
) {
    let scale = args.get("scale", 50u64);
    let jobs = args.get("jobs", 3usize);
    let bg_steps = args.get("bg-steps", 12u32);
    let bg_keys = args.get("bg-keys", 64u32);
    let mutations = args.get("mutations", 400usize);
    let queries = args.get("queries", 2000u64);
    let trials = args.get("trials", 2usize);
    let workers = args.get("workers", 4usize);
    let profile_path = args.get_opt::<String>("profile");
    let bench_out = BenchOut::from_args(args, choice.name(), parts);

    let n = (100_000u64 / scale).max(500) as u32;
    let edges = 1_800_000u64 / scale;
    println!(
        "serve: {n}-vertex graph (~{edges} edges), 1 serving tenant + \
         {jobs} background jobs ({bg_keys} keys x {bg_steps} steps), \
         {mutations} streamed mutations, {queries} point queries, \
         {workers} workers, {parts} parts, {trials} trials, {choice} store"
    );

    let mut wall_times = Vec::new();
    let mut query_lat_us = Vec::new();
    let mut total_waves = 0u64;
    let mut last_accounting = String::new();

    for trial in 0..trials {
        let seed = 0x5E12E + trial as u64;
        let mut graph = random_undirected(n, edges, 0.8, seed);
        let source = 0;

        let store = make_store();
        let server = JobServer::single(ServerConfig::with_workers(workers), store);

        let t = std::time::Instant::now();
        let serving =
            ServingSssp::start(&server, "serve", JobSpec::new(parts), graph.graph(), source)
                .expect("start serving tenant");

        // Background tenants pile onto the same worker pool.
        let mut handles = Vec::new();
        for j in 0..jobs {
            let name = format!("bg{j}");
            let handle = server
                .submit(
                    &name,
                    JobSpec::new(parts),
                    Arc::new(bg_job(&name)),
                    RunOptions::new().loader(bg_loader(bg_keys, bg_steps)),
                )
                .expect("admit background job");
            handles.push(handle);
        }

        // A client hammers point queries while mutations stream in.
        let stop = Arc::new(AtomicBool::new(false));
        let client = {
            let serving = &serving;
            let stop = Arc::clone(&stop);
            std::thread::scope(|scope| {
                let stop_q = Arc::clone(&stop);
                let query_thread = scope.spawn(move || {
                    let stop = stop_q;
                    let mut lat_us = Vec::new();
                    let mut last_version = 0u64;
                    let mut q = 0u64;
                    while q < queries && !stop.load(Ordering::Relaxed) {
                        let v = ((q * 2_654_435_761) % u64::from(n)) as u32;
                        let t = std::time::Instant::now();
                        let answer = serving.query(v);
                        lat_us.push(t.elapsed().as_secs_f64() * 1e6);
                        assert!(
                            answer.version >= last_version,
                            "snapshot version went backwards"
                        );
                        last_version = answer.version;
                        q += 1;
                        if q.is_multiple_of(64) {
                            std::thread::yield_now();
                        }
                    }
                    lat_us
                });

                // Stream mutations in bursts on this thread.
                let mut sent = 0usize;
                let mut burst = 0u64;
                while sent < mutations {
                    let batch = random_change_batch(
                        n,
                        (mutations - sent).min(50),
                        0.8,
                        seed * 1000 + burst,
                    );
                    for c in &batch {
                        graph.apply(*c);
                    }
                    sent += serving.push_batch(&batch);
                    burst += 1;
                    std::thread::sleep(std::time::Duration::from_millis(1));
                }
                // Let the serving loop drain, then release the querier.
                while serving.pending() > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(2));
                }
                stop.store(true, Ordering::Relaxed);
                query_thread.join().expect("query thread")
            })
        };
        query_lat_us.extend(client);

        for handle in handles {
            let outcome = handle.wait().expect("background job");
            assert_eq!(outcome.steps, bg_steps, "background tenant ran short");
        }
        let report = serving.finish().expect("finish serving");
        total_waves += report.waves;
        wall_times.push(t.elapsed().as_secs_f64());

        // Concurrency must not have changed answers: check the final
        // table against a BFS oracle over the mutated graph.
        let oracle = bfs_oracle(&graph, source);
        let table = server
            .store(0)
            .lookup_table("serve__sssp")
            .expect("serving table");
        let snapshot = server.store(0).snapshot_table(&table).expect("snapshot");
        for (v, d) in distances_from_snapshot(&snapshot).expect("decode") {
            assert_eq!(d, oracle[v as usize], "served distance diverged at {v}");
        }

        last_accounting = server.accounting_json();
    }

    let wall = Stats::of(&wall_times);
    let lat = Stats::of(&query_lat_us);
    println!("  mixed load wall time: {wall} s ({total_waves} waves across {trials} trials)");
    println!(
        "  point query latency:  {:.1} us mean, {:.1} us max ({} queries)",
        lat.mean,
        query_lat_us.iter().cloned().fold(0.0, f64::max),
        query_lat_us.len()
    );

    if let Some(path) = profile_path {
        std::fs::write(&path, &last_accounting).expect("write accounting JSON");
        println!("  wrote per-job accounting to {path}");
    }

    if let Some(bench_out) = bench_out {
        // One profiled mutation wave through the server's gated resident
        // runner — the serving analogue of sssp_incremental's profiled
        // batch.
        let graph = random_undirected(n, edges, 0.8, 0x5E12E);
        let store = make_store();
        let server = JobServer::single(ServerConfig::with_workers(workers), store);
        let resident = server
            .admit_resident("profiled", JobSpec::new(parts))
            .expect("admit profiled resident");
        let (sel, _) = SelectiveInstance::initialize_on(
            resident.runner(),
            resident.store(),
            "profiled__sssp",
            graph.graph(),
            0,
        )
        .expect("profiled init");
        let batch = random_change_batch(n, (mutations / 4).max(10), 0.8, 0x5E12E * 7919);
        let out = sel
            .apply_batch_on(resident.runner(), &batch)
            .expect("profiled wave");
        bench_out.record("serve/wave", trials, Some(wall.mean), &out);
    }
}
