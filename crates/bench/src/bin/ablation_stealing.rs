//! **Ablation** — the *run-anywhere* optimization (§II-A): pinned versus
//! work-stealing execution of a skewed workload whose components all live
//! in one part.
//!
//! Pinned execution serializes the hot part's work on its single service
//! lane; with `rare-state` declared, the engine steals invocations onto
//! every part's lane, at the price of remote state access.  On a multicore
//! host the wall-clock gap approaches the part count; the invocation
//! distribution below shows the mechanism regardless of cores.
//!
//! Usage: `cargo run --release -p ripple-bench --bin ablation_stealing --
//! [--components 400] [--work-us 200] [--parts 4] [--trials 3]
//! [--bench-out BENCH_<date>.json]`
//!
//! `--bench-out <path>` runs one extra profiled launch per variant and
//! appends a BSP cost trajectory record for each (workloads
//! `ablation_stealing/pinned` and `ablation_stealing/stealing`) to the
//! JSON array at `<path>` (see `ripple-bench compare`).

use std::sync::Arc;

use ripple_bench::trajectory::BenchOut;
use ripple_bench::{timed_trials, Args, Stats};
use ripple_core::{
    CollectingExporter, ComputeContext, EbspError, Exporter, FnLoader, Job, JobProperties,
    JobRunner, LoadSink, RunOptions,
};
use ripple_kv::PartId;
use ripple_store_mem::MemStore;

struct SkewedWork {
    work_us: u64,
    rare_state: bool,
    trace: Arc<CollectingExporter<u32, u32>>, // (key, executing part)
}

impl Job for SkewedWork {
    type Key = u32;
    type State = u64;
    type Message = u64;
    type OutKey = u32;
    type OutValue = u32;

    fn state_tables(&self) -> Vec<String> {
        vec!["ablation".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            one_msg: true,
            no_continue: true,
            rare_state: self.rare_state,
            deterministic: true,
            ..JobProperties::default()
        }
    }

    fn direct_output(&self) -> Option<Arc<dyn Exporter<u32, u32>>> {
        Some(self.trace.clone() as Arc<dyn Exporter<u32, u32>>)
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let key = *ctx.key();
        let part = ctx.part().0;
        ctx.output(key, part)?;
        std::thread::sleep(std::time::Duration::from_micros(self.work_us));
        let payload = ctx.messages().first().copied().unwrap_or(0);
        ctx.write_state(0, &(payload + 1))?;
        Ok(false)
    }
}

fn keys_in_part(parts: u32, part: u32, count: usize) -> Vec<u32> {
    (0u32..)
        .filter(|k| ripple_core::key_to_routed(k).part_for(parts) == PartId(part))
        .take(count)
        .collect()
}

fn main() {
    let args = Args::capture();
    let components = args.get("components", 400usize);
    let work_us = args.get("work-us", 200u64);
    let parts = args.get("parts", 4u32);
    let trials = args.get("trials", 3usize);
    let bench_out = BenchOut::from_args(&args, "mem", parts);

    println!(
        "run-anywhere ablation: {components} components, all homed in part 0 \
         of {parts}, {work_us}us of work each, {trials} trials"
    );

    for (label, rare_state) in [("pinned   ", false), ("stealing ", true)] {
        let mut distribution = vec![0u64; parts as usize];
        let times = timed_trials(trials, |_| {
            let store = MemStore::builder().default_parts(parts).build();
            let trace = Arc::new(CollectingExporter::new());
            let job = Arc::new(SkewedWork {
                work_us,
                rare_state,
                trace: Arc::clone(&trace),
            });
            let keys = keys_in_part(parts, 0, components);
            JobRunner::new(store)
                .launch(
                    job,
                    RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                        move |sink: &mut dyn LoadSink<SkewedWork>| {
                            for k in keys {
                                sink.message(k, 1)?;
                            }
                            Ok(())
                        },
                    ))]),
                )
                .expect("ablation run");
            distribution = vec![0u64; parts as usize];
            for (_, part) in trace.take() {
                distribution[part as usize] += 1;
            }
        });
        let stats = Stats::of(&times);
        println!("  {label}: {stats} s, invocations per part {distribution:?}");

        if let Some(bench_out) = &bench_out {
            let store = MemStore::builder().default_parts(parts).build();
            let trace = Arc::new(CollectingExporter::new());
            let job = Arc::new(SkewedWork {
                work_us,
                rare_state,
                trace,
            });
            let keys = keys_in_part(parts, 0, components);
            let mut runner = JobRunner::new(store);
            runner.profile(true);
            let out = runner
                .launch(
                    job,
                    RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                        move |sink: &mut dyn LoadSink<SkewedWork>| {
                            for k in keys {
                                sink.message(k, 1)?;
                            }
                            Ok(())
                        },
                    ))]),
                )
                .expect("profiled ablation run");
            let workload = if rare_state {
                "ablation_stealing/stealing"
            } else {
                "ablation_stealing/pinned"
            };
            bench_out.record(workload, trials, Some(stats.mean), &out);
        }
    }
}
