//! The persistent perf trajectory: schema-versioned `BENCH_<date>.json`
//! records, emitted by every bench bin behind `--bench-out`, compared by
//! `ripple-bench compare`, and gated in CI.
//!
//! A trajectory file is a JSON **array** of records, appended to in
//! place — one record per `(workload, backend, parts)` configuration per
//! run, so the same file accumulates a history and the *latest* record
//! per configuration is the configuration's current state.  Each record
//! carries the measured BSP cost decomposition of one profiled run (per
//! superstep `w`, `h`, `g`, `l` — see [`ripple_core::CostModel`]) plus
//! run totals and provenance (git SHA, timestamp, schema version), so
//! the next PR can prove its win — or be caught regressing — against
//! numbers that survive the PR boundary.
//!
//! Record schema (`"schema": 1`):
//!
//! ```json
//! {
//!   "schema": 1,
//!   "workload": "table1/pagerank-direct",
//!   "backend": "mem", "parts": 4, "trials": 5,
//!   "git_sha": "0a829d6", "unix_time": 1754700000,
//!   "elapsed_secs": 0.812, "trial_mean_secs": 0.790,
//!   "steps": [{"step":1,"w_us":..,"h_bytes":..,"h_msgs":..,
//!              "g_bytes_per_sec":..|null,"l_us":..}, ...],
//!   "totals": {"w_us":..,"h_bytes":..,"h_msgs":..,"l_us":..,
//!              "predicted_us":..,"g_bytes_per_sec":..|null,"l_mean_us":..},
//!   "run": {"steps":..,"invocations":..,"messages_sent":..,
//!           "bytes_marshalled":..,"net_bytes_in":..,"net_bytes_out":..,
//!           "retry_bytes":..,"rpcs":..,"retries":..,"recoveries":..}
//! }
//! ```

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ripple_core::{CostModel, RunOutcome};

use crate::json::Json;
use crate::Args;

/// Version stamp written into every record; bump on breaking schema
/// changes so `compare` can refuse mixed documents intelligibly.
pub const SCHEMA_VERSION: u64 = 1;

/// The short git SHA of the working tree, or `"unknown"` outside a repo.
pub fn git_sha() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

/// One trajectory record: the cost decomposition and run totals of one
/// profiled bench run.
#[derive(Debug, Clone)]
pub struct TrajectoryRecord {
    /// Which experiment and variant, e.g. `"table1/pagerank-direct"`.
    pub workload: String,
    /// Backend name as spelled on the command line (`mem`, `disk`, ...).
    pub backend: String,
    /// Part count the run used.
    pub parts: u32,
    /// Timed trials behind `trial_mean_secs` (1 when only the profiled
    /// run was measured).
    pub trials: usize,
    /// Wall seconds of the profiled run the cost model was derived from.
    pub elapsed_secs: f64,
    /// Mean wall seconds over the bin's timed trials (equals
    /// `elapsed_secs` when there were none).
    pub trial_mean_secs: f64,
    /// The derived BSP cost model.
    pub cost: CostModel,
    /// Run totals, copied from the run's metrics.
    pub run: RunTotals,
}

/// The run-total counters a record carries (a stable subset of
/// `RunMetrics`, spelled out so the schema does not drift silently).
#[derive(Debug, Clone, Copy, Default)]
pub struct RunTotals {
    /// Supersteps executed.
    pub steps: u64,
    /// Compute invocations.
    pub invocations: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Bytes marshalled across part boundaries.
    pub bytes_marshalled: u64,
    /// Network bytes received.
    pub net_bytes_in: u64,
    /// Network bytes sent.
    pub net_bytes_out: u64,
    /// Network bytes attributed to retry/reconnect traffic.
    pub retry_bytes: u64,
    /// RPC round trips.
    pub rpcs: u64,
    /// Engine-level retries.
    pub retries: u64,
    /// Recoveries performed.
    pub recoveries: u64,
}

impl TrajectoryRecord {
    /// Builds a record from a profiled run's outcome.  `trial_mean_secs`
    /// carries the bin's timed-trial mean when it ran any; the cost model
    /// derives from the outcome's step profiles (empty for
    /// unsynchronized runs, which have no supersteps).
    pub fn from_outcome(
        workload: &str,
        backend: &str,
        parts: u32,
        trials: usize,
        trial_mean_secs: Option<f64>,
        outcome: &RunOutcome,
    ) -> Self {
        let profiles = outcome.profiles.as_deref().unwrap_or(&[]);
        let elapsed_secs = outcome.metrics.elapsed.as_secs_f64();
        let m = &outcome.metrics;
        Self {
            workload: workload.to_owned(),
            backend: backend.to_owned(),
            parts,
            trials,
            elapsed_secs,
            trial_mean_secs: trial_mean_secs.unwrap_or(elapsed_secs),
            cost: CostModel::derive(profiles),
            run: RunTotals {
                steps: u64::from(m.steps),
                invocations: m.invocations,
                messages_sent: m.messages_sent,
                bytes_marshalled: m.store.bytes_marshalled,
                net_bytes_in: m.store.net_bytes_in,
                net_bytes_out: m.store.net_bytes_out,
                retry_bytes: m.store.retry_bytes,
                rpcs: m.store.rpcs,
                retries: m.retries,
                recoveries: u64::from(m.recoveries),
            },
        }
    }

    /// Serializes the record as one JSON object.
    pub fn to_json(&self) -> String {
        let unix_time = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"schema\":{SCHEMA_VERSION},\"workload\":\"{}\",\"backend\":\"{}\",\
             \"parts\":{},\"trials\":{},\"git_sha\":\"{}\",\"unix_time\":{unix_time},\
             \"elapsed_secs\":{:.6},\"trial_mean_secs\":{:.6},\"steps\":[",
            self.workload,
            self.backend,
            self.parts,
            self.trials,
            git_sha(),
            self.elapsed_secs,
            self.trial_mean_secs,
        );
        for (i, s) in self.cost.steps.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"step\":{},\"w_us\":{:.3},\"h_bytes\":{},\"h_msgs\":{},\
                 \"g_bytes_per_sec\":{},\"l_us\":{:.3}}}",
                s.step,
                s.w.as_secs_f64() * 1e6,
                s.h_bytes,
                s.h_msgs,
                json_opt_f64(s.g_bytes_per_sec),
                s.l.as_secs_f64() * 1e6,
            );
        }
        let _ = write!(
            out,
            "],\"totals\":{{\"w_us\":{:.3},\"h_bytes\":{},\"h_msgs\":{},\"l_us\":{:.3},\
             \"predicted_us\":{:.3},\"g_bytes_per_sec\":{},\"l_mean_us\":{:.3}}},\
             \"run\":{{\"steps\":{},\"invocations\":{},\"messages_sent\":{},\
             \"bytes_marshalled\":{},\"net_bytes_in\":{},\"net_bytes_out\":{},\
             \"retry_bytes\":{},\"rpcs\":{},\"retries\":{},\"recoveries\":{}}}}}",
            self.cost.total_w().as_secs_f64() * 1e6,
            self.cost.total_h_bytes(),
            self.cost.total_h_msgs(),
            self.cost.total_l().as_secs_f64() * 1e6,
            self.cost.predicted().as_secs_f64() * 1e6,
            json_opt_f64(self.cost.g_bytes_per_sec),
            self.cost.l_mean.as_secs_f64() * 1e6,
            self.run.steps,
            self.run.invocations,
            self.run.messages_sent,
            self.run.bytes_marshalled,
            self.run.net_bytes_in,
            self.run.net_bytes_out,
            self.run.retry_bytes,
            self.run.rpcs,
            self.run.retries,
            self.run.recoveries,
        );
        out
    }

    /// Appends the record to the trajectory array at `path`, creating the
    /// file (`[record]`) if it does not exist.  The append is textual —
    /// strip the closing `]`, add `,record]` — so existing records are
    /// preserved byte-for-byte.
    ///
    /// # Panics
    ///
    /// Panics if the file exists but is not a JSON array, or on I/O
    /// errors — a bench bin has nothing better to do with a broken
    /// trajectory than stop and say so.
    pub fn append_to(&self, path: &Path) {
        let record = self.to_json();
        let doc = match std::fs::read_to_string(path) {
            Err(_) => format!("[{record}]\n"),
            Ok(existing) => {
                let trimmed = existing.trim_end();
                assert!(
                    trimmed.starts_with('[') && trimmed.ends_with(']'),
                    "{} is not a JSON array trajectory",
                    path.display()
                );
                let body = trimmed[..trimmed.len() - 1].trim_end();
                if body == "[" {
                    format!("[{record}]\n")
                } else {
                    format!("{body},\n{record}]\n")
                }
            }
        };
        std::fs::write(path, doc).unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
    }
}

fn json_opt_f64(v: Option<f64>) -> String {
    match v {
        Some(v) if v.is_finite() => format!("{v:.3}"),
        _ => "null".to_owned(),
    }
}

/// The `--bench-out <path>` hook every bench bin shares: present when the
/// flag was given, it records profiled outcomes into the trajectory file.
#[derive(Debug, Clone)]
pub struct BenchOut {
    path: PathBuf,
    backend: String,
    parts: u32,
}

impl BenchOut {
    /// Parses `--bench-out`; `None` when the flag is absent.
    pub fn from_args(args: &Args, backend: &str, parts: u32) -> Option<Self> {
        args.get_opt::<String>("bench-out").map(|path| Self {
            path: PathBuf::from(path),
            backend: backend.to_owned(),
            parts,
        })
    }

    /// Derives the cost model from `outcome` and appends one record.
    pub fn record(
        &self,
        workload: &str,
        trials: usize,
        trial_mean_secs: Option<f64>,
        outcome: &RunOutcome,
    ) {
        let record = TrajectoryRecord::from_outcome(
            workload,
            &self.backend,
            self.parts,
            trials,
            trial_mean_secs,
            outcome,
        );
        record.append_to(&self.path);
        println!(
            "bench-out: {} [{} parts {}] {} -> {}",
            record.workload,
            record.backend,
            record.parts,
            record.cost,
            self.path.display()
        );
    }
}

/// One metric regression found by [`compare`].
#[derive(Debug, Clone, PartialEq)]
pub struct Regression {
    /// The `(workload, backend, parts)` configuration key.
    pub key: String,
    /// Which tracked metric regressed.
    pub metric: &'static str,
    /// Baseline value.
    pub old: f64,
    /// Candidate value.
    pub new: f64,
}

/// The outcome of comparing two trajectory documents.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Human-readable per-configuration comparison lines.
    pub lines: Vec<String>,
    /// Metrics that regressed past the threshold.
    pub regressions: Vec<Regression>,
    /// Configurations present in the baseline but missing from the
    /// candidate (reported, not failed — workloads come and go).
    pub missing: Vec<String>,
}

/// Tracked metrics: key path into the record, display name, and the
/// absolute slack added on top of the relative threshold (absorbs timer
/// noise near zero — a 2 ms step must not fail CI for becoming 3 ms).
const TRACKED: &[(&str, &str, f64)] = &[
    ("elapsed_secs", "elapsed", 5e-3),
    ("trial_mean_secs", "trial-mean", 5e-3),
    ("totals.w_us", "w", 5e3),
    ("totals.l_us", "l", 5e3),
    ("totals.h_bytes", "h-bytes", 1024.0),
];

fn lookup(record: &Json, path: &str) -> Option<f64> {
    match path.split_once('.') {
        None => record.num(path),
        Some((head, rest)) => record.get(head).and_then(|v| lookup(v, rest)),
    }
}

fn record_key(record: &Json) -> Option<String> {
    Some(format!(
        "{}|{}|{}",
        record.str("workload")?,
        record.str("backend")?,
        record.num("parts")? as u64,
    ))
}

/// The latest record per configuration key, in first-seen key order.
fn latest_by_key(doc: &Json) -> Result<Vec<(String, Json)>, String> {
    let records = doc.as_arr().ok_or("trajectory is not a JSON array")?;
    let mut out: Vec<(String, Json)> = Vec::new();
    for record in records {
        let schema = record.num("schema").unwrap_or(0.0) as u64;
        if schema != SCHEMA_VERSION {
            return Err(format!(
                "record has schema {schema}, this tool speaks {SCHEMA_VERSION}"
            ));
        }
        let key = record_key(record).ok_or("record missing workload/backend/parts")?;
        match out.iter_mut().find(|(k, _)| *k == key) {
            Some((_, slot)) => *slot = record.clone(),
            None => out.push((key, record.clone())),
        }
    }
    Ok(out)
}

/// Compares two trajectory documents: for every configuration present in
/// both, each tracked metric regresses when
/// `new > old * (1 + threshold) + slack`.
///
/// # Errors
///
/// On documents that are not schema-1 trajectory arrays.
pub fn compare(old: &Json, new: &Json, threshold: f64) -> Result<CompareReport, String> {
    let old_latest = latest_by_key(old)?;
    let new_latest = latest_by_key(new)?;
    let mut report = CompareReport::default();
    for (key, old_record) in &old_latest {
        let Some((_, new_record)) = new_latest.iter().find(|(k, _)| k == key) else {
            report.missing.push(key.clone());
            continue;
        };
        let mut cells = Vec::new();
        for (path, name, slack) in TRACKED {
            let (Some(o), Some(n)) = (lookup(old_record, path), lookup(new_record, path)) else {
                continue;
            };
            let regressed = n > o * (1.0 + threshold) + slack;
            let ratio = if o > 0.0 { n / o } else { 1.0 };
            cells.push(format!(
                "{name} {o:.3}->{n:.3} ({ratio:+.0}%{})",
                if regressed { " REGRESSED" } else { "" },
                ratio = (ratio - 1.0) * 100.0,
            ));
            if regressed {
                report.regressions.push(Regression {
                    key: key.clone(),
                    metric: name,
                    old: o,
                    new: n,
                });
            }
        }
        report.lines.push(format!("{key}: {}", cells.join(", ")));
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_core::{RunMetrics, StepProfile};
    use std::time::Duration;

    fn outcome_with_steps(elapsed_ms: u64, steps: Vec<StepProfile>) -> RunOutcome {
        let metrics = RunMetrics {
            elapsed: Duration::from_millis(elapsed_ms),
            steps: steps.len() as u32,
            invocations: 7,
            ..Default::default()
        };
        RunOutcome {
            steps: steps.len() as u32,
            aborted: false,
            aggregates: Default::default(),
            metrics,
            mode: ripple_core::ExecMode::Synchronized,
            profiles: Some(steps),
            worker_profiles: None,
        }
    }

    fn sample_step(step: u32) -> StepProfile {
        StepProfile {
            step,
            compute_wall: Duration::from_millis(10),
            barrier_skew: Duration::from_millis(1),
            store: ripple_kv::StoreMetrics {
                bytes_marshalled: 512,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn record_emits_valid_schema_json() {
        let out = outcome_with_steps(25, vec![sample_step(1), sample_step(2)]);
        let rec = TrajectoryRecord::from_outcome("t/x", "mem", 4, 3, Some(0.02), &out);
        let json = Json::parse(&rec.to_json()).expect("record parses");
        assert_eq!(json.num("schema"), Some(SCHEMA_VERSION as f64));
        assert_eq!(json.str("workload"), Some("t/x"));
        assert_eq!(json.str("backend"), Some("mem"));
        assert_eq!(json.num("parts"), Some(4.0));
        assert_eq!(json.get("steps").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(lookup(&json, "totals.h_bytes"), Some(1024.0));
        assert_eq!(lookup(&json, "run.invocations"), Some(7.0));
        assert!(json.str("git_sha").is_some());
    }

    #[test]
    fn append_accumulates_an_array() {
        let dir = std::env::temp_dir().join(format!("ripple-traj-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let out = outcome_with_steps(25, vec![sample_step(1)]);
        let rec = TrajectoryRecord::from_outcome("t/x", "mem", 4, 1, None, &out);
        rec.append_to(&path);
        rec.append_to(&path);
        let doc = Json::parse(&std::fs::read_to_string(&path).unwrap()).expect("array parses");
        assert_eq!(doc.as_arr().unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn doc(records: &[&str]) -> Json {
        Json::parse(&format!("[{}]", records.join(","))).unwrap()
    }

    fn rec(workload: &str, elapsed: f64, w_us: f64, h: u64) -> String {
        format!(
            "{{\"schema\":1,\"workload\":\"{workload}\",\"backend\":\"mem\",\"parts\":4,\
             \"elapsed_secs\":{elapsed},\"trial_mean_secs\":{elapsed},\
             \"totals\":{{\"w_us\":{w_us},\"h_bytes\":{h},\"l_us\":0.0}}}}"
        )
    }

    #[test]
    fn compare_flags_regressions_past_threshold() {
        let old = doc(&[&rec("a", 1.0, 500_000.0, 10_000)]);
        let ok = doc(&[&rec("a", 1.1, 520_000.0, 10_000)]);
        let report = compare(&old, &ok, 0.25).unwrap();
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);

        let bad = doc(&[&rec("a", 1.6, 500_000.0, 10_000)]);
        let report = compare(&old, &bad, 0.25).unwrap();
        assert_eq!(report.regressions.len(), 2); // elapsed + trial-mean
        assert_eq!(report.regressions[0].metric, "elapsed");

        let bloated = doc(&[&rec("a", 1.0, 500_000.0, 40_000)]);
        let report = compare(&old, &bloated, 0.25).unwrap();
        assert_eq!(report.regressions.len(), 1);
        assert_eq!(report.regressions[0].metric, "h-bytes");
    }

    #[test]
    fn compare_uses_latest_record_per_key_and_reports_missing() {
        let old = doc(&[
            &rec("a", 9.0, 0.0, 0),
            &rec("a", 1.0, 0.0, 0), // latest baseline for key a
            &rec("gone", 1.0, 0.0, 0),
        ]);
        let new = doc(&[&rec("a", 1.05, 0.0, 0)]);
        let report = compare(&old, &new, 0.25).unwrap();
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
        assert_eq!(report.missing, vec!["gone|mem|4".to_owned()]);
        assert_eq!(report.lines.len(), 1);
    }

    #[test]
    fn compare_rejects_unknown_schema() {
        let old = doc(&["{\"schema\":99,\"workload\":\"a\",\"backend\":\"m\",\"parts\":1}"]);
        assert!(compare(&old, &doc(&[]), 0.25).is_err());
    }

    #[test]
    fn small_absolute_noise_is_not_a_regression() {
        // 2 ms -> 6 ms is 3x but under the 5 ms slack: not a regression.
        let old = doc(&[&rec("a", 0.002, 0.0, 0)]);
        let new = doc(&[&rec("a", 0.006, 0.0, 0)]);
        let report = compare(&old, &new, 0.25).unwrap();
        assert!(report.regressions.is_empty(), "{:?}", report.regressions);
    }
}
