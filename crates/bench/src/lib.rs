//! Shared harness for the experiment regenerators: one binary per table or
//! figure of the paper's evaluation (see `DESIGN.md` §5 and
//! `EXPERIMENTS.md`), plus small statistics and CLI helpers.
//!
//! Absolute numbers will not match the paper's 2013 testbed; the harness
//! reports the *shape* — who wins, by what factor — alongside the engine's
//! own cost metrics (synchronizations, I/O rounds, invocations), which are
//! hardware-independent.

use std::time::{Duration, Instant};

use ripple_kv::KvStore;

pub mod json;
pub mod trajectory;
use ripple_store_disk::DiskStore;
use ripple_store_mem::MemStore;
use ripple_store_net::{ChaosCluster, LoopbackCluster, NetConfig, NetFaultPlan};
use ripple_store_simple::SimpleStore;

/// Mean and (sample) standard deviation of a set of measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stats {
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation (n-1 denominator; 0 for n < 2).
    pub stddev: f64,
    /// Number of samples.
    pub n: usize,
}

impl Stats {
    /// Computes stats over raw samples.
    pub fn of(samples: &[f64]) -> Stats {
        let n = samples.len();
        assert!(n > 0, "stats need at least one sample");
        let mean = samples.iter().sum::<f64>() / n as f64;
        let stddev = if n < 2 {
            0.0
        } else {
            let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n as f64 - 1.0);
            var.sqrt()
        };
        Stats { mean, stddev, n }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // A single sample has no spread to report: print the mean alone
        // instead of a meaningless (once upon a time NaN) "± 0.000".
        if self.n < 2 {
            write!(f, "{:.3}", self.mean)
        } else {
            write!(f, "{:.3} ± {:.3}", self.mean, self.stddev)
        }
    }
}

/// Runs `f` for `trials` timed trials, returning per-trial seconds.
pub fn timed_trials(trials: usize, mut f: impl FnMut(usize)) -> Vec<f64> {
    (0..trials)
        .map(|t| {
            let start = Instant::now();
            f(t);
            start.elapsed().as_secs_f64()
        })
        .collect()
}

/// Seconds as a `Duration`, for printing.
pub fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

/// Minimal flag parser: `--name value` pairs from `std::env::args`.
#[derive(Debug, Clone)]
pub struct Args {
    raw: Vec<String>,
}

impl Args {
    /// Captures the process arguments.
    pub fn capture() -> Self {
        Self {
            raw: std::env::args().skip(1).collect(),
        }
    }

    /// From an explicit vector (for tests).
    pub fn from_vec(raw: Vec<String>) -> Self {
        Self { raw }
    }

    /// The value following `--name`, parsed.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if the value does not parse.
    pub fn get<T: std::str::FromStr>(&self, name: &str, default: T) -> T
    where
        T::Err: std::fmt::Display,
    {
        let flag = format!("--{name}");
        match self.raw.iter().position(|a| *a == flag) {
            None => default,
            Some(i) => {
                let v = self
                    .raw
                    .get(i + 1)
                    .unwrap_or_else(|| panic!("{flag} needs a value"));
                v.parse().unwrap_or_else(|e| panic!("{flag} {v}: {e}"))
            }
        }
    }

    /// The value following `--name`, parsed, or `None` when the flag is
    /// absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if the value is missing or unparsable.
    pub fn get_opt<T: std::str::FromStr>(&self, name: &str) -> Option<T>
    where
        T::Err: std::fmt::Display,
    {
        let flag = format!("--{name}");
        self.raw.iter().position(|a| *a == flag).map(|i| {
            let v = self
                .raw
                .get(i + 1)
                .unwrap_or_else(|| panic!("{flag} needs a value"));
            v.parse().unwrap_or_else(|e| panic!("{flag} {v}: {e}"))
        })
    }

    /// Whether the bare flag `--name` is present.
    pub fn has(&self, name: &str) -> bool {
        self.raw.iter().any(|a| a == &format!("--{name}"))
    }
}

/// Which K/V backend a bench binary runs against
/// (`--store mem|simple|disk|net`).
///
/// Every experiment binary accepts the flag; `mem` (the default) and
/// `simple` are in-memory, `disk` is the WAL-backed durable store and
/// additionally honours `--data-dir <path>` for where its files live, and
/// `net` runs against a loopback cluster of TCP part servers (one server
/// per part), so every store operation crosses a real socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreChoice {
    /// `ripple-store-mem`: sharded, replicated, production-shaped.
    Mem,
    /// `ripple-store-simple`: the paper's single-lock debugging store.
    Simple,
    /// `ripple-store-disk`: durable, WAL-backed, resumable.
    Disk,
    /// `ripple-store-net`: networked client over loopback part servers.
    Net,
}

impl StoreChoice {
    /// Parses `--store` (defaulting to `mem`).
    ///
    /// # Panics
    ///
    /// Panics with a usage message on an unknown backend name.
    pub fn from_args(args: &Args) -> StoreChoice {
        match args.get_opt::<String>("store").as_deref() {
            None | Some("mem") => StoreChoice::Mem,
            Some("simple") => StoreChoice::Simple,
            Some("disk") => StoreChoice::Disk,
            Some("net") => StoreChoice::Net,
            Some(other) => panic!("--store {other}: expected mem, simple, disk, or net"),
        }
    }

    /// The backend name as spelled on the command line (and recorded in
    /// profile JSON).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StoreChoice::Mem => "mem",
            StoreChoice::Simple => "simple",
            StoreChoice::Disk => "disk",
            StoreChoice::Net => "net",
        }
    }
}

/// A bench body that is generic over the backing store, for [`dispatch`].
///
/// Rust closures cannot be generic over types, so the `--store` dispatch
/// hands the chosen backend to an object implementing this trait instead
/// of a callback.
pub trait StoreBench {
    /// Runs the experiment.  `make_store` yields a fresh, empty store of
    /// the chosen backend on every call — one per trial instance.
    fn run<S: KvStore>(self, choice: StoreChoice, make_store: impl FnMut() -> S);
}

/// Parses `--store` / `--data-dir` and invokes `bench` with a factory for
/// the chosen backend — the dispatch every experiment bin used to
/// duplicate.
///
/// `disk` factories give each instance its own subdirectory of
/// [`disk_data_dir`] (experiments may keep two stores live at once);
/// `net` factories spawn a fresh loopback cluster with one part server
/// per part, kept alive until the bench body returns.  The `net` backend
/// additionally honours `--replicas <n>` (replicated part servers with
/// failover, default 1) and `--chaos-seed <seed>` (route traffic through
/// a deterministic fault-injecting proxy; mutually exclusive with
/// `--replicas`).
pub fn dispatch<B: StoreBench>(args: &Args, bin: &str, parts: u32, bench: B) {
    let choice = StoreChoice::from_args(args);
    match choice {
        StoreChoice::Mem => bench.run(choice, || MemStore::builder().default_parts(parts).build()),
        StoreChoice::Simple => bench.run(choice, || SimpleStore::new(parts)),
        StoreChoice::Disk => {
            let dir = disk_data_dir(args, bin);
            let mut instance = 0u64;
            bench.run(choice, move || {
                instance += 1;
                let dir = dir.join(format!("i{instance}"));
                reset_dir(&dir);
                DiskStore::builder()
                    .default_parts(parts)
                    .open(&dir)
                    .expect("open disk store")
            });
        }
        StoreChoice::Net => {
            let replicas: usize = args.get("replicas", 1);
            let chaos_seed: Option<u64> = args.get_opt("chaos-seed");
            assert!(replicas >= 1, "--replicas needs at least 1");
            assert!(
                chaos_seed.is_none() || replicas == 1,
                "--chaos-seed and --replicas cannot be combined"
            );
            if let Some(seed) = chaos_seed {
                println!(
                    "chaos: seed {seed} (delay 1% 200us, corrupt 0.2% of gets, \
                     sever 0.1% of puts); replay with --chaos-seed {seed}"
                );
                let mut clusters = Vec::new();
                bench.run(choice, move || {
                    let plan = mild_chaos_plan(seed);
                    let cluster =
                        ChaosCluster::spawn(parts as usize, parts, &plan, &NetConfig::default());
                    let store = cluster.store.clone();
                    clusters.push(cluster);
                    store
                });
            } else {
                let mut clusters = Vec::new();
                bench.run(choice, move || {
                    let cluster = if replicas > 1 {
                        LoopbackCluster::spawn_replicated(
                            parts as usize,
                            replicas,
                            parts,
                            &NetConfig::default(),
                        )
                    } else {
                        LoopbackCluster::spawn(parts as usize, parts)
                    };
                    let store = cluster.store.clone();
                    clusters.push(cluster);
                    store
                });
            }
        }
    }
}

/// The default fault mix for `--chaos-seed`: rare enough that runs finish,
/// frequent enough that the retry and reconnect paths actually fire.
/// Delays hit every frame; the destructive faults are scoped to the hot
/// state read/write plane, where the engines retry — an unscoped sever
/// can land on a one-shot control frame and fail the run outright.
pub fn mild_chaos_plan(seed: u64) -> NetFaultPlan {
    NetFaultPlan::seeded(seed)
        .delay(10_000, Duration::from_micros(200))
        .corrupt(2_000)
        .on_kind(ripple_store_net::proto::REQ_GET)
        .sever(1_000)
        .on_kind(ripple_store_net::proto::REQ_PUT)
}

impl std::fmt::Display for StoreChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The directory a `--store disk` run keeps its files in: `--data-dir`
/// if given, otherwise a per-process directory under the system temp dir.
pub fn disk_data_dir(args: &Args, bin: &str) -> std::path::PathBuf {
    match args.get_opt::<String>("data-dir") {
        Some(dir) => std::path::PathBuf::from(dir),
        None => std::env::temp_dir().join(format!("ripple-bench-{bin}-{}", std::process::id())),
    }
}

/// Clears and recreates `dir` so a trial starts from an empty store.
///
/// # Panics
///
/// Panics if the directory cannot be recreated.
pub fn reset_dir(dir: &std::path::Path) {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir)
        .unwrap_or_else(|e| panic!("create data dir {}: {e}", dir.display()));
}

/// Prints an aligned table row.
pub fn row(cells: &[String], widths: &[usize]) {
    let line: Vec<String> = cells
        .iter()
        .zip(widths)
        .map(|(c, w)| format!("{c:>w$}", w = w))
        .collect();
    println!("{}", line.join("  "));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_mean_and_stddev() {
        let s = Stats::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.stddev - 2.138).abs() < 1e-3);
        assert_eq!(s.n, 8);
    }

    #[test]
    fn single_sample_has_zero_stddev() {
        let s = Stats::of(&[3.5]);
        assert_eq!(s.stddev, 0.0);
        assert!(s.stddev.is_finite(), "n == 1 must not produce NaN");
    }

    #[test]
    fn single_sample_displays_mean_only() {
        assert_eq!(Stats::of(&[3.5]).to_string(), "3.500");
        assert_eq!(Stats::of(&[1.0, 3.0]).to_string(), "2.000 ± 1.414");
        assert!(!Stats::of(&[3.5]).to_string().contains("NaN"));
    }

    #[test]
    fn store_choice_parses_all_backends() {
        for (flag, want) in [
            ("mem", StoreChoice::Mem),
            ("simple", StoreChoice::Simple),
            ("disk", StoreChoice::Disk),
            ("net", StoreChoice::Net),
        ] {
            let args = Args::from_vec(vec!["--store".into(), flag.into()]);
            let choice = StoreChoice::from_args(&args);
            assert_eq!(choice, want);
            assert_eq!(choice.name(), flag);
        }
        assert_eq!(
            StoreChoice::from_args(&Args::from_vec(vec![])),
            StoreChoice::Mem
        );
    }

    #[test]
    fn dispatch_spawns_fresh_stores_per_call() {
        struct Body;
        impl StoreBench for Body {
            fn run<S: KvStore>(self, choice: StoreChoice, mut make_store: impl FnMut() -> S) {
                assert_eq!(choice, StoreChoice::Net);
                for _ in 0..2 {
                    let store = make_store();
                    // A fresh store must accept the same table name again.
                    store
                        .create_table(ripple_kv::TableSpec::new("t").parts(2))
                        .expect("fresh store");
                }
            }
        }
        let args = Args::from_vec(vec!["--store".into(), "net".into()]);
        dispatch(&args, "bench-test", 2, Body);
    }

    #[test]
    fn args_parse_flags() {
        let args = Args::from_vec(vec!["--scale".into(), "10".into(), "--verbose".into()]);
        assert_eq!(args.get("scale", 1u32), 10);
        assert_eq!(args.get("trials", 7u32), 7);
        assert!(args.has("verbose"));
        assert!(!args.has("quiet"));
    }

    #[test]
    fn args_get_opt_distinguishes_absent_flags() {
        let args = Args::from_vec(vec!["--profile".into(), "out.json".into()]);
        assert_eq!(
            args.get_opt::<String>("profile").as_deref(),
            Some("out.json")
        );
        assert_eq!(args.get_opt::<u32>("scale"), None);
    }

    #[test]
    fn timed_trials_counts() {
        let times = timed_trials(3, |_| {});
        assert_eq!(times.len(), 3);
    }
}
