//! Engine micro-ablations: costs of the design choices DESIGN.md calls
//! out — the wire codec, spill batching vs per-message puts (implicit in
//! the transport design), combiner on/off, and queue-set implementations.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_core::{
    ComputeContext, EbspError, FnLoader, Job, JobRunner, LoadSink, QueueKind, RunOptions,
};
use ripple_store_mem::MemStore;

/// A fan-in job: `senders` components each send `per` messages to one sink.
struct FanIn {
    per: u32,
    combine: bool,
}

impl Job for FanIn {
    type Key = u32;
    type State = i64;
    type Message = i64;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["fanin".to_owned()]
    }

    fn combine_messages(&self, _k: &u32, a: &i64, b: &i64) -> Option<i64> {
        self.combine.then_some(a + b)
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if *ctx.key() == u32::MAX {
            let total: i64 = ctx.messages().iter().sum();
            ctx.write_state(0, &total)?;
        } else {
            for i in 0..self.per {
                ctx.send(u32::MAX, i64::from(i));
            }
        }
        Ok(false)
    }
}

fn bench_combiner(c: &mut Criterion) {
    let mut group = c.benchmark_group("combiner_ablation");
    group.sample_size(10);
    for combine in [false, true] {
        group.bench_with_input(
            BenchmarkId::new("fan_in", if combine { "combined" } else { "raw" }),
            &combine,
            |b, &combine| {
                b.iter(|| {
                    let store = MemStore::builder().default_parts(4).build();
                    let job = Arc::new(FanIn { per: 32, combine });
                    JobRunner::new(store)
                        .launch(
                            job,
                            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                                |sink: &mut dyn LoadSink<FanIn>| {
                                    for k in 0..64u32 {
                                        sink.enable(k)?;
                                    }
                                    Ok(())
                                },
                            ))]),
                        )
                        .unwrap()
                });
            },
        );
    }
    group.finish();
}

/// A message-driven relay ring used to compare queue-set implementations.
struct Relay {
    hops: u32,
    ring: u32,
}

impl Job for Relay {
    type Key = u32;
    type State = ();
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["relay".to_owned()]
    }

    fn properties(&self) -> ripple_core::JobProperties {
        ripple_core::JobProperties {
            incremental: true,
            deterministic: true,
            ..Default::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        for hop in ctx.take_messages() {
            if hop < self.hops {
                ctx.send((me + 1) % self.ring, hop + 1);
            }
        }
        Ok(false)
    }
}

fn bench_queue_kinds(c: &mut Criterion) {
    let mut group = c.benchmark_group("queue_kind_ablation");
    group.sample_size(10);
    for (label, kind) in [("channel", QueueKind::Channel), ("table", QueueKind::Table)] {
        group.bench_function(BenchmarkId::new("relay_ring", label), |b| {
            b.iter(|| {
                let store = MemStore::builder().default_parts(4).build();
                let job = Arc::new(Relay {
                    hops: 200,
                    ring: 16,
                });
                JobRunner::new(store)
                    .queue_kind(kind)
                    .launch(
                        job,
                        RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                            |sink: &mut dyn LoadSink<Relay>| sink.message(0, 0),
                        ))]),
                    )
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_wire(c: &mut Criterion) {
    let mut group = c.benchmark_group("wire_codec");
    let value: Vec<(u32, f64, Vec<u32>)> = (0..256)
        .map(|i| (i, f64::from(i) * 0.5, (0..8).collect()))
        .collect();
    group.bench_function("encode_256_records", |b| {
        b.iter(|| ripple_wire::to_wire(&value));
    });
    let bytes = ripple_wire::to_wire(&value);
    group.bench_function("decode_256_records", |b| {
        b.iter(|| ripple_wire::from_wire::<Vec<(u32, f64, Vec<u32>)>>(&bytes).unwrap());
    });
    group.finish();
}

criterion_group!(benches, bench_combiner, bench_queue_kinds, bench_wire);
criterion_main!(benches);
