//! Criterion bench behind Table I: direct vs MapReduce-variant PageRank on
//! a small biased power-law graph.  The paper-scale regenerator is
//! `src/bin/table1.rs`; this keeps the comparison continuously measurable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_graph::generate::power_law_graph;
use ripple_graph::pagerank::{run_direct, run_mapreduce_variant, PageRankConfig};
use ripple_store_mem::MemStore;

fn bench_pagerank(c: &mut Criterion) {
    let mut group = c.benchmark_group("pagerank_table1");
    group.sample_size(10);
    let config = PageRankConfig {
        damping: 0.85,
        iterations: 5,
    };
    for (vertices, edges) in [(500u32, 5_000u64), (500, 10_000)] {
        let graph = power_law_graph(vertices, edges, 0.8, 7);
        group.bench_with_input(
            BenchmarkId::new("direct", format!("{vertices}v{edges}e")),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let store = MemStore::builder().default_parts(6).build();
                    run_direct(&store, "pr", graph, config).unwrap()
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("mapreduce", format!("{vertices}v{edges}e")),
            &graph,
            |b, graph| {
                b.iter(|| {
                    let store = MemStore::builder().default_parts(6).build();
                    run_mapreduce_variant(&store, "pr", graph, config).unwrap()
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pagerank);
criterion_main!(benches);
