//! Criterion bench behind the §V-B experiment: SUMMA with vs without
//! synchronization barriers (paper-scale regenerator:
//! `src/bin/summa_sync.rs`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ripple_core::ExecMode;
use ripple_store_mem::MemStore;
use ripple_summa::{multiply, DenseMatrix, SummaOptions};

fn bench_summa(c: &mut Criterion) {
    let mut group = c.benchmark_group("summa_sync_vs_nosync");
    group.sample_size(10);
    for block in [16usize, 32] {
        let dim = 3 * block;
        let a = DenseMatrix::random(dim, dim, 1);
        let b = DenseMatrix::random(dim, dim, 2);
        for (label, mode) in [
            ("synchronized", ExecMode::Synchronized),
            ("unsynchronized", ExecMode::Unsynchronized),
        ] {
            group.bench_with_input(
                BenchmarkId::new(label, format!("{dim}x{dim}")),
                &(&a, &b),
                |bench, (a, b)| {
                    bench.iter(|| {
                        let store = MemStore::builder().default_parts(3).build();
                        multiply(
                            &store,
                            a,
                            b,
                            &SummaOptions {
                                grid: 3,
                                mode,
                                ..SummaOptions::default()
                            },
                        )
                        .unwrap()
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_summa);
criterion_main!(benches);
