//! Criterion bench behind the §V-C experiment: reacting to a mutation
//! batch with selective enablement vs full scans (paper-scale regenerator:
//! `src/bin/sssp_incremental.rs`).

use criterion::{criterion_group, criterion_main, Criterion};
use ripple_graph::generate::{random_change_batch, random_undirected};
use ripple_graph::sssp::{FullScanInstance, SelectiveInstance};
use ripple_store_mem::MemStore;

const N: u32 = 1000;
const EDGES: u64 = 9_000;

fn bench_sssp(c: &mut Criterion) {
    let mut group = c.benchmark_group("sssp_incremental");
    group.sample_size(10);

    group.bench_function("selective_batch", |b| {
        b.iter_batched(
            || {
                let graph = random_undirected(N, EDGES, 0.8, 3);
                let store = MemStore::builder().default_parts(6).build();
                let (inst, _) =
                    SelectiveInstance::initialize(&store, "sel", graph.graph(), 0).unwrap();
                let batch = random_change_batch(N, 20, 0.8, 11);
                (inst, batch)
            },
            |(inst, batch)| inst.apply_batch(&batch).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });

    group.bench_function("fullscan_batch", |b| {
        b.iter_batched(
            || {
                let graph = random_undirected(N, EDGES, 0.8, 3);
                let store = MemStore::builder().default_parts(6).build();
                let (inst, _) =
                    FullScanInstance::initialize(&store, "fs", graph.graph(), 0).unwrap();
                let batch = random_change_batch(N, 20, 0.8, 11);
                (inst, batch)
            },
            |(inst, batch)| inst.apply_batch(&batch).unwrap(),
            criterion::BatchSize::LargeInput,
        );
    });

    group.finish();
}

criterion_group!(benches, bench_sssp);
criterion_main!(benches);
