//! Tests of the Graph EBSP (Pregel-like) layer and the algorithms written
//! against it — the Figure 2 layering in action.

use ripple_graph::algorithms::{bfs, connected_components, degree_counts};
use ripple_graph::generate::{Graph, GraphChange, MutableGraph};
use ripple_graph::{VertexId, INF};
use ripple_store_mem::MemStore;

fn store() -> MemStore {
    MemStore::builder().default_parts(4).build()
}

/// Builds a symmetric graph from undirected edge pairs.
fn undirected(n: u32, edges: &[(u32, u32)]) -> Graph {
    let mut m = MutableGraph::new(n);
    for &(u, v) in edges {
        m.apply(GraphChange::AddEdge(u, v));
    }
    m.graph().clone()
}

#[test]
fn components_of_disjoint_cliques() {
    // Components {0,1,2}, {3,4}, {5}.
    let g = undirected(6, &[(0, 1), (1, 2), (0, 2), (3, 4)]);
    let labels = connected_components(&store(), "cc", &g).unwrap();
    assert_eq!(labels, vec![(0, 0), (1, 0), (2, 0), (3, 3), (4, 3), (5, 5)]);
}

#[test]
fn components_of_long_path() {
    let edges: Vec<(u32, u32)> = (0..49).map(|i| (i, i + 1)).collect();
    let g = undirected(50, &edges);
    let labels = connected_components(&store(), "cc", &g).unwrap();
    assert!(labels.iter().all(|(_, l)| *l == 0));
}

#[test]
fn components_on_random_graph_match_union_find() {
    let mut m = MutableGraph::new(200);
    let batch = ripple_graph::generate::random_change_batch(200, 150, 0.8, 99);
    for c in batch {
        if let GraphChange::AddEdge(u, v) = c {
            m.apply(GraphChange::AddEdge(u, v));
        }
    }
    let g = m.graph().clone();
    let got = connected_components(&store(), "cc", &g).unwrap();

    // Union-find oracle.
    let mut parent: Vec<u32> = (0..200).collect();
    fn find(parent: &mut Vec<u32>, x: u32) -> u32 {
        if parent[x as usize] != x {
            let root = find(parent, parent[x as usize]);
            parent[x as usize] = root;
        }
        parent[x as usize]
    }
    for (u, adj) in g.iter() {
        for &v in adj {
            let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
            if ru != rv {
                parent[ru.max(rv) as usize] = ru.min(rv);
            }
        }
    }
    // Min-label per component == root when roots are minimal; normalize
    // both sides by mapping each vertex to its component's minimum member.
    let mut min_of_root: std::collections::HashMap<u32, u32> = Default::default();
    for v in 0..200 {
        let r = find(&mut parent, v);
        let e = min_of_root.entry(r).or_insert(v);
        *e = (*e).min(v);
    }
    for (v, label) in got {
        let r = find(&mut parent, v);
        assert_eq!(label, min_of_root[&r], "vertex {v}");
    }
}

#[test]
fn bfs_matches_oracle_and_is_frontier_driven() {
    let edges: Vec<(u32, u32)> = (0..29).map(|i| (i, i + 1)).collect();
    let g = undirected(30, &edges);
    let dists = bfs(&store(), "bfs", &g, 0).unwrap();
    for (v, d) in dists {
        assert_eq!(d, v, "path graph distance = index");
    }
}

#[test]
fn bfs_leaves_unreachable_at_infinity() {
    let g = undirected(5, &[(0, 1), (2, 3)]);
    let dists = bfs(&store(), "bfs", &g, 0).unwrap();
    assert_eq!(dists, vec![(0, 0), (1, 1), (2, INF), (3, INF), (4, INF)]);
}

#[test]
fn degree_counts_match_structure() {
    let g = undirected(4, &[(0, 1), (0, 2), (0, 3)]);
    let degrees = degree_counts(&store(), "deg", &g).unwrap();
    assert_eq!(degrees, vec![(0, 3), (1, 1), (2, 1), (3, 1)]);
}

#[test]
fn vertex_programs_halt_and_wake_on_messages() {
    // BFS on a star: supersteps == eccentricity + constant, NOT vertex
    // count — vertices sleep until the frontier reaches them.
    let star_edges: Vec<(u32, u32)> = (1..100).map(|v| (0, v)).collect();
    let g = undirected(100, &star_edges);
    let s = store();
    let dists = bfs(&s, "bfs", &g, 0).unwrap();
    assert!(dists.iter().skip(1).all(|(_, d)| *d == 1));
}

#[test]
fn empty_graph_component_labels() {
    let g = Graph::empty(3);
    let labels = connected_components(&store(), "cc", &g).unwrap();
    assert_eq!(labels, vec![(0, 0), (1, 1), (2, 2)]);
}

#[test]
fn messages_to_missing_vertices_are_dropped() {
    // A directed edge to a vertex that is never loaded must not wedge the
    // run.
    let mut g = Graph::empty(2);
    g.add_edge(0, 1);
    let sub: Graph = {
        // Only load vertex 0 by building a 1-vertex graph with a dangling
        // edge reference. Graph::empty(2) trick: craft manually.
        let mut only = Graph::empty(2);
        only.add_edge(0, 1);
        only
    };
    let _ = g;
    // BFS from 0 reaches the loaded vertex 1 normally; this mainly checks
    // nothing panics when ids exceed loaded vertices.
    let dists = bfs(&store(), "bfs", &sub, 0).unwrap();
    assert_eq!(dists.len(), 2);
}

#[test]
fn vertex_ids_are_u32() {
    let _: VertexId = 0u32;
}

/// Pregel features on the vertex layer: aggregators and topology mutation.
mod pregel_features {
    use std::sync::Arc;

    use ripple_core::{AggValue, Aggregate, EbspError, JobRunner, RunOptions, SumI64};
    use ripple_graph::generate::Graph;
    use ripple_graph::vertex::{
        read_vertex_values, GraphLoader, VertexContext, VertexJob, VertexProgram,
    };
    use ripple_store_mem::MemStore;

    /// Every vertex reports its degree into an aggregator, then halts; the
    /// total equals the edge count.
    struct DegreeSum;

    impl VertexProgram for DegreeSum {
        type Value = u32;
        type Message = ();

        fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
            vec![("edges".to_owned(), Arc::new(SumI64))]
        }

        fn compute(&self, ctx: &mut VertexContext<'_, '_, Self>) -> Result<(), EbspError> {
            if ctx.superstep() == 1 {
                ctx.aggregate("edges", AggValue::I64(ctx.edges().len() as i64))?;
                return Ok(()); // stay active one more step to read it back
            }
            let total = ctx.aggregate_prev("edges").expect("fed last step");
            ctx.set_value(total.as_i64() as u32);
            ctx.vote_to_halt();
            Ok(())
        }
    }

    #[test]
    fn vertex_aggregators_flow_through() {
        let mut g = Graph::empty(5);
        for v in 1..5 {
            g.add_edge(0, v);
        }
        let store = MemStore::builder().default_parts(2).build();
        let job = Arc::new(VertexJob::new(Arc::new(DegreeSum), "deg_sum"));
        let outcome = JobRunner::new(store.clone())
            .launch(
                job,
                RunOptions::new().loaders(vec![Box::new(GraphLoader::new(g, |_| 0))]),
            )
            .unwrap();
        // Aggregators are step-scoped: step 2 fed nothing, so the final
        // snapshot holds the identity...
        assert_eq!(outcome.aggregates.get("edges"), Some(AggValue::I64(0)));
        // ...but every vertex read step 1's total (4) during step 2.
        let values = read_vertex_values::<_, u32>(&store, "deg_sum").unwrap();
        assert!(values.iter().all(|(_, v)| *v == 4), "{values:?}");
    }

    /// Topology mutation: vertex 0 rewires itself, and its later sends
    /// follow the new edges.
    struct Rewire;

    impl VertexProgram for Rewire {
        type Value = u32;
        type Message = u32;

        fn compute(&self, ctx: &mut VertexContext<'_, '_, Self>) -> Result<(), EbspError> {
            match (ctx.id(), ctx.superstep()) {
                (0, 1) => {
                    assert!(ctx.remove_edge(1));
                    assert!(!ctx.remove_edge(1), "already gone");
                    ctx.add_edge(2);
                    ctx.send_to_neighbors(7);
                    ctx.vote_to_halt();
                }
                _ => {
                    let got = ctx.messages().first().copied().unwrap_or(0);
                    ctx.set_value(got);
                    ctx.vote_to_halt();
                }
            }
            Ok(())
        }
    }

    #[test]
    fn topology_mutations_redirect_messages() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        let store = MemStore::builder().default_parts(2).build();
        let job = Arc::new(VertexJob::new(Arc::new(Rewire), "rewire"));
        JobRunner::new(store.clone())
            .launch(
                job,
                RunOptions::new().loaders(vec![Box::new(GraphLoader::new(g, |_| 0))]),
            )
            .unwrap();
        let values = read_vertex_values::<_, u32>(&store, "rewire").unwrap();
        assert_eq!(values[1].1, 0, "vertex 1 was unplugged");
        assert_eq!(values[2].1, 7, "vertex 2 got the message on the new edge");
    }
}

mod triangles {
    use ripple_graph::algorithms::triangle_count;
    use ripple_graph::generate::{random_change_batch, Graph, GraphChange, MutableGraph};
    use ripple_store_mem::MemStore;

    fn store() -> MemStore {
        MemStore::builder().default_parts(4).build()
    }

    fn brute_force(g: &Graph) -> u64 {
        let n = g.vertex_count();
        let mut count = 0;
        for v in 0..n {
            for &u in g.neighbors(v) {
                if u <= v {
                    continue;
                }
                for &w in g.neighbors(u) {
                    if w > u && g.has_edge(v, w) {
                        count += 1;
                    }
                }
            }
        }
        count
    }

    #[test]
    fn counts_a_single_triangle() {
        let mut m = MutableGraph::new(4);
        for (u, v) in [(0, 1), (1, 2), (0, 2), (2, 3)] {
            m.apply(GraphChange::AddEdge(u, v));
        }
        let total = triangle_count(&store(), "tri", m.graph()).unwrap();
        assert_eq!(total, 1);
    }

    #[test]
    fn counts_k4() {
        // K4 has 4 triangles.
        let mut m = MutableGraph::new(4);
        for u in 0..4 {
            for v in (u + 1)..4 {
                m.apply(GraphChange::AddEdge(u, v));
            }
        }
        let total = triangle_count(&store(), "tri", m.graph()).unwrap();
        assert_eq!(total, 4);
    }

    #[test]
    fn triangle_free_graph_counts_zero() {
        let mut m = MutableGraph::new(6);
        // A 6-cycle: no triangles.
        for i in 0..6 {
            m.apply(GraphChange::AddEdge(i, (i + 1) % 6));
        }
        let total = triangle_count(&store(), "tri", m.graph()).unwrap();
        assert_eq!(total, 0);
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        for seed in 0..4u64 {
            let mut m = MutableGraph::new(40);
            for c in random_change_batch(40, 120, 0.8, seed) {
                if let GraphChange::AddEdge(u, v) = c {
                    m.apply(GraphChange::AddEdge(u, v));
                }
            }
            let want = brute_force(m.graph());
            let got = triangle_count(&store(), "tri", m.graph()).unwrap();
            assert_eq!(got, want, "seed {seed}");
        }
    }
}
