//! Both PageRank variants must match the sequential reference exactly (up
//! to float tolerance), conserve rank mass, and exhibit the cost shape
//! Table I measures: the MapReduce variant does twice the synchronizations
//! and a per-iteration round of state I/O the direct variant avoids.

use ripple_graph::generate::power_law_graph;
use ripple_graph::pagerank::{
    read_ranks, reference_ranks, run_direct, run_mapreduce_variant, PageRankConfig,
};
use ripple_store_mem::MemStore;

fn store() -> MemStore {
    MemStore::builder().default_parts(6).build()
}

const CFG: PageRankConfig = PageRankConfig {
    damping: 0.85,
    iterations: 10,
};

fn assert_close(distributed: &[(u32, f64)], reference: &[f64]) {
    assert_eq!(distributed.len(), reference.len());
    for (v, rank) in distributed {
        let want = reference[*v as usize];
        assert!(
            (rank - want).abs() < 1e-10,
            "vertex {v}: {rank} vs reference {want}"
        );
    }
}

#[test]
fn direct_variant_matches_reference() {
    let graph = power_law_graph(300, 3000, 0.8, 11);
    let s = store();
    let outcome = run_direct(&s, "pr", &graph, CFG).unwrap();
    let ranks = read_ranks(&s, "pr").unwrap();
    assert_close(&ranks, &reference_ranks(&graph, CFG));
    // One synchronization per iteration (plus the initial distribution
    // step).
    assert_eq!(outcome.metrics.barriers, CFG.iterations + 1);
    let sum: f64 = ranks.iter().map(|(_, r)| r).sum();
    assert!((sum - 1.0).abs() < 1e-9, "rank mass conserved: {sum}");
}

#[test]
fn mapreduce_variant_matches_reference() {
    let graph = power_law_graph(300, 3000, 0.8, 11);
    let s = store();
    let outcome = run_mapreduce_variant(&s, "pr", &graph, CFG).unwrap();
    let ranks = read_ranks(&s, "pr").unwrap();
    assert_close(&ranks, &reference_ranks(&graph, CFG));
    // Two synchronizations per iteration.
    assert_eq!(outcome.metrics.barriers, 2 * CFG.iterations);
}

#[test]
fn variants_agree_with_each_other() {
    let graph = power_law_graph(200, 4000, 0.9, 23);
    let s1 = store();
    run_direct(&s1, "pr", &graph, CFG).unwrap();
    let direct = read_ranks(&s1, "pr").unwrap();
    let s2 = store();
    run_mapreduce_variant(&s2, "pr", &graph, CFG).unwrap();
    let mr = read_ranks(&s2, "pr").unwrap();
    for ((v1, r1), (v2, r2)) in direct.iter().zip(mr.iter()) {
        assert_eq!(v1, v2);
        assert!((r1 - r2).abs() < 1e-12, "vertex {v1}: {r1} vs {r2}");
    }
}

#[test]
fn mapreduce_variant_does_strictly_more_work() {
    let graph = power_law_graph(200, 2000, 0.8, 5);
    let s1 = store();
    let direct = run_direct(&s1, "pr", &graph, CFG).unwrap();
    let s2 = store();
    let mr = run_mapreduce_variant(&s2, "pr", &graph, CFG).unwrap();

    // 50% fewer synchronization rounds (asymptotically).
    assert!(direct.metrics.barriers < mr.metrics.barriers);
    // The MR variant round-trips state through the table every iteration;
    // the direct variant touches the state table only at the start and
    // end.
    assert_eq!(
        direct.metrics.state_reads,
        u64::from(graph.vertex_count()),
        "direct: one read per vertex, first step only"
    );
    assert_eq!(
        direct.metrics.state_writes,
        u64::from(graph.vertex_count()),
        "direct: one write per vertex, last step only"
    );
    assert_eq!(
        mr.metrics.state_reads,
        u64::from(graph.vertex_count()) * u64::from(CFG.iterations),
        "MR variant: one read per vertex per iteration"
    );
    assert_eq!(
        mr.metrics.state_writes,
        u64::from(graph.vertex_count()) * u64::from(CFG.iterations),
        "MR variant: one write per vertex per iteration"
    );
    // And strictly more compute invocations.
    assert!(direct.metrics.invocations < mr.metrics.invocations);
}

#[test]
fn dangling_heavy_graph_still_conserves_mass() {
    // Many dangling vertices: only 0..10 have out-edges.
    let mut graph = ripple_graph::generate::Graph::empty(50);
    for v in 0..10 {
        graph.add_edge(v, v + 20);
    }
    let s = store();
    run_direct(&s, "pr", &graph, CFG).unwrap();
    let ranks = read_ranks(&s, "pr").unwrap();
    let sum: f64 = ranks.iter().map(|(_, r)| r).sum();
    assert!((sum - 1.0).abs() < 1e-9, "sum {sum}");
    assert_close(&ranks, &reference_ranks(&graph, CFG));
}

#[test]
fn zero_iterations_is_a_noop_ranking() {
    let graph = power_law_graph(50, 200, 0.8, 3);
    let cfg = PageRankConfig {
        damping: 0.85,
        iterations: 0,
    };
    let s = store();
    run_direct(&s, "pr", &graph, cfg).unwrap();
    let ranks = read_ranks(&s, "pr").unwrap();
    for (_, r) in ranks {
        assert!((r - 1.0 / 50.0).abs() < 1e-12);
    }
}
