//! Cross-restart resume: a durable SSSP solve hard-interrupted between
//! barriers picks up from its last durable commit after the store is
//! reopened, and finishes in exactly the state an uninterrupted solve
//! reaches.

use ripple_core::EbspError;
use ripple_graph::generate::Graph;
use ripple_graph::sssp::SelectiveInstance;
use ripple_kv::SyncPolicy;
use ripple_store_disk::{testutil::TempDir, DiskStore};

/// A path graph: the solve needs one step per hop, so a line of `n`
/// vertices guarantees a long multi-barrier run to interrupt.
fn line_graph(n: u32) -> Graph {
    let mut g = Graph::empty(n);
    for v in 0..n.saturating_sub(1) {
        g.add_edge(v, v + 1);
        g.add_edge(v + 1, v);
    }
    g
}

fn open(dir: &std::path::Path) -> DiskStore {
    DiskStore::builder()
        .default_parts(4)
        .sync_policy(SyncPolicy::EveryN(8))
        .open(dir)
        .expect("open disk store")
}

#[test]
fn interrupted_durable_solve_resumes_to_identical_distances() {
    let n = 40;
    let graph = line_graph(n);

    // Reference: one uninterrupted durable solve.
    let (expected, full_metrics) = {
        let tmp = TempDir::new("durable-ref");
        let store = open(tmp.path());
        let (sssp, metrics) =
            SelectiveInstance::initialize_durable(&store, "sssp", &graph, 0, 1, None)
                .expect("uninterrupted solve");
        assert!(
            metrics.durable_barriers > 0,
            "durable runs must commit barriers"
        );
        (sssp.distances().expect("read distances"), metrics)
    };
    assert_eq!(expected.len(), n as usize);
    assert_eq!(expected[n as usize - 1], (n - 1, n - 1), "line distances");

    // Interrupted run: the step limit aborts the solve mid-way, well past
    // several barriers but far from done...
    let tmp = TempDir::new("durable-resume");
    {
        let store = open(tmp.path());
        let err = match SelectiveInstance::<DiskStore>::initialize_durable(
            &store,
            "sssp",
            &graph,
            0,
            1,
            Some(5),
        ) {
            Err(e) => e,
            Ok(_) => panic!("5 steps cannot finish a 40-hop line"),
        };
        assert!(
            matches!(err, EbspError::StepLimitExceeded { limit: 5 }),
            "unexpected error: {err}"
        );
        // ...and the store is dropped without a flush: a crash, as far as
        // the files are concerned.
    }

    // Reopen and run again: the journal is found, the logs rewind to the
    // last durable barrier, the loader is skipped, and the solve finishes.
    let store = open(tmp.path());
    let (sssp, metrics) = SelectiveInstance::initialize_durable(&store, "sssp", &graph, 0, 1, None)
        .expect("resumed solve");
    assert!(metrics.durable_barriers > 0);
    // Step numbering is absolute, so the resumed run ends on the same
    // final step — but it must have *done* strictly less than the full
    // solve: fewer barrier commits and fewer compute invocations.
    assert_eq!(metrics.steps, full_metrics.steps);
    assert!(
        metrics.durable_barriers < full_metrics.durable_barriers,
        "resume re-committed every barrier ({} vs {})",
        metrics.durable_barriers,
        full_metrics.durable_barriers
    );
    assert!(
        metrics.invocations < full_metrics.invocations,
        "resume redid the whole solve ({} vs {} invocations)",
        metrics.invocations,
        full_metrics.invocations
    );
    assert_eq!(
        sssp.distances().expect("read distances"),
        expected,
        "resumed distances must be identical to an uninterrupted solve"
    );

    // Running once more after success starts fresh (journal cleared) and
    // converges immediately to the same answer.
    let (sssp, _) = SelectiveInstance::initialize_durable(&store, "sssp2", &graph, 0, 1, None)
        .expect("fresh solve on the same store");
    assert_eq!(sssp.distances().expect("read distances"), expected);
}

#[test]
fn durable_solve_on_one_instance_can_resume_without_reopen() {
    // The resume path does not require a restart: an interrupted run can
    // continue on the same live store instance.
    let graph = line_graph(24);
    let tmp = TempDir::new("durable-live");
    let store = open(tmp.path());
    let err = match SelectiveInstance::<DiskStore>::initialize_durable(
        &store,
        "sssp",
        &graph,
        0,
        2,
        Some(4),
    ) {
        Err(e) => e,
        Ok(_) => panic!("4 steps cannot finish a 24-hop line"),
    };
    assert!(matches!(err, EbspError::StepLimitExceeded { limit: 4 }));

    let (sssp, _) = SelectiveInstance::initialize_durable(&store, "sssp", &graph, 0, 2, None)
        .expect("live resume");
    let dists = sssp.distances().expect("read distances");
    for (v, d) in dists {
        assert_eq!(d, v, "line graph distance from source 0");
    }
}
