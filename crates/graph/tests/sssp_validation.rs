//! Both SSSP variants must agree with a BFS oracle after every mutation
//! batch — including batches with deletions (the "harder case") — and the
//! selective variant must do work proportional to the change, not to the
//! graph.

use ripple_graph::generate::{random_change_batch, random_undirected, GraphChange, MutableGraph};
use ripple_graph::sssp::{bfs_oracle, FullScanInstance, SelectiveInstance};
use ripple_graph::INF;
use ripple_store_mem::MemStore;

fn store() -> MemStore {
    MemStore::builder().default_parts(6).build()
}

fn assert_matches_oracle(got: &[(u32, u32)], graph: &MutableGraph, source: u32, ctx: &str) {
    let oracle = bfs_oracle(graph, source);
    assert_eq!(got.len(), oracle.len(), "{ctx}: vertex count");
    for (v, d) in got {
        assert_eq!(
            *d, oracle[*v as usize],
            "{ctx}: vertex {v} distance mismatch"
        );
    }
}

#[test]
fn selective_initial_solution_matches_bfs() {
    let graph = random_undirected(200, 900, 0.8, 17);
    let s = store();
    let (inst, _) = SelectiveInstance::initialize(&s, "sel", graph.graph(), 0).unwrap();
    assert_matches_oracle(&inst.distances().unwrap(), &graph, 0, "initial");
}

#[test]
fn full_scan_initial_solution_matches_bfs() {
    let graph = random_undirected(200, 900, 0.8, 17);
    let s = store();
    let (inst, _) = FullScanInstance::initialize(&s, "fs", graph.graph(), 0).unwrap();
    assert_matches_oracle(&inst.distances().unwrap(), &graph, 0, "initial");
}

#[test]
fn selective_tracks_addition_batches() {
    let mut graph = random_undirected(150, 500, 0.8, 29);
    let s = store();
    let (inst, _) = SelectiveInstance::initialize(&s, "sel", graph.graph(), 0).unwrap();
    for round in 0..4 {
        let batch: Vec<GraphChange> = random_change_batch(150, 40, 0.8, 100 + round)
            .into_iter()
            .filter(|c| matches!(c, GraphChange::AddEdge(..)))
            .collect();
        for c in &batch {
            graph.apply(*c);
        }
        inst.apply_batch(&batch).unwrap();
        assert_matches_oracle(
            &inst.distances().unwrap(),
            &graph,
            0,
            &format!("round {round}"),
        );
    }
}

#[test]
fn selective_tracks_mixed_batches_with_deletions() {
    let mut graph = random_undirected(120, 700, 0.8, 31);
    let s = store();
    let (inst, _) = SelectiveInstance::initialize(&s, "sel", graph.graph(), 0).unwrap();
    for round in 0..5 {
        let batch = random_change_batch(120, 30, 0.8, 300 + round);
        for c in &batch {
            graph.apply(*c);
        }
        inst.apply_batch(&batch).unwrap();
        assert_matches_oracle(
            &inst.distances().unwrap(),
            &graph,
            0,
            &format!("round {round}"),
        );
    }
}

#[test]
fn full_scan_tracks_mixed_batches_with_deletions() {
    let mut graph = random_undirected(120, 700, 0.8, 31);
    let s = store();
    let (inst, _) = FullScanInstance::initialize(&s, "fs", graph.graph(), 0).unwrap();
    for round in 0..3 {
        let batch = random_change_batch(120, 30, 0.8, 300 + round);
        for c in &batch {
            graph.apply(*c);
        }
        inst.apply_batch(&batch).unwrap();
        assert_matches_oracle(
            &inst.distances().unwrap(),
            &graph,
            0,
            &format!("round {round}"),
        );
    }
}

#[test]
fn variants_agree_after_the_same_batches() {
    let mut graph = random_undirected(100, 450, 0.8, 37);
    let s1 = store();
    let s2 = store();
    let (sel, _) = SelectiveInstance::initialize(&s1, "sel", graph.graph(), 0).unwrap();
    let (fs, _) = FullScanInstance::initialize(&s2, "fs", graph.graph(), 0).unwrap();
    for round in 0..3 {
        let batch = random_change_batch(100, 25, 0.8, 900 + round);
        for c in &batch {
            graph.apply(*c);
        }
        sel.apply_batch(&batch).unwrap();
        fs.apply_batch(&batch).unwrap();
        assert_eq!(sel.distances().unwrap(), fs.distances().unwrap());
    }
}

#[test]
fn selective_work_is_proportional_to_change() {
    // A 2000-vertex graph; a tiny batch must invoke far fewer components
    // than the graph has vertices, while full-scan invokes all of them
    // repeatedly.
    let mut graph = random_undirected(2000, 12_000, 0.8, 41);
    let s1 = store();
    let s2 = store();
    let (sel, _) = SelectiveInstance::initialize(&s1, "sel", graph.graph(), 0).unwrap();
    let (fs, _) = FullScanInstance::initialize(&s2, "fs", graph.graph(), 0).unwrap();
    let batch = random_change_batch(2000, 10, 0.8, 77);
    for c in &batch {
        graph.apply(*c);
    }
    let sel_metrics = sel.apply_batch(&batch).unwrap();
    let fs_metrics = fs.apply_batch(&batch).unwrap();
    assert!(
        sel_metrics.invocations * 10 < fs_metrics.invocations,
        "selective {} vs full-scan {} invocations",
        sel_metrics.invocations,
        fs_metrics.invocations
    );
    // And the answers still agree.
    assert_eq!(sel.distances().unwrap(), fs.distances().unwrap());
}

#[test]
fn disconnection_yields_infinite_distances() {
    // A path 0-1-2; removing 1-2 makes 2 unreachable.
    let mut graph = MutableGraph::new(3);
    graph.apply(GraphChange::AddEdge(0, 1));
    graph.apply(GraphChange::AddEdge(1, 2));
    let s = store();
    let (inst, _) = SelectiveInstance::initialize(&s, "sel", graph.graph(), 0).unwrap();
    assert_eq!(inst.distances().unwrap(), vec![(0, 0), (1, 1), (2, 2)]);
    graph.apply(GraphChange::RemoveEdge(1, 2));
    inst.apply_batch(&[GraphChange::RemoveEdge(1, 2)]).unwrap();
    assert_eq!(inst.distances().unwrap(), vec![(0, 0), (1, 1), (2, INF)]);
}

#[test]
fn no_op_batch_is_cheap() {
    let mut graph = MutableGraph::new(4);
    graph.apply(GraphChange::AddEdge(0, 1));
    graph.apply(GraphChange::AddEdge(1, 2));
    let s = store();
    let (inst, _) = SelectiveInstance::initialize(&s, "sel", graph.graph(), 0).unwrap();
    // Removing an absent edge and adding a self-loop touch nothing, and
    // re-adding an existing edge only re-confirms known distances.
    let batch = vec![GraphChange::RemoveEdge(2, 3), GraphChange::AddEdge(0, 0)];
    let metrics = inst.apply_batch(&batch).unwrap();
    assert_eq!(metrics.invocations, 0, "no-ops must enable nobody");
}
