//! PageRank two ways (paper §V-A).
//!
//! Both variants run on the same K/V EBSP platform and compute identical
//! ranks; they differ only in the architectural shape the experiment
//! isolates:
//!
//! - the **direct** variant fuses each reduce with the following map: one
//!   BSP step — hence **one synchronization** — per iteration of the rank
//!   equations, with both the ranking state and the graph structure riding
//!   in BSP messages.  The state table is read in the first step and
//!   written in the last step only;
//! - the **MapReduce** variant emulates iterated MapReduce: **two BSP steps
//!   (two synchronizations) per iteration**, messages carrying structure
//!   and state from the map-like step to the reduce-like step, and **an
//!   additional round of state-table I/O per iteration** (the reduce
//!   writes structure+rank back, the next map reads it).
//!
//! The MapReduce variant is purely inferior — it does strictly more work —
//! which is the point of Table I.
//!
//! Rank equations, with damping `d` over graph `(V, E)` and out-degree
//! `W_u`: dangling vertices (W_u = 0) spread their rank uniformly, so
//!
//! ```text
//! R_v = (1-d)/|V| + d * ( Σ_{(u,v) ∈ E} R_u / W_u  +  sink / |V| )
//! sink = Σ_{W_u = 0} R_u
//! ```
//!
//! The dangling mass is carried by the `sink` aggregator exactly as the
//! paper describes ("contributes R_v/|V| to a sink rank aggregator if
//! W_v = 0").

use std::sync::Arc;

use ripple_core::{
    Aggregate, ComputeContext, EbspError, FnLoader, Job, JobProperties, JobRunner, LoadSink,
    RunOptions, RunOutcome, SumF64,
};
use ripple_kv::KvStore;
use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

use crate::generate::Graph;
use crate::VertexId;

/// Parameters of a PageRank computation.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// The damping factor `d ∈ (0, 1)`.
    pub damping: f64,
    /// Number of iterations of the rank equations.
    pub iterations: u32,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            iterations: 20,
        }
    }
}

/// A vertex entry in the state table: structure always, rank once ranked
/// (the paper's "enhanced vertex object").
#[derive(Debug, Clone, PartialEq)]
pub struct PrState {
    /// Out-edges.
    pub edges: Vec<VertexId>,
    /// The most recently written rank, absent before the job completes.
    pub rank: Option<f64>,
}

impl Encode for PrState {
    fn encode(&self, w: &mut ByteWriter) {
        self.edges.encode(w);
        self.rank.encode(w);
    }
    fn size_hint(&self) -> usize {
        self.edges.size_hint() + 9
    }
}

impl Decode for PrState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            edges: Vec::decode(r)?,
            rank: Option::decode(r)?,
        })
    }
}

/// The self-propagating part of a message: a vertex's structure and rank
/// travelling forward to its own next invocation.
#[derive(Debug, Clone, PartialEq)]
pub struct PrSelf {
    /// Out-edges.
    pub edges: Vec<VertexId>,
    /// Rank last computed.
    pub rank: f64,
}

/// The one message type of both variants: an optional self-state plus an
/// accumulated rank contribution (the paper's "further enhanced vertex
/// object that includes ... another double that is accumulating
/// contributions").
#[derive(Debug, Clone, PartialEq)]
pub struct PrMsg {
    /// Present on the message a vertex sends itself.
    pub state: Option<PrSelf>,
    /// Sum of rank contributions folded into this message.
    pub contrib: f64,
}

impl PrMsg {
    fn contribution(c: f64) -> Self {
        Self {
            state: None,
            contrib: c,
        }
    }

    fn self_state(edges: Vec<VertexId>, rank: f64) -> Self {
        Self {
            state: Some(PrSelf { edges, rank }),
            contrib: 0.0,
        }
    }
}

impl Encode for PrMsg {
    fn encode(&self, w: &mut ByteWriter) {
        match &self.state {
            None => w.push(0),
            Some(s) => {
                w.push(1);
                s.edges.encode(w);
                s.rank.encode(w);
            }
        }
        self.contrib.encode(w);
    }
    fn size_hint(&self) -> usize {
        9 + self.state.as_ref().map_or(0, |s| s.edges.size_hint() + 8)
    }
}

impl Decode for PrMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let state = match r.read_byte()? {
            0 => None,
            1 => Some(PrSelf {
                edges: Vec::decode(r)?,
                rank: f64::decode(r)?,
            }),
            tag => {
                return Err(WireError::InvalidTag {
                    target: "PrMsg",
                    tag,
                })
            }
        };
        Ok(Self {
            state,
            contrib: f64::decode(r)?,
        })
    }
}

fn combine_pr(a: &PrMsg, b: &PrMsg) -> PrMsg {
    PrMsg {
        state: a.state.clone().or_else(|| b.state.clone()),
        contrib: a.contrib + b.contrib,
    }
}

/// Shared per-invocation arithmetic: fold messages, apply the equations.
struct Folded {
    edges: Vec<VertexId>,
    contrib: f64,
}

fn fold_messages(msgs: Vec<PrMsg>) -> Option<Folded> {
    let mut edges = None;
    let mut contrib = 0.0;
    for m in msgs {
        contrib += m.contrib;
        if let Some(s) = m.state {
            edges = Some(s.edges);
        }
    }
    edges.map(|edges| Folded { edges, contrib })
}

/// Emits one iteration's outgoing traffic: contributions along edges (or
/// dangling mass into the sink aggregator) — used by both variants.
fn distribute<J>(
    ctx: &mut ComputeContext<'_, J>,
    me: VertexId,
    edges: &[VertexId],
    rank: f64,
) -> Result<(), EbspError>
where
    J: Job<Key = VertexId, Message = PrMsg>,
{
    if edges.is_empty() {
        ctx.aggregate(SINK, rank.into())?;
    } else {
        let share = rank / edges.len() as f64;
        for &v in edges {
            ctx.send(v, PrMsg::contribution(share));
        }
    }
    let _ = me;
    Ok(())
}

const SINK: &str = "sink";

/// New rank from the equations, with the previous step's dangling mass.
fn new_rank(n: f64, damping: f64, contrib: f64, sink_prev: f64) -> f64 {
    (1.0 - damping) / n + damping * (contrib + sink_prev / n)
}

// ---------------------------------------------------------------------------
// Direct variant
// ---------------------------------------------------------------------------

/// The direct variant: one step (one synchronization) per iteration.
pub struct DirectPageRank {
    table: String,
    n: u64,
    config: PageRankConfig,
}

impl DirectPageRank {
    /// A direct-variant job over `n` vertices whose structure (and final
    /// ranks) live in `table`.
    pub fn new(table: impl Into<String>, n: u64, config: PageRankConfig) -> Self {
        Self {
            table: table.into(),
            n,
            config,
        }
    }
}

impl Job for DirectPageRank {
    type Key = VertexId;
    type State = PrState;
    type Message = PrMsg;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![(SINK.to_owned(), Arc::new(SumF64))]
    }

    fn properties(&self) -> JobProperties {
        // needs-order makes collocated invocations run in key order, which
        // fixes the fold order of the f64 contribution combines: any two
        // runs — on any store backend — produce byte-identical ranks; that
        // ordered fold is also what makes `deterministic` true bit-for-bit.
        // The combiner always merges, so each vertex sees exactly one
        // post-combine message (one-msg), and compute never returns the
        // continue signal (no-continue) — together they unlock the
        // no-collect plan.
        JobProperties {
            needs_order: true,
            deterministic: true,
            one_msg: true,
            no_continue: true,
            ..JobProperties::default()
        }
    }

    fn combine_messages(&self, _k: &VertexId, a: &PrMsg, b: &PrMsg) -> Option<PrMsg> {
        Some(combine_pr(a, b))
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        let n = self.n as f64;
        let last_step = self.config.iterations + 1;
        let (edges, rank) = if ctx.step() == 1 {
            // First step: read the structure table once; start at 1/|V|.
            let state = ctx.read_state(0)?.ok_or_else(|| EbspError::InvalidJob {
                reason: format!("vertex {me} missing from structure table"),
            })?;
            (state.edges, 1.0 / n)
        } else {
            let sink_prev = ctx.aggregate_prev(SINK).map_or(0.0, |v| v.as_f64());
            let folded =
                fold_messages(ctx.take_messages()).ok_or_else(|| EbspError::InvalidJob {
                    reason: format!("vertex {me} lost its self-state message"),
                })?;
            let rank = new_rank(n, self.config.damping, folded.contrib, sink_prev);
            (folded.edges, rank)
        };
        if ctx.step() == last_step {
            // Last step: replace the table entry with the enhanced vertex.
            ctx.write_state(
                0,
                &PrState {
                    edges,
                    rank: Some(rank),
                },
            )?;
            return Ok(false);
        }
        distribute(ctx, me, &edges, rank)?;
        ctx.send(me, PrMsg::self_state(edges, rank));
        Ok(false)
    }
}

// ---------------------------------------------------------------------------
// MapReduce variant
// ---------------------------------------------------------------------------

/// The MapReduce variant: two steps (two synchronizations) per iteration
/// and a state-table round-trip per iteration — iterated MapReduce
/// emulated on the same platform.
pub struct MapReducePageRank {
    table: String,
    n: u64,
    config: PageRankConfig,
}

impl MapReducePageRank {
    /// A MapReduce-variant job over `n` vertices whose structure (and
    /// final ranks) live in `table`.
    pub fn new(table: impl Into<String>, n: u64, config: PageRankConfig) -> Self {
        Self {
            table: table.into(),
            n,
            config,
        }
    }
}

impl Job for MapReducePageRank {
    type Key = VertexId;
    type State = PrState;
    type Message = PrMsg;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![(SINK.to_owned(), Arc::new(SumF64))]
    }

    fn properties(&self) -> JobProperties {
        // needs-order makes collocated invocations run in key order, which
        // fixes the fold order of the f64 contribution combines: any two
        // runs — on any store backend — produce byte-identical ranks; the
        // ordered fold also makes the job bit-for-bit `deterministic`.  The
        // combiner always merges, so each reduce-side vertex sees exactly
        // one post-combine message (one-msg).  No `no_continue`: the reduce
        // step drives the iteration with the positive continue signal.
        JobProperties {
            needs_order: true,
            deterministic: true,
            one_msg: true,
            ..JobProperties::default()
        }
    }

    fn combine_messages(&self, _k: &VertexId, a: &PrMsg, b: &PrMsg) -> Option<PrMsg> {
        Some(combine_pr(a, b))
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        let n = self.n as f64;
        let step = ctx.step();
        if step % 2 == 1 {
            // Map-like step: read structure+rank from the table (the
            // per-iteration I/O round the direct variant does not do), then
            // shuffle.
            let state = ctx.read_state(0)?.ok_or_else(|| EbspError::InvalidJob {
                reason: format!("vertex {me} missing from state table"),
            })?;
            let rank = state.rank.unwrap_or(1.0 / n);
            distribute(ctx, me, &state.edges, rank)?;
            ctx.send(me, PrMsg::self_state(state.edges, rank));
            Ok(false)
        } else {
            // Reduce-like step: fold the shuffle, apply the equations,
            // write structure+rank back to the table.
            let sink_prev = ctx.aggregate_prev(SINK).map_or(0.0, |v| v.as_f64());
            let folded =
                fold_messages(ctx.take_messages()).ok_or_else(|| EbspError::InvalidJob {
                    reason: format!("vertex {me} lost its self-state message"),
                })?;
            let rank = new_rank(n, self.config.damping, folded.contrib, sink_prev);
            ctx.write_state(
                0,
                &PrState {
                    edges: folded.edges,
                    rank: Some(rank),
                },
            )?;
            // Stay enabled for the next map-like step, unless done.
            Ok(step < 2 * self.config.iterations)
        }
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// A loader seeding the structure table from `graph`: every vertex enabled
/// with its adjacency list and no rank yet.  Public so external harnesses
/// (e.g. the property auditor) can drive the PageRank jobs directly.
pub fn structure_loader<J>(graph: &Graph) -> Box<dyn ripple_core::Loader<J>>
where
    J: Job<Key = VertexId, State = PrState>,
{
    let entries: Vec<(VertexId, Vec<VertexId>)> = graph
        .iter()
        .map(|(v, neighbors)| (v, neighbors.to_vec()))
        .collect();
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<J>| {
        for (v, edges) in entries {
            sink.enable(v)?;
            sink.state(0, v, PrState { edges, rank: None })?;
        }
        Ok(())
    }))
}

/// Runs the direct variant over `graph`, leaving ranks in `table`.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn run_direct<S: KvStore>(
    store: &S,
    table: &str,
    graph: &Graph,
    config: PageRankConfig,
) -> Result<RunOutcome, EbspError> {
    run_direct_on(&JobRunner::new(store.clone()), table, graph, config)
}

/// As [`run_direct`], but on a caller-configured [`JobRunner`] — the way
/// to rank with profiling, tracing, observers, or retry policies attached.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn run_direct_on<S: KvStore>(
    runner: &JobRunner<S>,
    table: &str,
    graph: &Graph,
    config: PageRankConfig,
) -> Result<RunOutcome, EbspError> {
    let job = Arc::new(DirectPageRank {
        table: table.to_owned(),
        n: u64::from(graph.vertex_count()),
        config,
    });
    runner.launch(
        job,
        RunOptions::new().loaders(vec![structure_loader(graph)]),
    )
}

/// Runs the MapReduce variant over `graph`, leaving ranks in `table`.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn run_mapreduce_variant<S: KvStore>(
    store: &S,
    table: &str,
    graph: &Graph,
    config: PageRankConfig,
) -> Result<RunOutcome, EbspError> {
    run_mapreduce_variant_on(&JobRunner::new(store.clone()), table, graph, config)
}

/// As [`run_mapreduce_variant`], but on a caller-configured [`JobRunner`].
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn run_mapreduce_variant_on<S: KvStore>(
    runner: &JobRunner<S>,
    table: &str,
    graph: &Graph,
    config: PageRankConfig,
) -> Result<RunOutcome, EbspError> {
    let job = Arc::new(MapReducePageRank {
        table: table.to_owned(),
        n: u64::from(graph.vertex_count()),
        config,
    });
    runner.launch(
        job,
        RunOptions::new().loaders(vec![structure_loader(graph)]),
    )
}

/// Reads the final ranks out of a PageRank table, sorted by vertex id.
///
/// # Errors
///
/// Propagates store errors; fails if any vertex is missing its rank.
pub fn read_ranks<S: KvStore>(store: &S, table: &str) -> Result<Vec<(VertexId, f64)>, EbspError> {
    let handle = store.lookup_table(table).map_err(EbspError::Kv)?;
    let exporter = Arc::new(ripple_core::CollectingExporter::new());
    ripple_core::export_state_table::<S, VertexId, PrState, _>(
        store,
        &handle,
        Arc::clone(&exporter),
    )?;
    let mut ranks = Vec::new();
    for (v, state) in exporter.take() {
        let rank = state.rank.ok_or_else(|| EbspError::InvalidJob {
            reason: format!("vertex {v} has no rank; did the job finish?"),
        })?;
        ranks.push((v, rank));
    }
    ranks.sort_by_key(|(v, _)| *v);
    Ok(ranks)
}

/// A sequential reference implementation of the same equations, for
/// validating both distributed variants.
pub fn reference_ranks(graph: &Graph, config: PageRankConfig) -> Vec<f64> {
    let n = graph.vertex_count() as usize;
    let nf = n as f64;
    let mut rank = vec![1.0 / nf; n];
    let mut next = vec![0.0; n];
    for _ in 0..config.iterations {
        let sink: f64 = graph
            .iter()
            .filter(|(_, out)| out.is_empty())
            .map(|(v, _)| rank[v as usize])
            .sum();
        next.iter_mut()
            .for_each(|x| *x = (1.0 - config.damping) / nf + config.damping * sink / nf);
        for (u, out) in graph.iter() {
            if !out.is_empty() {
                let share = config.damping * rank[u as usize] / out.len() as f64;
                for &v in out {
                    next[v as usize] += share;
                }
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    rank
}

// ---------------------------------------------------------------------------
// Adaptive variant (aborter showcase)
// ---------------------------------------------------------------------------

/// PageRank with convergence-driven termination: a `delta` aggregator sums
/// per-vertex rank movement each iteration and an **aborter** (§II) stops
/// the job once the movement falls under `epsilon`.
///
/// Early termination needs observable state, so this variant writes each
/// vertex's rank to the table every iteration — the client-sync features
/// (aborter, aggregator) buy adaptivity at the price of the per-iteration
/// I/O the fixed-iteration direct variant avoids.  It is still one
/// synchronization per iteration.
pub struct AdaptivePageRank {
    table: String,
    n: u64,
    damping: f64,
    epsilon: f64,
}

impl AdaptivePageRank {
    /// An adaptive-variant job over `n` vertices whose structure (and
    /// running ranks) live in `table`, stopping once the per-iteration rank
    /// movement drops below `epsilon`.
    pub fn new(table: impl Into<String>, n: u64, damping: f64, epsilon: f64) -> Self {
        Self {
            table: table.into(),
            n,
            damping,
            epsilon,
        }
    }
}

const DELTA: &str = "delta";

impl Job for AdaptivePageRank {
    type Key = VertexId;
    type State = PrState;
    type Message = PrMsg;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![
            (SINK.to_owned(), Arc::new(SumF64)),
            (DELTA.to_owned(), Arc::new(SumF64)),
        ]
    }

    fn properties(&self) -> JobProperties {
        // Same ordered f64 folds as the other variants.  The combiner
        // always merges (one-msg) and compute never returns the continue
        // signal (no-continue): termination comes from the aborter, whose
        // client synchronization keeps the plan synchronized regardless.
        JobProperties {
            needs_order: true,
            deterministic: true,
            one_msg: true,
            no_continue: true,
            ..JobProperties::default()
        }
    }

    fn has_aborter(&self) -> bool {
        true
    }

    fn aborter(&self, aggregates: &crate::pagerank::AggSnapshot, next_step: u32) -> bool {
        // Never before the second iteration: delta is only meaningful once
        // one full update has happened.
        next_step > 2 && aggregates.get(DELTA).map_or(0.0, |v| v.as_f64()) < self.epsilon
    }

    fn combine_messages(&self, _k: &VertexId, a: &PrMsg, b: &PrMsg) -> Option<PrMsg> {
        Some(combine_pr(a, b))
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        let n = self.n as f64;
        let (edges, old_rank, rank) = if ctx.step() == 1 {
            let state = ctx.read_state(0)?.ok_or_else(|| EbspError::InvalidJob {
                reason: format!("vertex {me} missing from structure table"),
            })?;
            (state.edges, 1.0 / n, 1.0 / n)
        } else {
            let sink_prev = ctx.aggregate_prev(SINK).map_or(0.0, |v| v.as_f64());
            let state = ctx.read_state(0)?.ok_or_else(|| EbspError::InvalidJob {
                reason: format!("vertex {me} lost its state"),
            })?;
            let old = state.rank.unwrap_or(1.0 / n);
            let folded =
                fold_messages(ctx.take_messages()).ok_or_else(|| EbspError::InvalidJob {
                    reason: format!("vertex {me} lost its self-state message"),
                })?;
            let rank = new_rank(n, self.damping, folded.contrib, sink_prev);
            (folded.edges, old, rank)
        };
        // Observable state every step: the aborter's price.
        ctx.write_state(
            0,
            &PrState {
                edges: edges.clone(),
                rank: Some(rank),
            },
        )?;
        ctx.aggregate(DELTA, ((rank - old_rank).abs()).into())?;
        distribute(ctx, me, &edges, rank)?;
        ctx.send(me, PrMsg::self_state(edges, rank));
        Ok(false)
    }
}

/// Convenient alias so the aborter signature reads cleanly above.
type AggSnapshot = ripple_core::AggregateSnapshot;

/// Runs the adaptive variant until the total rank movement per iteration
/// drops below `epsilon` (or `max_iterations` as a safety net), returning
/// the outcome; ranks are left in `table`.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn run_adaptive<S: KvStore>(
    store: &S,
    table: &str,
    graph: &Graph,
    damping: f64,
    epsilon: f64,
    max_iterations: u32,
) -> Result<RunOutcome, EbspError> {
    let job = Arc::new(AdaptivePageRank {
        table: table.to_owned(),
        n: u64::from(graph.vertex_count()),
        damping,
        epsilon,
    });
    JobRunner::new(store.clone())
        .max_steps(max_iterations)
        .launch(
            job,
            RunOptions::new().loaders(vec![structure_loader(graph)]),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_wire::{from_wire, to_wire};

    #[test]
    fn message_codec_roundtrips() {
        let m = PrMsg::contribution(0.125);
        assert_eq!(from_wire::<PrMsg>(&to_wire(&m)).unwrap(), m);
        let m = PrMsg::self_state(vec![1, 2, 3], 0.5);
        assert_eq!(from_wire::<PrMsg>(&to_wire(&m)).unwrap(), m);
    }

    #[test]
    fn combine_merges_state_and_sums_contribs() {
        let a = PrMsg::contribution(0.25);
        let b = PrMsg::self_state(vec![4], 0.1);
        let c = combine_pr(&a, &b);
        assert_eq!(c.contrib, 0.25);
        assert_eq!(c.state.unwrap().edges, vec![4]);
    }

    #[test]
    fn reference_ranks_sum_to_one() {
        let graph = crate::generate::power_law_graph(200, 2000, 0.8, 9);
        let ranks = reference_ranks(
            &graph,
            PageRankConfig {
                damping: 0.85,
                iterations: 15,
            },
        );
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "rank mass conserved, got {sum}");
    }

    #[test]
    fn adaptive_variant_stops_early_and_converges() {
        let graph = crate::generate::power_law_graph(150, 1500, 0.8, 4);
        let store = ripple_store_mem::MemStore::builder()
            .default_parts(4)
            .build();
        let outcome = run_adaptive(&store, "apr", &graph, 0.85, 1e-7, 500).unwrap();
        assert!(outcome.aborted, "the aborter must stop the job");
        assert!(outcome.steps < 500, "and well before the safety net");
        let ranks = read_ranks(&store, "apr").unwrap();
        // Close to the fixed-point: compare against a long reference run.
        let reference = reference_ranks(
            &graph,
            PageRankConfig {
                damping: 0.85,
                iterations: 120,
            },
        );
        for (v, r) in ranks {
            assert!(
                (r - reference[v as usize]).abs() < 1e-5,
                "vertex {v}: {r} vs {}",
                reference[v as usize]
            );
        }
    }

    #[test]
    fn reference_handles_dangling_vertices() {
        // 0 -> 1, 1 dangling: mass must not leak.
        let mut graph = Graph::empty(2);
        graph.add_edge(0, 1);
        let ranks = reference_ranks(
            &graph,
            PageRankConfig {
                damping: 0.85,
                iterations: 30,
            },
        );
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert!(ranks[1] > ranks[0], "1 receives everything 0 has");
    }
}
