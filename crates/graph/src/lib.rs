//! Graph analytics on the Ripple platform.
//!
//! Three layers, mirroring the paper:
//!
//! - [`vertex`] — **Graph EBSP**, the Pregel-like vertex-centric
//!   programming model that Figure 2 stacks above K/V EBSP ("the
//!   functionality of Pregel can be constructed atop Ripple's K/V EBSP");
//! - [`generate`] — random graph workloads: the biased power-law graphs of
//!   the PageRank evaluation (§V-A) and the mutating graphs with random
//!   edge addition/removal batches of the incremental-SSSP evaluation
//!   (§V-C);
//! - the evaluation applications themselves:
//!   - [`pagerank`] — the *direct* variant (one step and one
//!     synchronization per iteration of the rank equations, state riding
//!     in messages) and the *MapReduce* variant (two steps per iteration
//!     with the dataset round-tripping through a state table), §V-A;
//!   - [`sssp`] — incremental single-source shortest paths: the
//!     *selective-enablement* variant (per-neighbor distance bookkeeping,
//!     work proportional to change) and the *full-scan* variant
//!     (MapReduce-style waves over the whole graph), §V-C.

pub mod algorithms;
pub mod generate;
pub mod mutation;
pub mod pagerank;
pub mod sssp;
pub mod vertex;

pub use mutation::MutationQueue;

/// Vertex identifier.  The paper identifies vertices by a Java `int`; we
/// use `u32`.
pub type VertexId = u32;

/// Infinite distance marker for shortest-path annotations.
pub const INF: u32 = u32::MAX;
