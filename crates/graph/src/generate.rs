//! Random graph workload generators.
//!
//! The PageRank evaluation uses graphs whose "edge attachments follow a
//! biased power-law distribution"; the incremental-SSSP evaluation creates
//! 100,000 unconnected vertices, adds ~1.8 million random edges whose
//! endpoints are "randomly chosen according to a power law distribution",
//! and then applies batches of random edge additions and removals
//! "(without regard to which already exist, so some of these changes will
//! be no-ops)".  This module reproduces those workloads with a seeded RNG.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::VertexId;

/// An in-memory directed graph as adjacency lists (used both directed, for
/// PageRank, and as symmetric pairs for the undirected SSSP graphs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    adjacency: Vec<Vec<VertexId>>,
}

impl Graph {
    /// An edgeless graph with `n` vertices.
    pub fn empty(n: u32) -> Self {
        Self {
            adjacency: vec![Vec::new(); n as usize],
        }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.adjacency.len() as u32
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> u64 {
        self.adjacency.iter().map(|a| a.len() as u64).sum()
    }

    /// The out-neighbors of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.adjacency[v as usize]
    }

    /// Adds the directed edge `u -> v` (parallel edges are kept).
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        assert!((v as usize) < self.adjacency.len(), "vertex out of range");
        self.adjacency[u as usize].push(v);
    }

    /// Removes one instance of `u -> v`, returning whether it existed.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        let list = &mut self.adjacency[u as usize];
        match list.iter().position(|&x| x == v) {
            Some(i) => {
                list.swap_remove(i);
                true
            }
            None => false,
        }
    }

    /// Whether `u -> v` exists.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.adjacency[u as usize].contains(&v)
    }

    /// Iterates (vertex, out-neighbors) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (VertexId, &[VertexId])> {
        self.adjacency
            .iter()
            .enumerate()
            .map(|(v, a)| (v as VertexId, a.as_slice()))
    }
}

/// Samples vertex ids with probability proportional to `(id + 1)^-alpha`,
/// producing the skewed ("biased power-law") attachment the paper's
/// generators use.
#[derive(Debug, Clone)]
pub struct PowerLawSampler {
    cumulative: Vec<f64>,
}

impl PowerLawSampler {
    /// Builds the cumulative weight table for `n` vertices with exponent
    /// `alpha` (larger = more skew; the generators default to 0.8).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: u32, alpha: f64) -> Self {
        assert!(n > 0, "need at least one vertex");
        let mut cumulative = Vec::with_capacity(n as usize);
        let mut total = 0.0;
        for i in 0..n {
            total += f64::from(i + 1).powf(-alpha);
            cumulative.push(total);
        }
        Self { cumulative }
    }

    /// Draws one vertex id.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> VertexId {
        let total = *self.cumulative.last().expect("non-empty table");
        let x: f64 = rng.gen_range(0.0..total);
        // First index whose cumulative weight exceeds x.
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&x).expect("weights are finite"))
        {
            Ok(i) | Err(i) => (i as u32).min(self.cumulative.len() as u32 - 1),
        }
    }
}

/// Generates the PageRank workload: a directed graph over `vertices`
/// vertices with `edges` edges whose endpoints follow a biased power-law
/// attachment (§V-A).  Deterministic for a given seed.
pub fn power_law_graph(vertices: u32, edges: u64, alpha: f64, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = PowerLawSampler::new(vertices, alpha);
    let mut graph = Graph::empty(vertices);
    for _ in 0..edges {
        let u = sampler.sample(&mut rng);
        let v = sampler.sample(&mut rng);
        graph.add_edge(u, v);
    }
    graph
}

/// One primitive graph change (§V-C): the SSSP graphs gain or lose single
/// undirected edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphChange {
    /// Add the undirected edge (u, v); a no-op if already present.
    AddEdge(VertexId, VertexId),
    /// Remove the undirected edge (u, v); a no-op if absent.
    RemoveEdge(VertexId, VertexId),
}

impl GraphChange {
    /// The two endpoints.
    pub fn endpoints(&self) -> (VertexId, VertexId) {
        match *self {
            GraphChange::AddEdge(u, v) | GraphChange::RemoveEdge(u, v) => (u, v),
        }
    }
}

/// An undirected graph that applies [`GraphChange`] batches, tracking
/// neighbor sets symmetrically and ignoring no-op changes — the
/// time-varying graph of the incremental-SSSP evaluation.
#[derive(Debug, Clone)]
pub struct MutableGraph {
    graph: Graph,
}

impl MutableGraph {
    /// `n` unconnected vertices.
    pub fn new(n: u32) -> Self {
        Self {
            graph: Graph::empty(n),
        }
    }

    /// The current adjacency (symmetric).
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> u32 {
        self.graph.vertex_count()
    }

    /// Applies one change; returns `false` for no-ops (adding an existing
    /// edge, removing an absent one, or a self-loop).
    pub fn apply(&mut self, change: GraphChange) -> bool {
        let (u, v) = change.endpoints();
        if u == v || u >= self.vertex_count() || v >= self.vertex_count() {
            return false;
        }
        match change {
            GraphChange::AddEdge(..) => {
                if self.graph.has_edge(u, v) {
                    return false;
                }
                self.graph.add_edge(u, v);
                self.graph.add_edge(v, u);
                true
            }
            GraphChange::RemoveEdge(..) => {
                if !self.graph.has_edge(u, v) {
                    return false;
                }
                self.graph.remove_edge(u, v);
                self.graph.remove_edge(v, u);
                true
            }
        }
    }
}

/// Generates the initial SSSP workload: `n` vertices and about `edges`
/// random undirected power-law edges (duplicates and self-loops are
/// dropped, as "some of these changes will be no-ops").
pub fn random_undirected(n: u32, edges: u64, alpha: f64, seed: u64) -> MutableGraph {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = PowerLawSampler::new(n, alpha);
    let mut graph = MutableGraph::new(n);
    for _ in 0..edges {
        let u = sampler.sample(&mut rng);
        let v = sampler.sample(&mut rng);
        graph.apply(GraphChange::AddEdge(u, v));
    }
    graph
}

/// Generates one batch of `count` random primitive changes, additions and
/// removals mixed, endpoints power-law distributed, "without regard to
/// which already exist".
pub fn random_change_batch(n: u32, count: usize, alpha: f64, seed: u64) -> Vec<GraphChange> {
    let mut rng = StdRng::seed_from_u64(seed);
    let sampler = PowerLawSampler::new(n, alpha);
    (0..count)
        .map(|_| {
            let u = sampler.sample(&mut rng);
            let v = sampler.sample(&mut rng);
            if rng.gen_bool(0.5) {
                GraphChange::AddEdge(u, v)
            } else {
                GraphChange::RemoveEdge(u, v)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph_has_no_edges() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn add_remove_edges() {
        let mut g = Graph::empty(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        assert!(g.has_edge(0, 1));
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert!(g.remove_edge(0, 1));
        assert!(!g.remove_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn power_law_is_seeded_and_skewed() {
        let a = power_law_graph(100, 2000, 0.8, 42);
        let b = power_law_graph(100, 2000, 0.8, 42);
        assert_eq!(a, b, "same seed, same graph");
        let c = power_law_graph(100, 2000, 0.8, 43);
        assert_ne!(a, c, "different seed, different graph");
        assert_eq!(a.edge_count(), 2000);
        // Skew: the most-attached decile has far more out-edges than the
        // least-attached decile.
        let head: u64 = (0..10).map(|v| a.neighbors(v).len() as u64).sum();
        let tail: u64 = (90..100).map(|v| a.neighbors(v).len() as u64).sum();
        assert!(head > tail * 2, "head {head} vs tail {tail}");
    }

    #[test]
    fn sampler_covers_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let s = PowerLawSampler::new(10, 0.8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2000 {
            let v = s.sample(&mut rng);
            assert!(v < 10);
            seen.insert(v);
        }
        assert_eq!(seen.len(), 10, "all vertices reachable");
    }

    #[test]
    fn mutable_graph_is_symmetric_and_ignores_noops() {
        let mut g = MutableGraph::new(4);
        assert!(g.apply(GraphChange::AddEdge(0, 1)));
        assert!(!g.apply(GraphChange::AddEdge(0, 1)), "duplicate add");
        assert!(!g.apply(GraphChange::AddEdge(2, 2)), "self loop");
        assert!(g.graph().has_edge(0, 1) && g.graph().has_edge(1, 0));
        assert!(g.apply(GraphChange::RemoveEdge(1, 0)), "either direction");
        assert!(!g.graph().has_edge(0, 1) && !g.graph().has_edge(1, 0));
        assert!(!g.apply(GraphChange::RemoveEdge(0, 1)), "absent remove");
    }

    #[test]
    fn change_batches_are_seeded() {
        let a = random_change_batch(100, 50, 0.8, 1);
        let b = random_change_batch(100, 50, 0.8, 1);
        assert_eq!(a, b);
        assert_eq!(a.len(), 50);
    }

    #[test]
    fn random_undirected_builds_connected_ish_graph() {
        let g = random_undirected(1000, 18_000, 0.8, 5);
        // Directed edge count is twice the undirected count minus no-ops.
        assert!(g.graph().edge_count() > 20_000);
        assert_eq!(g.vertex_count(), 1000);
    }
}
