//! **Graph EBSP** — the Pregel-like vertex-centric layer over K/V EBSP
//! (Figure 2).  A [`VertexProgram`] runs against vertices whose state (a
//! value plus out-edges) lives in one state table; messaging, barriers,
//! selective enablement, and combiners all come straight from the
//! underlying [`ripple_core::Job`] machinery — this module is *only* an
//! adapter, which is the paper's point.

use std::sync::Arc;

use ripple_core::{
    AggValue, Aggregate, ComputeContext, EbspError, FnLoader, Job, JobRunner, LoadSink, Loader,
    RunOptions, RunOutcome,
};
use ripple_kv::KvStore;
use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, Wire, WireError};

use crate::generate::Graph;
use crate::VertexId;

/// A vertex's stored state: its value and its out-edges.
#[derive(Debug, Clone, PartialEq)]
pub struct VertexData<V> {
    /// The application value.
    pub value: V,
    /// Out-neighbor ids.
    pub edges: Vec<VertexId>,
}

impl<V: Encode> Encode for VertexData<V> {
    fn encode(&self, w: &mut ByteWriter) {
        self.value.encode(w);
        self.edges.encode(w);
    }
    fn size_hint(&self) -> usize {
        self.value.size_hint() + self.edges.size_hint()
    }
}

impl<V: Decode> Decode for VertexData<V> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            value: V::decode(r)?,
            edges: Vec::decode(r)?,
        })
    }
}

/// A vertex-centric program in the Pregel style.
pub trait VertexProgram: Send + Sync + Sized + 'static {
    /// The per-vertex value.
    type Value: Wire;
    /// The message type.
    type Message: Wire;

    /// One vertex invocation.  The vertex stays active unless it votes to
    /// halt; a halted vertex is re-activated by an incoming message.
    ///
    /// # Errors
    ///
    /// Propagate context errors.
    fn compute(&self, ctx: &mut VertexContext<'_, '_, Self>) -> Result<(), EbspError>;

    /// Optional pairwise message combiner.
    fn combine(&self, a: &Self::Message, b: &Self::Message) -> Option<Self::Message> {
        let _ = (a, b);
        None
    }

    /// Named aggregators, as in Pregel; fed via
    /// [`VertexContext::aggregate`], readable next superstep via
    /// [`VertexContext::aggregate_prev`].
    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        Vec::new()
    }
}

/// The vertex-facing view of one invocation.
pub struct VertexContext<'a, 'b, P: VertexProgram> {
    inner: &'a mut ComputeContext<'b, VertexJob<P>>,
    data: VertexData<P::Value>,
    dirty: bool,
    halted: bool,
}

impl<P: VertexProgram> VertexContext<'_, '_, P> {
    /// This vertex's id.
    pub fn id(&self) -> VertexId {
        *self.inner.key()
    }

    /// The current superstep (1-based).
    pub fn superstep(&self) -> u32 {
        self.inner.step()
    }

    /// The vertex value.
    pub fn value(&self) -> &P::Value {
        &self.data.value
    }

    /// Replaces the vertex value.
    pub fn set_value(&mut self, value: P::Value) {
        self.data.value = value;
        self.dirty = true;
    }

    /// The out-edges.
    pub fn edges(&self) -> &[VertexId] {
        &self.data.edges
    }

    /// The messages delivered this superstep.
    pub fn messages(&self) -> &[P::Message] {
        self.inner.messages()
    }

    /// Takes ownership of the delivered messages.
    pub fn take_messages(&mut self) -> Vec<P::Message> {
        self.inner.take_messages()
    }

    /// Sends `msg` to vertex `to` for delivery next superstep.
    pub fn send(&mut self, to: VertexId, msg: P::Message) {
        self.inner.send(to, msg);
    }

    /// Sends `msg` along every out-edge.
    pub fn send_to_neighbors(&mut self, msg: P::Message)
    where
        P::Message: Clone,
    {
        for i in 0..self.data.edges.len() {
            let to = self.data.edges[i];
            self.inner.send(to, msg.clone());
        }
    }

    /// Votes to halt: the vertex is not enabled next superstep unless a
    /// message arrives for it.
    pub fn vote_to_halt(&mut self) {
        self.halted = true;
    }

    /// Adds an out-edge to `to` (topology mutation, effective immediately
    /// for this vertex's subsequent sends).
    pub fn add_edge(&mut self, to: VertexId) {
        self.data.edges.push(to);
        self.dirty = true;
    }

    /// Removes one out-edge to `to`, returning whether it existed.
    pub fn remove_edge(&mut self, to: VertexId) -> bool {
        match self.data.edges.iter().position(|&v| v == to) {
            Some(i) => {
                self.data.edges.swap_remove(i);
                self.dirty = true;
                true
            }
            None => false,
        }
    }

    /// Feeds `value` into the aggregator named `name`.
    ///
    /// # Errors
    ///
    /// Fails for undeclared aggregator names.
    pub fn aggregate(&mut self, name: &str, value: AggValue) -> Result<(), EbspError> {
        self.inner.aggregate(name, value)
    }

    /// The previous superstep's result of aggregator `name`.
    pub fn aggregate_prev(&self, name: &str) -> Option<AggValue> {
        self.inner.aggregate_prev(name)
    }
}

/// The adapter [`Job`] hosting a [`VertexProgram`].
pub struct VertexJob<P: VertexProgram> {
    program: Arc<P>,
    table: String,
}

impl<P: VertexProgram> VertexJob<P> {
    /// Hosts `program` on the vertex table named `table`.
    pub fn new(program: Arc<P>, table: impl Into<String>) -> Self {
        Self {
            program,
            table: table.into(),
        }
    }
}

impl<P: VertexProgram> Job for VertexJob<P> {
    type Key = VertexId;
    type State = VertexData<P::Value>;
    type Message = P::Message;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let Some(data) = ctx.read_state(0)? else {
            // A message addressed a vertex that does not exist (was never
            // loaded or was removed): drop it, Pregel-style.
            return Ok(false);
        };
        let mut vctx = VertexContext {
            inner: ctx,
            data,
            dirty: false,
            halted: false,
        };
        self.program.compute(&mut vctx)?;
        let (dirty, halted, data) = (vctx.dirty, vctx.halted, vctx.data);
        if dirty {
            ctx.write_state(0, &data)?;
        }
        Ok(!halted)
    }

    fn combine_messages(
        &self,
        _key: &VertexId,
        a: &P::Message,
        b: &P::Message,
    ) -> Option<P::Message> {
        self.program.combine(a, b)
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        self.program.aggregators()
    }
}

/// A loader that installs a [`Graph`] into a vertex table with per-vertex
/// initial values, enabling every vertex for superstep 1 (Pregel's "all
/// vertices start active").
pub struct GraphLoader<V, F> {
    graph: Graph,
    init: F,
    enable_all: bool,
    _marker: std::marker::PhantomData<fn() -> V>,
}

impl<V, F: Fn(VertexId) -> V> GraphLoader<V, F> {
    /// Loads `graph` with `init` providing each vertex's starting value.
    pub fn new(graph: Graph, init: F) -> Self {
        Self {
            graph,
            init,
            enable_all: true,
            _marker: std::marker::PhantomData,
        }
    }

    /// Leaves all vertices disabled (for jobs seeded by messages instead).
    pub fn without_enabling(mut self) -> Self {
        self.enable_all = false;
        self
    }
}

impl<P, F> Loader<VertexJob<P>> for GraphLoader<P::Value, F>
where
    P: VertexProgram,
    F: Fn(VertexId) -> P::Value + Send,
{
    fn load(self: Box<Self>, sink: &mut dyn LoadSink<VertexJob<P>>) -> Result<(), EbspError> {
        for (v, neighbors) in self.graph.iter() {
            if self.enable_all {
                sink.enable(v)?;
            }
            sink.state(
                0,
                v,
                VertexData {
                    value: (self.init)(v),
                    edges: neighbors.to_vec(),
                },
            )?;
        }
        Ok(())
    }
}

/// Loads `graph` into `table` and runs `program` to completion, returning
/// the outcome.  Results stay in the table for export.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn run_vertex_program<S, P, F>(
    store: &S,
    program: Arc<P>,
    table: &str,
    graph: Graph,
    init: F,
) -> Result<RunOutcome, EbspError>
where
    S: KvStore,
    P: VertexProgram,
    F: Fn(VertexId) -> P::Value + Send + 'static,
{
    let job = Arc::new(VertexJob::new(program, table));
    JobRunner::new(store.clone()).launch(
        job,
        RunOptions::new().loaders(vec![Box::new(GraphLoader::new(graph, init))]),
    )
}

/// Reads all (vertex, value) pairs back out of a vertex table.
///
/// # Errors
///
/// Propagates store errors.
pub fn read_vertex_values<S, V>(store: &S, table: &str) -> Result<Vec<(VertexId, V)>, EbspError>
where
    S: KvStore,
    V: Wire,
{
    let handle = store.lookup_table(table).map_err(EbspError::Kv)?;
    let exporter = Arc::new(ripple_core::CollectingExporter::new());
    ripple_core::export_state_table::<S, VertexId, VertexData<V>, _>(
        store,
        &handle,
        Arc::clone(&exporter),
    )?;
    let mut pairs: Vec<(VertexId, V)> = exporter
        .take()
        .into_iter()
        .map(|(v, d)| (v, d.value))
        .collect();
    pairs.sort_by_key(|(v, _)| *v);
    Ok(pairs)
}

/// A loader that just sends seed messages (for message-driven programs).
pub fn seed_messages<P: VertexProgram>(
    seeds: Vec<(VertexId, P::Message)>,
) -> Box<dyn Loader<VertexJob<P>>> {
    Box::new(FnLoader::new(
        move |sink: &mut dyn LoadSink<VertexJob<P>>| {
            for (to, msg) in seeds {
                sink.message(to, msg)?;
            }
            Ok(())
        },
    ))
}
