//! Incremental single-source shortest paths on a time-varying undirected
//! graph (paper §V-C).
//!
//! Once distances are solved on an initial graph, each batch of primitive
//! changes (edge additions/removals) triggers an update.  Two variants:
//!
//! - **selective enablement** ([`SelectiveSssp`]): each vertex stores, per
//!   neighbor, the distance value most recently received from it, "which
//!   makes the incrementality possible": a vertex need not hear from every
//!   neighbor every iteration.  Each distance message carries the sender's
//!   id and current distance; the job's combiner does not combine.  Only
//!   vertices touched by the change wave run — work is proportional to the
//!   blast radius of the batch, not to graph size;
//! - **full scan** ([`FullScanInstance`]): MapReduce-style — a series
//!   of two-step jobs over *every* vertex, each map sending its full state
//!   to itself plus distance updates along edges, each reduce recomputing;
//!   an aggregator counts changed vertices and an external driver loops
//!   until none change.  If the batch removed edges, a first wave raises
//!   to +∞ every annotation that critically depended on a removed edge,
//!   then a second wave lowers annotations to their supported values.
//!
//! Distances are hop counts; [`crate::INF`] marks unreachable.
//! Distance values are capped at the vertex count (any true distance is
//! below it), which bounds the count-to-infinity behaviour a
//! distance-vector scheme exhibits when a region is disconnected.

use std::collections::HashMap;
use std::sync::Arc;

use ripple_core::{
    AggValue, Aggregate, ComputeContext, EbspError, FnLoader, Job, JobProperties, JobRunner,
    LoadSink, RunMetrics, RunOptions, RunOutcome, SumI64,
};
use ripple_kv::{DurableStore, HealableStore, KvStore, RecoverableStore, Table};
use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

use crate::generate::{Graph, GraphChange, MutableGraph};
use crate::{VertexId, INF};

const CHANGED: &str = "changed";

fn saturating_inc(d: u32) -> u32 {
    if d == INF {
        INF
    } else {
        d + 1
    }
}

/// Caps a computed distance at the vertex count: no real path is that
/// long, so anything at or above it is unreachable.
fn cap(d: u32, n: u32) -> u32 {
    if d >= n {
        INF
    } else {
        d
    }
}

// ===========================================================================
// Selective-enablement variant
// ===========================================================================

/// Selective-variant vertex state: parallel neighbor and neighbor-distance
/// arrays (the bookkeeping that buys incrementality) plus the current
/// distance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SelState {
    /// Neighbor ids.
    pub neighbors: Vec<VertexId>,
    /// The distance most recently received from each neighbor (parallel to
    /// `neighbors`).
    pub neighbor_dists: Vec<u32>,
    /// This vertex's current distance from the source.
    pub dist: u32,
}

impl SelState {
    fn recompute(&self, me: VertexId, source: VertexId, n: u32) -> u32 {
        if me == source {
            return 0;
        }
        let best = self
            .neighbor_dists
            .iter()
            .copied()
            .min()
            .map_or(INF, saturating_inc);
        cap(best, n)
    }
}

impl Encode for SelState {
    fn encode(&self, w: &mut ByteWriter) {
        self.neighbors.encode(w);
        self.neighbor_dists.encode(w);
        self.dist.encode(w);
    }
    fn size_hint(&self) -> usize {
        self.neighbors.size_hint() + self.neighbor_dists.size_hint() + 5
    }
}

impl Decode for SelState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            neighbors: Vec::decode(r)?,
            neighbor_dists: Vec::decode(r)?,
            dist: u32::decode(r)?,
        })
    }
}

/// The selective-enablement incremental job: enabled vertices apply the
/// (sender, distance) messages to their neighbor-distance arrays,
/// recompute, and notify neighbors only if their own distance changed.
pub struct SelectiveSssp {
    table: String,
    source: VertexId,
    n: u32,
}

impl SelectiveSssp {
    /// A selective-variant job solving distances from `source` over the
    /// `n`-vertex annotated graph living in `table`.
    pub fn new(table: impl Into<String>, source: VertexId, n: u32) -> Self {
        Self {
            table: table.into(),
            source,
            n,
        }
    }
}

impl Job for SelectiveSssp {
    type Key = VertexId;
    type State = SelState;
    type Message = (VertexId, u32); // (sender, sender's distance)
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            // Sorted invocation order plus a deterministic compute function
            // make every run (and every replay of a failed part) produce
            // the same states, messages, and fault-injection points.
            needs_order: true,
            deterministic: true,
            // The wave dies out by itself: compute never returns the
            // positive continue signal, vertices fall dormant unless a
            // neighbor's distance message re-enables them.
            no_continue: true,
            ..JobProperties::default()
        }
    }

    // No combiner: "the job's combiner does not combine these messages".

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        let Some(mut state) = ctx.read_state(0)? else {
            return Ok(false); // vertex was removed
        };
        let mut state_changed = false;
        for (sender, dist) in ctx.take_messages() {
            if let Some(i) = state.neighbors.iter().position(|&v| v == sender) {
                if state.neighbor_dists[i] != dist {
                    state.neighbor_dists[i] = dist;
                    state_changed = true;
                }
            }
        }
        let new_dist = state.recompute(me, self.source, self.n);
        let dist_changed = new_dist != state.dist;
        if dist_changed {
            state.dist = new_dist;
            state_changed = true;
            for i in 0..state.neighbors.len() {
                ctx.send(state.neighbors[i], (me, new_dist));
            }
        }
        if state_changed {
            ctx.write_state(0, &state)?;
        }
        Ok(false)
    }
}

/// A handle to a selective-variant SSSP instance living in a store table.
pub struct SelectiveInstance<S: KvStore> {
    store: S,
    table: String,
    source: VertexId,
    n: u32,
}

impl<S: KvStore> SelectiveInstance<S> {
    /// Loads `graph` (undirected adjacency) into `table` and solves the
    /// initial distances from `source`.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn initialize(
        store: &S,
        table: &str,
        graph: &Graph,
        source: VertexId,
    ) -> Result<(Self, RunMetrics), EbspError> {
        let runner = JobRunner::new(store.clone());
        Self::initialize_on(&runner, store, table, graph, source)
            .map(|(instance, outcome)| (instance, outcome.metrics))
    }

    /// As [`SelectiveInstance::initialize`], but runs the initial solve on
    /// a caller-configured [`JobRunner`] (which must wrap `store`) and
    /// returns the full [`RunOutcome`] — how a job service runs the
    /// initial solve under its own scheduling gate and observer.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn initialize_on(
        runner: &JobRunner<S>,
        store: &S,
        table: &str,
        graph: &Graph,
        source: VertexId,
    ) -> Result<(Self, RunOutcome), EbspError> {
        let n = graph.vertex_count();
        let instance = Self {
            store: store.clone(),
            table: table.to_owned(),
            source,
            n,
        };
        let entries: Vec<(VertexId, Vec<VertexId>)> =
            graph.iter().map(|(v, adj)| (v, adj.to_vec())).collect();
        let job = instance.job();
        let outcome = runner.launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<SelectiveSssp>| {
                    for (v, neighbors) in entries {
                        let dists = vec![INF; neighbors.len()];
                        sink.state(
                            0,
                            v,
                            SelState {
                                neighbors,
                                neighbor_dists: dists,
                                dist: INF,
                            },
                        )?;
                        sink.enable(v)?;
                    }
                    Ok(())
                },
            ))]),
        )?;
        Ok((instance, outcome))
    }

    fn job(&self) -> Arc<SelectiveSssp> {
        Arc::new(SelectiveSssp {
            table: self.table.clone(),
            source: self.source,
            n: self.n,
        })
    }

    /// Applies one batch of primitive changes and updates the distance
    /// annotations: the bookkeeping arrays of the touched endpoints are
    /// edited directly, the endpoints are seeded with each other's current
    /// distances, and the job runs — enabling only the wave of vertices the
    /// change actually affects.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn apply_batch(&self, changes: &[GraphChange]) -> Result<RunMetrics, EbspError> {
        self.apply_batch_on(&JobRunner::new(self.store.clone()), changes)
            .map(|outcome| outcome.metrics)
    }

    /// As [`SelectiveInstance::apply_batch`], but runs the update wave on a
    /// caller-configured [`JobRunner`] and returns the full
    /// [`RunOutcome`] — the way to profile or trace an incremental update.
    /// The runner must wrap the same store this instance lives in.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn apply_batch_on(
        &self,
        runner: &JobRunner<S>,
        changes: &[GraphChange],
    ) -> Result<RunOutcome, EbspError> {
        let seeds = self.seed_batch(changes)?;
        runner.launch(
            self.job(),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<SelectiveSssp>| {
                    for (to, msg) in seeds {
                        sink.message(to, msg)?;
                    }
                    Ok(())
                },
            ))]),
        )
    }

    /// Edits the endpoint states for one batch of primitive changes and
    /// returns the seed messages that wake the affected vertices.
    #[allow(clippy::type_complexity)]
    fn seed_batch(
        &self,
        changes: &[GraphChange],
    ) -> Result<Vec<(VertexId, (VertexId, u32))>, EbspError> {
        let table = self
            .store
            .lookup_table(&self.table)
            .map_err(EbspError::Kv)?;
        // Edit endpoint states directly (the incremental bookkeeping), and
        // collect seed messages telling each endpoint its counterpart's
        // current distance.
        let mut seeds: Vec<(VertexId, (VertexId, u32))> = Vec::new();
        let mut dist_cache: HashMap<VertexId, u32> = HashMap::new();
        for change in changes {
            let (u, v) = change.endpoints();
            if u == v {
                continue;
            }
            let applied = match change {
                GraphChange::AddEdge(..) => {
                    let added_u = edit_state(&table, u, |s| add_neighbor(s, v))?;
                    let added_v = edit_state(&table, v, |s| add_neighbor(s, u))?;
                    added_u || added_v
                }
                GraphChange::RemoveEdge(..) => {
                    let removed_u = edit_state(&table, u, |s| remove_neighbor(s, v))?;
                    let removed_v = edit_state(&table, v, |s| remove_neighbor(s, u))?;
                    removed_u || removed_v
                }
            };
            if applied {
                for &(a, b) in &[(u, v), (v, u)] {
                    let dist = match dist_cache.get(&a) {
                        Some(d) => *d,
                        None => {
                            let d = read_dist(&table, a)?;
                            dist_cache.insert(a, d);
                            d
                        }
                    };
                    // Tell b what a's distance currently is (removals are
                    // reflected purely by the state edit; the seed makes
                    // both endpoints recompute either way).
                    seeds.push((b, (a, dist)));
                }
            }
        }
        Ok(seeds)
    }

    /// Reads all distance annotations, sorted by vertex.
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn distances(&self) -> Result<Vec<(VertexId, u32)>, EbspError> {
        let handle = self
            .store
            .lookup_table(&self.table)
            .map_err(EbspError::Kv)?;
        let exporter = Arc::new(ripple_core::CollectingExporter::new());
        ripple_core::export_state_table::<S, VertexId, SelState, _>(
            &self.store,
            &handle,
            Arc::clone(&exporter),
        )?;
        let mut out: Vec<(VertexId, u32)> = exporter
            .take()
            .into_iter()
            .map(|(v, s)| (v, s.dist))
            .collect();
        out.sort_by_key(|(v, _)| *v);
        Ok(out)
    }

    /// The state table this instance's annotated graph lives in.
    pub fn table_name(&self) -> &str {
        &self.table
    }

    /// The source vertex distances are measured from.
    pub fn source(&self) -> VertexId {
        self.source
    }

    /// The vertex count the instance was initialized with.
    pub fn vertex_count(&self) -> u32 {
        self.n
    }
}

/// Decodes the distance annotations out of a raw state-table snapshot
/// ([`KvStore::snapshot_table`]), sorted by vertex — how a serving loop
/// turns the last barrier's consistent cut into a queryable distance map
/// without touching the live table again.
///
/// # Errors
///
/// Fails with a wire error if an entry is not a `(VertexId, SelState)`
/// pair — i.e. the snapshot is of some other table.
pub fn distances_from_snapshot(
    snapshot: &ripple_kv::TableSnapshot,
) -> Result<Vec<(VertexId, u32)>, EbspError> {
    let mut out = Vec::with_capacity(snapshot.len());
    for (key, value) in snapshot.iter() {
        let v: VertexId = ripple_wire::from_wire(key.body())?;
        let state: SelState = ripple_wire::from_wire(value)?;
        out.push((v, state.dist));
    }
    out.sort_by_key(|(v, _)| *v);
    Ok(out)
}

impl<S: RecoverableStore + HealableStore> SelectiveInstance<S> {
    /// Like [`SelectiveInstance::initialize`], but runs the initial solve
    /// under barrier checkpointing with automatic part recovery (fast
    /// single-part replay when possible, whole-group rollback otherwise).
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn initialize_recoverable(
        store: &S,
        table: &str,
        graph: &Graph,
        source: VertexId,
        checkpoint_interval: u32,
    ) -> Result<(Self, RunMetrics), EbspError> {
        let n = graph.vertex_count();
        let instance = Self {
            store: store.clone(),
            table: table.to_owned(),
            source,
            n,
        };
        let entries: Vec<(VertexId, Vec<VertexId>)> =
            graph.iter().map(|(v, adj)| (v, adj.to_vec())).collect();
        let job = instance.job();
        let outcome = JobRunner::new(store.clone())
            .checkpoint_interval(checkpoint_interval)
            .launch(
                job,
                RunOptions::new()
                    .loaders(vec![Box::new(FnLoader::new(
                        move |sink: &mut dyn LoadSink<SelectiveSssp>| {
                            for (v, neighbors) in entries {
                                let dists = vec![INF; neighbors.len()];
                                sink.state(
                                    0,
                                    v,
                                    SelState {
                                        neighbors,
                                        neighbor_dists: dists,
                                        dist: INF,
                                    },
                                )?;
                                sink.enable(v)?;
                            }
                            Ok(())
                        },
                    ))])
                    .recovery(),
            )?;
        Ok((instance, outcome.metrics))
    }

    /// Like [`SelectiveInstance::apply_batch`], but the update wave runs
    /// under barrier checkpointing with automatic part recovery.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn apply_batch_recoverable(
        &self,
        changes: &[GraphChange],
        checkpoint_interval: u32,
    ) -> Result<RunMetrics, EbspError> {
        let seeds = self.seed_batch(changes)?;
        let outcome = JobRunner::new(self.store.clone())
            .checkpoint_interval(checkpoint_interval)
            .launch(
                self.job(),
                RunOptions::new()
                    .loaders(vec![Box::new(FnLoader::new(
                        move |sink: &mut dyn LoadSink<SelectiveSssp>| {
                            for (to, msg) in seeds {
                                sink.message(to, msg)?;
                            }
                            Ok(())
                        },
                    ))])
                    .recovery(),
            )?;
        Ok(outcome.metrics)
    }
}

impl<S: RecoverableStore + HealableStore + DurableStore> SelectiveInstance<S> {
    /// Like [`SelectiveInstance::initialize_recoverable`], but every
    /// barrier is also a *durable* commit, and the run survives the
    /// process: if a previous `initialize_durable` of the same table was
    /// interrupted — crash, kill, or a `max_steps` limit — calling this
    /// again against a reopened store resumes from the last durable
    /// barrier instead of starting over (the loader is skipped on
    /// resume).  Deterministic, so a resumed solve ends in exactly the
    /// state an uninterrupted one would.
    ///
    /// `max_steps` bounds the solve, returning
    /// [`EbspError::StepLimitExceeded`] when exceeded — useful for
    /// staging work across restarts (and for testing the resume path).
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn initialize_durable(
        store: &S,
        table: &str,
        graph: &Graph,
        source: VertexId,
        checkpoint_interval: u32,
        max_steps: Option<u32>,
    ) -> Result<(Self, RunMetrics), EbspError> {
        let n = graph.vertex_count();
        let instance = Self {
            store: store.clone(),
            table: table.to_owned(),
            source,
            n,
        };
        let entries: Vec<(VertexId, Vec<VertexId>)> =
            graph.iter().map(|(v, adj)| (v, adj.to_vec())).collect();
        let job = instance.job();
        let mut runner = JobRunner::new(store.clone());
        runner.checkpoint_interval(checkpoint_interval);
        if let Some(limit) = max_steps {
            runner.max_steps(limit);
        }
        let outcome = runner.launch(
            job,
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    move |sink: &mut dyn LoadSink<SelectiveSssp>| {
                        for (v, neighbors) in entries {
                            let dists = vec![INF; neighbors.len()];
                            sink.state(
                                0,
                                v,
                                SelState {
                                    neighbors,
                                    neighbor_dists: dists,
                                    dist: INF,
                                },
                            )?;
                            sink.enable(v)?;
                        }
                        Ok(())
                    },
                ))])
                .recovery()
                .durable(),
        )?;
        Ok((instance, outcome.metrics))
    }
}

fn add_neighbor(s: &mut SelState, v: VertexId) -> bool {
    if s.neighbors.contains(&v) {
        return false;
    }
    s.neighbors.push(v);
    s.neighbor_dists.push(INF);
    true
}

fn remove_neighbor(s: &mut SelState, v: VertexId) -> bool {
    match s.neighbors.iter().position(|&x| x == v) {
        Some(i) => {
            s.neighbors.swap_remove(i);
            s.neighbor_dists.swap_remove(i);
            true
        }
        None => false,
    }
}

fn edit_state<T: ripple_kv::Table>(
    table: &T,
    v: VertexId,
    f: impl FnOnce(&mut SelState) -> bool,
) -> Result<bool, EbspError> {
    let key = ripple_core::key_to_routed(&v);
    let Some(bytes) = table.get(&key).map_err(EbspError::Kv)? else {
        return Ok(false);
    };
    let mut state: SelState = ripple_wire::from_wire(&bytes)?;
    let changed = f(&mut state);
    if changed {
        table
            .put(key, ripple_wire::to_wire(&state))
            .map_err(EbspError::Kv)?;
    }
    Ok(changed)
}

fn read_dist<T: ripple_kv::Table>(table: &T, v: VertexId) -> Result<u32, EbspError> {
    let key = ripple_core::key_to_routed(&v);
    match table.get(&key).map_err(EbspError::Kv)? {
        None => Ok(INF),
        Some(bytes) => {
            let state: SelState = ripple_wire::from_wire(&bytes)?;
            Ok(state.dist)
        }
    }
}

// ===========================================================================
// Full-scan variant
// ===========================================================================

/// Full-scan vertex state: the neighbor array and the current distance —
/// no per-neighbor bookkeeping, which is why every update needs full scans.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsState {
    /// Neighbor ids.
    pub neighbors: Vec<VertexId>,
    /// Current distance from the source.
    pub dist: u32,
}

impl Encode for FsState {
    fn encode(&self, w: &mut ByteWriter) {
        self.neighbors.encode(w);
        self.dist.encode(w);
    }
    fn size_hint(&self) -> usize {
        self.neighbors.size_hint() + 5
    }
}

impl Decode for FsState {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            neighbors: Vec::decode(r)?,
            dist: u32::decode(r)?,
        })
    }
}

/// The full-scan message: a full state-propagating message a vertex sends
/// itself, or a distance update along an edge.  The combiner merges them
/// into "a preliminary full state" exactly as §V-C describes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FsMsg {
    /// Present on the self-message: the full state (neighbors + own dist).
    pub state: Option<FsState>,
    /// Minimum distance heard from any neighbor so far.
    pub min_neighbor: u32,
    /// Whether any neighbor supports (dist - 1); used by the invalidation
    /// wave.
    pub support: bool,
    /// The distance the support refers to.
    pub supported_value: u32,
}

impl Encode for FsMsg {
    fn encode(&self, w: &mut ByteWriter) {
        self.state.encode(w);
        self.min_neighbor.encode(w);
        self.support.encode(w);
        self.supported_value.encode(w);
    }
}

impl Decode for FsMsg {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Self {
            state: Option::decode(r)?,
            min_neighbor: u32::decode(r)?,
            support: bool::decode(r)?,
            supported_value: u32::decode(r)?,
        })
    }
}

/// Which wave a full-scan job performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Wave {
    /// Raise to +∞ every annotation no longer supported by a neighbor
    /// (needed only when the batch removed edges).
    Invalidate,
    /// Lower annotations to the values justified by neighbors.
    Relax,
}

/// One two-step (map + reduce) full-scan job.
pub struct FullScanSssp {
    table: String,
    source: VertexId,
    wave: Wave,
    n: u32,
}

impl FullScanSssp {
    /// One `wave` over the `n`-vertex annotated graph in `table`, relaxing
    /// (or invalidating) distances from `source`.
    pub fn new(table: impl Into<String>, source: VertexId, wave: Wave, n: u32) -> Self {
        Self {
            table: table.into(),
            source,
            wave,
            n,
        }
    }
}

impl Job for FullScanSssp {
    type Key = VertexId;
    type State = FsState;
    type Message = FsMsg;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![(CHANGED.to_owned(), Arc::new(SumI64))]
    }

    fn properties(&self) -> JobProperties {
        // All-integer arithmetic under a commutative, always-merging
        // combiner: any fold order gives the same bits (deterministic), and
        // each reduce-side vertex sees exactly one post-combine message
        // (one-msg).  Compute never returns the continue signal; the wave
        // driver, not the job, decides whether another scan runs.
        JobProperties {
            deterministic: true,
            one_msg: true,
            no_continue: true,
            ..JobProperties::default()
        }
    }

    fn combine_messages(&self, _k: &VertexId, a: &FsMsg, b: &FsMsg) -> Option<FsMsg> {
        // "This job has a combiner with an obvious implementation."
        Some(FsMsg {
            state: a.state.clone().or_else(|| b.state.clone()),
            min_neighbor: a.min_neighbor.min(b.min_neighbor),
            support: a.support || b.support,
            supported_value: a.supported_value.min(b.supported_value),
        })
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        if ctx.step() == 1 {
            // Map: full scan — every vertex reads its state and shuffles.
            let Some(state) = ctx.read_state(0)? else {
                return Ok(false);
            };
            for i in 0..state.neighbors.len() {
                let to = state.neighbors[i];
                ctx.send(
                    to,
                    FsMsg {
                        state: None,
                        min_neighbor: state.dist,
                        // Support for a neighbor whose dist is ours + 1.
                        support: true,
                        supported_value: saturating_inc(state.dist),
                    },
                );
            }
            ctx.send(
                me,
                FsMsg {
                    state: Some(state),
                    min_neighbor: INF,
                    support: false,
                    supported_value: INF,
                },
            );
            Ok(false)
        } else {
            // Reduce: recompute the distance from the folded messages.
            let msgs = ctx.take_messages();
            let folded = msgs
                .into_iter()
                .reduce(|a, b| self.combine_messages(&me, &a, &b).expect("always combines"));
            let Some(folded) = folded else {
                return Ok(false);
            };
            let Some(state) = folded.state else {
                return Ok(false); // no self-state: vertex gone
            };
            let old = state.dist;
            let new = if me == self.source {
                0
            } else {
                match self.wave {
                    Wave::Relax => cap(saturating_inc(folded.min_neighbor), self.n).min(old),
                    Wave::Invalidate => {
                        // Keep `old` only if some neighbor's dist + 1 == old
                        // (i.e. a neighbor supports it); otherwise +∞.
                        if old != INF && folded.supported_value == old {
                            old
                        } else {
                            INF
                        }
                    }
                }
            };
            if new != old {
                ctx.aggregate(CHANGED, AggValue::I64(1))?;
            }
            ctx.write_state(
                0,
                &FsState {
                    neighbors: state.neighbors,
                    dist: new,
                },
            )?;
            Ok(false)
        }
    }
}

/// A handle to a full-scan SSSP instance.
pub struct FullScanInstance<S: KvStore> {
    store: S,
    table: String,
    source: VertexId,
    n: u32,
}

impl<S: KvStore> FullScanInstance<S> {
    /// Loads `graph` into `table` and solves initial distances.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn initialize(
        store: &S,
        table: &str,
        graph: &Graph,
        source: VertexId,
    ) -> Result<(Self, RunMetrics), EbspError> {
        let instance = Self {
            store: store.clone(),
            table: table.to_owned(),
            source,
            n: graph.vertex_count(),
        };
        // Install states directly.
        let handle = match store.lookup_table(table) {
            Ok(t) => t,
            Err(_) => store
                .create_table(&ripple_kv::TableSpec::new(table))
                .map_err(EbspError::Kv)?,
        };
        for (v, adj) in graph.iter() {
            let state = FsState {
                neighbors: adj.to_vec(),
                dist: if v == source { 0 } else { INF },
            };
            handle
                .put(ripple_core::key_to_routed(&v), ripple_wire::to_wire(&state))
                .map_err(EbspError::Kv)?;
        }
        let metrics = instance.run_waves(false)?;
        Ok((instance, metrics))
    }

    /// Applies a batch by editing neighbor arrays, then runs the update
    /// waves: Invalidate-until-stable if any edge was removed, then
    /// Relax-until-stable — each wave iteration being a full two-step scan
    /// of the entire graph.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn apply_batch(&self, changes: &[GraphChange]) -> Result<RunMetrics, EbspError> {
        let table = self
            .store
            .lookup_table(&self.table)
            .map_err(EbspError::Kv)?;
        let mut any_removal = false;
        for change in changes {
            let (u, v) = change.endpoints();
            if u == v {
                continue;
            }
            match change {
                GraphChange::AddEdge(..) => {
                    edit_fs(&table, u, |s| fs_add(s, v))?;
                    edit_fs(&table, v, |s| fs_add(s, u))?;
                }
                GraphChange::RemoveEdge(..) => {
                    let a = edit_fs(&table, u, |s| fs_remove(s, v))?;
                    let b = edit_fs(&table, v, |s| fs_remove(s, u))?;
                    any_removal |= a || b;
                }
            }
        }
        self.run_waves(any_removal)
    }

    fn run_waves(&self, with_invalidate: bool) -> Result<RunMetrics, EbspError> {
        let mut total = RunMetrics::default();
        if with_invalidate {
            self.run_wave(Wave::Invalidate, &mut total)?;
        }
        self.run_wave(Wave::Relax, &mut total)?;
        Ok(total)
    }

    /// "There is an external driver that invokes a series of MapReduce-like
    /// jobs until there are no more changes."
    fn run_wave(&self, wave: Wave, total: &mut RunMetrics) -> Result<(), EbspError> {
        loop {
            let n = self.n;
            let job = Arc::new(FullScanSssp {
                table: self.table.clone(),
                source: self.source,
                wave,
                n,
            });
            let outcome = JobRunner::new(self.store.clone()).launch(
                job,
                RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                    move |sink: &mut dyn LoadSink<FullScanSssp>| {
                        for v in 0..n {
                            sink.enable(v)?;
                        }
                        Ok(())
                    },
                ))]),
            )?;
            accumulate(total, &outcome.metrics);
            let changed = outcome.aggregates.get(CHANGED).map_or(0, |v| v.as_i64());
            if changed == 0 {
                return Ok(());
            }
        }
    }

    /// Reads all distance annotations, sorted by vertex.
    ///
    /// # Errors
    ///
    /// Propagates store errors.
    pub fn distances(&self) -> Result<Vec<(VertexId, u32)>, EbspError> {
        let handle = self
            .store
            .lookup_table(&self.table)
            .map_err(EbspError::Kv)?;
        let exporter = Arc::new(ripple_core::CollectingExporter::new());
        ripple_core::export_state_table::<S, VertexId, FsState, _>(
            &self.store,
            &handle,
            Arc::clone(&exporter),
        )?;
        let mut out: Vec<(VertexId, u32)> = exporter
            .take()
            .into_iter()
            .map(|(v, s)| (v, s.dist))
            .collect();
        out.sort_by_key(|(v, _)| *v);
        Ok(out)
    }
}

fn fs_add(s: &mut FsState, v: VertexId) -> bool {
    if s.neighbors.contains(&v) {
        return false;
    }
    s.neighbors.push(v);
    true
}

fn fs_remove(s: &mut FsState, v: VertexId) -> bool {
    match s.neighbors.iter().position(|&x| x == v) {
        Some(i) => {
            s.neighbors.swap_remove(i);
            true
        }
        None => false,
    }
}

fn edit_fs<T: ripple_kv::Table>(
    table: &T,
    v: VertexId,
    f: impl FnOnce(&mut FsState) -> bool,
) -> Result<bool, EbspError> {
    let key = ripple_core::key_to_routed(&v);
    let Some(bytes) = table.get(&key).map_err(EbspError::Kv)? else {
        return Ok(false);
    };
    let mut state: FsState = ripple_wire::from_wire(&bytes)?;
    let changed = f(&mut state);
    if changed {
        table
            .put(key, ripple_wire::to_wire(&state))
            .map_err(EbspError::Kv)?;
    }
    Ok(changed)
}

fn accumulate(total: &mut RunMetrics, part: &RunMetrics) {
    total.steps += part.steps;
    total.barriers += part.barriers;
    total.invocations += part.invocations;
    total.messages_sent += part.messages_sent;
    total.messages_combined += part.messages_combined;
    total.state_reads += part.state_reads;
    total.state_writes += part.state_writes;
    total.spill_batches += part.spill_batches;
    total.elapsed += part.elapsed;
}

/// A sequential BFS oracle for validating both variants.
pub fn bfs_oracle(graph: &MutableGraph, source: VertexId) -> Vec<u32> {
    let g = graph.graph();
    let n = g.vertex_count() as usize;
    let mut dist = vec![INF; n];
    if (source as usize) < n {
        dist[source as usize] = 0;
        let mut queue = std::collections::VecDeque::from([source]);
        while let Some(u) = queue.pop_front() {
            let du = dist[u as usize];
            for &v in g.neighbors(u) {
                if dist[v as usize] == INF {
                    dist[v as usize] = du + 1;
                    queue.push_back(v);
                }
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_wire::{from_wire, to_wire};

    #[test]
    fn codecs_roundtrip() {
        let s = SelState {
            neighbors: vec![1, 2],
            neighbor_dists: vec![3, INF],
            dist: 4,
        };
        assert_eq!(from_wire::<SelState>(&to_wire(&s)).unwrap(), s);
        let f = FsState {
            neighbors: vec![9],
            dist: INF,
        };
        assert_eq!(from_wire::<FsState>(&to_wire(&f)).unwrap(), f);
        let m = FsMsg {
            state: Some(f),
            min_neighbor: 2,
            support: true,
            supported_value: 3,
        };
        assert_eq!(from_wire::<FsMsg>(&to_wire(&m)).unwrap(), m);
    }

    #[test]
    fn neighbor_bookkeeping_edits() {
        let mut s = SelState {
            neighbors: vec![1],
            neighbor_dists: vec![5],
            dist: 6,
        };
        assert!(add_neighbor(&mut s, 2));
        assert!(!add_neighbor(&mut s, 2));
        assert_eq!(s.neighbors.len(), s.neighbor_dists.len());
        assert!(remove_neighbor(&mut s, 1));
        assert!(!remove_neighbor(&mut s, 1));
        assert_eq!(s.neighbors, vec![2]);
        assert_eq!(s.neighbor_dists, vec![INF]);
    }

    #[test]
    fn recompute_respects_source_and_cap() {
        let s = SelState {
            neighbors: vec![1],
            neighbor_dists: vec![7],
            dist: INF,
        };
        assert_eq!(s.recompute(0, 0, 100), 0, "source is always 0");
        assert_eq!(s.recompute(2, 0, 100), 8);
        assert_eq!(s.recompute(2, 0, 8), INF, "capped at n");
        let empty = SelState {
            neighbors: vec![],
            neighbor_dists: vec![],
            dist: 3,
        };
        assert_eq!(empty.recompute(2, 0, 100), INF);
    }

    #[test]
    fn bfs_oracle_small() {
        let mut g = MutableGraph::new(5);
        g.apply(GraphChange::AddEdge(0, 1));
        g.apply(GraphChange::AddEdge(1, 2));
        g.apply(GraphChange::AddEdge(2, 3));
        assert_eq!(bfs_oracle(&g, 0), vec![0, 1, 2, 3, INF]);
    }
}
