//! A thread-safe queue of graph mutations feeding a *serving-mode*
//! incremental job.
//!
//! The paper's incremental SSSP applies change batches handed to it by a
//! driver; a resident service instead receives mutations continuously —
//! clients push [`GraphChange`]s from any thread, and a serving loop
//! drains them into batches between barriers ([`MutationQueue::wait_drain`]),
//! applying each batch as one selective-enablement wave.  Closing the
//! queue ([`MutationQueue::close`]) lets producers signal "no more
//! changes" so the serving loop can drain what remains and park.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::generate::GraphChange;

#[derive(Debug, Default)]
struct QueueState {
    pending: VecDeque<GraphChange>,
    closed: bool,
    pushed: u64,
    drained: u64,
}

/// Unbounded MPMC queue of [`GraphChange`]s with blocking batch drains.
/// Cheap to clone — clones share the queue.
#[derive(Debug, Clone, Default)]
pub struct MutationQueue {
    inner: Arc<(Mutex<QueueState>, Condvar)>,
}

impl MutationQueue {
    /// An empty, open queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enqueues one change; returns `false` (dropping the change) if the
    /// queue is closed.
    pub fn push(&self, change: GraphChange) -> bool {
        let (lock, cv) = &*self.inner;
        let mut state = lock.lock().expect("mutation queue poisoned");
        if state.closed {
            return false;
        }
        state.pending.push_back(change);
        state.pushed += 1;
        drop(state);
        cv.notify_one();
        true
    }

    /// Enqueues a whole batch; returns how many were accepted (0 when
    /// closed — a batch is never split).
    pub fn push_batch(&self, changes: &[GraphChange]) -> usize {
        let (lock, cv) = &*self.inner;
        let mut state = lock.lock().expect("mutation queue poisoned");
        if state.closed {
            return 0;
        }
        state.pending.extend(changes.iter().copied());
        state.pushed += changes.len() as u64;
        drop(state);
        cv.notify_all();
        changes.len()
    }

    /// Takes up to `max` pending changes without blocking (possibly none).
    pub fn drain(&self, max: usize) -> Vec<GraphChange> {
        let (lock, _) = &*self.inner;
        let mut state = lock.lock().expect("mutation queue poisoned");
        Self::take(&mut state, max)
    }

    /// Blocks until at least one change is pending, the queue closes, or
    /// `timeout` passes; then takes up to `max` changes.  An empty return
    /// therefore means "timed out or closed with nothing left".
    pub fn wait_drain(&self, max: usize, timeout: Duration) -> Vec<GraphChange> {
        let (lock, cv) = &*self.inner;
        let mut state = lock.lock().expect("mutation queue poisoned");
        let deadline = std::time::Instant::now() + timeout;
        while state.pending.is_empty() && !state.closed {
            let now = std::time::Instant::now();
            if now >= deadline {
                return Vec::new();
            }
            let (next, res) = cv
                .wait_timeout(state, deadline - now)
                .expect("mutation queue poisoned");
            state = next;
            if res.timed_out() && state.pending.is_empty() {
                return Vec::new();
            }
        }
        Self::take(&mut state, max)
    }

    /// Closes the queue: future pushes are refused, pending changes stay
    /// drainable, and blocked drainers wake.
    pub fn close(&self) {
        let (lock, cv) = &*self.inner;
        lock.lock().expect("mutation queue poisoned").closed = true;
        cv.notify_all();
    }

    /// True once [`MutationQueue::close`] was called.
    pub fn is_closed(&self) -> bool {
        self.inner.0.lock().expect("mutation queue poisoned").closed
    }

    /// Currently pending (pushed but not yet drained) changes.
    pub fn len(&self) -> usize {
        self.inner
            .0
            .lock()
            .expect("mutation queue poisoned")
            .pending
            .len()
    }

    /// True when nothing is pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Lifetime totals: `(pushed, drained)` change counts.
    pub fn totals(&self) -> (u64, u64) {
        let state = self.inner.0.lock().expect("mutation queue poisoned");
        (state.pushed, state.drained)
    }

    fn take(state: &mut QueueState, max: usize) -> Vec<GraphChange> {
        let n = state.pending.len().min(max);
        let batch: Vec<GraphChange> = state.pending.drain(..n).collect();
        state.drained += batch.len() as u64;
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_drain_roundtrip() {
        let q = MutationQueue::new();
        assert!(q.push(GraphChange::AddEdge(0, 1)));
        assert_eq!(
            q.push_batch(&[GraphChange::AddEdge(1, 2), GraphChange::RemoveEdge(0, 1)]),
            2
        );
        assert_eq!(q.len(), 3);
        let batch = q.drain(2);
        assert_eq!(
            batch,
            vec![GraphChange::AddEdge(0, 1), GraphChange::AddEdge(1, 2)]
        );
        assert_eq!(q.drain(10), vec![GraphChange::RemoveEdge(0, 1)]);
        assert!(q.is_empty());
        assert_eq!(q.totals(), (3, 3));
    }

    #[test]
    fn close_refuses_pushes_but_drains_remainder() {
        let q = MutationQueue::new();
        q.push(GraphChange::AddEdge(0, 1));
        q.close();
        assert!(!q.push(GraphChange::AddEdge(2, 3)));
        assert_eq!(q.push_batch(&[GraphChange::AddEdge(4, 5)]), 0);
        assert_eq!(q.drain(10).len(), 1);
        assert!(q.is_closed());
    }

    #[test]
    fn wait_drain_wakes_on_push() {
        let q = MutationQueue::new();
        let q2 = q.clone();
        let waiter = std::thread::spawn(move || q2.wait_drain(10, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.push(GraphChange::AddEdge(7, 8));
        let batch = waiter.join().unwrap();
        assert_eq!(batch, vec![GraphChange::AddEdge(7, 8)]);
    }

    #[test]
    fn wait_drain_wakes_on_close() {
        let q = MutationQueue::new();
        let q2 = q.clone();
        let waiter = std::thread::spawn(move || q2.wait_drain(10, Duration::from_secs(5)));
        std::thread::sleep(Duration::from_millis(20));
        q.close();
        assert!(waiter.join().unwrap().is_empty());
    }

    #[test]
    fn wait_drain_times_out_empty() {
        let q = MutationQueue::new();
        assert!(q.wait_drain(10, Duration::from_millis(10)).is_empty());
    }
}
