//! Classic vertex-centric algorithms on the Graph EBSP layer — written
//! purely against [`VertexProgram`], demonstrating the Figure 2 layering:
//! nothing here touches the engine below the Pregel-style API.

use std::sync::Arc;

use ripple_core::{AggValue, Aggregate, EbspError, JobRunner, RunOptions, SumI64};
use ripple_kv::KvStore;

use crate::generate::Graph;
use crate::vertex::{
    read_vertex_values, run_vertex_program, seed_messages, GraphLoader, VertexContext, VertexJob,
    VertexProgram,
};
use crate::{VertexId, INF};

/// Connected components by minimum-label propagation: every vertex adopts
/// the smallest id it has heard of and gossips improvements.  On an
/// undirected (symmetric) graph the fixpoint labels each component with its
/// smallest member.
pub struct MinLabelComponents;

impl VertexProgram for MinLabelComponents {
    type Value = VertexId;
    type Message = VertexId;

    fn compute(&self, ctx: &mut VertexContext<'_, '_, Self>) -> Result<(), EbspError> {
        let heard = ctx.messages().iter().copied().min();
        let current = *ctx.value();
        let best = match heard {
            Some(h) => h.min(current),
            None => current,
        };
        if ctx.superstep() == 1 || best < current {
            ctx.set_value(best);
            ctx.send_to_neighbors(best);
        }
        ctx.vote_to_halt();
        Ok(())
    }

    fn combine(&self, a: &VertexId, b: &VertexId) -> Option<VertexId> {
        Some(*a.min(b))
    }
}

/// Labels every vertex of `graph` with the smallest vertex id in its
/// component.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn connected_components<S: KvStore>(
    store: &S,
    table: &str,
    graph: &Graph,
) -> Result<Vec<(VertexId, VertexId)>, EbspError> {
    run_vertex_program(
        store,
        Arc::new(MinLabelComponents),
        table,
        graph.clone(),
        |v| v,
    )?;
    read_vertex_values(store, table)
}

/// Breadth-first distances from a source: message-driven, so only the
/// frontier is enabled each superstep (selective enablement at work).
pub struct BfsDistances;

impl VertexProgram for BfsDistances {
    type Value = u32;
    type Message = u32; // distance offered

    fn compute(&self, ctx: &mut VertexContext<'_, '_, Self>) -> Result<(), EbspError> {
        let offered = ctx.messages().iter().copied().min();
        if let Some(d) = offered {
            if d < *ctx.value() {
                ctx.set_value(d);
                ctx.send_to_neighbors(d + 1);
            }
        }
        ctx.vote_to_halt();
        Ok(())
    }

    fn combine(&self, a: &u32, b: &u32) -> Option<u32> {
        Some(*a.min(b))
    }
}

/// Computes hop distances from `source` over `graph` (treated as directed;
/// pass a symmetric graph for undirected semantics).
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn bfs<S: KvStore>(
    store: &S,
    table: &str,
    graph: &Graph,
    source: VertexId,
) -> Result<Vec<(VertexId, u32)>, EbspError> {
    let job = Arc::new(VertexJob::new(Arc::new(BfsDistances), table));
    JobRunner::new(store.clone()).launch(
        job,
        RunOptions::new().loaders(vec![
            Box::new(GraphLoader::new(graph.clone(), |_| INF).without_enabling()),
            seed_messages::<BfsDistances>(vec![(source, 0)]),
        ]),
    )?;
    read_vertex_values(store, table)
}

/// Out-degree histogram via one superstep of Graph EBSP plus aggregation
/// at the client — a trivial "quick analytic" in the platform's terms.
pub fn degree_counts<S: KvStore>(
    store: &S,
    table: &str,
    graph: &Graph,
) -> Result<Vec<(VertexId, u32)>, EbspError> {
    struct Degrees;
    impl VertexProgram for Degrees {
        type Value = u32;
        type Message = ();
        fn compute(&self, ctx: &mut VertexContext<'_, '_, Self>) -> Result<(), EbspError> {
            let d = ctx.edges().len() as u32;
            ctx.set_value(d);
            ctx.vote_to_halt();
            Ok(())
        }
    }
    run_vertex_program(store, Arc::new(Degrees), table, graph.clone(), |_| 0)?;
    read_vertex_values(store, table)
}

/// Triangle counting on an undirected (symmetric) graph, Pregel style:
/// superstep 1, each vertex `v` sends its higher-id neighbor list to every
/// neighbor `u > v`; superstep 2, `u` intersects each received list with
/// its own higher-id neighbors, so each triangle `v < u < w` is counted
/// exactly once, into an aggregator.
pub struct TriangleCount;

impl VertexProgram for TriangleCount {
    type Value = u32; // triangles this vertex closed (as the middle vertex)
    type Message = Vec<VertexId>;

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![("triangles".to_owned(), Arc::new(SumI64))]
    }

    fn compute(&self, ctx: &mut VertexContext<'_, '_, Self>) -> Result<(), EbspError> {
        let me = ctx.id();
        if ctx.superstep() == 1 {
            let higher: Vec<VertexId> = ctx.edges().iter().copied().filter(|&w| w > me).collect();
            if !higher.is_empty() {
                let targets = higher.clone();
                for u in targets {
                    ctx.send(u, higher.clone());
                }
            }
            return Ok(()); // stay active for the counting superstep
        }
        let mut mine: Vec<VertexId> = ctx.edges().iter().copied().filter(|&w| w > me).collect();
        mine.sort_unstable();
        let mut closed = 0u32;
        for list in ctx.take_messages() {
            for w in list {
                if w > me && mine.binary_search(&w).is_ok() {
                    closed += 1;
                }
            }
        }
        if closed > 0 {
            ctx.set_value(closed);
            ctx.aggregate("triangles", AggValue::I64(i64::from(closed)))?;
        }
        ctx.vote_to_halt();
        Ok(())
    }
}

/// Counts the triangles of `graph` (undirected, symmetric adjacency),
/// returning the global total.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn triangle_count<S: KvStore>(store: &S, table: &str, graph: &Graph) -> Result<u64, EbspError> {
    let outcome = run_vertex_program(store, Arc::new(TriangleCount), table, graph.clone(), |_| 0)?;
    Ok(outcome
        .aggregates
        .get("triangles")
        .map_or(0, |v| v.as_i64()) as u64)
}
