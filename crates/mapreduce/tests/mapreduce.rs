//! Tests of the MapReduce layer: couplets, combiners, empty reductions,
//! iterated convergence, and the two-syncs-per-iteration cost shape.

use std::sync::Arc;

use ripple_mapreduce::{run_map_reduce, IteratedMapReduce, MapReduce};
use ripple_store_mem::MemStore;

fn store() -> MemStore {
    MemStore::builder().default_parts(4).build()
}

struct WordCount;

impl MapReduce for WordCount {
    type InKey = u32;
    type InValue = String;
    type MidKey = String;
    type MidValue = u64;
    type OutValue = u64;

    fn map(&self, _doc: &u32, text: &String, emit: &mut dyn FnMut(String, u64)) {
        for word in text.split_whitespace() {
            emit(word.to_owned(), 1);
        }
    }

    fn reduce(&self, _word: &String, counts: Vec<u64>) -> Option<u64> {
        Some(counts.into_iter().sum())
    }

    fn combine(&self, _word: &String, a: &u64, b: &u64) -> Option<u64> {
        Some(a + b)
    }
}

#[test]
fn word_count_end_to_end() {
    let input = vec![
        (1u32, "the quick brown fox".to_owned()),
        (2, "the lazy dog".to_owned()),
        (3, "the quick dog".to_owned()),
    ];
    let mut out = run_map_reduce(&store(), Arc::new(WordCount), input).unwrap();
    out.sort();
    assert_eq!(
        out,
        vec![
            ("brown".to_owned(), 1),
            ("dog".to_owned(), 2),
            ("fox".to_owned(), 1),
            ("lazy".to_owned(), 1),
            ("quick".to_owned(), 2),
            ("the".to_owned(), 3),
        ]
    );
}

#[test]
fn empty_input_gives_empty_output() {
    let out = run_map_reduce(&store(), Arc::new(WordCount), Vec::new()).unwrap();
    assert!(out.is_empty());
}

struct FilterEvens;

impl MapReduce for FilterEvens {
    type InKey = u32;
    type InValue = u32;
    type MidKey = u32;
    type MidValue = u32;
    type OutValue = u32;

    fn map(&self, _k: &u32, v: &u32, emit: &mut dyn FnMut(u32, u32)) {
        emit(v % 10, *v);
    }

    fn reduce(&self, bucket: &u32, values: Vec<u32>) -> Option<u32> {
        // Only even buckets produce output: reductions may emit nothing.
        (bucket.is_multiple_of(2)).then(|| values.into_iter().sum())
    }
}

#[test]
fn reduce_may_emit_nothing() {
    let input: Vec<(u32, u32)> = (0..20).map(|i| (i, i)).collect();
    let mut out = run_map_reduce(&store(), Arc::new(FilterEvens), input).unwrap();
    out.sort();
    let buckets: Vec<u32> = out.iter().map(|(b, _)| *b).collect();
    assert_eq!(buckets, vec![0, 2, 4, 6, 8]);
    // Bucket b sums b and b+10.
    for (b, sum) in out {
        assert_eq!(sum, b + (b + 10));
    }
}

/// An iterative computation: repeatedly halve values until all are <= 1.
struct HalveAll;

impl MapReduce for HalveAll {
    type InKey = u32;
    type InValue = u64;
    type MidKey = u32;
    type MidValue = u64;
    type OutValue = u64;

    fn map(&self, k: &u32, v: &u64, emit: &mut dyn FnMut(u32, u64)) {
        emit(*k, v / 2);
    }

    fn reduce(&self, _k: &u32, values: Vec<u64>) -> Option<u64> {
        values.into_iter().next()
    }
}

#[test]
fn iterated_map_reduce_converges_with_two_syncs_per_iteration() {
    let input: Vec<(u32, u64)> = (0..8u32).map(|k| (k, 1 << k)).collect();
    let driver = IteratedMapReduce::new(Arc::new(HalveAll), 64);
    let (out, report) = driver
        .run(
            &store(),
            input,
            |k, v| (*k, *v),
            |_iter, out| out.iter().all(|(_, v)| *v <= 1),
        )
        .unwrap();
    // 1 << 7 needs 7 halvings to reach 1.
    assert_eq!(report.iterations, 7);
    assert_eq!(report.steps, 14, "two BSP steps per iteration");
    assert_eq!(report.barriers, 14, "two synchronizations per iteration");
    let max = out.iter().map(|(_, v)| *v).max().unwrap();
    assert_eq!(max, 1);
}

#[test]
fn iteration_cap_stops_divergent_jobs() {
    let input: Vec<(u32, u64)> = vec![(0, u64::MAX)];
    let driver = IteratedMapReduce::new(Arc::new(HalveAll), 3);
    let (_, report) = driver
        .run(&store(), input, |k, v| (*k, *v), |_, _| false)
        .unwrap();
    assert_eq!(report.iterations, 3);
}

/// The combiner must not change results, only reduce shuffle volume.
#[test]
fn combiner_is_semantically_transparent() {
    struct NoCombine;
    impl MapReduce for NoCombine {
        type InKey = u32;
        type InValue = String;
        type MidKey = String;
        type MidValue = u64;
        type OutValue = u64;
        fn map(&self, k: &u32, text: &String, emit: &mut dyn FnMut(String, u64)) {
            WordCount.map(k, text, emit);
        }
        fn reduce(&self, w: &String, counts: Vec<u64>) -> Option<u64> {
            WordCount.reduce(w, counts)
        }
    }
    let input = vec![
        (1u32, "x y x y x".to_owned()),
        (2, "y z z".to_owned()),
        (3, "x x x".to_owned()),
    ];
    let mut with = run_map_reduce(&store(), Arc::new(WordCount), input.clone()).unwrap();
    let mut without = run_map_reduce(&store(), Arc::new(NoCombine), input).unwrap();
    with.sort();
    without.sort();
    assert_eq!(with, without);
}
