//! The unified component key and state types that let one EBSP job host
//! both map-side and reduce-side components.

use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

/// A MapReduce component key: map-side components are input keys,
/// reduce-side components are intermediate keys.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum MrKey<I, M> {
    /// A map-side component (one per input pair).
    In(I),
    /// A reduce-side component (one per intermediate key).
    Mid(M),
}

impl<I: Encode, M: Encode> Encode for MrKey<I, M> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            MrKey::In(k) => {
                w.push(0);
                k.encode(w);
            }
            MrKey::Mid(k) => {
                w.push(1);
                k.encode(w);
            }
        }
    }
    fn size_hint(&self) -> usize {
        1 + match self {
            MrKey::In(k) => k.size_hint(),
            MrKey::Mid(k) => k.size_hint(),
        }
    }
}

impl<I: Decode, M: Decode> Decode for MrKey<I, M> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(MrKey::In(I::decode(r)?)),
            1 => Ok(MrKey::Mid(M::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                target: "MrKey",
                tag,
            }),
        }
    }
}

/// A MapReduce component state: input values on the map side, reduction
/// results on the reduce side.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MrState<I, O> {
    /// An input value awaiting its map invocation.
    In(I),
    /// A reduction result.
    Out(O),
}

impl<I: Encode, O: Encode> Encode for MrState<I, O> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            MrState::In(v) => {
                w.push(0);
                v.encode(w);
            }
            MrState::Out(v) => {
                w.push(1);
                v.encode(w);
            }
        }
    }
    fn size_hint(&self) -> usize {
        1 + match self {
            MrState::In(v) => v.size_hint(),
            MrState::Out(v) => v.size_hint(),
        }
    }
}

impl<I: Decode, O: Decode> Decode for MrState<I, O> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(MrState::In(I::decode(r)?)),
            1 => Ok(MrState::Out(O::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                target: "MrState",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ripple_wire::{from_wire, to_wire};

    #[test]
    fn key_roundtrip_and_distinct() {
        let a: MrKey<u32, String> = MrKey::In(7);
        let b: MrKey<u32, String> = MrKey::Mid("7".to_owned());
        assert_ne!(to_wire(&a), to_wire(&b));
        assert_eq!(from_wire::<MrKey<u32, String>>(&to_wire(&a)).unwrap(), a);
        assert_eq!(from_wire::<MrKey<u32, String>>(&to_wire(&b)).unwrap(), b);
    }

    #[test]
    fn state_roundtrip() {
        let s: MrState<String, u64> = MrState::In("doc".to_owned());
        assert_eq!(from_wire::<MrState<String, u64>>(&to_wire(&s)).unwrap(), s);
        let s: MrState<String, u64> = MrState::Out(4);
        assert_eq!(from_wire::<MrState<String, u64>>(&to_wire(&s)).unwrap(), s);
    }

    #[test]
    fn bad_tags_rejected() {
        assert!(from_wire::<MrKey<u32, u32>>(&[9, 0]).is_err());
        assert!(from_wire::<MrState<u32, u32>>(&[9, 0]).is_err());
    }
}
