//! Iterated MapReduce: the baseline execution shape the Ripple paper
//! improves on.  Each iteration is a full couplet — two synchronizations —
//! with the dataset round-tripping through the key/value store between the
//! reduce of one iteration and the map of the next.

use std::sync::Arc;

use ripple_core::EbspError;
use ripple_kv::KvStore;

use crate::job::{collect_output, run_couplet};
use crate::{MapReduce, MapReduceJob, MrOutput};

/// Cost summary of an iterated run.
#[derive(Debug, Clone, Default)]
pub struct IterationReport {
    /// Couplets executed.
    pub iterations: u32,
    /// Total BSP steps (2 per couplet).
    pub steps: u32,
    /// Total synchronization barriers (2 per couplet).
    pub barriers: u32,
    /// Total compute invocations across all couplets.
    pub invocations: u64,
    /// Total wall-clock time in the couplets.
    pub elapsed: std::time::Duration,
}

/// Drives a [`MapReduce`] couplet to a fixpoint.
///
/// After each couplet the output pairs are fed through the `feedback`
/// function to become the next couplet's input — the explicit data-flow
/// stitching between jobs that the paper notes MapReduce platforms force on
/// clients ("there is nothing the client can say to get an efficient
/// straight-line connection from reduce to following map").
pub struct IteratedMapReduce<M: MapReduce> {
    mr: Arc<M>,
    max_iterations: u32,
}

impl<M> IteratedMapReduce<M>
where
    M: MapReduce,
    M::MidKey: Clone + Send,
    M::OutValue: Clone + Send,
{
    /// Iterates `mr` at most `max_iterations` times.
    pub fn new(mr: Arc<M>, max_iterations: u32) -> Self {
        Self { mr, max_iterations }
    }

    /// Runs couplets until `converged` returns `true` (called with the
    /// 1-based iteration number and that iteration's output) or the
    /// iteration cap is reached.  Returns the last output and the cost
    /// report.
    ///
    /// # Errors
    ///
    /// Propagates engine and store errors.
    pub fn run<S, F, C>(
        &self,
        store: &S,
        mut input: Vec<(M::InKey, M::InValue)>,
        feedback: F,
        converged: C,
    ) -> Result<(MrOutput<M>, IterationReport), EbspError>
    where
        S: KvStore,
        F: Fn(&M::MidKey, &M::OutValue) -> (M::InKey, M::InValue),
        C: Fn(u32, &[(M::MidKey, M::OutValue)]) -> bool,
    {
        let table = fresh_table_name();
        let job = Arc::new(MapReduceJob::new(Arc::clone(&self.mr), table.clone()));
        let mut report = IterationReport::default();
        let mut output = Vec::new();
        for iteration in 1..=self.max_iterations {
            // The dataset is wholly (re)written into the store, mapped,
            // shuffled, reduced, and wholly read back: the per-iteration
            // I/O the direct EBSP formulation avoids.
            if let Ok(t) = store.lookup_table(&table) {
                ripple_kv::Table::clear(&t).map_err(EbspError::Kv)?;
            }
            let outcome = run_couplet(store, &job, input)?;
            report.iterations = iteration;
            report.steps += outcome.steps;
            report.barriers += outcome.metrics.barriers;
            report.invocations += outcome.metrics.invocations;
            report.elapsed += outcome.metrics.elapsed;
            output = collect_output::<S, M>(store, &table)?;
            if converged(iteration, &output) {
                break;
            }
            input = output.iter().map(|(k, v)| feedback(k, v)).collect();
        }
        store.drop_table(&table).map_err(EbspError::Kv)?;
        Ok((output, report))
    }
}

fn fresh_table_name() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(1);
    format!("__itmr_{}", NONCE.fetch_add(1, Ordering::Relaxed))
}
