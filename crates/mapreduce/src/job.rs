//! The EBSP job hosting one map-reduce couplet.

use std::sync::Arc;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, FnLoader, Job, JobRunner,
    LoadSink, RunOptions,
};
use ripple_kv::KvStore;

use crate::{MapReduce, MrKey, MrState};

/// The output pairs of one couplet.
pub type MrOutput<M> = Vec<(<M as MapReduce>::MidKey, <M as MapReduce>::OutValue)>;

/// A [`MapReduce`] couplet expressed as a two-step K/V EBSP job.
///
/// Input lives in the `input` state table (map-side components), output is
/// written to the same table under reduce-side keys; the shuffle is BSP
/// messaging across the single intermediate barrier.
pub struct MapReduceJob<M: MapReduce> {
    mr: Arc<M>,
    table: String,
}

impl<M: MapReduce> MapReduceJob<M> {
    /// Hosts `mr` on the state table named `table`.
    pub fn new(mr: Arc<M>, table: impl Into<String>) -> Self {
        Self {
            mr,
            table: table.into(),
        }
    }

    /// The couplet this job hosts.
    pub fn map_reduce(&self) -> &Arc<M> {
        &self.mr
    }
}

impl<M: MapReduce> Job for MapReduceJob<M> {
    type Key = MrKey<M::InKey, M::MidKey>;
    type State = MrState<M::InValue, M::OutValue>;
    type Message = M::MidValue;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }

    fn properties(&self) -> ripple_core::JobProperties {
        // A couplet is self-limiting: map-side components go dormant after
        // emitting, reduce-side components after folding — compute never
        // returns the continue signal.  Nothing stronger can be promised
        // here: one-msg and determinism depend on the client's `map` /
        // `reduce` / `combine` functions.
        ripple_core::JobProperties {
            no_continue: true,
            ..ripple_core::JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        match ctx.key().clone() {
            MrKey::In(key) => {
                // Map side: read the input value, emit intermediate pairs.
                let Some(MrState::In(value)) = ctx.read_state(0)? else {
                    return Ok(false); // input vanished; nothing to map
                };
                let mut emitted = Vec::new();
                self.mr.map(&key, &value, &mut |mk, mv| {
                    emitted.push((mk, mv));
                });
                for (mk, mv) in emitted {
                    ctx.send(MrKey::Mid(mk), mv);
                }
                Ok(false)
            }
            MrKey::Mid(key) => {
                // Reduce side: fold the collected value list.
                let values = ctx.take_messages();
                if let Some(out) = self.mr.reduce(&key, values) {
                    ctx.write_state(0, &MrState::Out(out))?;
                }
                Ok(false)
            }
        }
    }

    fn combine_messages(
        &self,
        key: &Self::Key,
        a: &Self::Message,
        b: &Self::Message,
    ) -> Option<Self::Message> {
        match key {
            MrKey::Mid(mk) => self.mr.combine(mk, a, b),
            MrKey::In(_) => None,
        }
    }
}

/// Runs one couplet over in-memory input pairs and returns the sorted-by-
/// nothing output pairs.  The working table is created fresh and dropped
/// afterwards.
///
/// # Errors
///
/// Propagates engine and store errors.
pub fn run_map_reduce<S, M>(
    store: &S,
    mr: Arc<M>,
    input: Vec<(M::InKey, M::InValue)>,
) -> Result<MrOutput<M>, EbspError>
where
    S: KvStore,
    M: MapReduce,
    M::MidKey: Clone + Send,
    M::OutValue: Clone + Send,
{
    let table = fresh_table_name();
    let job = Arc::new(MapReduceJob::new(mr, table.clone()));
    let outcome = run_couplet(store, &job, input)?;
    debug_assert!(
        outcome.steps <= 2,
        "a couplet is at most two steps (zero for empty input)"
    );
    let output = collect_output::<S, M>(store, &table)?;
    store.drop_table(&table).map_err(EbspError::Kv)?;
    Ok(output)
}

/// Runs one couplet of `job` with `input` loaded into its table.
pub(crate) fn run_couplet<S, M>(
    store: &S,
    job: &Arc<MapReduceJob<M>>,
    input: Vec<(M::InKey, M::InValue)>,
) -> Result<ripple_core::RunOutcome, EbspError>
where
    S: KvStore,
    M: MapReduce,
{
    JobRunner::new(store.clone()).launch(
        Arc::clone(job),
        RunOptions::new().loaders(vec![Box::new(FnLoader::new(
            move |sink: &mut dyn LoadSink<MapReduceJob<M>>| {
                for (k, v) in input {
                    sink.enable(MrKey::In(k.clone()))?;
                    sink.state(0, MrKey::In(k), MrState::In(v))?;
                }
                Ok(())
            },
        ))]),
    )
}

/// Reads the reduce-side output pairs out of a couplet's table.
pub(crate) fn collect_output<S, M>(store: &S, table: &str) -> Result<MrOutput<M>, EbspError>
where
    S: KvStore,
    M: MapReduce,
    M::MidKey: Clone + Send,
    M::OutValue: Clone + Send,
{
    let handle = store.lookup_table(table).map_err(EbspError::Kv)?;
    let exporter = Arc::new(CollectingExporter::new());
    export_state_table::<S, MrKey<M::InKey, M::MidKey>, MrState<M::InValue, M::OutValue>, _>(
        store,
        &handle,
        Arc::clone(&exporter),
    )?;
    Ok(exporter
        .take()
        .into_iter()
        .filter_map(|(k, v)| match (k, v) {
            (MrKey::Mid(mk), MrState::Out(ov)) => Some((mk, ov)),
            _ => None,
        })
        .collect())
}

fn fresh_table_name() -> String {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(1);
    format!("__mr_{}", NONCE.fetch_add(1, Ordering::Relaxed))
}
