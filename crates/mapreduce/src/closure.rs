//! Ad-hoc couplets from plain closures, for one-off analyses where a named
//! type is ceremony.

use std::hash::Hash;

use ripple_wire::Wire;

use crate::MapReduce;

/// A [`MapReduce`] built from a map closure and a reduce closure.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ripple_mapreduce::{run_map_reduce, ClosureMapReduce};
/// use ripple_store_mem::MemStore;
///
/// # fn main() -> Result<(), ripple_core::EbspError> {
/// let mr = ClosureMapReduce::new(
///     |key: &u32, value: &u32, emit: &mut dyn FnMut(u32, u64)| {
///         emit(key % 2, u64::from(*value));
///     },
///     |_parity: &u32, values: Vec<u64>| Some(values.into_iter().sum::<u64>()),
/// );
/// let store = MemStore::builder().default_parts(2).build();
/// let input: Vec<(u32, u32)> = (1..=6).map(|i| (i, i * 10)).collect();
/// let mut sums = run_map_reduce(&store, Arc::new(mr), input)?;
/// sums.sort();
/// assert_eq!(sums, vec![(0, 120), (1, 90)]); // evens: 20+40+60, odds: 10+30+50
/// # Ok(())
/// # }
/// ```
pub struct ClosureMapReduce<IK, IV, MK, MV, OV, M, R> {
    map: M,
    reduce: R,
    #[allow(clippy::type_complexity)]
    _marker: std::marker::PhantomData<fn() -> (IK, IV, MK, MV, OV)>,
}

impl<IK, IV, MK, MV, OV, M, R> ClosureMapReduce<IK, IV, MK, MV, OV, M, R>
where
    M: Fn(&IK, &IV, &mut dyn FnMut(MK, MV)) + Send + Sync + 'static,
    R: Fn(&MK, Vec<MV>) -> Option<OV> + Send + Sync + 'static,
{
    /// Wraps `map` and `reduce`.
    pub fn new(map: M, reduce: R) -> Self {
        Self {
            map,
            reduce,
            _marker: std::marker::PhantomData,
        }
    }
}

impl<IK, IV, MK, MV, OV, M, R> MapReduce for ClosureMapReduce<IK, IV, MK, MV, OV, M, R>
where
    IK: Wire + Eq + Hash + Ord,
    IV: Wire,
    MK: Wire + Eq + Hash + Ord,
    MV: Wire,
    OV: Wire,
    M: Fn(&IK, &IV, &mut dyn FnMut(MK, MV)) + Send + Sync + 'static,
    R: Fn(&MK, Vec<MV>) -> Option<OV> + Send + Sync + 'static,
{
    type InKey = IK;
    type InValue = IV;
    type MidKey = MK;
    type MidValue = MV;
    type OutValue = OV;

    fn map(&self, key: &IK, value: &IV, emit: &mut dyn FnMut(MK, MV)) {
        (self.map)(key, value, emit);
    }

    fn reduce(&self, key: &MK, values: Vec<MV>) -> Option<OV> {
        (self.reduce)(key, values)
    }
}
