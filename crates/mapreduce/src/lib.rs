//! MapReduce — and *iterated* MapReduce — layered over K/V EBSP.
//!
//! Figure 2 of the Ripple paper shows MapReduce as one of the programming
//! models that "may be easily provided above K/V EBSP".  This crate is that
//! layer: a [`MapReduce`] couplet runs as a two-step EBSP job —
//!
//! - **step 1 (map)**: one component per input key reads its input value
//!   from the input state table and emits intermediate (key, value) pairs
//!   as BSP messages — the message flow across the barrier *is* the
//!   shuffle;
//! - **step 2 (reduce)**: one component per intermediate key receives the
//!   collected value list and writes its reduction into the output state
//!   table.
//!
//! [`IteratedMapReduce`] chains couplets, feeding each iteration's output
//! table back in as the next iteration's input — incurring exactly the
//! costs the paper attributes to iterating MapReduce: **two
//! synchronizations per iteration** and a full round-trip of the dataset
//! through the key/value store between reduce and the following map.  The
//! evaluation's "MapReduce variant" baselines are built this way; the
//! "direct" K/V EBSP variants fuse reduce with the following map and skip
//! both costs.
//!
//! # Examples
//!
//! Word count:
//!
//! ```
//! use std::sync::Arc;
//! use ripple_mapreduce::{run_map_reduce, MapReduce};
//! use ripple_store_mem::MemStore;
//!
//! struct WordCount;
//!
//! impl MapReduce for WordCount {
//!     type InKey = u32;          // document id
//!     type InValue = String;     // document text
//!     type MidKey = String;      // word
//!     type MidValue = u64;       // occurrences
//!     type OutValue = u64;       // total occurrences
//!
//!     fn map(&self, _doc: &u32, text: &String, emit: &mut dyn FnMut(String, u64)) {
//!         for word in text.split_whitespace() {
//!             emit(word.to_owned(), 1);
//!         }
//!     }
//!
//!     fn reduce(&self, _word: &String, counts: Vec<u64>) -> Option<u64> {
//!         Some(counts.into_iter().sum())
//!     }
//!
//!     fn combine(&self, _word: &String, a: &u64, b: &u64) -> Option<u64> {
//!         Some(a + b)
//!     }
//! }
//!
//! # fn main() -> Result<(), ripple_core::EbspError> {
//! let store = MemStore::builder().default_parts(4).build();
//! let input = vec![(1u32, "a b a".to_owned()), (2, "b c".to_owned())];
//! let mut counts = run_map_reduce(&store, Arc::new(WordCount), input)?;
//! counts.sort();
//! assert_eq!(
//!     counts,
//!     vec![
//!         ("a".to_owned(), 2),
//!         ("b".to_owned(), 2),
//!         ("c".to_owned(), 1)
//!     ]
//! );
//! # Ok(())
//! # }
//! ```

mod closure;
mod iterate;
mod job;
mod key;

pub use closure::ClosureMapReduce;
pub use iterate::{IteratedMapReduce, IterationReport};
pub use job::{run_map_reduce, MapReduceJob, MrOutput};
pub use key::{MrKey, MrState};

use std::hash::Hash;

use ripple_wire::Wire;

/// One map-reduce couplet: the client supplies `map`, `reduce`, and
/// optionally a combiner, exactly as in classic MapReduce.
pub trait MapReduce: Send + Sync + 'static {
    /// Input key type.
    type InKey: Wire + Eq + Hash + Ord;
    /// Input value type.
    type InValue: Wire;
    /// Intermediate (shuffle) key type; also keys the output.
    type MidKey: Wire + Eq + Hash + Ord;
    /// Intermediate value type.
    type MidValue: Wire;
    /// Output value type.
    type OutValue: Wire;

    /// Maps one input pair to intermediate pairs via `emit`.
    fn map(
        &self,
        key: &Self::InKey,
        value: &Self::InValue,
        emit: &mut dyn FnMut(Self::MidKey, Self::MidValue),
    );

    /// Reduces all intermediate values of one key; `None` emits nothing.
    fn reduce(&self, key: &Self::MidKey, values: Vec<Self::MidValue>) -> Option<Self::OutValue>;

    /// Optional pairwise combiner applied during the shuffle; the default
    /// combines nothing.
    fn combine(
        &self,
        key: &Self::MidKey,
        a: &Self::MidValue,
        b: &Self::MidValue,
    ) -> Option<Self::MidValue> {
        let _ = (key, a, b);
        None
    }
}
