//! Property tests: every wire codec roundtrips, and decoding never panics on
//! arbitrary bytes.

use proptest::collection::{btree_map, hash_map, vec};
use proptest::prelude::*;
use ripple_wire::{from_wire, to_wire, Decode, Encode};

fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(v: &T) {
    let bytes = to_wire(v);
    let back: T = from_wire(&bytes).expect("roundtrip decode");
    assert_eq!(&back, v);
}

proptest! {
    #[test]
    fn u64_roundtrip(v: u64) { roundtrip(&v); }

    #[test]
    fn i64_roundtrip(v: i64) { roundtrip(&v); }

    #[test]
    fn u32_roundtrip(v: u32) { roundtrip(&v); }

    #[test]
    fn i32_roundtrip(v: i32) { roundtrip(&v); }

    #[test]
    fn f64_roundtrip(v: f64) {
        let bytes = to_wire(&v);
        let back: f64 = from_wire(&bytes).unwrap();
        assert_eq!(v.to_bits(), back.to_bits());
    }

    #[test]
    fn string_roundtrip(v: String) { roundtrip(&v); }

    #[test]
    fn vec_i64_roundtrip(v in vec(any::<i64>(), 0..64)) { roundtrip(&v); }

    #[test]
    fn vec_string_roundtrip(v in vec(any::<String>(), 0..16)) { roundtrip(&v); }

    #[test]
    fn nested_roundtrip(v in vec(vec(any::<u32>(), 0..8), 0..8)) { roundtrip(&v); }

    #[test]
    fn tuple_roundtrip(v: (u64, i32, String, Option<bool>)) { roundtrip(&v); }

    #[test]
    fn hashmap_roundtrip(v in hash_map(any::<u32>(), any::<String>(), 0..16)) {
        roundtrip(&v);
    }

    #[test]
    fn btreemap_roundtrip(v in btree_map(any::<String>(), any::<i64>(), 0..16)) {
        roundtrip(&v);
    }

    #[test]
    fn option_vec_roundtrip(v: Option<Vec<u16>>) { roundtrip(&v); }

    /// Decoding arbitrary garbage must fail cleanly, never panic or hang.
    #[test]
    fn decode_garbage_never_panics(bytes in vec(any::<u8>(), 0..256)) {
        let _ = from_wire::<u64>(&bytes);
        let _ = from_wire::<String>(&bytes);
        let _ = from_wire::<Vec<u64>>(&bytes);
        let _ = from_wire::<Vec<String>>(&bytes);
        let _ = from_wire::<(u32, String)>(&bytes);
        let _ = from_wire::<Option<Vec<i64>>>(&bytes);
    }

    /// Encoding is deterministic: equal values give identical bytes.
    #[test]
    fn encoding_deterministic(v in vec(any::<i64>(), 0..32)) {
        let a = to_wire(&v);
        let b = to_wire(&v.clone());
        prop_assert_eq!(a, b);
    }

    /// Concatenated values decode back in order via prefix decoding.
    #[test]
    fn prefix_decode_sequences(a: u64, b: String, c in vec(any::<i32>(), 0..8)) {
        let mut buf = to_wire(&a).to_vec();
        buf.extend_from_slice(&to_wire(&b));
        buf.extend_from_slice(&to_wire(&c));
        let (a2, n1) = ripple_wire::from_wire_prefix::<u64>(&buf).unwrap();
        let (b2, n2) = ripple_wire::from_wire_prefix::<String>(&buf[n1..]).unwrap();
        let (c2, n3) = ripple_wire::from_wire_prefix::<Vec<i32>>(&buf[n1 + n2..]).unwrap();
        prop_assert_eq!(a, a2);
        prop_assert_eq!(b, b2);
        prop_assert_eq!(c, c2);
        prop_assert_eq!(n1 + n2 + n3, buf.len());
    }
}
