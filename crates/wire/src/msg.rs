//! Network message frames: the unit of exchange on a `ripple-store-net`
//! connection.
//!
//! A message frame wraps one protocol payload for transmission on a byte
//! stream:
//!
//! ```text
//! +----------------+------+------------+---------------+----------------+
//! | length (LE u32)| kind | id (LE u64)| payload bytes | CRC32 (LE u32) |
//! +----------------+------+------------+---------------+----------------+
//! ```
//!
//! `length` counts the kind byte, the id, and the payload (not itself and
//! not the checksum), so a reader can issue exactly two reads per frame.
//! The checksum is CRC-32 (IEEE) over kind + id + payload — the same
//! polynomial as the [`frame`](crate::read_frame) log records — so a frame
//! damaged in transit or by a buggy peer is rejected instead of decoded as
//! garbage.  Unlike log frames, message frames carry a `kind` tag (which
//! protocol message follows) and an `id` (the request this frame belongs
//! to, letting responses return out of order on a pipelined connection).
//!
//! # Examples
//!
//! ```
//! use ripple_wire::{read_msg_from, write_msg};
//!
//! let mut buf = Vec::new();
//! write_msg(&mut buf, 7, 42, b"payload");
//! let frame = read_msg_from(&mut buf.as_slice()).unwrap();
//! assert_eq!(frame.kind, 7);
//! assert_eq!(frame.id, 42);
//! assert_eq!(frame.payload.as_slice(), b"payload");
//! ```

use std::io::{self, Read};

use crate::frame::crc32;

/// Largest payload a message frame may carry (64 MiB).  A length beyond
/// this reads as [`io::ErrorKind::InvalidData`] rather than an attempted
/// allocation — the peer is broken or malicious either way.
pub const MAX_MSG_LEN: usize = 64 << 20;

/// Fixed per-frame byte overhead beyond the payload: length prefix, kind
/// tag, request id, and checksum.
pub const MSG_OVERHEAD: usize = 4 + 1 + 8 + 4;

/// One decoded message frame: a protocol kind tag, the request id it
/// belongs to, and the payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MsgFrame {
    /// Which protocol message the payload encodes.
    pub kind: u8,
    /// The request this frame belongs to (responses echo the request's id).
    pub id: u64,
    /// The message payload.
    pub payload: Vec<u8>,
}

/// Appends one message frame to `out`.
///
/// # Panics
///
/// Panics if `payload` exceeds [`MAX_MSG_LEN`]; callers chunk large
/// transfers (that is what streamed scan chunks are for).
pub fn write_msg(out: &mut Vec<u8>, kind: u8, id: u64, payload: &[u8]) {
    assert!(
        payload.len() <= MAX_MSG_LEN,
        "message payload of {} bytes exceeds MAX_MSG_LEN",
        payload.len()
    );
    let body_len = 1 + 8 + payload.len();
    out.reserve(4 + body_len + 4);
    out.extend_from_slice(&(body_len as u32).to_le_bytes());
    let body_start = out.len();
    out.push(kind);
    out.extend_from_slice(&id.to_le_bytes());
    out.extend_from_slice(payload);
    let crc = crc32(&out[body_start..]);
    out.extend_from_slice(&crc.to_le_bytes());
}

/// Total bytes [`write_msg`] emits for a payload of `payload_len` bytes.
pub fn msg_len(payload_len: usize) -> usize {
    MSG_OVERHEAD + payload_len
}

/// Reads one message frame from `r`, blocking until it is complete.
///
/// # Errors
///
/// Propagates I/O errors from `r` (a clean EOF before the first length
/// byte surfaces as [`io::ErrorKind::UnexpectedEof`]); an absurd length or
/// a checksum mismatch yields [`io::ErrorKind::InvalidData`].
pub fn read_msg_from(r: &mut impl Read) -> io::Result<MsgFrame> {
    let mut len_buf = [0u8; 4];
    r.read_exact(&mut len_buf)?;
    let body_len = u32::from_le_bytes(len_buf) as usize;
    if !(1 + 8..=1 + 8 + MAX_MSG_LEN).contains(&body_len) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("message frame length {body_len} out of range"),
        ));
    }
    let mut body = vec![0u8; body_len + 4];
    r.read_exact(&mut body)?;
    let (frame, crc_bytes) = body.split_at(body_len);
    let stored = u32::from_le_bytes([crc_bytes[0], crc_bytes[1], crc_bytes[2], crc_bytes[3]]);
    if crc32(frame) != stored {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "message frame checksum mismatch",
        ));
    }
    let kind = frame[0];
    let id = u64::from_le_bytes([
        frame[1], frame[2], frame[3], frame[4], frame[5], frame[6], frame[7], frame[8],
    ]);
    body.truncate(body_len);
    body.drain(..9);
    Ok(MsgFrame {
        kind,
        id,
        payload: body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_through_a_reader() {
        let mut buf = Vec::new();
        write_msg(&mut buf, 3, 0xDEAD_BEEF, b"hello");
        write_msg(&mut buf, 0, 0, b"");
        assert_eq!(buf.len(), msg_len(5) + msg_len(0));
        let mut r = buf.as_slice();
        let a = read_msg_from(&mut r).unwrap();
        assert_eq!(
            (a.kind, a.id, a.payload.as_slice()),
            (3, 0xDEAD_BEEF, &b"hello"[..])
        );
        let b = read_msg_from(&mut r).unwrap();
        assert_eq!((b.kind, b.id, b.payload.len()), (0, 0, 0));
        assert!(r.is_empty());
    }

    #[test]
    fn eof_before_frame_is_unexpected_eof() {
        let err = read_msg_from(&mut [].as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn truncated_frame_is_unexpected_eof() {
        let mut buf = Vec::new();
        write_msg(&mut buf, 1, 9, b"payload");
        for cut in 1..buf.len() {
            let err = read_msg_from(&mut &buf[..cut]).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof, "cut at {cut}");
        }
    }

    #[test]
    fn flipped_byte_is_invalid_data() {
        let mut buf = Vec::new();
        write_msg(&mut buf, 1, 9, b"payload");
        for i in 4..buf.len() {
            let mut damaged = buf.clone();
            damaged[i] ^= 0x10;
            let err = read_msg_from(&mut damaged.as_slice()).unwrap_err();
            assert_eq!(err.kind(), io::ErrorKind::InvalidData, "flip at {i}");
        }
    }

    #[test]
    fn absurd_length_is_invalid_data_not_allocation() {
        let buf = u32::MAX.to_le_bytes();
        let err = read_msg_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }

    #[test]
    fn undersized_length_is_invalid_data() {
        let buf = 3u32.to_le_bytes();
        let err = read_msg_from(&mut buf.as_slice()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
