//! The [`wire_struct!`] macro: field-order [`Encode`](crate::Encode)/
//! [`Decode`](crate::Decode) impls for named structs without a derive
//! dependency.

/// Declares a named struct and implements the wire codec for it, encoding
/// fields in declaration order.
///
/// The input syntax is ordinary Rust struct syntax (attributes, visibility,
/// per-field attributes and visibility all pass through), so downstream
/// `#[derive(...)]`s compose as usual.
///
/// # Examples
///
/// ```
/// ripple_wire::wire_struct! {
///     /// A vertex annotation.
///     #[derive(Debug, Clone, PartialEq)]
///     pub struct Annotation {
///         pub vertex: u32,
///         pub rank: f64,
///         pub neighbors: Vec<u32>,
///     }
/// }
///
/// # fn main() -> Result<(), ripple_wire::WireError> {
/// let a = Annotation { vertex: 7, rank: 0.5, neighbors: vec![1, 2] };
/// let bytes = ripple_wire::to_wire(&a);
/// assert_eq!(ripple_wire::from_wire::<Annotation>(&bytes)?, a);
/// # Ok(())
/// # }
/// ```
#[macro_export]
macro_rules! wire_struct {
    (
        $(#[$meta:meta])*
        $vis:vis struct $name:ident {
            $(
                $(#[$fmeta:meta])*
                $fvis:vis $field:ident : $ftype:ty
            ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        $vis struct $name {
            $(
                $(#[$fmeta])*
                $fvis $field: $ftype,
            )*
        }

        impl $crate::Encode for $name {
            fn encode(&self, #[allow(unused_variables)] w: &mut $crate::ByteWriter) {
                $( $crate::Encode::encode(&self.$field, w); )*
            }
            fn size_hint(&self) -> usize {
                0 $( + $crate::Encode::size_hint(&self.$field) )*
            }
        }

        impl $crate::Decode for $name {
            fn decode(
                #[allow(unused_variables)] r: &mut $crate::ByteReader<'_>,
            ) -> ::core::result::Result<Self, $crate::WireError> {
                ::core::result::Result::Ok(Self {
                    $( $field: $crate::Decode::decode(r)?, )*
                })
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::{from_wire, to_wire};

    wire_struct! {
        /// Module-scope expansion with derives and mixed visibility.
        #[derive(Debug, Clone, PartialEq, Default)]
        pub(crate) struct ModuleScoped {
            pub id: u64,
            name: String,
            pub(crate) flags: Vec<bool>,
        }
    }

    #[test]
    fn roundtrips_at_module_scope() {
        let v = ModuleScoped {
            id: 9,
            name: "x".into(),
            flags: vec![true, false],
        };
        assert_eq!(from_wire::<ModuleScoped>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn works_at_function_scope_too() {
        wire_struct! {
            #[derive(Debug, PartialEq, Clone)]
            struct FnScoped {
                a: i32,
                b: Option<String>,
            }
        }
        let v = FnScoped {
            a: -3,
            b: Some("inner".into()),
        };
        assert_eq!(from_wire::<FnScoped>(&to_wire(&v)).unwrap(), v);
    }

    #[test]
    fn empty_struct_roundtrips() {
        wire_struct! {
            #[derive(Debug, PartialEq, Clone)]
            struct Empty {}
        }
        assert_eq!(from_wire::<Empty>(&to_wire(&Empty {})).unwrap(), Empty {});
    }

    #[test]
    fn field_order_is_the_wire_order() {
        wire_struct! {
            struct Pair { a: u8, b: u8 }
        }
        let bytes = to_wire(&Pair { a: 1, b: 2 });
        assert_eq!(&bytes[..], &[1, 2]);
    }

    #[test]
    fn truncated_input_fails_cleanly() {
        wire_struct! {
            #[derive(Debug)]
            struct Two { a: u32, b: u32 }
        }
        let bytes = to_wire(&Two { a: 300, b: 400 });
        assert!(from_wire::<Two>(&bytes[..1]).is_err());
    }
}
