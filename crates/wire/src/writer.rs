use bytes::Bytes;

/// An append-only byte buffer used as the encoding target.
///
/// # Examples
///
/// ```
/// use ripple_wire::ByteWriter;
///
/// let mut w = ByteWriter::new();
/// w.push(1);
/// w.extend(&[2, 3]);
/// assert_eq!(w.as_slice(), &[1, 2, 3]);
/// ```
#[derive(Debug, Default, Clone)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty writer pre-sized to `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// Appends a single byte.
    pub fn push(&mut self, byte: u8) {
        self.buf.push(byte);
    }

    /// Appends a slice of bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// A view of the bytes written so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, yielding its bytes.
    pub fn into_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }

    /// Consumes the writer, yielding the raw vector.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

impl From<ByteWriter> for Bytes {
    fn from(w: ByteWriter) -> Bytes {
        w.into_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty() {
        let w = ByteWriter::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
    }

    #[test]
    fn push_and_extend_accumulate() {
        let mut w = ByteWriter::with_capacity(4);
        w.push(9);
        w.extend(&[8, 7]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.into_vec(), vec![9, 8, 7]);
    }

    #[test]
    fn converts_to_bytes() {
        let mut w = ByteWriter::new();
        w.extend(b"abc");
        let b: Bytes = w.into();
        assert_eq!(&b[..], b"abc");
    }
}
