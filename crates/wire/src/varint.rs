//! LEB128 varints and zig-zag transforms.
//!
//! Unsigned integers are encoded little-endian, 7 bits per byte, with the
//! high bit of each byte set when more bytes follow.  Signed integers are
//! zig-zag mapped first so that small magnitudes stay short.

use crate::{ByteReader, ByteWriter, WireError};

/// Maximum number of bytes a `u64` varint can occupy.
pub const MAX_VARINT_LEN: usize = 10;

/// Appends `value` to `w` as a LEB128 varint.
pub fn write_u64(w: &mut ByteWriter, mut value: u64) {
    loop {
        let byte = (value & 0x7f) as u8;
        value >>= 7;
        if value == 0 {
            w.push(byte);
            return;
        }
        w.push(byte | 0x80);
    }
}

/// Reads a LEB128 varint from `r`.
///
/// # Errors
///
/// Returns [`WireError::VarintOverflow`] if the varint runs past 10 bytes
/// and [`WireError::UnexpectedEof`] if the input ends mid-varint.
pub fn read_u64(r: &mut ByteReader<'_>) -> Result<u64, WireError> {
    let mut value: u64 = 0;
    let mut shift = 0u32;
    for _ in 0..MAX_VARINT_LEN {
        let byte = r.read_byte()?;
        let low = u64::from(byte & 0x7f);
        if shift == 63 && low > 1 {
            return Err(WireError::VarintOverflow);
        }
        value |= low << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
    Err(WireError::VarintOverflow)
}

/// Zig-zag maps a signed integer into an unsigned one.
pub fn zigzag(value: i64) -> u64 {
    ((value << 1) ^ (value >> 63)) as u64
}

/// Inverts [`zigzag`].
pub fn unzigzag(value: u64) -> i64 {
    ((value >> 1) as i64) ^ -((value & 1) as i64)
}

/// Number of bytes [`write_u64`] will emit for `value`.
pub fn varint_len(value: u64) -> usize {
    if value == 0 {
        1
    } else {
        (64 - value.leading_zeros() as usize).div_ceil(7)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> u64 {
        let mut w = ByteWriter::new();
        write_u64(&mut w, v);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), varint_len(v));
        let mut r = ByteReader::new(&bytes);
        let back = read_u64(&mut r).unwrap();
        assert!(r.is_empty());
        back
    }

    #[test]
    fn roundtrips_edge_values() {
        for v in [
            0,
            1,
            127,
            128,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX - 1,
            u64::MAX,
        ] {
            assert_eq!(roundtrip(v), v);
        }
    }

    #[test]
    fn zigzag_roundtrips() {
        for v in [0i64, 1, -1, 2, -2, i64::MAX, i64::MIN, 12345, -12345] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
    }

    #[test]
    fn zigzag_keeps_small_magnitudes_small() {
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
        assert_eq!(zigzag(-2), 3);
    }

    #[test]
    fn truncated_varint_is_eof() {
        let mut w = ByteWriter::new();
        write_u64(&mut w, u64::MAX);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes[..bytes.len() - 1]);
        assert!(matches!(
            read_u64(&mut r),
            Err(WireError::UnexpectedEof { .. })
        ));
    }

    #[test]
    fn overlong_varint_rejected() {
        // Eleven continuation bytes can never be a valid u64 varint.
        let bytes = [0xffu8; 11];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_u64(&mut r), Err(WireError::VarintOverflow));
    }

    #[test]
    fn tenth_byte_overflow_rejected() {
        // 10 bytes whose top bits would exceed 64 bits of payload.
        let bytes = [0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x02];
        let mut r = ByteReader::new(&bytes);
        assert_eq!(read_u64(&mut r), Err(WireError::VarintOverflow));
    }

    #[test]
    fn varint_len_matches_observed() {
        for shift in 0..64 {
            let v = 1u64 << shift;
            let mut w = ByteWriter::new();
            write_u64(&mut w, v);
            assert_eq!(w.len(), varint_len(v), "shift {shift}");
        }
    }
}
