//! Binary wire codec for the Ripple analytics platform.
//!
//! Ripple's lower layer (the key/value store and the message queuing
//! facility) holds raw bytes, and the K/V EBSP engine marshals typed keys,
//! states, and messages whenever data crosses an (emulated) partition
//! boundary — exactly the cost structure the Ripple paper's "parallel
//! debugging store" models.  This crate is the codec used for that
//! marshalling: a small, deterministic, self-contained binary format built
//! from LEB128 varints and explicit [`Encode`]/[`Decode`] implementations.
//!
//! The format makes no attempt at cross-version schema evolution.  Bare
//! wire values are for data in flight inside one job; when bytes *do*
//! rest on disk — the durable store's write-ahead logs and snapshots —
//! they are wrapped in the [`frame`-module](read_frame) record format,
//! which adds a length prefix and a CRC-32 checksum so that torn tails
//! from interrupted appends and corrupted records are detected on replay
//! instead of being decoded as garbage.  When bytes cross a *wire* — the
//! networked store's TCP protocol — they travel in [message
//! frames](read_msg_from), which add a kind tag and a request id on top
//! of the same length + CRC-32 envelope so responses can be pipelined and
//! matched out of order.
//!
//! # Examples
//!
//! ```
//! use ripple_wire::{from_wire, to_wire};
//!
//! # fn main() -> Result<(), ripple_wire::WireError> {
//! let value: (u32, String, Vec<i64>) = (7, "rank".to_owned(), vec![-1, 2, -3]);
//! let bytes = to_wire(&value);
//! let back: (u32, String, Vec<i64>) = from_wire(&bytes)?;
//! assert_eq!(value, back);
//! # Ok(())
//! # }
//! ```

mod error;
mod frame;
mod impls;
mod macros;
mod msg;
mod reader;
mod varint;
mod writer;

pub use error::WireError;
pub use frame::{crc32, frame_len, read_frame, write_frame, FrameRead};
pub use msg::{msg_len, read_msg_from, write_msg, MsgFrame, MAX_MSG_LEN, MSG_OVERHEAD};
pub use reader::ByteReader;
pub use writer::ByteWriter;

use bytes::Bytes;

/// A type that can be marshalled into Ripple's binary wire format.
///
/// Implementations must be deterministic: encoding equal values must produce
/// equal bytes, because the engine uses encoded keys for routing and
/// deduplication.
pub trait Encode {
    /// Appends the wire representation of `self` to `w`.
    fn encode(&self, w: &mut ByteWriter);

    /// A cheap guess at the encoded size in bytes, used to pre-size buffers.
    ///
    /// The default is deliberately small; implementations for large values
    /// (blocks, adjacency lists) should override it.
    fn size_hint(&self) -> usize {
        8
    }
}

/// A type that can be unmarshalled from Ripple's binary wire format.
pub trait Decode: Sized {
    /// Reads one value from the front of `r`.
    ///
    /// # Errors
    ///
    /// Returns [`WireError`] if the bytes are truncated or malformed.
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError>;
}

/// Convenience alias bound for values that travel through the platform:
/// component keys, local states, BSP messages, and job outputs.
pub trait Wire: Encode + Decode + Clone + Send + 'static {}

impl<T: Encode + Decode + Clone + Send + 'static> Wire for T {}

/// Encodes a value into a freshly allocated byte buffer.
///
/// # Examples
///
/// ```
/// let bytes = ripple_wire::to_wire(&42u64);
/// assert!(!bytes.is_empty());
/// ```
pub fn to_wire<T: Encode + ?Sized>(value: &T) -> Bytes {
    let mut w = ByteWriter::with_capacity(value.size_hint());
    value.encode(&mut w);
    w.into_bytes()
}

/// Decodes a value from a byte slice, requiring that all bytes are consumed.
///
/// # Errors
///
/// Returns [`WireError::TrailingBytes`] if the value does not occupy the
/// whole slice, and other [`WireError`] variants for truncated or malformed
/// input.
///
/// # Examples
///
/// ```
/// # fn main() -> Result<(), ripple_wire::WireError> {
/// let n: u64 = ripple_wire::from_wire(&ripple_wire::to_wire(&42u64))?;
/// assert_eq!(n, 42);
/// # Ok(())
/// # }
/// ```
pub fn from_wire<T: Decode>(bytes: &[u8]) -> Result<T, WireError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    if !r.is_empty() {
        return Err(WireError::TrailingBytes {
            remaining: r.remaining(),
        });
    }
    Ok(value)
}

/// Decodes a value from the front of a byte slice, returning the value and
/// the number of bytes consumed.
///
/// # Errors
///
/// Returns [`WireError`] for truncated or malformed input.
pub fn from_wire_prefix<T: Decode>(bytes: &[u8]) -> Result<(T, usize), WireError> {
    let mut r = ByteReader::new(bytes);
    let value = T::decode(&mut r)?;
    let used = bytes.len() - r.remaining();
    Ok((value, used))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_via_helpers() {
        let v = vec![(1u32, "a".to_owned()), (2, "b".to_owned())];
        let bytes = to_wire(&v);
        let back: Vec<(u32, String)> = from_wire(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = to_wire(&5u32).to_vec();
        bytes.push(0);
        let err = from_wire::<u32>(&bytes).unwrap_err();
        assert!(matches!(err, WireError::TrailingBytes { remaining: 1 }));
    }

    #[test]
    fn prefix_reports_consumed() {
        let mut buf = to_wire(&300u64).to_vec();
        buf.extend_from_slice(&[9, 9, 9]);
        let (value, used) = from_wire_prefix::<u64>(&buf).unwrap();
        assert_eq!(value, 300);
        assert_eq!(used, buf.len() - 3);
    }
}
