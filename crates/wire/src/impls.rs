//! [`Encode`]/[`Decode`] implementations for primitives and std containers.

use std::collections::{BTreeMap, HashMap, HashSet};
use std::hash::{BuildHasher, Hash};

use bytes::Bytes;

use crate::varint::{read_u64, unzigzag, varint_len, write_u64, zigzag};
use crate::{ByteReader, ByteWriter, Decode, Encode, WireError};

// ---------------------------------------------------------------------------
// Unsigned integers (varint)
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut ByteWriter) {
                write_u64(w, u64::from(*self));
            }
            fn size_hint(&self) -> usize {
                varint_len(u64::from(*self))
            }
        }
        impl Decode for $t {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                let v = read_u64(r)?;
                <$t>::try_from(v).map_err(|_| WireError::IntOutOfRange {
                    target: stringify!($t),
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32);

impl Encode for u64 {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, *self);
    }
    fn size_hint(&self) -> usize {
        varint_len(*self)
    }
}

impl Decode for u64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        read_u64(r)
    }
}

impl Encode for usize {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, *self as u64);
    }
    fn size_hint(&self) -> usize {
        varint_len(*self as u64)
    }
}

impl Decode for usize {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let v = read_u64(r)?;
        usize::try_from(v).map_err(|_| WireError::IntOutOfRange { target: "usize" })
    }
}

impl Encode for u128 {
    fn encode(&self, w: &mut ByteWriter) {
        w.extend(&self.to_le_bytes());
    }
    fn size_hint(&self) -> usize {
        16
    }
}

impl Decode for u128 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(u128::from_le_bytes(r.read_array()?))
    }
}

// ---------------------------------------------------------------------------
// Signed integers (zig-zag varint)
// ---------------------------------------------------------------------------

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Encode for $t {
            fn encode(&self, w: &mut ByteWriter) {
                write_u64(w, zigzag(i64::from(*self)));
            }
            fn size_hint(&self) -> usize {
                varint_len(zigzag(i64::from(*self)))
            }
        }
        impl Decode for $t {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                let v = unzigzag(read_u64(r)?);
                <$t>::try_from(v).map_err(|_| WireError::IntOutOfRange {
                    target: stringify!($t),
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32);

impl Encode for i64 {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, zigzag(*self));
    }
    fn size_hint(&self) -> usize {
        varint_len(zigzag(*self))
    }
}

impl Decode for i64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(unzigzag(read_u64(r)?))
    }
}

// ---------------------------------------------------------------------------
// Floats (fixed-width little endian, bit-exact including NaN payloads)
// ---------------------------------------------------------------------------

impl Encode for f32 {
    fn encode(&self, w: &mut ByteWriter) {
        w.extend(&self.to_le_bytes());
    }
    fn size_hint(&self) -> usize {
        4
    }
}

impl Decode for f32 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(f32::from_le_bytes(r.read_array()?))
    }
}

impl Encode for f64 {
    fn encode(&self, w: &mut ByteWriter) {
        w.extend(&self.to_le_bytes());
    }
    fn size_hint(&self) -> usize {
        8
    }
}

impl Decode for f64 {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(f64::from_le_bytes(r.read_array()?))
    }
}

// ---------------------------------------------------------------------------
// bool, unit, char
// ---------------------------------------------------------------------------

impl Encode for bool {
    fn encode(&self, w: &mut ByteWriter) {
        w.push(u8::from(*self));
    }
    fn size_hint(&self) -> usize {
        1
    }
}

impl Decode for bool {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::InvalidTag {
                target: "bool",
                tag,
            }),
        }
    }
}

impl Encode for () {
    fn encode(&self, _w: &mut ByteWriter) {}
    fn size_hint(&self) -> usize {
        0
    }
}

impl Decode for () {
    fn decode(_r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(())
    }
}

impl Encode for char {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, u64::from(u32::from(*self)));
    }
    fn size_hint(&self) -> usize {
        4
    }
}

impl Decode for char {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let v = u32::decode(r)?;
        char::from_u32(v).ok_or(WireError::IntOutOfRange { target: "char" })
    }
}

// ---------------------------------------------------------------------------
// Strings and byte buffers
// ---------------------------------------------------------------------------

impl Encode for str {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, self.len() as u64);
        w.extend(self.as_bytes());
    }
    fn size_hint(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Encode for String {
    fn encode(&self, w: &mut ByteWriter) {
        self.as_str().encode(w);
    }
    fn size_hint(&self) -> usize {
        self.as_str().size_hint()
    }
}

impl Decode for String {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let len = read_u64(r)?;
        let len = r.check_len(len, 1)?;
        let bytes = r.read_slice(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| WireError::InvalidUtf8)
    }
}

impl Encode for Bytes {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, self.len() as u64);
        w.extend(self);
    }
    fn size_hint(&self) -> usize {
        varint_len(self.len() as u64) + self.len()
    }
}

impl Decode for Bytes {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let len = read_u64(r)?;
        let len = r.check_len(len, 1)?;
        Ok(Bytes::copy_from_slice(r.read_slice(len)?))
    }
}

// ---------------------------------------------------------------------------
// Option, Result
// ---------------------------------------------------------------------------

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            None => w.push(0),
            Some(v) => {
                w.push(1);
                v.encode(w);
            }
        }
    }
    fn size_hint(&self) -> usize {
        1 + self.as_ref().map_or(0, Encode::size_hint)
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                target: "Option",
                tag,
            }),
        }
    }
}

impl<T: Encode, E: Encode> Encode for Result<T, E> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Ok(v) => {
                w.push(0);
                v.encode(w);
            }
            Err(e) => {
                w.push(1);
                e.encode(w);
            }
        }
    }
}

impl<T: Decode, E: Decode> Decode for Result<T, E> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(Ok(T::decode(r)?)),
            1 => Ok(Err(E::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                target: "Result",
                tag,
            }),
        }
    }
}

// ---------------------------------------------------------------------------
// Sequences and maps
// ---------------------------------------------------------------------------

impl<T: Encode> Encode for [T] {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
    fn size_hint(&self) -> usize {
        varint_len(self.len() as u64) + self.iter().map(Encode::size_hint).sum::<usize>()
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut ByteWriter) {
        self.as_slice().encode(w);
    }
    fn size_hint(&self) -> usize {
        self.as_slice().size_hint()
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let len = read_u64(r)?;
        let cap = (len as usize).min(r.remaining().max(1)).min(1 << 16);
        let mut out = Vec::with_capacity(cap);
        for _ in 0..len {
            out.push(T::decode(r)?);
            // Elements that consume bytes bound the loop via EOF; guard
            // hostile lengths of zero-size elements explicitly.
            if r.remaining() == 0 && out.len() as u64 != len && len > ZST_LIMIT {
                return Err(WireError::LengthOverrun {
                    declared: len,
                    available: 0,
                });
            }
        }
        Ok(out)
    }
}

/// Maximum declared length for collections of zero-size elements; honest
/// message lists stay far below this, while hostile prefixes cannot force
/// more than this many no-op iterations.
const ZST_LIMIT: u64 = 1 << 24;

impl<T: Encode, const N: usize> Encode for [T; N] {
    fn encode(&self, w: &mut ByteWriter) {
        for item in self {
            item.encode(w);
        }
    }
    fn size_hint(&self) -> usize {
        self.iter().map(Encode::size_hint).sum()
    }
}

impl<T: Decode, const N: usize> Decode for [T; N] {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let mut out = Vec::with_capacity(N);
        for _ in 0..N {
            out.push(T::decode(r)?);
        }
        out.try_into()
            .map_err(|_| WireError::IntOutOfRange { target: "array" })
    }
}

impl<K: Encode, V: Encode, S> Encode for HashMap<K, V, S> {
    fn encode(&self, w: &mut ByteWriter) {
        // NOTE: iteration order of a HashMap is arbitrary, so two equal maps
        // may encode differently.  That is acceptable for values but such a
        // map must not be used as a routing key; `BTreeMap` encodes
        // canonically.
        write_u64(w, self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K, V, S> Decode for HashMap<K, V, S>
where
    K: Decode + Eq + Hash,
    V: Decode,
    S: BuildHasher + Default,
{
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let len = read_u64(r)?;
        let cap = (len as usize).min(r.remaining().max(1)).min(1 << 16);
        let mut out = HashMap::with_capacity_and_hasher(cap, S::default());
        for i in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
            if r.remaining() == 0 && i + 1 != len && len > ZST_LIMIT {
                return Err(WireError::LengthOverrun {
                    declared: len,
                    available: 0,
                });
            }
        }
        Ok(out)
    }
}

impl<K: Encode, V: Encode> Encode for BTreeMap<K, V> {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, self.len() as u64);
        for (k, v) in self {
            k.encode(w);
            v.encode(w);
        }
    }
}

impl<K: Decode + Ord, V: Decode> Decode for BTreeMap<K, V> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let len = read_u64(r)?;
        let mut out = BTreeMap::new();
        for i in 0..len {
            let k = K::decode(r)?;
            let v = V::decode(r)?;
            out.insert(k, v);
            if r.remaining() == 0 && i + 1 != len && len > ZST_LIMIT {
                return Err(WireError::LengthOverrun {
                    declared: len,
                    available: 0,
                });
            }
        }
        Ok(out)
    }
}

impl<T: Encode, S> Encode for HashSet<T, S> {
    fn encode(&self, w: &mut ByteWriter) {
        write_u64(w, self.len() as u64);
        for item in self {
            item.encode(w);
        }
    }
}

impl<T, S> Decode for HashSet<T, S>
where
    T: Decode + Eq + Hash,
    S: BuildHasher + Default,
{
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        let len = read_u64(r)?;
        let cap = (len as usize).min(r.remaining().max(1)).min(1 << 16);
        let mut out = HashSet::with_capacity_and_hasher(cap, S::default());
        for i in 0..len {
            out.insert(T::decode(r)?);
            if r.remaining() == 0 && i + 1 != len && len > ZST_LIMIT {
                return Err(WireError::LengthOverrun {
                    declared: len,
                    available: 0,
                });
            }
        }
        Ok(out)
    }
}

// ---------------------------------------------------------------------------
// Tuples
// ---------------------------------------------------------------------------

macro_rules! impl_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Encode),+> Encode for ($($name,)+) {
            fn encode(&self, w: &mut ByteWriter) {
                $(self.$idx.encode(w);)+
            }
            fn size_hint(&self) -> usize {
                0 $(+ self.$idx.size_hint())+
            }
        }
        impl<$($name: Decode),+> Decode for ($($name,)+) {
            fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
                Ok(($($name::decode(r)?,)+))
            }
        }
    };
}

impl_tuple!(A: 0);
impl_tuple!(A: 0, B: 1);
impl_tuple!(A: 0, B: 1, C: 2);
impl_tuple!(A: 0, B: 1, C: 2, D: 3);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);
impl_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4, F: 5);

// ---------------------------------------------------------------------------
// References and boxes
// ---------------------------------------------------------------------------

impl<T: Encode + ?Sized> Encode for &T {
    fn encode(&self, w: &mut ByteWriter) {
        (**self).encode(w);
    }
    fn size_hint(&self) -> usize {
        (**self).size_hint()
    }
}

impl<T: Encode + ?Sized> Encode for Box<T> {
    fn encode(&self, w: &mut ByteWriter) {
        (**self).encode(w);
    }
    fn size_hint(&self) -> usize {
        (**self).size_hint()
    }
}

impl<T: Decode> Decode for Box<T> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        Ok(Box::new(T::decode(r)?))
    }
}

#[cfg(test)]
mod tests {
    use crate::{from_wire, to_wire};
    use std::collections::{BTreeMap, HashMap, HashSet};

    fn rt<T: crate::Encode + crate::Decode + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = to_wire(&v);
        let back: T = from_wire(&bytes).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn unsigned_roundtrip() {
        rt(0u8);
        rt(255u8);
        rt(u16::MAX);
        rt(u32::MAX);
        rt(u64::MAX);
        rt(usize::MAX);
        rt(u128::MAX);
    }

    #[test]
    fn signed_roundtrip() {
        rt(i8::MIN);
        rt(i8::MAX);
        rt(i16::MIN);
        rt(i32::MIN);
        rt(i64::MIN);
        rt(i64::MAX);
        rt(-1i32);
    }

    #[test]
    fn narrow_decode_rejects_wide_value() {
        let bytes = to_wire(&300u64);
        assert!(from_wire::<u8>(&bytes).is_err());
        let bytes = to_wire(&(i64::from(i32::MAX) + 1));
        assert!(from_wire::<i32>(&bytes).is_err());
    }

    #[test]
    fn floats_bit_exact() {
        rt(0.0f64);
        rt(-0.0f64);
        rt(f64::INFINITY);
        rt(f64::NEG_INFINITY);
        rt(1.5f32);
        let bytes = to_wire(&f64::NAN);
        let back: f64 = from_wire(&bytes).unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn bool_and_unit_and_char() {
        rt(true);
        rt(false);
        rt(());
        rt('x');
        rt('é');
        rt('𝕏');
        assert!(from_wire::<bool>(&[2]).is_err());
    }

    #[test]
    fn char_rejects_surrogate() {
        let bytes = to_wire(&0xD800u32);
        assert!(from_wire::<char>(&bytes).is_err());
    }

    #[test]
    fn strings() {
        rt(String::new());
        rt("hello".to_owned());
        rt("héllo wörld 𝕏".to_owned());
        // Invalid UTF-8 rejected.
        let mut bad = to_wire(&2u64).to_vec();
        bad.extend_from_slice(&[0xff, 0xfe]);
        assert!(from_wire::<String>(&bad).is_err());
    }

    #[test]
    fn bytes_buffer() {
        rt(bytes::Bytes::from_static(b""));
        rt(bytes::Bytes::from_static(b"\x00\x01\xff"));
    }

    #[test]
    fn options_and_results() {
        rt(Option::<u32>::None);
        rt(Some(7u32));
        rt(Result::<u32, String>::Ok(1));
        rt(Result::<u32, String>::Err("bad".into()));
        assert!(from_wire::<Option<u32>>(&[7]).is_err());
    }

    #[test]
    fn sequences() {
        rt(Vec::<u32>::new());
        rt(vec![1u32, 2, 3]);
        rt(vec![vec![1i64], vec![], vec![-5, 5]]);
        rt([1u8, 2, 3]);
    }

    #[test]
    fn hostile_vec_length_rejected() {
        // Declared length of u64::MAX with only a few bytes present must
        // error rather than attempt a huge allocation.
        let bytes = to_wire(&u64::MAX);
        assert!(from_wire::<Vec<u64>>(&bytes).is_err());
    }

    #[test]
    fn maps_and_sets() {
        let mut hm = HashMap::new();
        hm.insert(1u32, "one".to_owned());
        hm.insert(2, "two".to_owned());
        rt(hm);
        let mut bm = BTreeMap::new();
        bm.insert("a".to_owned(), 1i64);
        bm.insert("b".to_owned(), -2);
        rt(bm);
        let mut hs = HashSet::new();
        hs.insert(9u64);
        rt(hs);
    }

    #[test]
    fn btreemap_encoding_is_canonical() {
        let mut a = BTreeMap::new();
        a.insert(2u32, 20u32);
        a.insert(1, 10);
        let mut b = BTreeMap::new();
        b.insert(1u32, 10u32);
        b.insert(2, 20);
        assert_eq!(to_wire(&a), to_wire(&b));
    }

    #[test]
    fn tuples() {
        rt((1u8,));
        rt((1u8, 2u16));
        rt((1u8, "x".to_owned(), vec![1.0f64], Some(false), 9i32, 7u64));
    }

    #[test]
    fn boxed() {
        rt(Box::new(17u64));
    }

    #[test]
    fn size_hints_cover_encoding() {
        // size_hint does not have to be exact, but for the common scalar and
        // container cases it should match to keep buffers right-sized.
        let v = vec![1u64, 300, 70_000];
        assert_eq!(crate::Encode::size_hint(&v), to_wire(&v).len());
        let s = "hello".to_owned();
        assert_eq!(crate::Encode::size_hint(&s), to_wire(&s).len());
    }
}
