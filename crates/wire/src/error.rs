use std::error::Error;
use std::fmt;

/// Error produced when decoding malformed or truncated wire bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum WireError {
    /// The input ended before the value was complete.
    UnexpectedEof {
        /// How many more bytes were needed.
        needed: usize,
        /// How many bytes remained.
        remaining: usize,
    },
    /// A varint ran past its maximum width of 10 bytes.
    VarintOverflow,
    /// A decoded integer did not fit the target type.
    IntOutOfRange {
        /// Human-readable name of the target type.
        target: &'static str,
    },
    /// A length prefix exceeded the bytes actually available.
    LengthOverrun {
        /// The declared length.
        declared: u64,
        /// The bytes available.
        available: usize,
    },
    /// String bytes were not valid UTF-8.
    InvalidUtf8,
    /// A tag byte had no corresponding variant.
    InvalidTag {
        /// Human-readable name of the type being decoded.
        target: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// Decoding succeeded but bytes were left over where none were expected.
    TrailingBytes {
        /// Number of unconsumed bytes.
        remaining: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEof { needed, remaining } => write!(
                f,
                "unexpected end of input: needed {needed} bytes, {remaining} remaining"
            ),
            WireError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            WireError::IntOutOfRange { target } => {
                write!(f, "decoded integer out of range for {target}")
            }
            WireError::LengthOverrun {
                declared,
                available,
            } => write!(
                f,
                "declared length {declared} exceeds {available} available bytes"
            ),
            WireError::InvalidUtf8 => write!(f, "string bytes were not valid UTF-8"),
            WireError::InvalidTag { target, tag } => {
                write!(f, "invalid tag {tag} while decoding {target}")
            }
            WireError::TrailingBytes { remaining } => {
                write!(f, "{remaining} trailing bytes after value")
            }
        }
    }
}

impl Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_nonempty() {
        let errors = [
            WireError::UnexpectedEof {
                needed: 4,
                remaining: 1,
            },
            WireError::VarintOverflow,
            WireError::IntOutOfRange { target: "u8" },
            WireError::LengthOverrun {
                declared: 10,
                available: 2,
            },
            WireError::InvalidUtf8,
            WireError::InvalidTag {
                target: "Option",
                tag: 9,
            },
            WireError::TrailingBytes { remaining: 3 },
        ];
        for e in errors {
            let s = e.to_string();
            assert!(!s.is_empty());
            assert!(!s.chars().next().unwrap().is_uppercase());
            assert!(!s.ends_with('.'));
        }
    }

    #[test]
    fn is_std_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<WireError>();
    }
}
