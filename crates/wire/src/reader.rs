use crate::WireError;

/// A cursor over a byte slice used as the decoding source.
///
/// # Examples
///
/// ```
/// use ripple_wire::ByteReader;
///
/// # fn main() -> Result<(), ripple_wire::WireError> {
/// let mut r = ByteReader::new(&[1, 2, 3]);
/// assert_eq!(r.read_byte()?, 1);
/// assert_eq!(r.read_slice(2)?, &[2, 3]);
/// assert!(r.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct ByteReader<'a> {
    rest: &'a [u8],
}

impl<'a> ByteReader<'a> {
    /// Creates a reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { rest: bytes }
    }

    /// Number of unread bytes.
    pub fn remaining(&self) -> usize {
        self.rest.len()
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.rest.is_empty()
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when the reader is empty.
    pub fn read_byte(&mut self) -> Result<u8, WireError> {
        match self.rest.split_first() {
            Some((&b, rest)) => {
                self.rest = rest;
                Ok(b)
            }
            None => Err(WireError::UnexpectedEof {
                needed: 1,
                remaining: 0,
            }),
        }
    }

    /// Reads exactly `len` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when fewer than `len` bytes
    /// remain.
    pub fn read_slice(&mut self, len: usize) -> Result<&'a [u8], WireError> {
        if self.rest.len() < len {
            return Err(WireError::UnexpectedEof {
                needed: len,
                remaining: self.rest.len(),
            });
        }
        let (head, tail) = self.rest.split_at(len);
        self.rest = tail;
        Ok(head)
    }

    /// Reads a fixed-size array of bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::UnexpectedEof`] when fewer than `N` bytes remain.
    pub fn read_array<const N: usize>(&mut self) -> Result<[u8; N], WireError> {
        let slice = self.read_slice(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(slice);
        Ok(out)
    }

    /// Validates that a declared collection length is plausible for the
    /// bytes remaining, guarding against hostile length prefixes.
    ///
    /// Each element must occupy at least `min_elem_size` bytes (use 1 for
    /// variable-size elements).
    ///
    /// # Errors
    ///
    /// Returns [`WireError::LengthOverrun`] when `declared * min_elem_size`
    /// exceeds the remaining bytes.
    pub fn check_len(&self, declared: u64, min_elem_size: usize) -> Result<usize, WireError> {
        let need = declared.saturating_mul(min_elem_size.max(1) as u64);
        if need > self.rest.len() as u64 {
            return Err(WireError::LengthOverrun {
                declared,
                available: self.rest.len(),
            });
        }
        Ok(declared as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_past_end_is_eof() {
        let mut r = ByteReader::new(&[1]);
        assert_eq!(r.read_byte().unwrap(), 1);
        assert!(matches!(
            r.read_byte(),
            Err(WireError::UnexpectedEof {
                needed: 1,
                remaining: 0
            })
        ));
        assert!(matches!(
            r.read_slice(3),
            Err(WireError::UnexpectedEof {
                needed: 3,
                remaining: 0
            })
        ));
    }

    #[test]
    fn read_array_exact() {
        let mut r = ByteReader::new(&[1, 2, 3, 4]);
        let a: [u8; 4] = r.read_array().unwrap();
        assert_eq!(a, [1, 2, 3, 4]);
        assert!(r.is_empty());
    }

    #[test]
    fn check_len_guards_hostile_prefixes() {
        let r = ByteReader::new(&[0; 8]);
        assert_eq!(r.check_len(8, 1).unwrap(), 8);
        assert!(matches!(
            r.check_len(9, 1),
            Err(WireError::LengthOverrun { .. })
        ));
        assert!(matches!(
            r.check_len(u64::MAX, 4),
            Err(WireError::LengthOverrun { .. })
        ));
        // Zero-size elements are treated as size one for the check.
        assert_eq!(r.check_len(8, 0).unwrap(), 8);
    }
}
