//! Checksummed record frames for append-only logs.
//!
//! A frame wraps an opaque payload for storage in a write-ahead log:
//!
//! ```text
//! +----------------+---------------+----------------+
//! | length varint  | payload bytes | CRC32 (LE u32) |
//! +----------------+---------------+----------------+
//! ```
//!
//! The length is a LEB128 varint counting payload bytes only; the
//! checksum is CRC-32 (IEEE 802.3 polynomial) over the payload.  The
//! format is designed for logs that may be cut off mid-write by a crash:
//! [`read_frame`] distinguishes a *clean end* (the previous frame ended
//! exactly at the end of input), a *torn tail* (the input ends inside a
//! frame — the normal aftermath of an interrupted append), and a
//! *corrupt frame* (complete but failing its checksum).  Readers replay
//! every intact frame and truncate at the first torn or corrupt one.

use crate::{varint, ByteReader, ByteWriter, WireError};

/// CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = build_crc_table();

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// CRC-32 (IEEE) of `data`, as used by frame checksums.
///
/// # Examples
///
/// ```
/// assert_eq!(ripple_wire::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(data: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xff) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

/// Appends one frame wrapping `payload` to `out`.
pub fn write_frame(out: &mut Vec<u8>, payload: &[u8]) {
    let mut header = ByteWriter::with_capacity(varint::MAX_VARINT_LEN);
    varint::write_u64(&mut header, payload.len() as u64);
    out.extend_from_slice(header.as_slice());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
}

/// Total bytes [`write_frame`] emits for a payload of `payload_len` bytes.
pub fn frame_len(payload_len: usize) -> usize {
    varint::varint_len(payload_len as u64) + payload_len + 4
}

/// The outcome of reading one frame from `buf` at `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameRead<'a> {
    /// A complete frame with a valid checksum; `next` is the offset just
    /// past it.
    Frame {
        /// The frame's payload bytes.
        payload: &'a [u8],
        /// Offset of the byte after this frame.
        next: usize,
    },
    /// `offset` is exactly the end of the input: the log ends cleanly.
    End,
    /// The input ends inside a frame — a torn tail from an interrupted
    /// append.  Everything before `offset` is intact.
    Torn,
    /// A complete frame whose checksum does not match its payload.
    Corrupt,
}

/// Reads the frame starting at `offset` in `buf`.
///
/// Never panics on malformed input; a length varint that is itself
/// damaged (overlong, or implying a frame past the end of input) reads as
/// [`FrameRead::Torn`], since the log is unusable from that point either
/// way and readers truncate there.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead<'_> {
    if offset >= buf.len() {
        return FrameRead::End;
    }
    let mut r = ByteReader::new(&buf[offset..]);
    let len = match varint::read_u64(&mut r) {
        Ok(len) => len,
        Err(WireError::UnexpectedEof { .. }) => return FrameRead::Torn,
        Err(_) => return FrameRead::Torn,
    };
    let body = offset + (buf.len() - offset - r.remaining());
    let Some(len) = usize::try_from(len).ok().filter(|l| {
        buf.len()
            .checked_sub(body + 4)
            .is_some_and(|avail| *l <= avail)
    }) else {
        return FrameRead::Torn;
    };
    let payload = &buf[body..body + len];
    let stored = u32::from_le_bytes([
        buf[body + len],
        buf[body + len + 1],
        buf[body + len + 2],
        buf[body + len + 3],
    ]);
    if crc32(payload) != stored {
        return FrameRead::Corrupt;
    }
    FrameRead::Frame {
        payload,
        next: body + len + 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_in_sequence() {
        let payloads: [&[u8]; 4] = [b"", b"a", b"hello world", &[0xffu8; 300]];
        let mut log = Vec::new();
        for p in payloads {
            write_frame(&mut log, p);
        }
        let mut offset = 0;
        let mut seen = Vec::new();
        loop {
            match read_frame(&log, offset) {
                FrameRead::Frame { payload, next } => {
                    seen.push(payload.to_vec());
                    offset = next;
                }
                FrameRead::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(seen.len(), payloads.len());
        for (got, want) in seen.iter().zip(payloads) {
            assert_eq!(got.as_slice(), want);
        }
    }

    #[test]
    fn frame_len_matches_written() {
        for len in [0usize, 1, 127, 128, 1000] {
            let mut out = Vec::new();
            write_frame(&mut out, &vec![7u8; len]);
            assert_eq!(out.len(), frame_len(len));
        }
    }

    #[test]
    fn every_truncation_is_torn_never_panic() {
        let mut log = Vec::new();
        write_frame(&mut log, b"first");
        let intact = log.len();
        write_frame(&mut log, b"second record, somewhat longer");
        for cut in intact + 1..log.len() {
            match read_frame(&log[..cut], intact) {
                FrameRead::Torn => {}
                other => panic!("cut at {cut}: expected Torn, got {other:?}"),
            }
        }
        assert_eq!(read_frame(&log[..intact], intact), FrameRead::End);
    }

    #[test]
    fn flipped_payload_byte_is_corrupt() {
        let mut log = Vec::new();
        write_frame(&mut log, b"payload");
        let mid = log.len() - 6; // inside the payload
        log[mid] ^= 0x40;
        assert_eq!(read_frame(&log, 0), FrameRead::Corrupt);
    }

    #[test]
    fn flipped_checksum_byte_is_corrupt() {
        let mut log = Vec::new();
        write_frame(&mut log, b"payload");
        let last = log.len() - 1;
        log[last] ^= 0x01;
        assert_eq!(read_frame(&log, 0), FrameRead::Corrupt);
    }

    #[test]
    fn absurd_length_is_torn_not_allocation() {
        // A length varint claiming far more bytes than the input holds.
        let mut log = Vec::new();
        let mut w = ByteWriter::new();
        varint::write_u64(&mut w, u64::MAX - 1);
        log.extend_from_slice(w.as_slice());
        log.extend_from_slice(b"junk");
        assert_eq!(read_frame(&log, 0), FrameRead::Torn);
    }
}
