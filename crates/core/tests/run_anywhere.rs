//! Tests of the run-anywhere (work-stealing) compute phase, enabled by
//! `one-msg ∧ no-continue ∧ rare-state`.

use std::sync::Arc;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, ExecutionPlan, Exporter,
    FnLoader, Job, JobProperties, JobRunner, LoadSink, RunOptions,
};
use ripple_kv::{KvStore, PartId};
use ripple_store_mem::MemStore;

/// A run-anywhere-eligible job whose work all lands in one part: each
/// invocation records the part it actually executed at (via direct
/// output), writes a result, and optionally relays once.
struct SkewedWork {
    exporter: Arc<CollectingExporter<u32, u32>>, // (key, executing part)
}

impl Job for SkewedWork {
    type Key = u32;
    type State = u64;
    type Message = u64;
    type OutKey = u32;
    type OutValue = u32;

    fn state_tables(&self) -> Vec<String> {
        vec!["skew".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            one_msg: true,
            no_continue: true,
            rare_state: true,
            deterministic: true,
            // NOT no_ss_order / incremental: stays synchronized, so the
            // run-anywhere path of the sync engine is what executes.
            ..JobProperties::default()
        }
    }

    fn direct_output(&self) -> Option<Arc<dyn Exporter<u32, u32>>> {
        Some(self.exporter.clone() as Arc<dyn Exporter<u32, u32>>)
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let key = *ctx.key();
        let part = ctx.part().0;
        ctx.output(key, part)?;
        let payload = ctx.messages().first().copied().unwrap_or(0);
        // Non-trivial work so that, even on one core, the OS interleaves
        // the stealing workers.
        std::thread::sleep(std::time::Duration::from_micros(300));
        // Some "rare" state access.
        ctx.write_state(0, &(payload + 1))?;
        Ok(false)
    }
}

/// Keys that all route to part 0 of a `parts`-part table.
fn keys_in_part(parts: u32, part: u32, count: usize) -> Vec<u32> {
    (0u32..)
        .filter(|k| ripple_core::key_to_routed(k).part_for(parts) == PartId(part))
        .take(count)
        .collect()
}

#[test]
fn plan_selects_run_anywhere() {
    let exporter = Arc::new(CollectingExporter::new());
    let job = SkewedWork { exporter };
    let plan = ExecutionPlan::derive(&job.properties(), true, true);
    assert!(plan.run_anywhere);
    assert!(!plan.collect);
    assert_eq!(plan.mode, ripple_core::ExecMode::Synchronized);
}

#[test]
fn skewed_work_is_stolen_across_parts() {
    const PARTS: u32 = 4;
    let store = MemStore::builder().default_parts(PARTS).build();
    let exporter = Arc::new(CollectingExporter::new());
    let job = Arc::new(SkewedWork {
        exporter: Arc::clone(&exporter),
    });
    // 200 components, every single one living in part 0.
    let keys = keys_in_part(PARTS, 0, 200);
    let outcome = JobRunner::new(store)
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<SkewedWork>| {
                    for k in keys {
                        sink.message(k, 7)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.metrics.invocations, 200);

    // The invocations must have been spread over multiple parts even
    // though all the components' state lives in part 0.
    let executed = exporter.take();
    let mut parts_used: Vec<u32> = executed.iter().map(|(_, p)| *p).collect();
    parts_used.sort();
    parts_used.dedup();
    assert!(
        parts_used.len() > 1,
        "work stealing must use more than one part, used {parts_used:?}"
    );
}

#[test]
fn run_anywhere_results_are_correct() {
    const PARTS: u32 = 3;
    let store = MemStore::builder().default_parts(PARTS).build();
    let exporter = Arc::new(CollectingExporter::new());
    let job = Arc::new(SkewedWork { exporter });
    let keys = keys_in_part(PARTS, 1, 50);
    let expect_keys = keys.clone();
    JobRunner::new(store.clone())
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<SkewedWork>| {
                    for k in keys {
                        sink.message(k, 41)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    // Every component wrote 42, into its *home* part's state table.
    let table = store.lookup_table("skew").unwrap();
    let state_exporter = Arc::new(CollectingExporter::<u32, u64>::new());
    export_state_table(&store, &table, Arc::clone(&state_exporter)).unwrap();
    let mut got = state_exporter.take();
    got.sort();
    assert_eq!(got.len(), expect_keys.len());
    for (k, v) in got {
        assert!(expect_keys.contains(&k));
        assert_eq!(v, 42);
    }
}

/// Pinned vs stolen: both produce identical state; stealing pays remote
/// state traffic (the rare-state price) that pinned execution does not.
#[test]
fn stealing_costs_remote_state_access() {
    const PARTS: u32 = 4;

    struct Pinned;
    impl Job for Pinned {
        type Key = u32;
        type State = u64;
        type Message = u64;
        type OutKey = u32;
        type OutValue = u32;
        fn state_tables(&self) -> Vec<String> {
            vec!["pinned".to_owned()]
        }
        // one-msg + no-continue but NOT rare-state: no stealing.
        fn properties(&self) -> JobProperties {
            JobProperties {
                one_msg: true,
                no_continue: true,
                ..JobProperties::default()
            }
        }
        fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
            let payload = ctx.messages().first().copied().unwrap_or(0);
            std::thread::sleep(std::time::Duration::from_micros(300));
            ctx.write_state(0, &(payload + 1))?;
            Ok(false)
        }
    }

    let store = MemStore::builder().default_parts(PARTS).build();
    let keys = keys_in_part(PARTS, 0, 100);
    let before = store.metrics();
    JobRunner::new(store.clone())
        .launch(
            Arc::new(Pinned),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new({
                let keys = keys.clone();
                move |sink: &mut dyn LoadSink<Pinned>| {
                    for k in keys {
                        sink.message(k, 1)?;
                    }
                    Ok(())
                }
            }))]),
        )
        .unwrap();
    let pinned_delta = store.metrics() - before;

    let store2 = MemStore::builder().default_parts(PARTS).build();
    let before = store2.metrics();
    JobRunner::new(store2.clone())
        .launch(
            Arc::new(SkewedWork {
                exporter: Arc::new(CollectingExporter::new()),
            }),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<SkewedWork>| {
                    for k in keys {
                        sink.message(k, 1)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    let stolen_delta = store2.metrics() - before;

    assert!(
        stolen_delta.remote_ops > pinned_delta.remote_ops,
        "stealing: {} remote ops, pinned: {}",
        stolen_delta.remote_ops,
        pinned_delta.remote_ops
    );
}
