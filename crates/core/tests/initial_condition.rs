//! The job's initial condition (§II): "initial local component states, a
//! set of incoming messages, initial aggregator states, and a designation
//! of which additional components are enabled" — all four channels of the
//! loader interface, plus `Job::initial_aggregates`.

use std::sync::Arc;

use ripple_core::{
    AggValue, Aggregate, ComputeContext, EbspError, FnLoader, Job, JobRunner, LoadSink, RunOptions,
    SumI64,
};
use ripple_kv::KvStore;
use ripple_store_mem::MemStore;

/// Observes its initial condition in step 1 and echoes it into state.
struct Observer;

impl Job for Observer {
    type Key = u32;
    type State = (u64, Vec<i64>); // (state seen, messages seen)
    type Message = i64;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["observed".to_owned()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![("seed".to_owned(), Arc::new(SumI64))]
    }

    fn initial_aggregates(&self) -> Vec<(String, AggValue)> {
        vec![("seed".to_owned(), AggValue::I64(100))]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        assert_eq!(ctx.step(), 1, "this job runs exactly one step");
        // Loader-fed + job-declared initial aggregates are visible at step 1.
        assert_eq!(ctx.aggregate_prev("seed"), Some(AggValue::I64(142)));
        let prior = ctx.read_state(0)?.map_or(0, |(s, _)| s);
        let msgs = ctx.take_messages();
        ctx.write_state(0, &(prior, msgs))?;
        Ok(false)
    }
}

#[test]
fn all_four_initial_condition_channels() {
    let store = MemStore::builder().default_parts(3).build();
    let outcome = JobRunner::new(store.clone())
        .launch(
            Arc::new(Observer),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<Observer>| {
                    // 1. initial states
                    sink.state(0, 1, (11, Vec::new()))?;
                    sink.state(0, 2, (22, Vec::new()))?;
                    // 2. initial messages (enable their targets too)
                    sink.message(1, -5)?;
                    sink.message(1, -6)?;
                    // 3. extra enablement without a message
                    sink.enable(2)?;
                    // 4. initial aggregator input (joins the job's 100)
                    sink.aggregate("seed", AggValue::I64(42))?;
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.steps, 1);
    assert_eq!(outcome.metrics.invocations, 2);

    let table = store.lookup_table("observed").unwrap();
    let exporter = Arc::new(ripple_core::CollectingExporter::new());
    ripple_core::export_state_table::<_, u32, (u64, Vec<i64>), _>(
        &store,
        &table,
        Arc::clone(&exporter),
    )
    .unwrap();
    let mut got = exporter.take();
    got.sort();
    // Component 1: had state 11, received both messages (order-insensitive).
    let (k1, (s1, mut m1)) = got[0].clone();
    m1.sort();
    assert_eq!((k1, s1, m1), (1, 11, vec![-6, -5]));
    // Component 2: enabled without messages, state intact.
    assert_eq!(got[1], (2, (22, Vec::new())));
}

#[test]
fn loader_rejects_unknown_aggregator() {
    let store = MemStore::builder().default_parts(2).build();
    let err = JobRunner::new(store)
        .launch(
            Arc::new(Observer),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<Observer>| sink.aggregate("nonexistent", AggValue::I64(1)),
            ))]),
        )
        .unwrap_err();
    assert!(matches!(err, EbspError::NoSuchAggregator { .. }));
}

#[test]
fn loader_rejects_bad_state_table_index() {
    let store = MemStore::builder().default_parts(2).build();
    let err = JobRunner::new(store)
        .launch(
            Arc::new(Observer),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<Observer>| sink.state(5, 0, (0, Vec::new())),
            ))]),
        )
        .unwrap_err();
    assert!(matches!(err, EbspError::StateTableIndex { index: 5, .. }));
}
