//! Failure-injection tests of the checkpoint/rollback/replay recovery path
//! (paper §IV-A's shard-transaction discipline).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, FnLoader, Job,
    JobProperties, JobRunner, LoadSink, RunOptions,
};
use ripple_kv::{KvStore, PartId};
use ripple_store_mem::MemStore;

/// A deterministic accumulator: every component adds its step number to its
/// state for `steps` steps.  The final state of component k is
/// `1 + 2 + ... + steps`, regardless of recovery.
struct StepSummer {
    steps: u32,
    // Failure injection: at (step, flag-not-yet-used) wipe a part.
    store: MemStore,
    fail_at_step: u32,
    fail_part: u32,
    injected: AtomicBool,
}

impl Job for StepSummer {
    type Key = u32;
    type State = u64;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["sums_rec".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            deterministic: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == self.fail_at_step
            && *ctx.key() == 0
            && !self.injected.swap(true, Ordering::SeqCst)
        {
            // Simulate a shard loss mid-step: wipe the part and mark it
            // failed; the next state access below will surface PartFailed.
            let reference = self.store.lookup_table("sums_rec").unwrap();
            self.store
                .fail_part(&reference, PartId(self.fail_part))
                .unwrap();
        }
        let s = ctx.read_state(0)?.unwrap_or(0) + u64::from(ctx.step());
        ctx.write_state(0, &s)?;
        Ok(ctx.step() < self.steps)
    }
}

fn run_summer(
    steps: u32,
    fail_at_step: u32,
    checkpoint_interval: u32,
) -> (Vec<(u32, u64)>, ripple_core::RunMetrics) {
    run_summer_with(steps, fail_at_step, checkpoint_interval, true)
}

fn run_summer_with(
    steps: u32,
    fail_at_step: u32,
    checkpoint_interval: u32,
    fast: bool,
) -> (Vec<(u32, u64)>, ripple_core::RunMetrics) {
    let store = MemStore::builder().default_parts(3).build();
    let job = Arc::new(StepSummer {
        steps,
        store: store.clone(),
        fail_at_step,
        fail_part: 0,
        injected: AtomicBool::new(false),
    });
    let outcome = JobRunner::new(store.clone())
        .checkpoint_interval(checkpoint_interval)
        .fast_recovery(fast)
        .launch(
            job,
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<StepSummer>| {
                        for k in 0..30u32 {
                            sink.enable(k)?;
                        }
                        Ok(())
                    },
                ))])
                .recovery(),
        )
        .unwrap();
    let table = store.lookup_table("sums_rec").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u64>::new());
    export_state_table(&store, &table, Arc::clone(&exporter)).unwrap();
    let mut pairs = exporter.take();
    pairs.sort();
    (pairs, outcome.metrics)
}

#[test]
fn clean_run_baseline() {
    let (pairs, metrics) = run_summer(6, u32::MAX, 2);
    assert_eq!(metrics.recoveries, 0);
    assert_eq!(pairs.len(), 30);
    let expect: u64 = (1..=6u64).sum();
    for (_, v) in pairs {
        assert_eq!(v, expect);
    }
}

#[test]
fn failure_mid_run_recovers_to_identical_result() {
    let (pairs, metrics) = run_summer(6, 4, 2);
    assert!(metrics.recoveries >= 1, "a recovery must have happened");
    assert_eq!(pairs.len(), 30);
    let expect: u64 = (1..=6u64).sum();
    for (k, v) in pairs {
        assert_eq!(v, expect, "component {k} diverged after recovery");
    }
}

#[test]
fn failure_with_every_step_checkpointing() {
    let (pairs, metrics) = run_summer(5, 3, 1);
    assert!(metrics.recoveries >= 1);
    let expect: u64 = (1..=5u64).sum();
    for (_, v) in pairs {
        assert_eq!(v, expect);
    }
}

#[test]
fn failure_at_first_step_recovers_from_initial_checkpoint() {
    let (pairs, metrics) = run_summer(4, 1, 3);
    assert!(metrics.recoveries >= 1);
    let expect: u64 = (1..=4u64).sum();
    for (_, v) in pairs {
        assert_eq!(v, expect);
    }
}

/// The ISSUE's fast-recovery acceptance criterion: a single part failure
/// yields the correct output either way, but replaying the failed part
/// *alone* charges strictly fewer part-steps than rolling the whole group
/// back to the checkpoint.
#[test]
fn fast_recovery_replays_strictly_fewer_part_steps() {
    let (fast_pairs, fast_metrics) = run_summer_with(6, 4, 2, true);
    let (full_pairs, full_metrics) = run_summer_with(6, 4, 2, false);
    assert!(fast_metrics.recoveries >= 1, "fast run must have recovered");
    assert!(full_metrics.recoveries >= 1, "full run must have recovered");
    let expect: u64 = (1..=6u64).sum();
    assert_eq!(fast_pairs.len(), 30);
    for (k, v) in &fast_pairs {
        assert_eq!(*v, expect, "component {k} diverged under fast recovery");
    }
    assert_eq!(
        fast_pairs, full_pairs,
        "both modes must converge identically"
    );
    // Failure during step 4 with a checkpoint at step 2: fast recovery
    // replays one part for 2 steps; whole-group rollback re-runs all
    // 3 parts for those 2 steps.
    assert!(
        fast_metrics.replayed_part_steps < full_metrics.replayed_part_steps,
        "fast ({}) must replay strictly fewer part-steps than whole-group ({})",
        fast_metrics.replayed_part_steps,
        full_metrics.replayed_part_steps
    );
}

#[test]
fn unrecoverable_without_checkpointing() {
    let store = MemStore::builder().default_parts(3).build();
    let job = Arc::new(StepSummer {
        steps: 6,
        store: store.clone(),
        fail_at_step: 3,
        fail_part: 0,
        injected: AtomicBool::new(false),
    });
    // Plain run(): no recovery hooks.
    let err = JobRunner::new(store)
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<StepSummer>| {
                    for k in 0..30u32 {
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap_err();
    assert!(
        matches!(
            err,
            EbspError::Unrecoverable { .. } | EbspError::Kv(ripple_kv::KvError::PartFailed { .. })
        ),
        "got {err:?}"
    );
}
