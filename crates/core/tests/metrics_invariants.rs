//! Metric invariants under failure: what [`RunMetrics`] reports about
//! recoveries must agree with what the observer saw, and at-least-once
//! redelivery in the healing engine must not inflate the work counters
//! beyond the redelivered round.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ripple_core::{
    ComputeContext, EbspError, FnLoader, Job, JobProperties, JobRunner, LoadSink, ObservedEvent,
    RecordingObserver, RunOptions, RunOutcome,
};
use ripple_kv::{KvStore, PartId, TableSpec};
use ripple_store_mem::MemStore;

const PARTS: u32 = 2;
const KEYS: u32 = 8;

/// A countdown that fails part 0 out from under step 2 exactly once.
struct FaultyCountDown {
    store: MemStore,
    injected: AtomicBool,
    table: String,
    deterministic: bool,
}

impl Job for FaultyCountDown {
    type Key = u32;
    type State = u32;
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec![self.table.clone()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            deterministic: self.deterministic,
            ..Default::default()
        }
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == 2 && !self.injected.swap(true, Ordering::SeqCst) {
            let t = self.store.lookup_table(&self.table).unwrap();
            self.store.fail_part(&t, PartId(0)).unwrap();
        }
        let left = ctx.read_state(0)?.unwrap_or(0);
        ctx.write_state(0, &left.saturating_sub(1))?;
        Ok(left > 1)
    }
}

fn run_faulty(table: &str, deterministic: bool, fast: bool) -> (RunOutcome, Vec<ObservedEvent>) {
    let observer = Arc::new(RecordingObserver::new());
    let store = MemStore::builder().default_parts(PARTS).build();
    let mut runner = JobRunner::new(store.clone());
    runner
        .checkpoint_interval(1)
        .fast_recovery(fast)
        .observer(observer.clone());
    let outcome = runner
        .launch(
            Arc::new(FaultyCountDown {
                store,
                injected: AtomicBool::new(false),
                table: table.to_owned(),
                deterministic,
            }),
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<FaultyCountDown>| {
                        for k in 0..KEYS {
                            sink.state(0, k, 4)?;
                            sink.enable(k)?;
                        }
                        Ok(())
                    },
                ))])
                .recovery(),
        )
        .unwrap();
    (outcome, observer.take())
}

#[test]
fn fast_recovery_metrics_agree_with_observer_events() {
    let (outcome, events) = run_faulty("fr_agree", true, true);
    let m = &outcome.metrics;
    let fast: Vec<(u32, u32)> = events
        .iter()
        .filter_map(|e| match e {
            ObservedEvent::FastRecovery(part, replayed) => Some((*part, *replayed)),
            _ => None,
        })
        .collect();
    let whole = events
        .iter()
        .filter(|e| matches!(e, ObservedEvent::Recovery(_)))
        .count();
    assert!(!fast.is_empty(), "the injected failure must fast-recover");
    assert_eq!(whole, 0, "determinism keeps recovery on the fast path");
    assert_eq!(fast.len() as u32, m.recoveries, "{events:?}\n{m}");
    assert_eq!(
        fast.iter().map(|(_, r)| u64::from(*r)).sum::<u64>(),
        m.replayed_part_steps,
        "fast recovery replays only the failed part's steps"
    );
}

#[test]
fn whole_group_recovery_metrics_agree_with_observer_events() {
    let (outcome, events) = run_faulty("wg_agree", false, false);
    let m = &outcome.metrics;
    let whole = events
        .iter()
        .filter(|e| matches!(e, ObservedEvent::Recovery(_)))
        .count();
    assert!(whole >= 1, "the injected failure must roll the group back");
    assert_eq!(whole as u32, m.recoveries, "{events:?}\n{m}");
    // Checkpointing every barrier means each rollback rewinds exactly one
    // step, and the whole group replays it: parts × recoveries part-steps.
    assert_eq!(
        m.replayed_part_steps,
        u64::from(PARTS) * u64::from(m.recoveries),
        "{m}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, ObservedEvent::FastRecovery(..))),
        "{events:?}"
    );
}

const CHAIN: &str = "chain_invariants";

/// The healing engine's idempotent chain relaxation (see `healing.rs`):
/// key k keeps the minimum it has heard and forwards `best + 1` once.
struct ChainRelax {
    store: MemStore,
    injected: AtomicBool,
    fail_on_key: u32,
    n: u32,
}

impl Job for ChainRelax {
    type Key = u32;
    type State = u32;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec![CHAIN.to_owned()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        if me == self.fail_on_key && !self.injected.swap(true, Ordering::SeqCst) {
            let t = self.store.lookup_table(CHAIN).unwrap();
            self.store.fail_part(&t, ctx.part()).unwrap();
        }
        let mut best = ctx.read_state(0)?.unwrap_or(u32::MAX);
        let mut improved = false;
        for d in ctx.take_messages() {
            if d < best {
                best = d;
                improved = true;
            }
        }
        if improved {
            ctx.write_state(0, &best)?;
            if me + 1 < self.n {
                ctx.send(me + 1, best + 1);
            }
        }
        Ok(false)
    }
}

fn run_chain(fail_on_key: Option<u32>, n: u32) -> RunOutcome {
    let store = MemStore::builder().default_parts(PARTS).build();
    store
        .create_table(TableSpec::new(CHAIN).parts(PARTS).replicated())
        .unwrap();
    let mut runner = JobRunner::new(store.clone());
    runner
        .profile(true)
        .quiescence_timeout(Duration::from_secs(30));
    runner
        .launch(
            Arc::new(ChainRelax {
                store,
                injected: AtomicBool::new(fail_on_key.is_none()),
                fail_on_key: fail_on_key.unwrap_or(0),
                n,
            }),
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<ChainRelax>| sink.message(0, 0),
                ))])
                .healing(),
        )
        .unwrap()
}

#[test]
fn at_least_once_redelivery_does_not_double_count() {
    let n = 12u32;
    let clean = run_chain(None, n);
    let healed = run_chain(Some(n / 2), n);
    assert_eq!(clean.metrics.recoveries, 0);
    assert!(healed.metrics.recoveries >= 1, "{}", healed.metrics);

    // The chain visits each key once in a clean run; healing may re-run
    // only the ledgered round it redelivered — per recovery, at most the
    // round in flight (one message here, invoked at most twice: the crashed
    // attempt and its redelivery).
    assert!(healed.metrics.invocations >= clean.metrics.invocations);
    let slack = u64::from(healed.metrics.recoveries) * 2;
    assert!(
        healed.metrics.invocations <= clean.metrics.invocations + slack,
        "redelivery must not double-count beyond the redelivered round: \
         clean {} vs healed {}",
        clean.metrics.invocations,
        healed.metrics.invocations
    );
    assert!(
        healed.metrics.messages_sent <= clean.metrics.messages_sent + slack,
        "clean {} vs healed {}",
        clean.metrics.messages_sent,
        healed.metrics.messages_sent
    );

    // Worker profiles survive the heal-respawn: still one per part, with
    // the redelivered envelopes folded into the same worker's counts.
    let workers = healed.worker_profiles.as_deref().expect("profiling on");
    assert_eq!(workers.len() as u32, PARTS);
    let envelopes: u64 = workers.iter().map(|w| w.envelopes).sum();
    assert!(
        envelopes >= healed.metrics.invocations,
        "every invocation was fed by a delivered envelope: {workers:?}"
    );
}
