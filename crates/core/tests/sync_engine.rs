//! Behavioural tests of the synchronized K/V EBSP engine: BSP message
//! semantics (Figure 1), selective enablement, combiners, ordering,
//! aggregators, aborters, broadcast data, direct output, state creation
//! and deletion, and plan/property enforcement.

use std::sync::Arc;

use ripple_core::{
    export_state_table, AggValue, Aggregate, AggregateSnapshot, CollectingExporter, ComputeContext,
    EbspError, ExecMode, Exporter, FnLoader, Job, JobProperties, JobRunner, LoadSink, RunOptions,
    SumI64,
};
use ripple_kv::{KvStore, Table, TableSpec};
use ripple_store_mem::MemStore;

fn store() -> MemStore {
    MemStore::builder().default_parts(4).build()
}

// ---------------------------------------------------------------------------
// Figure 1 semantics: a message sent in step i arrives exactly in step i+1.
// ---------------------------------------------------------------------------

/// Components pass a token along a ring of N components for R rounds,
/// recording (step, holder) observations in their state.
struct RingToken {
    n: u32,
    rounds: u32,
}

impl Job for RingToken {
    type Key = u32;
    type State = Vec<(u32, u32)>; // (step, hop) observations
    type Message = u32; // hop count
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["ring".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let mut obs = ctx.read_state(0)?.unwrap_or_default();
        let msgs = ctx.take_messages();
        assert!(msgs.len() <= 1, "ring passes exactly one token");
        if let Some(hop) = msgs.first() {
            obs.push((ctx.step(), *hop));
            ctx.write_state(0, &obs)?;
            if *hop < self.rounds * self.n {
                let next = (ctx.key() + 1) % self.n;
                ctx.send(next, hop + 1);
            }
        }
        Ok(false)
    }
}

#[test]
fn message_arrives_exactly_next_step() {
    let n = 5;
    let job = Arc::new(RingToken { n, rounds: 2 });
    let outcome = JobRunner::new(store())
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<RingToken>| sink.message(0, 1),
            ))]),
        )
        .unwrap();
    // Token makes 2*n hops; each hop is one step.
    assert_eq!(outcome.steps, 2 * n);
    assert_eq!(outcome.metrics.barriers, 2 * n);
    // Component 0 saw the token at steps 1, n+1 with hops 1, n+1.
    let s = store();
    let _ = s; // observations checked via a fresh run below with shared store
}

#[test]
fn ring_observations_match_steps() {
    let n = 4u32;
    let s = store();
    let job = Arc::new(RingToken { n, rounds: 1 });
    JobRunner::new(s.clone())
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<RingToken>| sink.message(0, 1),
            ))]),
        )
        .unwrap();
    let table = s.lookup_table("ring").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, Vec<(u32, u32)>>::new());
    export_state_table(&s, &table, Arc::clone(&exporter)).unwrap();
    let mut pairs = exporter.take();
    pairs.sort();
    // Component k receives hop k+1 at step k+1.
    assert_eq!(pairs.len(), n as usize);
    for (k, obs) in pairs {
        assert_eq!(obs, vec![(k + 1, k + 1)]);
    }
}

// ---------------------------------------------------------------------------
// Selective enablement: only messaged/continuing components are invoked.
// ---------------------------------------------------------------------------

struct TouchCounter;

impl Job for TouchCounter {
    type Key = u32;
    type State = u64; // times invoked
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["touches".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let n = ctx.read_state(0)?.unwrap_or(0) + 1;
        ctx.write_state(0, &n)?;
        Ok(false)
    }
}

#[test]
fn only_enabled_components_run() {
    let s = store();
    let job = Arc::new(TouchCounter);
    let outcome = JobRunner::new(s.clone())
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<TouchCounter>| {
                    // 100 components exist, only 3 get messages.
                    for k in 0..100u32 {
                        sink.state(0, k, 0)?;
                    }
                    sink.message(7, ())?;
                    sink.message(42, ())?;
                    sink.message(99, ())?;
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.steps, 1);
    assert_eq!(outcome.metrics.invocations, 3, "97 components must not run");
    let table = s.lookup_table("touches").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u64>::new());
    export_state_table(&s, &table, Arc::clone(&exporter)).unwrap();
    let touched: u64 = exporter.take().into_iter().map(|(_, v)| v).sum();
    assert_eq!(touched, 3);
}

// ---------------------------------------------------------------------------
// Combiner: pairwise merging reduces delivered message counts.
// ---------------------------------------------------------------------------

struct SumFanIn {
    senders: u32,
    combine: bool,
}

impl Job for SumFanIn {
    type Key = u32;
    type State = i64;
    type Message = i64;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["sums".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if *ctx.key() == 0 && ctx.step() == 1 {
            // Fan out one message per sender component.
            for k in 1..=self.senders {
                ctx.send(k, 0);
            }
            return Ok(false);
        }
        if *ctx.key() != u32::MAX && ctx.step() == 2 && *ctx.key() != 0 {
            ctx.send(u32::MAX, i64::from(*ctx.key()));
            return Ok(false);
        }
        // The sink: sum whatever arrives (possibly pre-combined).
        let total: i64 = ctx.messages().iter().sum();
        ctx.write_state(0, &total)?;
        Ok(false)
    }

    fn combine_messages(&self, _key: &u32, a: &i64, b: &i64) -> Option<i64> {
        self.combine.then_some(a + b)
    }
}

#[test]
fn combiner_merges_fan_in() {
    for combine in [false, true] {
        let s = store();
        let job = Arc::new(SumFanIn {
            senders: 20,
            combine,
        });
        let outcome = JobRunner::new(s.clone())
            .launch(
                job,
                RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<SumFanIn>| sink.message(0, 0),
                ))]),
            )
            .unwrap();
        let table = s.lookup_table("sums").unwrap();
        let exporter = Arc::new(CollectingExporter::<u32, i64>::new());
        export_state_table(&s, &table, Arc::clone(&exporter)).unwrap();
        let sums = exporter.take();
        let sink_sum = sums
            .iter()
            .find(|(k, _)| *k == u32::MAX)
            .map(|(_, v)| *v)
            .unwrap();
        assert_eq!(sink_sum, (1..=20i64).sum::<i64>(), "combine={combine}");
        if combine {
            assert!(
                outcome.metrics.messages_combined > 0,
                "combiner must have been exercised"
            );
        } else {
            assert_eq!(outcome.metrics.messages_combined, 0);
        }
    }
}

// ---------------------------------------------------------------------------
// needs-order: collocated invocations happen in key order.
// ---------------------------------------------------------------------------

#[test]
fn needs_order_sorts_invocations() {
    // Observe ordering through a thread-local trace via a custom exporter
    // (direct output records invocation sequence).
    struct TraceJob {
        exporter: Arc<CollectingExporter<u32, u32>>,
    }
    impl Job for TraceJob {
        type Key = u32;
        type State = ();
        type Message = ();
        type OutKey = u32; // part
        type OutValue = u32; // key
        fn state_tables(&self) -> Vec<String> {
            vec!["trace".to_owned()]
        }
        fn properties(&self) -> JobProperties {
            JobProperties {
                needs_order: true,
                ..JobProperties::default()
            }
        }
        fn direct_output(&self) -> Option<Arc<dyn Exporter<u32, u32>>> {
            Some(self.exporter.clone() as Arc<dyn Exporter<u32, u32>>)
        }
        fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
            let part = ctx.part().0;
            let key = *ctx.key();
            ctx.output(part, key)?;
            Ok(false)
        }
    }
    let exporter = Arc::new(CollectingExporter::new());
    let job = Arc::new(TraceJob {
        exporter: Arc::clone(&exporter),
    });
    JobRunner::new(store())
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<TraceJob>| {
                    for k in (0..64u32).rev() {
                        sink.message(k, ())?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    // Within each part, keys must appear in ascending order.
    let trace = exporter.take();
    let mut per_part: std::collections::HashMap<u32, Vec<u32>> = Default::default();
    for (part, key) in trace {
        per_part.entry(part).or_default().push(key);
    }
    assert!(!per_part.is_empty());
    for (part, keys) in per_part {
        let mut sorted = keys.clone();
        sorted.sort();
        assert_eq!(keys, sorted, "part {part} not in key order");
    }
}

// ---------------------------------------------------------------------------
// Aggregators: values fed in step i are readable in step i+1; the aborter
// sees them too.
// ---------------------------------------------------------------------------

struct AggJob;

impl Job for AggJob {
    type Key = u32;
    type State = i64;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["agg_state".to_owned()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        vec![("active".to_owned(), Arc::new(SumI64))]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let step = ctx.step();
        if step == 1 {
            assert_eq!(ctx.aggregate_prev("active"), Some(AggValue::I64(0)));
        } else {
            // Ten components each fed 1 in the previous step.
            assert_eq!(ctx.aggregate_prev("active"), Some(AggValue::I64(10)));
        }
        ctx.aggregate("active", AggValue::I64(1))?;
        Ok(step < 3) // run three steps
    }
}

#[test]
fn aggregates_flow_across_steps() {
    let outcome = JobRunner::new(store())
        .launch(
            Arc::new(AggJob),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<AggJob>| {
                    for k in 0..10u32 {
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.steps, 3);
    assert_eq!(outcome.aggregates.get("active"), Some(AggValue::I64(10)));
}

struct AbortAtThree;

impl Job for AbortAtThree {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["abort_state".to_owned()]
    }

    fn has_aborter(&self) -> bool {
        true
    }

    fn aborter(&self, _agg: &AggregateSnapshot, next_step: u32) -> bool {
        next_step > 3
    }

    fn compute(&self, _ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        Ok(true) // would run forever without the aborter
    }
}

#[test]
fn aborter_stops_execution_between_steps() {
    let outcome = JobRunner::new(store())
        .launch(
            Arc::new(AbortAtThree),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<AbortAtThree>| sink.enable(0),
            ))]),
        )
        .unwrap();
    assert!(outcome.aborted);
    assert_eq!(outcome.steps, 3);
}

// ---------------------------------------------------------------------------
// Broadcast data.
// ---------------------------------------------------------------------------

struct BroadcastReader;

impl Job for BroadcastReader {
    type Key = u32;
    type State = f64;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["bc_state".to_owned()]
    }

    fn broadcast_table(&self) -> Option<String> {
        Some("bc_params".to_owned())
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let factor: f64 = ctx
            .broadcast(&"factor".to_owned())?
            .expect("factor was broadcast");
        ctx.write_state(0, &(f64::from(*ctx.key()) * factor))?;
        Ok(false)
    }
}

#[test]
fn broadcast_data_is_readable_everywhere() {
    let s = store();
    let params = s
        .create_table(TableSpec::new("bc_params").ubiquitous())
        .unwrap();
    params
        .put(
            ripple_core::key_to_routed(&"factor".to_owned()),
            ripple_wire::to_wire(&2.5f64),
        )
        .unwrap();
    JobRunner::new(s.clone())
        .launch(
            Arc::new(BroadcastReader),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<BroadcastReader>| {
                    for k in 0..16u32 {
                        sink.message(k, ())?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    let table = s.lookup_table("bc_state").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, f64>::new());
    export_state_table(&s, &table, Arc::clone(&exporter)).unwrap();
    for (k, v) in exporter.take() {
        assert_eq!(v, f64::from(k) * 2.5);
    }
}

// ---------------------------------------------------------------------------
// Component creation/deletion: a chain that spawns its successor then
// deletes itself.
// ---------------------------------------------------------------------------

struct SpawnChain {
    limit: u32,
}

impl Job for SpawnChain {
    type Key = u32;
    type State = u32;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["chain".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        if me < self.limit {
            ctx.create_state(0, me + 1, me + 1)?;
            ctx.send(me + 1, ());
        }
        if me > 0 {
            // Verify the creation from the previous step landed before us.
            assert_eq!(ctx.read_state(0)?, Some(me));
        }
        ctx.delete_state(0)?;
        Ok(false)
    }
}

#[test]
fn components_create_and_delete_state() {
    let s = store();
    let outcome = JobRunner::new(s.clone())
        .launch(
            Arc::new(SpawnChain { limit: 10 }),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<SpawnChain>| {
                    sink.state(0, 0, 0)?;
                    sink.message(0, ())
                },
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.steps, 11);
    // Everyone deleted themselves.
    let table = s.lookup_table("chain").unwrap();
    assert_eq!(table.len().unwrap(), 0);
    assert_eq!(outcome.metrics.creates, 10);
    assert_eq!(outcome.metrics.state_deletes, 11);
}

// ---------------------------------------------------------------------------
// Enforcement: property lies and plan violations are caught.
// ---------------------------------------------------------------------------

struct LyingNoContinue;

impl Job for LyingNoContinue {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["lies".to_owned()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            no_continue: true,
            one_msg: true,
            ..JobProperties::default()
        }
    }
    fn compute(&self, _ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        Ok(true) // violates no-continue
    }
}

#[test]
fn no_continue_lie_is_detected() {
    let err = JobRunner::new(store())
        .launch(
            Arc::new(LyingNoContinue),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<LyingNoContinue>| sink.message(0, ()),
            ))]),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        EbspError::PropertyViolation {
            property: "no-continue",
            ..
        }
    ));
}

struct LyingOneMsg;

impl Job for LyingOneMsg {
    type Key = u32;
    type State = ();
    type Message = u32;
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["lies2".to_owned()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            no_continue: true,
            one_msg: true,
            ..JobProperties::default()
        }
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == 1 {
            // Two messages to one destination in one step: violates one-msg.
            ctx.send(99, 1);
            ctx.send(99, 2);
        }
        Ok(false)
    }
}

#[test]
fn one_msg_lie_is_detected() {
    let err = JobRunner::new(store())
        .launch(
            Arc::new(LyingOneMsg),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<LyingOneMsg>| sink.message(0, 0),
            ))]),
        )
        .unwrap_err();
    assert!(matches!(
        err,
        EbspError::PropertyViolation {
            property: "one-msg",
            ..
        }
    ));
}

#[test]
fn forcing_nosync_with_aggregators_is_rejected() {
    let err = JobRunner::new(store())
        .force_mode(ExecMode::Unsynchronized)
        .launch(Arc::new(AggJob), RunOptions::new())
        .unwrap_err();
    assert!(matches!(err, EbspError::PlanViolation { .. }));
}

#[test]
fn step_limit_is_enforced() {
    let err = JobRunner::new(store())
        .max_steps(5)
        .launch(
            Arc::new(TouchCounterForever),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<TouchCounterForever>| sink.enable(0),
            ))]),
        )
        .unwrap_err();
    assert!(matches!(err, EbspError::StepLimitExceeded { limit: 5 }));
}

struct TouchCounterForever;

impl Job for TouchCounterForever {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["forever".to_owned()]
    }
    fn compute(&self, _ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        Ok(true)
    }
}

#[test]
fn empty_job_finishes_in_zero_steps() {
    let outcome = JobRunner::new(store())
        .launch(Arc::new(TouchCounter), RunOptions::new())
        .unwrap();
    assert_eq!(outcome.steps, 0);
    assert_eq!(outcome.metrics.invocations, 0);
}

#[test]
fn job_without_state_tables_is_invalid() {
    struct NoTables;
    impl Job for NoTables {
        type Key = u32;
        type State = ();
        type Message = ();
        type OutKey = ();
        type OutValue = ();
        fn state_tables(&self) -> Vec<String> {
            Vec::new()
        }
        fn compute(&self, _ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
            Ok(false)
        }
    }
    let err = JobRunner::new(store())
        .launch(Arc::new(NoTables), RunOptions::new())
        .unwrap_err();
    assert!(matches!(err, EbspError::InvalidJob { .. }));
}
