//! Durable-launch semantics that do not need a disk: the protocol runs on
//! any `DurableStore` (memory stores implement it with no-op defaults),
//! the journal is cleared on success, temporaries are dropped, and an
//! in-memory store that cannot rewind reports the limitation instead of
//! resuming incorrectly.

use std::sync::Arc;

use ripple_core::{EbspError, FnLoader, JobRunner, LoadSink, RunOptions, SimpleJob};
use ripple_kv::{KvStore, RoutedKey, Table};
use ripple_store_mem::MemStore;

fn hop_job(name: &str) -> SimpleJob<u32, u32, u32> {
    // A chain: vertex v waits for a message, stores it, pokes v+1.
    SimpleJob::<u32, u32, u32>::builder(name)
        .compute(|ctx| {
            if let Some(&hops) = ctx.messages().first() {
                ctx.write_state(0, &hops)?;
                if hops > 0 {
                    ctx.send(ctx.key() + 1, hops - 1);
                }
            }
            Ok(false)
        })
        .build()
}

fn seed_loader(hops: u32) -> Box<dyn ripple_core::Loader<SimpleJob<u32, u32, u32>>> {
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<_>| {
        for v in 0..=hops {
            sink.state(0, v, 0)?;
        }
        sink.message(0, hops)
    }))
}

#[test]
fn durable_run_on_a_memory_store_completes_and_cleans_up() {
    let store = MemStore::builder().default_parts(3).build();
    let outcome = JobRunner::new(store.clone())
        .launch(
            Arc::new(hop_job("hops")),
            RunOptions::new()
                .loaders(vec![seed_loader(6)])
                .recovery()
                .durable(),
        )
        .unwrap();
    assert!(outcome.metrics.steps >= 6, "the chain takes a step per hop");
    assert!(
        outcome.metrics.durable_barriers > 0,
        "every checkpoint is a durable barrier"
    );

    // The journal exists but was cleared on success, and no engine
    // temporaries survive.
    let journal = store.lookup_table("__durable_journal_hops").unwrap();
    let key = RoutedKey::with_route(0, bytes::Bytes::from_static(b"__durable_journal"));
    assert_eq!(journal.get(&key).unwrap(), None, "journal must be cleared");
    for name in store.table_names() {
        assert!(
            !name.starts_with("__ebsp_"),
            "temporary {name} survived the run"
        );
    }
}

#[test]
fn interrupted_memory_run_reports_it_cannot_rewind() {
    let store = MemStore::builder().default_parts(2).build();
    let runner = JobRunner::new(store.clone());
    let mut limited = JobRunner::new(store.clone());
    limited.max_steps(3);
    let err = match limited.launch(
        Arc::new(hop_job("hops")),
        RunOptions::new()
            .loaders(vec![seed_loader(10)])
            .recovery()
            .durable(),
    ) {
        Err(e) => e,
        Ok(_) => panic!("3 steps cannot finish 10 hops"),
    };
    assert!(matches!(err, EbspError::StepLimitExceeded { limit: 3 }));

    // The journal survived the abort, but a memory store kept no log to
    // rewind — the retry must fail loudly rather than resume from a state
    // that never matched the journalled barrier.
    let resume = runner.launch(
        Arc::new(hop_job("hops")),
        RunOptions::new()
            .loaders(vec![seed_loader(10)])
            .recovery()
            .durable(),
    );
    assert!(
        matches!(
            resume,
            Err(EbspError::Kv(ripple_kv::KvError::Backend { .. }))
        ),
        "expected a rewind refusal, got {resume:?}"
    );
}
