//! Worker self-recovery in the unsynchronized engine: a part failure under
//! a live worker is healed from replicas, in-flight detector weight is
//! re-minted and the round redelivered, and the run completes with correct
//! output and Huang termination intact.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, FnLoader, Job,
    JobProperties, JobRunner, LoadSink, RunOptions,
};
use ripple_kv::{KvStore, TableSpec};
use ripple_store_mem::MemStore;

const CHAIN: &str = "chain_heal";

/// An idempotent chain relaxation: key k keeps the minimum distance it has
/// heard and forwards `best + 1` to key k+1 on improvement.  Redelivering a
/// message is a no-op once the state already holds the minimum, which is
/// what makes at-least-once redelivery safe.
struct ChainRelax {
    store: MemStore,
    injected: AtomicBool,
    fail_on_key: u32,
    n: u32,
    /// When set, every visit to `fail_on_key` re-fails the part,
    /// exhausting the respawn budget.
    always_fail: bool,
}

impl Job for ChainRelax {
    type Key = u32;
    type State = u32;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec![CHAIN.to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        if me == self.fail_on_key
            && (self.always_fail || !self.injected.swap(true, Ordering::SeqCst))
        {
            // Fail the worker's own part out from under it; the state read
            // below surfaces PartFailed.
            let t = self.store.lookup_table(CHAIN).unwrap();
            self.store.fail_part(&t, ctx.part()).unwrap();
        }
        let mut best = ctx.read_state(0)?.unwrap_or(u32::MAX);
        let mut improved = false;
        for d in ctx.take_messages() {
            if d < best {
                best = d;
                improved = true;
            }
        }
        if improved {
            ctx.write_state(0, &best)?;
            if me + 1 < self.n {
                ctx.send(me + 1, best + 1);
            }
        }
        Ok(false)
    }
}

fn replicated_store() -> MemStore {
    let store = MemStore::builder().default_parts(2).build();
    // Pre-create the state table with part replicas so a failed primary can
    // be promoted back from its backup.
    store
        .create_table(TableSpec::new(CHAIN).parts(2).replicated())
        .unwrap();
    store
}

#[test]
fn healable_run_survives_an_injected_part_failure() {
    let n = 12u32;
    let store = replicated_store();
    let outcome = JobRunner::new(store.clone())
        .quiescence_timeout(Duration::from_secs(30))
        .launch(
            Arc::new(ChainRelax {
                store: store.clone(),
                injected: AtomicBool::new(false),
                fail_on_key: n / 2,
                n,
                always_fail: false,
            }),
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<ChainRelax>| sink.message(0, 0),
                ))])
                .healing(),
        )
        .unwrap();
    assert!(
        outcome.metrics.recoveries >= 1,
        "the worker must have healed at least once: {:?}",
        outcome.metrics
    );
    let table = store.lookup_table(CHAIN).unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u32>::new());
    export_state_table(&store, &table, Arc::clone(&exporter)).unwrap();
    let mut pairs = exporter.take();
    pairs.sort();
    let expect: Vec<(u32, u32)> = (0..n).map(|k| (k, k)).collect();
    assert_eq!(pairs, expect, "distances must be exact despite the failure");
}

#[test]
fn without_healing_the_part_failure_surfaces() {
    let n = 12u32;
    let store = replicated_store();
    let err = JobRunner::new(store.clone())
        .quiescence_timeout(Duration::from_secs(30))
        .launch(
            Arc::new(ChainRelax {
                store: store.clone(),
                injected: AtomicBool::new(false),
                fail_on_key: n / 2,
                n,
                always_fail: false,
            }),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<ChainRelax>| sink.message(0, 0),
            ))]),
        )
        .unwrap_err();
    assert!(
        matches!(err, EbspError::Kv(ripple_kv::KvError::PartFailed { .. })),
        "got {err:?}"
    );
}

#[test]
fn exhausted_respawn_budget_is_typed_unrecoverable() {
    let n = 6u32;
    let store = replicated_store();
    let err = JobRunner::new(store.clone())
        .quiescence_timeout(Duration::from_secs(30))
        .launch(
            Arc::new(ChainRelax {
                store: store.clone(),
                injected: AtomicBool::new(false),
                fail_on_key: 2,
                n,
                always_fail: true,
            }),
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<ChainRelax>| sink.message(0, 0),
                ))])
                .healing(),
        )
        .unwrap_err();
    assert!(
        matches!(err, EbspError::Unrecoverable { .. }),
        "an exhausted respawn budget must fail with the typed fallback, got {err:?}"
    );
}
