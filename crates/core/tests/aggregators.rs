//! Tests of the two aggregator implementation strategies (§IV-A): a modest
//! number of aggregators returns partials to the controller directly; a
//! large number flows through auxiliary tables plus another round of
//! enumeration.  Both must produce identical results.

use std::sync::Arc;

use ripple_core::{
    AggValue, Aggregate, ComputeContext, EbspError, FnLoader, Job, JobRunner, LoadSink, MaxI64,
    RunOptions, SumI64,
};
use ripple_kv::KvStore;
use ripple_store_mem::MemStore;

const AGGS: usize = 24;

/// A job with many aggregators: component k feeds `k` into `sum<k mod AGGS>`
/// and into `max<k mod AGGS>` each step, for three steps.
struct ManyAggregators;

impl Job for ManyAggregators {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["many_aggs".to_owned()]
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        let mut out: Vec<(String, Arc<dyn Aggregate>)> = Vec::new();
        for i in 0..AGGS / 2 {
            out.push((format!("sum{i}"), Arc::new(SumI64)));
            out.push((format!("max{i}"), Arc::new(MaxI64)));
        }
        out
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let k = *ctx.key();
        let slot = (k as usize) % (AGGS / 2);
        ctx.aggregate(&format!("sum{slot}"), AggValue::I64(i64::from(k)))?;
        ctx.aggregate(&format!("max{slot}"), AggValue::I64(i64::from(k)))?;
        Ok(ctx.step() < 3)
    }
}

fn run_with_threshold(threshold: usize) -> ripple_core::RunOutcome {
    let store = MemStore::builder().default_parts(4).build();
    JobRunner::new(store)
        .aggregator_table_threshold(threshold)
        .launch(
            Arc::new(ManyAggregators),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<ManyAggregators>| {
                    for k in 0..60u32 {
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap()
}

fn expected_sum(slot: usize) -> i64 {
    (0..60i64)
        .filter(|k| (*k as usize) % (AGGS / 2) == slot)
        .sum()
}

fn expected_max(slot: usize) -> i64 {
    (0..60i64)
        .filter(|k| (*k as usize) % (AGGS / 2) == slot)
        .max()
        .unwrap()
}

#[test]
fn controller_path_aggregates_correctly() {
    // Threshold above the count: partials return to the controller.
    let outcome = run_with_threshold(1000);
    assert_eq!(outcome.steps, 3);
    for slot in 0..AGGS / 2 {
        assert_eq!(
            outcome.aggregates.get(&format!("sum{slot}")),
            Some(AggValue::I64(expected_sum(slot))),
            "sum{slot}"
        );
        assert_eq!(
            outcome.aggregates.get(&format!("max{slot}")),
            Some(AggValue::I64(expected_max(slot))),
            "max{slot}"
        );
    }
}

#[test]
fn table_path_aggregates_identically() {
    // Threshold of 1: every aggregate flows through the auxiliary tables.
    let via_tables = run_with_threshold(1);
    let via_controller = run_with_threshold(1000);
    for slot in 0..AGGS / 2 {
        for prefix in ["sum", "max"] {
            let name = format!("{prefix}{slot}");
            assert_eq!(
                via_tables.aggregates.get(&name),
                via_controller.aggregates.get(&name),
                "{name} must not depend on the aggregation strategy"
            );
        }
    }
}

#[test]
fn table_path_costs_more_store_traffic() {
    let via_tables = run_with_threshold(1);
    let via_controller = run_with_threshold(1000);
    assert!(
        via_tables.metrics.store.total_ops() > via_controller.metrics.store.total_ops(),
        "the auxiliary tables and extra enumeration round must show up in \
         store traffic: {} vs {}",
        via_tables.metrics.store.total_ops(),
        via_controller.metrics.store.total_ops()
    );
}

#[test]
fn aux_tables_are_cleaned_up() {
    let store = MemStore::builder().default_parts(4).build();
    JobRunner::new(store.clone())
        .aggregator_table_threshold(1)
        .launch(
            Arc::new(ManyAggregators),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<ManyAggregators>| {
                    for k in 0..10u32 {
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    for name in store.table_names() {
        assert!(
            !name.starts_with("__ebsp_"),
            "internal table {name} leaked past the run"
        );
    }
}

/// Aggregator results remain readable across steps under the table path.
struct ReadBack;

impl Job for ReadBack {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["readback".to_owned()]
    }
    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        (0..20)
            .map(|i| (format!("a{i}"), Arc::new(SumI64) as Arc<dyn Aggregate>))
            .collect()
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() > 1 {
            // Last step's total: 5 components each fed 2 into a0.
            assert_eq!(ctx.aggregate_prev("a0"), Some(AggValue::I64(10)));
        }
        ctx.aggregate("a0", AggValue::I64(2))?;
        Ok(ctx.step() < 3)
    }
}

#[test]
fn table_path_results_visible_next_step() {
    let store = MemStore::builder().default_parts(3).build();
    let outcome = JobRunner::new(store)
        .aggregator_table_threshold(1)
        .launch(
            Arc::new(ReadBack),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<ReadBack>| {
                    for k in 0..5u32 {
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.aggregates.get("a0"), Some(AggValue::I64(10)));
}
