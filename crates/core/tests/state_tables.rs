//! Tests of factored component state (§II): multiple state tables per job
//! — some read-only, some updated — plus entry creation/deletion semantics
//! and the "a component exists when it has either state table entries or
//! input messages" rule.

use std::sync::Arc;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, FnLoader, Job, JobRunner,
    LoadSink, RunOptions,
};
use ripple_kv::{KvStore, Table};
use ripple_store_mem::MemStore;

/// A job with factored state: table 0 holds immutable per-component
/// configuration, table 1 holds the mutable accumulator.  "Recognizing
/// this reduces I/O and facilitates application integration."
struct FactoredState;

impl Job for FactoredState {
    type Key = u32;
    type State = u64;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["fs_config".to_owned(), "fs_accum".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        // Read-only config: the per-component increment.
        let increment = ctx.read_state(0)?.expect("config is preloaded");
        let acc = ctx.read_state(1)?.unwrap_or(0) + increment;
        ctx.write_state(1, &acc)?;
        Ok(acc < 5 * increment)
    }
}

#[test]
fn factored_state_tables_are_independent() {
    let store = MemStore::builder().default_parts(3).build();
    JobRunner::new(store.clone())
        .launch(
            Arc::new(FactoredState),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<FactoredState>| {
                    for k in 1..=10u32 {
                        sink.state(0, k, u64::from(k))?; // config
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();

    // Accumulators reached 5x their increment...
    let accum = store.lookup_table("fs_accum").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u64>::new());
    export_state_table(&store, &accum, Arc::clone(&exporter)).unwrap();
    for (k, v) in exporter.take() {
        assert_eq!(v, 5 * u64::from(k));
    }
    // ...and the config table was never written beyond the load.
    let config = store.lookup_table("fs_config").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u64>::new());
    export_state_table(&store, &config, Arc::clone(&exporter)).unwrap();
    for (k, v) in exporter.take() {
        assert_eq!(v, u64::from(k), "config for {k} must be untouched");
    }
}

#[test]
fn state_tables_are_copartitioned_with_the_reference() {
    let store = MemStore::builder().default_parts(4).build();
    JobRunner::new(store.clone())
        .launch(
            Arc::new(FactoredState),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<FactoredState>| {
                    sink.state(0, 1, 1)?;
                    sink.enable(1)
                },
            ))]),
        )
        .unwrap();
    let a = store.lookup_table("fs_config").unwrap();
    let b = store.lookup_table("fs_accum").unwrap();
    assert_eq!(a.partitioning_id(), b.partitioning_id());
}

#[test]
fn mismatched_existing_table_is_rejected() {
    let store = MemStore::builder().default_parts(4).build();
    // Pre-create the second table with its own partitioning.
    store
        .create_table(ripple_kv::TableSpec::new("fs_accum").parts(2))
        .unwrap();
    let err = JobRunner::new(store)
        .launch(Arc::new(FactoredState), RunOptions::new())
        .unwrap_err();
    assert!(matches!(err, EbspError::InvalidJob { .. }), "got {err:?}");
}

/// "Ripple does not require a component to always have any actual entry in
/// any of the job's state tables": a message to a component with no state
/// still invokes it.
struct Stateless;

impl Job for Stateless {
    type Key = u32;
    type State = u64;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["stateless".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        assert_eq!(ctx.read_state(0)?, None, "never given state");
        let hops = ctx.messages().first().copied().unwrap_or(0);
        if hops > 0 {
            ctx.send(ctx.key() + 1, hops - 1);
        }
        Ok(false)
    }
}

#[test]
fn components_exist_without_state_entries() {
    let store = MemStore::builder().default_parts(3).build();
    let outcome = JobRunner::new(store.clone())
        .launch(
            Arc::new(Stateless),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<Stateless>| sink.message(0, 9),
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.steps, 10);
    assert_eq!(outcome.metrics.invocations, 10);
    assert_eq!(
        store.lookup_table("stateless").unwrap().len().unwrap(),
        0,
        "no state entries were ever created"
    );
}
