//! Behavioural tests of the unsynchronized engine: mode selection from job
//! properties, equivalence with synchronized execution on order-insensitive
//! jobs, per-(sender, receiver) ordering, termination detection, and both
//! queue-set implementations.

use std::sync::Arc;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, ExecMode, FnLoader, Job,
    JobProperties, JobRunner, LoadSink, QueueKind, RunOptions,
};
use ripple_kv::KvStore;
use ripple_store_mem::MemStore;

fn store() -> MemStore {
    MemStore::builder().default_parts(3).build()
}

/// Flood-fill: vertices keep the minimum value ever heard and forward
/// improvements along edges.  Order- and grouping-insensitive, so it is a
/// legitimate `incremental` job, runnable with or without barriers with the
/// same fixpoint.
struct FloodMin {
    edges: Arc<Vec<(u32, u32)>>,
}

impl FloodMin {
    fn neighbors(&self, v: u32) -> impl Iterator<Item = u32> + '_ {
        self.edges
            .iter()
            .filter_map(move |&(a, b)| match (a == v, b == v) {
                (true, _) => Some(b),
                (_, true) => Some(a),
                _ => None,
            })
    }
}

impl Job for FloodMin {
    type Key = u32;
    type State = u32; // current minimum label
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["labels".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            deterministic: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        let current = ctx.read_state(0)?.unwrap_or(me);
        let best = ctx.messages().iter().copied().min().unwrap_or(current);
        if best < current || ctx.read_state(0)?.is_none() {
            let new = best.min(current);
            ctx.write_state(0, &new)?;
            for n in self.neighbors(me) {
                ctx.send(n, new);
            }
        }
        Ok(false)
    }
}

fn path_graph(n: u32) -> Arc<Vec<(u32, u32)>> {
    Arc::new((0..n - 1).map(|i| (i, i + 1)).collect())
}

fn labels_after(s: &MemStore) -> Vec<(u32, u32)> {
    let table = s.lookup_table("labels").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u32>::new());
    export_state_table(s, &table, Arc::clone(&exporter)).unwrap();
    let mut pairs = exporter.take();
    pairs.sort();
    pairs
}

fn seed_loader(n: u32) -> Box<dyn ripple_core::Loader<FloodMin>> {
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<FloodMin>| {
        // Kick every vertex once with its own label; vertices initialize
        // their state (and announce) on first invocation.
        for v in 0..n {
            sink.message(v, v)?;
        }
        Ok(())
    }))
}

#[test]
fn incremental_property_selects_unsynchronized_mode() {
    let s = store();
    let job = Arc::new(FloodMin {
        edges: path_graph(12),
    });
    let outcome = JobRunner::new(s.clone())
        .launch(job, RunOptions::new().loaders(vec![seed_loader(12)]))
        .unwrap();
    assert_eq!(outcome.mode, ExecMode::Unsynchronized);
    assert_eq!(outcome.metrics.barriers, 0, "no-sync means zero barriers");
    assert_eq!(outcome.steps, 0);
    // Everyone converged to the global minimum, 0.
    for (v, label) in labels_after(&s) {
        assert_eq!(label, 0, "vertex {v}");
    }
}

#[test]
fn sync_and_nosync_reach_the_same_fixpoint() {
    let edges = path_graph(20);
    let s1 = store();
    JobRunner::new(s1.clone())
        .force_mode(ExecMode::Synchronized)
        .launch(
            Arc::new(FloodMin {
                edges: Arc::clone(&edges),
            }),
            RunOptions::new().loaders(vec![seed_loader(20)]),
        )
        .unwrap();
    let s2 = store();
    JobRunner::new(s2.clone())
        .launch(
            Arc::new(FloodMin {
                edges: Arc::clone(&edges),
            }),
            RunOptions::new().loaders(vec![seed_loader(20)]),
        )
        .unwrap();
    assert_eq!(labels_after(&s1), labels_after(&s2));
}

#[test]
fn forced_sync_run_uses_barriers() {
    let s = store();
    let outcome = JobRunner::new(s)
        .force_mode(ExecMode::Synchronized)
        .launch(
            Arc::new(FloodMin {
                edges: path_graph(12),
            }),
            RunOptions::new().loaders(vec![seed_loader(12)]),
        )
        .unwrap();
    assert_eq!(outcome.mode, ExecMode::Synchronized);
    // A 12-vertex path needs ~11 steps for label 0 to reach the far end.
    assert!(outcome.metrics.barriers >= 11);
}

#[test]
fn table_backed_queues_work_too() {
    let s = store();
    let outcome = JobRunner::new(s.clone())
        .queue_kind(QueueKind::Table)
        .launch(
            Arc::new(FloodMin {
                edges: path_graph(10),
            }),
            RunOptions::new().loaders(vec![seed_loader(10)]),
        )
        .unwrap();
    assert_eq!(outcome.mode, ExecMode::Unsynchronized);
    for (_, label) in labels_after(&s) {
        assert_eq!(label, 0);
    }
}

// ---------------------------------------------------------------------------
// Per-(sender, receiver) order: a sender streams a sequence to a receiver,
// which asserts monotone arrival.
// ---------------------------------------------------------------------------

struct OrderedStream {
    count: u32,
}

impl Job for OrderedStream {
    type Key = u32;
    type State = Vec<u32>;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["stream".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        if me == 0 {
            // The sender: emit the whole sequence in one invocation.
            for i in 0..self.count {
                ctx.send(1, i);
            }
            return Ok(false);
        }
        // The receiver: append arrivals; per-sender order must hold.
        let mut seen = ctx.read_state(0)?.unwrap_or_default();
        for m in ctx.take_messages() {
            seen.push(m);
        }
        ctx.write_state(0, &seen)?;
        Ok(false)
    }
}

#[test]
fn per_sender_order_is_preserved_without_barriers() {
    let s = store();
    let count = 200;
    JobRunner::new(s.clone())
        .launch(
            Arc::new(OrderedStream { count }),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                move |sink: &mut dyn LoadSink<OrderedStream>| sink.message(0, 0),
            ))]),
        )
        .unwrap();
    let table = s.lookup_table("stream").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, Vec<u32>>::new());
    export_state_table(&s, &table, Arc::clone(&exporter)).unwrap();
    let pairs = exporter.take();
    let seen = &pairs.iter().find(|(k, _)| *k == 1).unwrap().1;
    let expect: Vec<u32> = (0..count).collect();
    assert_eq!(seen, &expect, "messages must arrive in send order");
}

// ---------------------------------------------------------------------------
// Termination with no work at all, and with compute errors.
// ---------------------------------------------------------------------------

#[test]
fn empty_nosync_job_terminates_immediately() {
    let outcome = JobRunner::new(store())
        .launch(
            Arc::new(FloodMin {
                edges: Arc::new(Vec::new()),
            }),
            RunOptions::new(),
        )
        .unwrap();
    assert_eq!(outcome.metrics.invocations, 0);
}

struct FailingCompute;

impl Job for FailingCompute {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["failing".to_owned()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        // A bad table index is a deterministic application error.
        ctx.read_state(7)?;
        Ok(false)
    }
}

#[test]
fn worker_errors_stop_the_run_and_surface() {
    let err = JobRunner::new(store())
        .launch(
            Arc::new(FailingCompute),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<FailingCompute>| sink.message(0, ()),
            ))]),
        )
        .unwrap_err();
    assert!(matches!(err, EbspError::StateTableIndex { index: 7, .. }));
}

// ---------------------------------------------------------------------------
// State creations travel and merge in unsynchronized mode too.
// ---------------------------------------------------------------------------

struct NosyncCreator;

impl Job for NosyncCreator {
    type Key = u32;
    type State = u32;
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["created".to_owned()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }
    fn combine_states(&self, _key: &u32, a: u32, b: u32) -> u32 {
        a + b
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        // Every kicked component creates state for component 1000,
        // contributing 1; conflicts merge by summation.
        ctx.create_state(0, 1000, 1)?;
        Ok(false)
    }
}

#[test]
fn creations_merge_via_combine_states() {
    let s = store();
    JobRunner::new(s.clone())
        .launch(
            Arc::new(NosyncCreator),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<NosyncCreator>| {
                    for k in 0..8u32 {
                        sink.message(k, ())?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    let table = s.lookup_table("created").unwrap();
    let exporter = Arc::new(CollectingExporter::<u32, u32>::new());
    export_state_table(&s, &table, Arc::clone(&exporter)).unwrap();
    let pairs = exporter.take();
    assert_eq!(pairs, vec![(1000, 8)]);
}
