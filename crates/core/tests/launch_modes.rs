//! Mode equivalence through the one entry point.  The legacy `run_*`
//! wrappers are gone; what their compat suite really pinned was that the
//! *modes* agree where they overlap — a mode upgrade changes failure
//! handling, never the converged result.  So: the same countdown job must
//! take the same number of steps and do the same work through every
//! launch mode the store supports, and a gated launch must match an
//! ungated one byte-for-byte.

use std::sync::Arc;

use ripple_core::{FnLoader, JobRunner, LoadSink, RunOptions, SemaphoreGate, SimpleJob};
use ripple_kv::KvStore;
use ripple_store_mem::MemStore;

type CountDown = SimpleJob<u32, u32, u32>;

fn countdown(name: &str) -> CountDown {
    SimpleJob::<u32, u32, u32>::builder(name)
        .compute(|ctx| {
            let v = ctx.read_state(0)?.unwrap_or(0);
            ctx.write_state(0, &v.saturating_sub(1))?;
            Ok(v > 1)
        })
        .build()
}

fn seed(n: u32) -> Box<dyn ripple_core::Loader<CountDown>> {
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<CountDown>| {
        for k in 0..4u32 {
            sink.state(0, k, n)?;
            sink.enable(k)?;
        }
        Ok(())
    }))
}

fn store() -> MemStore {
    MemStore::builder().default_parts(4).build()
}

/// Digest of the job's state table after a run, for byte-identity checks.
fn state_digest(store: &MemStore, table: &str) -> u64 {
    let table = store.lookup_table(table).expect("state table exists");
    store.snapshot_table(&table).expect("snapshot").digest()
}

#[test]
fn basic_launch_converges() {
    let outcome = JobRunner::new(store())
        .launch(Arc::new(countdown("a")), RunOptions::new())
        .unwrap();
    assert_eq!(outcome.steps, 0); // no loader: nothing enabled, no steps
}

#[test]
fn all_modes_agree_on_steps_and_work() {
    let basic = JobRunner::new(store())
        .launch(
            Arc::new(countdown("b")),
            RunOptions::new().loaders(vec![seed(5)]),
        )
        .unwrap();
    assert_eq!(basic.steps, 5);

    let healing = JobRunner::new(store())
        .launch(
            Arc::new(countdown("b")),
            RunOptions::new().loaders(vec![seed(5)]).healing(),
        )
        .unwrap();
    let recovery = JobRunner::new(store())
        .launch(
            Arc::new(countdown("b")),
            RunOptions::new().loaders(vec![seed(5)]).recovery(),
        )
        .unwrap();
    let durable = JobRunner::new(store())
        .launch(
            Arc::new(countdown("b")),
            RunOptions::new()
                .loaders(vec![seed(5)])
                .recovery()
                .durable(),
        )
        .unwrap();

    for outcome in [&healing, &recovery, &durable] {
        assert_eq!(outcome.steps, basic.steps);
        assert!(!outcome.aborted);
    }
    assert_eq!(basic.metrics.invocations, healing.metrics.invocations);
    assert_eq!(basic.metrics.invocations, recovery.metrics.invocations);
    assert_eq!(basic.metrics.invocations, durable.metrics.invocations);
}

#[test]
fn modes_agree_on_final_state_bytes() {
    let mut digests = Vec::new();
    for upgrade in 0..3 {
        let s = store();
        let runner = JobRunner::new(s.clone());
        let job = Arc::new(countdown("c"));
        let outcome = match upgrade {
            0 => runner.launch(job, RunOptions::new().loaders(vec![seed(4)])),
            1 => runner.launch(job, RunOptions::new().loaders(vec![seed(4)]).recovery()),
            _ => runner.launch(
                job,
                RunOptions::new()
                    .loaders(vec![seed(4)])
                    .recovery()
                    .durable(),
            ),
        }
        .unwrap();
        assert_eq!(outcome.steps, 4);
        digests.push(state_digest(&s, "c"));
    }
    assert_eq!(digests[0], digests[1]);
    assert_eq!(digests[0], digests[2]);
}

#[test]
fn gated_launch_is_byte_identical_to_ungated() {
    let plain_store = store();
    let plain = JobRunner::new(plain_store.clone())
        .launch(
            Arc::new(countdown("d")),
            RunOptions::new().loaders(vec![seed(6)]),
        )
        .unwrap();

    // A two-permit gate over 4 parts: tasks queue, results must not change.
    let gated_store = store();
    let mut runner = JobRunner::new(gated_store.clone());
    runner.task_gate(Arc::new(SemaphoreGate::new(2)));
    let gated = runner
        .launch(
            Arc::new(countdown("d")),
            RunOptions::new().loaders(vec![seed(6)]),
        )
        .unwrap();

    assert_eq!(plain.steps, gated.steps);
    assert_eq!(plain.metrics.invocations, gated.metrics.invocations);
    assert_eq!(
        state_digest(&plain_store, "d"),
        state_digest(&gated_store, "d"),
        "a task gate must schedule work, not change it"
    );
}
