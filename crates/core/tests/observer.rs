//! Tests of [`RunObserver`]: per-step, checkpoint, and recovery callbacks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use ripple_core::{
    ComputeContext, EbspError, FnLoader, Job, JobProperties, JobRunner, LoadSink, ObservedEvent,
    RecordingObserver, RunOptions,
};
use ripple_kv::PartId;
use ripple_store_mem::MemStore;

struct CountDown;

impl Job for CountDown {
    type Key = u32;
    type State = u32;
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["countdown".to_owned()]
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let left = ctx.read_state(0)?.unwrap_or(0);
        ctx.write_state(0, &left.saturating_sub(1))?;
        Ok(left > 1)
    }
}

#[test]
fn observer_sees_every_step_with_enabled_counts() {
    let observer = Arc::new(RecordingObserver::new());
    let store = MemStore::builder().default_parts(2).build();
    JobRunner::new(store)
        .observer(observer.clone())
        .launch(
            Arc::new(CountDown),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<CountDown>| {
                    // Component k counts down from k+1: k=0 runs 1 step,
                    // k=2 runs 3 steps.
                    for k in 0..3u32 {
                        sink.state(0, k, k + 1)?;
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    let steps: Vec<(u32, u64)> = observer
        .take()
        .into_iter()
        .filter_map(|e| match e {
            ObservedEvent::Step(s, n) => Some((s, n)),
            _ => None,
        })
        .collect();
    // After step 1 two components remain, after step 2 one, after step 3 none.
    assert_eq!(steps, vec![(1, 2), (2, 1), (3, 0)]);
}

struct FaultyCountDown {
    store: MemStore,
    injected: AtomicBool,
}

impl Job for FaultyCountDown {
    type Key = u32;
    type State = u32;
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["f_countdown".to_owned()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            deterministic: true,
            ..Default::default()
        }
    }
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        if ctx.step() == 2 && !self.injected.swap(true, Ordering::SeqCst) {
            let t = ripple_kv::KvStore::lookup_table(&self.store, "f_countdown").unwrap();
            self.store.fail_part(&t, PartId(0)).unwrap();
        }
        let left = ctx.read_state(0)?.unwrap_or(0);
        ctx.write_state(0, &left.saturating_sub(1))?;
        Ok(left > 1)
    }
}

#[test]
fn observer_sees_checkpoints_and_recoveries() {
    let observer = Arc::new(RecordingObserver::new());
    let store = MemStore::builder().default_parts(2).build();
    JobRunner::new(store.clone())
        .checkpoint_interval(1)
        .observer(observer.clone())
        .launch(
            Arc::new(FaultyCountDown {
                store: store.clone(),
                injected: AtomicBool::new(false),
            }),
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<FaultyCountDown>| {
                        for k in 0..8u32 {
                            sink.state(0, k, 4)?;
                            sink.enable(k)?;
                        }
                        Ok(())
                    },
                ))])
                .recovery(),
        )
        .unwrap();
    let events = observer.take();
    // The job declares determinism, so the failed part is replayed alone.
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ObservedEvent::FastRecovery(0, _))),
        "{events:?}"
    );
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ObservedEvent::Checkpoint(_))),
        "{events:?}"
    );
}

#[test]
fn observer_sees_whole_group_recovery_when_fast_is_disabled() {
    let observer = Arc::new(RecordingObserver::new());
    let store = MemStore::builder().default_parts(2).build();
    JobRunner::new(store.clone())
        .checkpoint_interval(1)
        .fast_recovery(false)
        .observer(observer.clone())
        .launch(
            Arc::new(FaultyCountDown {
                store: store.clone(),
                injected: AtomicBool::new(false),
            }),
            RunOptions::new()
                .loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<FaultyCountDown>| {
                        for k in 0..8u32 {
                            sink.state(0, k, 4)?;
                            sink.enable(k)?;
                        }
                        Ok(())
                    },
                ))])
                .recovery(),
        )
        .unwrap();
    let events = observer.take();
    assert!(
        events
            .iter()
            .any(|e| matches!(e, ObservedEvent::Recovery(_))),
        "{events:?}"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e, ObservedEvent::FastRecovery(..))),
        "{events:?}"
    );
}
