//! Determinism of the synchronized engine: with a deterministic job, the
//! per-component message *order* and all results are identical across
//! runs and part counts where semantics demand it — the property exact
//! checkpoint replay relies on.

use std::sync::Arc;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, FnLoader, Job,
    JobProperties, JobRunner, LoadSink, RunOptions,
};
use ripple_kv::KvStore;
use ripple_store_mem::MemStore;

/// Components record the exact sequence of messages they receive (no
/// combiner), across several steps of many-to-many traffic.
struct TraceMessages {
    senders: u32,
    steps: u32,
}

impl Job for TraceMessages {
    type Key = u32;
    type State = Vec<u32>; // received message payloads, in delivery order
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["trace_msgs".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            deterministic: true,
            // Cross-run reproducibility needs a deterministic invocation
            // order too: declare needs-order so collocated invocations are
            // key-sorted (within-process replay after recovery is
            // consistent even without it).
            needs_order: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        let mut log = ctx.read_state(0)?.unwrap_or_default();
        let msgs = ctx.take_messages();
        log.extend(&msgs);
        ctx.write_state(0, &log)?;
        if ctx.step() < self.steps {
            // Everyone messages everyone, payload identifying (sender, step).
            for to in 0..self.senders {
                ctx.send(to, me * 1000 + ctx.step());
            }
        }
        Ok(false)
    }
}

fn run_trace(parts: u32) -> Vec<(u32, Vec<u32>)> {
    let store = MemStore::builder().default_parts(parts).build();
    JobRunner::new(store.clone())
        .launch(
            Arc::new(TraceMessages {
                senders: 12,
                steps: 4,
            }),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<TraceMessages>| {
                    for k in 0..12u32 {
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    let table = store.lookup_table("trace_msgs").unwrap();
    let exporter = Arc::new(CollectingExporter::new());
    export_state_table::<_, u32, Vec<u32>, _>(&store, &table, Arc::clone(&exporter)).unwrap();
    let mut out = exporter.take();
    out.sort();
    out
}

#[test]
fn message_delivery_order_is_deterministic_across_runs() {
    let a = run_trace(4);
    let b = run_trace(4);
    assert_eq!(a, b, "same configuration must replay identically");
}

#[test]
fn every_component_heard_everyone_each_step() {
    let out = run_trace(3);
    for (k, log) in out {
        assert_eq!(log.len(), 12 * 3, "component {k}: 12 senders x 3 steps");
        // Per (sender) subsequence is in step order.
        for sender in 0..12u32 {
            let steps: Vec<u32> = log
                .iter()
                .filter(|m| *m / 1000 == sender)
                .map(|m| m % 1000)
                .collect();
            assert_eq!(steps, vec![1, 2, 3], "component {k} from sender {sender}");
        }
    }
}

#[test]
fn results_do_not_depend_on_part_count() {
    // Delivery *order across senders* may differ with partitioning, but
    // the multiset of messages and all per-sender orders must not.
    for parts in [1u32, 2, 5] {
        let out = run_trace(parts);
        for (k, log) in out {
            let mut sorted = log.clone();
            sorted.sort();
            let expect: Vec<u32> = (0..12u32)
                .flat_map(|s| (1..=4u32).map(move |st| s * 1000 + st))
                .filter(|m| m % 1000 <= 3)
                .collect::<Vec<_>>();
            let mut expect_sorted = expect;
            expect_sorted.sort();
            assert_eq!(sorted, expect_sorted, "component {k} with {parts} parts");
        }
    }
}
