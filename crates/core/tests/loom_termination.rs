//! Loom models of the Huang weight-throwing termination detector.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p ripple-core --test
//! loom_termination`.  Compiles to nothing in ordinary builds.
//!
//! The property under check is the detector's single invariant: as long as
//! any worker follows the protocol — mint *before* a message becomes
//! visible, give back only *after* all work it caused (including forwards)
//! is done — `quiescent()` never returns `true` while work remains, under
//! any interleaving of the minting, forwarding, and returning threads.
#![cfg(loom)]

use loom::sync::atomic::{AtomicBool, Ordering};
use loom::sync::{Arc, Mutex};
use ripple_core::WeightThrow;

/// Two workers race over a tiny message queue: worker A consumes the seed
/// message and forwards one child; worker B consumes whatever it finds.
/// At every consumption the worker still holds weight, so `quiescent()`
/// must be false; after both join, everything has drained and it must be
/// true.
#[test]
fn forwarding_workers_never_observe_early_termination() {
    loom::model(|| {
        let detector = Arc::new(WeightThrow::new());
        let queue: Arc<Mutex<Vec<u64>>> = Arc::new(Mutex::new(Vec::new()));

        // Seed one message, protocol order: mint, then publish.
        let w = detector.mint(1);
        queue.lock().unwrap().push(w);

        let spawn_worker = |forwards: bool| {
            let detector = Arc::clone(&detector);
            let queue = Arc::clone(&queue);
            loom::thread::spawn(move || {
                loop {
                    let Some(w) = queue.lock().unwrap().pop() else {
                        return;
                    };
                    // This worker holds weight w: termination now would be
                    // premature.
                    assert!(!detector.quiescent(), "terminated while work remains");
                    if forwards {
                        // Forward a child, protocol order again.
                        let child = detector.mint(1);
                        queue.lock().unwrap().push(child);
                    }
                    detector.give_back(w);
                    if forwards {
                        return; // forward only once, then drain-assist
                    }
                }
            })
        };

        let a = spawn_worker(true);
        let b = spawn_worker(false);
        a.join().unwrap();
        b.join().unwrap();

        // The queue may still hold the forwarded child if worker A pushed
        // it after worker B exited; drain it following the protocol.
        while let Some(w) = queue.lock().unwrap().pop() {
            assert!(!detector.quiescent(), "terminated while work remains");
            detector.give_back(w);
        }
        assert!(detector.quiescent(), "must be quiescent once drained");
    });
}

/// The mint/give_back pairing itself: a producer mints and hands weight to
/// a consumer through a one-slot mailbox while a third observer polls
/// `quiescent()`.  The observer may see true only before the mint or after
/// the give_back — never in between.
#[test]
fn observer_never_sees_quiescence_while_weight_is_outstanding() {
    loom::model(|| {
        let detector = Arc::new(WeightThrow::new());
        let mailbox: Arc<Mutex<Option<u64>>> = Arc::new(Mutex::new(None));
        let done = Arc::new(AtomicBool::new(false));

        let producer = {
            let detector = Arc::clone(&detector);
            let mailbox = Arc::clone(&mailbox);
            loom::thread::spawn(move || {
                let w = detector.mint(1);
                *mailbox.lock().unwrap() = Some(w);
            })
        };
        let consumer = {
            let detector = Arc::clone(&detector);
            let mailbox = Arc::clone(&mailbox);
            let done = Arc::clone(&done);
            loom::thread::spawn(move || loop {
                let taken = mailbox.lock().unwrap().take();
                if let Some(w) = taken {
                    assert!(!detector.quiescent(), "consumer holds weight");
                    detector.give_back(w);
                    done.store(true, Ordering::SeqCst);
                    return;
                }
                loom::thread::yield_now();
            })
        };
        let observer = {
            let detector = Arc::clone(&detector);
            let mailbox = Arc::clone(&mailbox);
            loom::thread::spawn(move || {
                // If a message is visible in the mailbox, its weight is
                // outstanding, so the detector must not be quiescent.
                // The mailbox lock is held across the check: while it is
                // held the consumer cannot take the message, so the weight
                // provably cannot have been given back yet.
                let slot = mailbox.lock().unwrap();
                if slot.is_some() {
                    assert!(!detector.quiescent(), "quiescent with a message in flight");
                }
                drop(slot);
            })
        };

        producer.join().unwrap();
        consumer.join().unwrap();
        observer.join().unwrap();
        assert!(done.load(Ordering::SeqCst));
        assert!(detector.quiescent());
    });
}
