//! The five legacy `run_*` entry points are deprecated one-line wrappers
//! over `JobRunner::launch`; this is the one place that still calls them,
//! pinning the compatibility contract: each wrapper must behave exactly
//! like the `RunOptions` mode it forwards to.  Everything else in the
//! repository builds with deprecation warnings denied.
#![allow(deprecated)]

use std::sync::Arc;

use ripple_core::{FnLoader, JobRunner, LoadSink, RunOptions, SimpleJob};
use ripple_store_mem::MemStore;

type CountDown = SimpleJob<u32, u32, u32>;

fn countdown(name: &str) -> CountDown {
    SimpleJob::<u32, u32, u32>::builder(name)
        .compute(|ctx| {
            let v = ctx.read_state(0)?.unwrap_or(0);
            ctx.write_state(0, &v.saturating_sub(1))?;
            Ok(v > 1)
        })
        .build()
}

fn seed(n: u32) -> Box<dyn ripple_core::Loader<CountDown>> {
    Box::new(FnLoader::new(move |sink: &mut dyn LoadSink<CountDown>| {
        for k in 0..4u32 {
            sink.state(0, k, n)?;
            sink.enable(k)?;
        }
        Ok(())
    }))
}

fn store() -> MemStore {
    MemStore::builder().default_parts(4).build()
}

#[test]
fn run_matches_basic_launch() {
    let legacy = JobRunner::new(store())
        .run(Arc::new(countdown("a")))
        .unwrap();
    let current = JobRunner::new(store())
        .launch(Arc::new(countdown("a")), RunOptions::new())
        .unwrap();
    assert_eq!(legacy.steps, current.steps);
}

#[test]
fn run_with_loaders_matches_loaders_launch() {
    let legacy = JobRunner::new(store())
        .run_with_loaders(Arc::new(countdown("b")), vec![seed(5)])
        .unwrap();
    let current = JobRunner::new(store())
        .launch(
            Arc::new(countdown("b")),
            RunOptions::new().loaders(vec![seed(5)]),
        )
        .unwrap();
    assert_eq!(legacy.steps, 5);
    assert_eq!(legacy.steps, current.steps);
    assert_eq!(legacy.metrics.invocations, current.metrics.invocations);
}

#[test]
fn run_healable_matches_healing_launch() {
    let legacy = JobRunner::new(store())
        .run_healable(Arc::new(countdown("c")), vec![seed(3)])
        .unwrap();
    let current = JobRunner::new(store())
        .launch(
            Arc::new(countdown("c")),
            RunOptions::new().loaders(vec![seed(3)]).healing(),
        )
        .unwrap();
    assert_eq!(legacy.steps, current.steps);
}

#[test]
fn run_recoverable_matches_recovery_launch() {
    let legacy = JobRunner::new(store())
        .run_recoverable(Arc::new(countdown("d")), vec![seed(4)])
        .unwrap();
    let current = JobRunner::new(store())
        .launch(
            Arc::new(countdown("d")),
            RunOptions::new().loaders(vec![seed(4)]).recovery(),
        )
        .unwrap();
    assert_eq!(legacy.steps, 4);
    assert_eq!(legacy.steps, current.steps);
}

#[test]
fn run_durable_matches_durable_launch() {
    let legacy = JobRunner::new(store())
        .run_durable(Arc::new(countdown("e")), vec![seed(4)])
        .unwrap();
    let current = JobRunner::new(store())
        .launch(
            Arc::new(countdown("e")),
            RunOptions::new()
                .loaders(vec![seed(4)])
                .recovery()
                .durable(),
        )
        .unwrap();
    assert_eq!(legacy.steps, current.steps);
    assert_eq!(legacy.aborted, current.aborted);
}
