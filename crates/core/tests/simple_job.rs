//! Tests of the closure-based `SimpleJob` builder.

use std::sync::Arc;

use ripple_core::{
    AggValue, ExecMode, FnLoader, JobProperties, JobRunner, LoadSink, RunOptions, SimpleJob, SumI64,
};
use ripple_store_mem::MemStore;

#[test]
fn closure_job_with_combiner_and_aggregator() {
    // Gossip a maximum through a clique, counting active vertices.
    let job = SimpleJob::<u32, u32, u32>::builder("gossip_max")
        .aggregator("active", Arc::new(SumI64))
        .combine(|_k, a, b| Some(*a.max(b)))
        .compute(|ctx| {
            ctx.aggregate("active", AggValue::I64(1))?;
            let best = ctx.messages().iter().copied().max().unwrap_or(0);
            let current = ctx.read_state(0)?.unwrap_or(*ctx.key());
            let new = best.max(current);
            if new != current || ctx.step() == 1 {
                ctx.write_state(0, &new)?;
                for v in 0..8u32 {
                    if v != *ctx.key() {
                        ctx.send(v, new);
                    }
                }
            }
            Ok(false)
        })
        .build();
    let store = MemStore::builder().default_parts(3).build();
    JobRunner::new(store.clone())
        .launch(
            Arc::new(job),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<_>| {
                    for v in 0..8u32 {
                        sink.state(0, v, v)?;
                        sink.enable(v)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    let table = ripple_kv::KvStore::lookup_table(&store, "gossip_max").unwrap();
    let exporter = Arc::new(ripple_core::CollectingExporter::new());
    ripple_core::export_state_table::<_, u32, u32, _>(&store, &table, Arc::clone(&exporter))
        .unwrap();
    for (_, v) in exporter.take() {
        assert_eq!(v, 7, "everyone learned the maximum");
    }
}

#[test]
fn closure_job_properties_select_nosync() {
    let job = SimpleJob::<u32, u32, u32>::builder("nosync_simple")
        .properties(JobProperties {
            incremental: true,
            ..Default::default()
        })
        .compute(|ctx| {
            let hops = ctx.messages().first().copied().unwrap_or(0);
            if hops > 0 {
                ctx.send(ctx.key() + 1, hops - 1);
            }
            Ok(false)
        })
        .build();
    let store = MemStore::builder().default_parts(2).build();
    let outcome = JobRunner::new(store)
        .launch(
            Arc::new(job),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<_>| sink.message(0, 20),
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.mode, ExecMode::Unsynchronized);
    assert_eq!(outcome.metrics.invocations, 21);
}

#[test]
fn multiple_state_tables_by_index() {
    let job = SimpleJob::<u32, u64, ()>::builder("primary_t")
        .state_table("secondary_t")
        .compute(|ctx| {
            let a = ctx.read_state(0)?.unwrap_or(0);
            ctx.write_state(1, &(a * 2))?;
            Ok(false)
        })
        .build();
    let store = MemStore::builder().default_parts(2).build();
    JobRunner::new(store.clone())
        .launch(
            Arc::new(job),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<_>| {
                    sink.state(0, 3, 21)?;
                    sink.enable(3)
                },
            ))]),
        )
        .unwrap();
    let secondary = ripple_kv::KvStore::lookup_table(&store, "secondary_t").unwrap();
    let exporter = Arc::new(ripple_core::CollectingExporter::new());
    ripple_core::export_state_table::<_, u32, u64, _>(&store, &secondary, Arc::clone(&exporter))
        .unwrap();
    assert_eq!(exporter.take(), vec![(3, 42)]);
}

#[test]
#[should_panic(expected = "needs a compute closure")]
fn missing_compute_panics_at_build() {
    let _ = SimpleJob::<u32, u32, u32>::builder("t").build();
}
