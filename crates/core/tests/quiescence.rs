//! Termination behaviour of the unsynchronized engine: the safety timeout
//! for non-quiescing jobs and clean shutdown on quiescence under load.

use std::sync::Arc;
use std::time::Duration;

use ripple_core::{
    ComputeContext, EbspError, FnLoader, Job, JobProperties, JobRunner, LoadSink, RunOptions,
};
use ripple_store_mem::MemStore;

/// A job that never quiesces: every message spawns another.
struct PingForever;

impl Job for PingForever {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["ping".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        // Keep a little pressure off the queues so the watcher gets CPU.
        std::thread::sleep(Duration::from_micros(200));
        ctx.send(1 - me, ());
        Ok(false)
    }
}

#[test]
fn non_quiescing_job_hits_the_safety_timeout() {
    let store = MemStore::builder().default_parts(2).build();
    let err = JobRunner::new(store)
        .quiescence_timeout(Duration::from_millis(150))
        .launch(
            Arc::new(PingForever),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<PingForever>| sink.message(0, ()),
            ))]),
        )
        .unwrap_err();
    let EbspError::QuiescenceTimeout { waited } = err else {
        panic!("expected a quiescence timeout, got {err:?}");
    };
    assert!(
        waited >= Duration::from_millis(150),
        "the reported wait ({waited:?}) must cover the configured timeout"
    );
}

/// A deep message cascade: 1 seed fans out to `width` children for `depth`
/// generations, then drains.  The detector must neither terminate early
/// (all invocations must happen) nor hang.
struct Cascade {
    width: u32,
}

impl Job for Cascade {
    type Key = u32;
    type State = ();
    type Message = u32; // remaining depth
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["cascade".to_owned()]
    }

    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        for depth in ctx.take_messages() {
            if depth > 0 {
                for w in 0..self.width {
                    ctx.send(me.wrapping_mul(self.width) + w + 1, depth - 1);
                }
            }
        }
        Ok(false)
    }
}

#[test]
fn deep_cascades_drain_completely() {
    let store = MemStore::builder().default_parts(4).build();
    let job = Arc::new(Cascade { width: 3 });
    let outcome = JobRunner::new(store)
        .launch(
            Arc::clone(&job),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<Cascade>| sink.message(0, 6),
            ))]),
        )
        .unwrap();
    // Message count: 1 + 3 + 9 + ... + 3^6; each message triggers (at most
    // batched) invocations — the invariant is total messages processed.
    let expected_messages: u64 = (0..=6u32).map(|d| 3u64.pow(d)).sum();
    assert_eq!(
        outcome.metrics.messages_sent, expected_messages,
        "every generation of the cascade must happen before quiescence"
    );
}

#[test]
fn repeated_runs_are_stable() {
    // Exercise the detector repeatedly to catch rare early-termination
    // races: each run must process the full cascade.
    for round in 0..10 {
        let store = MemStore::builder().default_parts(3).build();
        let outcome = JobRunner::new(store)
            .launch(
                Arc::new(Cascade { width: 2 }),
                RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                    |sink: &mut dyn LoadSink<Cascade>| sink.message(0, 8),
                ))]),
            )
            .unwrap();
        let expected: u64 = (0..=8u32).map(|d| 2u64.pow(d)).sum();
        assert_eq!(outcome.metrics.messages_sent, expected, "round {round}");
    }
}

/// A panicking compute must surface promptly, not wait out the timeout.
struct PanicOnMessage;

impl Job for PanicOnMessage {
    type Key = u32;
    type State = ();
    type Message = ();
    type OutKey = ();
    type OutValue = ();
    fn state_tables(&self) -> Vec<String> {
        vec!["panicky".to_owned()]
    }
    fn properties(&self) -> JobProperties {
        JobProperties {
            incremental: true,
            ..JobProperties::default()
        }
    }
    fn compute(&self, _ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        panic!("application bug");
    }
}

#[test]
fn worker_panics_fail_fast() {
    let store = MemStore::builder().default_parts(2).build();
    let started = std::time::Instant::now();
    let err = JobRunner::new(store)
        .quiescence_timeout(Duration::from_secs(60))
        .launch(
            Arc::new(PanicOnMessage),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<PanicOnMessage>| sink.message(0, ()),
            ))]),
        )
        .unwrap_err();
    assert!(
        started.elapsed() < Duration::from_secs(10),
        "must not wait out the quiescence timeout"
    );
    assert!(
        matches!(err, EbspError::Kv(ripple_kv::KvError::TaskPanicked { .. })),
        "got {err:?}"
    );
}
