//! Step-level profiling: per-step profiles must tile the run — their
//! counters and store deltas sum to the run-level [`RunMetrics`] — and the
//! trace export must produce well-formed Chrome trace-event JSON.

use std::sync::Arc;
use std::time::Duration;

use ripple_core::{
    ComputeContext, EbspError, ExecMode, FnLoader, Job, JobProperties, JobRunner, LoadSink,
    ObservedEvent, RecordingObserver, RunOptions, StepProfile,
};
use ripple_store_mem::MemStore;

const PARTS: u32 = 3;

/// A ring relay: every key forwards a decrementing hop count to the next
/// key each step, so every step has cross-part messages (store traffic),
/// state reads and writes, and all parts stay busy.
struct RingRelay {
    n: u32,
}

impl Job for RingRelay {
    type Key = u32;
    type State = u32;
    type Message = u32;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["ring_relay".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let me = *ctx.key();
        let seen = ctx.read_state(0)?.unwrap_or(0);
        let hops = ctx.messages().iter().copied().max().unwrap_or(0);
        ctx.write_state(0, &(seen + 1))?;
        if hops > 0 {
            ctx.send((me + 1) % self.n, hops - 1);
        }
        Ok(false)
    }
}

fn run_ring(runner: &JobRunner<MemStore>) -> ripple_core::RunOutcome {
    runner
        .launch(
            Arc::new(RingRelay { n: 9 }),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<RingRelay>| {
                    for k in 0..9u32 {
                        sink.message(k, 5)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap()
}

fn sum_counters(profiles: &[StepProfile], f: impl Fn(&StepProfile) -> u64) -> u64 {
    profiles.iter().map(f).sum()
}

#[test]
fn step_profiles_tile_the_run_metrics() {
    let observer = Arc::new(RecordingObserver::new());
    let store = MemStore::builder().default_parts(PARTS).build();
    let mut runner = JobRunner::new(store);
    runner.profile(true).observer(observer.clone());
    let outcome = run_ring(&runner);

    assert_eq!(outcome.mode, ExecMode::Synchronized);
    assert!(outcome.worker_profiles.is_none());
    let profiles = outcome.profiles.as_deref().expect("profiling was on");
    let m = &outcome.metrics;

    // One profile per step, in step order.
    assert_eq!(profiles.len() as u32, outcome.steps);
    assert!(outcome.steps >= 5, "the relay runs one step per hop");
    for (i, p) in profiles.iter().enumerate() {
        assert_eq!(p.step, i as u32 + 1);
    }

    // Work counters: everything produced by compute invocations tiles
    // exactly across the steps.
    assert_eq!(
        sum_counters(profiles, |p| p.counters.invocations),
        m.invocations
    );
    assert_eq!(
        sum_counters(profiles, |p| p.counters.messages_sent),
        m.messages_sent
    );
    assert_eq!(
        sum_counters(profiles, |p| p.counters.state_reads),
        m.state_reads
    );
    assert_eq!(
        sum_counters(profiles, |p| p.counters.state_writes),
        m.state_writes
    );
    assert_eq!(
        sum_counters(profiles, |p| p.counters.state_deletes),
        m.state_deletes
    );
    assert_eq!(sum_counters(profiles, |p| p.counters.creates), m.creates);
    assert_eq!(
        sum_counters(profiles, |p| p.counters.direct_outputs),
        m.direct_outputs
    );
    // The initial load spill and the step-1 inbox build precede the first
    // step, so these two run-level counters may exceed the per-step sum —
    // but never by less.
    assert!(sum_counters(profiles, |p| p.counters.spill_batches) <= m.spill_batches);
    assert!(sum_counters(profiles, |p| p.counters.messages_combined) <= m.messages_combined);

    // Store deltas telescope: per-step deltas sum exactly to the run-level
    // delta, field by field.
    let store_sum = profiles
        .iter()
        .fold(ripple_kv::StoreMetrics::default(), |mut acc, p| {
            acc.local_ops += p.store.local_ops;
            acc.remote_ops += p.store.remote_ops;
            acc.bytes_marshalled += p.store.bytes_marshalled;
            acc.tasks_dispatched += p.store.tasks_dispatched;
            acc.enumerations += p.store.enumerations;
            acc
        });
    assert_eq!(
        store_sum, m.store,
        "per-step store deltas must tile the run"
    );
    assert!(m.store.remote_ops > 0, "the ring crosses part boundaries");

    // Per-part structure: pinned execution attributes every part, part
    // timings sit inside the phase wall, and the skew is the spread of
    // part finishes, so it cannot exceed the phase wall either.
    for p in profiles {
        assert_eq!(p.parts.len() as u32, PARTS);
        assert!(p.barrier_skew <= p.compute_wall, "{p:?}");
        assert!(p.critical_compute() <= p.compute_wall, "{p:?}");
        for part in &p.parts {
            assert!(part.compute <= p.compute_wall, "{part:?}");
            assert!(part.compute_start >= p.start, "{part:?}");
            // Part-attributed store ops never exceed the step total (the
            // store leaves whole-table ops unattributed).
            assert!(part.store.local_ops <= p.store.local_ops);
            assert!(part.store.remote_ops <= p.store.remote_ops);
            assert!(part.store.bytes_marshalled <= p.store.bytes_marshalled);
        }
        let attributed: u64 = p.parts.iter().map(|q| q.store.total_ops()).sum();
        assert!(attributed <= p.store.total_ops(), "{p:?}");
    }
    assert!(
        profiles
            .iter()
            .any(|p| p.parts.iter().any(|q| q.compute > Duration::ZERO)),
        "some part must have measurable compute time"
    );

    // `enabled_next` mirrors the on_step callback's count.
    let steps: Vec<(u32, u64)> = observer
        .take()
        .into_iter()
        .filter_map(|e| match e {
            ObservedEvent::StepProfile(s) => Some((s, u64::MAX)),
            ObservedEvent::Step(s, n) => Some((s, n)),
            _ => None,
        })
        .collect();
    for p in profiles {
        assert!(
            steps.contains(&(p.step, p.enabled_next)),
            "observer missed step {}",
            p.step
        );
        assert!(
            steps.contains(&(p.step, u64::MAX)),
            "observer missed the profile event for step {}",
            p.step
        );
    }
}

#[test]
fn profiles_are_absent_when_disabled() {
    let store = MemStore::builder().default_parts(PARTS).build();
    let outcome = run_ring(&JobRunner::new(store));
    assert!(outcome.profiles.is_none());
    assert!(outcome.worker_profiles.is_none());
}

#[test]
fn trace_file_is_valid_chrome_trace_json() {
    let path = std::env::temp_dir().join(format!("ripple_trace_test_{}.json", std::process::id()));
    let store = MemStore::builder().default_parts(PARTS).build();
    let mut runner = JobRunner::new(store);
    runner.trace_to(&path); // implies profiling
    let outcome = run_ring(&runner);
    assert!(outcome.profiles.is_some(), "trace_to implies profile");

    let text = std::fs::read_to_string(&path).unwrap();
    let _ = std::fs::remove_file(&path);
    assert!(text.starts_with("{\"traceEvents\":["), "{text:.60}");
    assert!(text.ends_with('}'), "{text:.60}");
    assert!(text.contains("\"ph\":\"X\""), "complete events present");
    assert!(text.contains("\"step 1\""), "controller lane spans present");
    assert!(
        text.contains("\"ph\":\"M\""),
        "thread-name metadata present"
    );

    // Structural JSON check: braces and brackets balance outside strings.
    let (mut depth, mut in_string, mut escaped) = (0i64, false, false);
    for c in text.chars() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_string => escaped = true,
            '"' => in_string = !in_string,
            '{' | '[' if !in_string => depth += 1,
            '}' | ']' if !in_string => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced close in trace");
    }
    assert_eq!(depth, 0, "trace JSON must balance");
    assert!(!in_string, "trace JSON must close its strings");
}

#[test]
fn nosync_run_yields_one_worker_profile_per_part() {
    // The nosync chain from the simple-job tests: incremental, one message
    // in flight hopping down a chain of keys spread over the parts.
    let job = ripple_core::SimpleJob::<u32, u32, u32>::builder("nosync_profiled")
        .properties(JobProperties {
            incremental: true,
            ..Default::default()
        })
        .compute(|ctx| {
            let hops = ctx.messages().first().copied().unwrap_or(0);
            if hops > 0 {
                ctx.send(ctx.key() + 1, hops - 1);
            }
            Ok(false)
        })
        .build();
    let store = MemStore::builder().default_parts(2).build();
    let observer = Arc::new(RecordingObserver::new());
    let mut runner = JobRunner::new(store);
    runner
        .profile(true)
        .observer(observer.clone())
        .quiescence_timeout(Duration::from_secs(30));
    let outcome = runner
        .launch(
            Arc::new(job),
            RunOptions::new().loaders(vec![Box::new(FnLoader::new(
                |sink: &mut dyn LoadSink<_>| sink.message(0, 20),
            ))]),
        )
        .unwrap();
    assert_eq!(outcome.mode, ExecMode::Unsynchronized);
    assert!(outcome.profiles.is_none(), "no steps to profile");
    let workers = outcome.worker_profiles.as_deref().expect("profiling on");
    assert_eq!(workers.len(), 2, "one profile per part");
    let mut parts: Vec<u32> = workers.iter().map(|w| w.part).collect();
    parts.sort_unstable();
    assert_eq!(parts, vec![0, 1]);
    // 21 invocations, each fed by one delivered envelope.
    let envelopes: u64 = workers.iter().map(|w| w.envelopes).sum();
    assert!(envelopes >= outcome.metrics.invocations, "{workers:?}");
    for w in workers {
        // A worker that only ever saw the stop signal drains no batch.
        if w.envelopes > 0 {
            assert!(w.batches >= 1, "{w:?}");
            assert!(w.busy > Duration::ZERO, "{w:?}");
        }
        assert!(w.envelopes <= w.batches * 256, "the batch limit bounds");
        assert!(w.max_batch <= w.envelopes, "{w:?}");
        assert!((0.0..=1.0).contains(&w.utilization()));
        assert!(w.busy + w.idle > Duration::ZERO, "every worker waited");
    }
    let seen: Vec<u32> = observer
        .take()
        .into_iter()
        .filter_map(|e| match e {
            ObservedEvent::WorkerProfile(p) => Some(p),
            _ => None,
        })
        .collect();
    assert_eq!(seen.len(), 2, "observer saw each worker profile");
}
