//! Tests of the loader/exporter library: `PairsLoader`, `TableLoader`
//! (loading a job's input from an existing table without touching it),
//! and state-table export plumbing.

use std::sync::Arc;

use ripple_core::{
    export_state_table, CollectingExporter, ComputeContext, EbspError, Job, JobRunner, PairsLoader,
    RunOptions, TableLoader,
};
use ripple_kv::{KvStore, Table, TableSpec};
use ripple_store_mem::MemStore;
use ripple_wire::to_wire;

/// Doubles whatever state it finds, once.
struct Doubler;

impl Job for Doubler {
    type Key = u32;
    type State = u64;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["doubled".to_owned()]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        let v = ctx.read_state(0)?.unwrap_or(0);
        ctx.write_state(0, &(v * 2))?;
        Ok(false)
    }
}

fn read_all(store: &MemStore, table: &str) -> Vec<(u32, u64)> {
    let handle = store.lookup_table(table).unwrap();
    let exporter = Arc::new(CollectingExporter::new());
    export_state_table::<_, u32, u64, _>(store, &handle, Arc::clone(&exporter)).unwrap();
    let mut out = exporter.take();
    out.sort();
    out
}

#[test]
fn pairs_loader_installs_and_enables() {
    let store = MemStore::builder().default_parts(3).build();
    let pairs: Vec<(u32, u64)> = (0..20).map(|k| (k, u64::from(k) + 1)).collect();
    let outcome = JobRunner::new(store.clone())
        .launch(
            Arc::new(Doubler),
            RunOptions::new().loaders(vec![Box::new(PairsLoader::new(0, pairs).enabling())]),
        )
        .unwrap();
    assert_eq!(outcome.metrics.invocations, 20);
    for (k, v) in read_all(&store, "doubled") {
        assert_eq!(v, 2 * (u64::from(k) + 1));
    }
}

#[test]
fn pairs_loader_without_enabling_runs_nothing() {
    let store = MemStore::builder().default_parts(3).build();
    let pairs: Vec<(u32, u64)> = (0..5).map(|k| (k, 7)).collect();
    let outcome = JobRunner::new(store.clone())
        .launch(
            Arc::new(Doubler),
            RunOptions::new().loaders(vec![Box::new(PairsLoader::new(0, pairs))]),
        )
        .unwrap();
    assert_eq!(outcome.metrics.invocations, 0);
    // States installed, untouched.
    for (_, v) in read_all(&store, "doubled") {
        assert_eq!(v, 7);
    }
}

#[test]
fn table_loader_reads_existing_data_without_changing_it() {
    let store = MemStore::builder().default_parts(3).build();
    // Pre-existing application data in its own table.
    let source = store.create_table(&TableSpec::new("existing")).unwrap();
    for k in 0..15u32 {
        source
            .put(ripple_core::key_to_routed(&k), to_wire(&u64::from(k * 10)))
            .unwrap();
    }

    let outcome = JobRunner::new(store.clone())
        .launch(
            Arc::new(Doubler),
            RunOptions::new().loaders(vec![Box::new(
                TableLoader::new(&store, &source, 0).enabling(),
            )]),
        )
        .unwrap();
    assert_eq!(outcome.metrics.invocations, 15);

    // The analysis results land in the job's own table...
    for (k, v) in read_all(&store, "doubled") {
        assert_eq!(v, u64::from(k * 10) * 2);
    }
    // ...while the source table is untouched ("running a new analysis need
    // not involve changing existing data").
    assert_eq!(source.len().unwrap(), 15);
    for k in 0..15u32 {
        let raw = source
            .get(&ripple_core::key_to_routed(&k))
            .unwrap()
            .unwrap();
        let v: u64 = ripple_wire::from_wire(&raw).unwrap();
        assert_eq!(v, u64::from(k * 10));
    }
}

#[test]
fn table_loader_on_empty_source_is_a_noop() {
    let store = MemStore::builder().default_parts(2).build();
    let source = store.create_table(&TableSpec::new("empty_src")).unwrap();
    let outcome = JobRunner::new(store.clone())
        .launch(
            Arc::new(Doubler),
            RunOptions::new().loaders(vec![Box::new(
                TableLoader::new(&store, &source, 0).enabling(),
            )]),
        )
        .unwrap();
    assert_eq!(outcome.steps, 0);
}

#[test]
fn table_loader_surfaces_undecodable_source() {
    let store = MemStore::builder().default_parts(2).build();
    let source = store.create_table(&TableSpec::new("bad_src")).unwrap();
    source
        .put(
            ripple_core::key_to_routed(&1u32),
            bytes::Bytes::from_static(b"\xff\xff\xff garbage"),
        )
        .unwrap();
    let err = JobRunner::new(store.clone())
        .launch(
            Arc::new(Doubler),
            RunOptions::new().loaders(vec![Box::new(TableLoader::new(&store, &source, 0))]),
        )
        .unwrap_err();
    assert!(matches!(err, EbspError::Wire(_)), "got {err:?}");
}

/// The paper's `getWriters`: jobs can attach exporters to their state
/// tables, invoked automatically when the run completes.
struct SelfExporting {
    writer: Arc<CollectingExporter<u32, u64>>,
}

impl Job for SelfExporting {
    type Key = u32;
    type State = u64;
    type Message = ();
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        vec!["self_exporting".to_owned()]
    }

    fn state_exporters(&self) -> ripple_core::StateExporters<Self> {
        vec![(
            0,
            self.writer.clone() as Arc<dyn ripple_core::Exporter<u32, u64>>,
        )]
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        ctx.write_state(0, &(u64::from(*ctx.key()) * 3))?;
        Ok(false)
    }
}

#[test]
fn state_exporters_run_at_job_completion() {
    let store = MemStore::builder().default_parts(3).build();
    let writer = Arc::new(CollectingExporter::new());
    let job = Arc::new(SelfExporting {
        writer: Arc::clone(&writer),
    });
    JobRunner::new(store)
        .launch(
            job,
            RunOptions::new().loaders(vec![Box::new(ripple_core::FnLoader::new(
                |sink: &mut dyn ripple_core::LoadSink<SelfExporting>| {
                    for k in 0..12u32 {
                        sink.enable(k)?;
                    }
                    Ok(())
                },
            ))]),
        )
        .unwrap();
    let mut got = writer.take();
    got.sort();
    assert_eq!(got.len(), 12);
    for (k, v) in got {
        assert_eq!(v, u64::from(k) * 3);
    }
}
