//! The engine's internal BSP traffic: payload messages, continue signals,
//! and remote state creations, all carried uniformly as envelopes inside
//! spill batches.  "The implementation of the continue signal transforms a
//! positive one into a special kind of BSP message.  Thus, the basic
//! mechanism is driven purely by BSP messages." (§IV-A)

use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

use crate::Job;

/// One unit of BSP traffic addressed to a component.
#[derive(Debug, Clone)]
pub enum Envelope<J: Job> {
    /// An application message for `to`, delivered next step (and enabling
    /// `to` for that step).
    Message {
        /// Destination component.
        to: J::Key,
        /// The payload.
        msg: J::Message,
    },
    /// A positive continue signal: `key` stays enabled next step.
    Continue {
        /// The component that wishes to remain enabled.
        key: J::Key,
    },
    /// A request to create component state (§II: "request creation of a new
    /// component's state, by supplying an identifier and initial local
    /// state").  Conflicts are merged with
    /// [`Job::combine_states`](crate::Job::combine_states).
    Create {
        /// Which state table the entry goes into.
        tab: u16,
        /// The new component's key.
        key: J::Key,
        /// The initial state.
        state: J::State,
    },
}

impl<J: Job> Envelope<J> {
    /// The destination component key.
    pub fn key(&self) -> &J::Key {
        match self {
            Envelope::Message { to, .. } => to,
            Envelope::Continue { key } => key,
            Envelope::Create { key, .. } => key,
        }
    }
}

impl<J: Job> Encode for Envelope<J> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            Envelope::Message { to, msg } => {
                w.push(0);
                to.encode(w);
                msg.encode(w);
            }
            Envelope::Continue { key } => {
                w.push(1);
                key.encode(w);
            }
            Envelope::Create { tab, key, state } => {
                w.push(2);
                tab.encode(w);
                key.encode(w);
                state.encode(w);
            }
        }
    }

    fn size_hint(&self) -> usize {
        1 + match self {
            Envelope::Message { to, msg } => to.size_hint() + msg.size_hint(),
            Envelope::Continue { key } => key.size_hint(),
            Envelope::Create { tab, key, state } => {
                tab.size_hint() + key.size_hint() + state.size_hint()
            }
        }
    }
}

impl<J: Job> Decode for Envelope<J> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(Envelope::Message {
                to: J::Key::decode(r)?,
                msg: J::Message::decode(r)?,
            }),
            1 => Ok(Envelope::Continue {
                key: J::Key::decode(r)?,
            }),
            2 => Ok(Envelope::Create {
                tab: u16::decode(r)?,
                key: J::Key::decode(r)?,
                state: J::State::decode(r)?,
            }),
            tag => Err(WireError::InvalidTag {
                target: "Envelope",
                tag,
            }),
        }
    }
}
