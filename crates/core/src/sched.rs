//! Part-task gating: the hook a resident multi-tenant service uses to
//! share a bounded worker pool fairly across concurrent jobs.
//!
//! A solo [`JobRunner`](crate::JobRunner) dispatches every part-task of a
//! phase at once and lets the store's lanes sort it out — fine when the
//! process runs one job.  A *job service* admits many jobs over one store
//! pool, and without arbitration a wide job would monopolize the
//! machine while a two-part job starves behind it.  The engine therefore
//! offers one narrow hook: when a [`TaskGate`] is installed via
//! [`JobRunner::task_gate`](crate::JobRunner::task_gate), every
//! synchronized compute and inbox-build part-task acquires a permit
//! before touching its part and releases it when the task finishes.  The
//! scheduler lives *behind* the trait (see `ripple-server`'s fair
//! round-robin implementation); the engine only promises bracketing.
//!
//! Gating is deliberately scheduling-only: a gate decides *when* a
//! part-task runs within its phase, never whether or in what data state.
//! Every task of a phase still completes before the barrier, so gated and
//! ungated runs of a deterministic job are byte-identical.

use std::sync::Arc;

/// Admission gate for one part-task.
///
/// Implementations must be starvation-free — every `acquire` must
/// eventually return once other holders release — or a phase could stall
/// short of its barrier forever.  `acquire`/`release` calls arrive from
/// store worker threads, one balanced pair per part-task.
pub trait TaskGate: Send + Sync + 'static {
    /// Blocks until the caller may run one part-task.
    fn acquire(&self);

    /// Returns the permit taken by the matching [`TaskGate::acquire`].
    fn release(&self);
}

/// RAII permit: acquires on construction, releases on drop (including
/// unwinds, so a panicking part-task cannot leak its worker slot).
pub struct GatePermit {
    gate: Arc<dyn TaskGate>,
}

impl GatePermit {
    /// Acquires a permit from `gate`, blocking until granted.
    pub fn acquire(gate: &Arc<dyn TaskGate>) -> Self {
        gate.acquire();
        Self {
            gate: Arc::clone(gate),
        }
    }
}

impl Drop for GatePermit {
    fn drop(&mut self) {
        self.gate.release();
    }
}

impl std::fmt::Debug for GatePermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GatePermit").finish_non_exhaustive()
    }
}

/// The trivial gate: bounds concurrent part-tasks store-wide with a
/// counting semaphore, with no notion of jobs or fairness.  Useful to cap
/// a single runner's parallelism; a job service wants `ripple-server`'s
/// fair scheduler instead.
#[derive(Debug)]
pub struct SemaphoreGate {
    state: std::sync::Mutex<usize>,
    cv: std::sync::Condvar,
    permits: usize,
}

impl SemaphoreGate {
    /// A gate admitting at most `permits` concurrent part-tasks.
    ///
    /// # Panics
    ///
    /// Panics if `permits` is zero — nothing could ever run.
    pub fn new(permits: usize) -> Self {
        assert!(permits > 0, "a task gate needs at least one permit");
        Self {
            state: std::sync::Mutex::new(permits),
            cv: std::sync::Condvar::new(),
            permits,
        }
    }

    /// The configured permit count.
    pub fn permits(&self) -> usize {
        self.permits
    }
}

impl TaskGate for SemaphoreGate {
    fn acquire(&self) {
        let mut free = self.state.lock().expect("gate lock poisoned");
        while *free == 0 {
            free = self.cv.wait(free).expect("gate lock poisoned");
        }
        *free -= 1;
    }

    fn release(&self) {
        let mut free = self.state.lock().expect("gate lock poisoned");
        *free += 1;
        drop(free);
        self.cv.notify_one();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn semaphore_bounds_concurrency() {
        let gate: Arc<dyn TaskGate> = Arc::new(SemaphoreGate::new(2));
        let live = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let gate = Arc::clone(&gate);
                let live = Arc::clone(&live);
                let peak = Arc::clone(&peak);
                std::thread::spawn(move || {
                    let _permit = GatePermit::acquire(&gate);
                    let now = live.fetch_add(1, Ordering::SeqCst) + 1;
                    peak.fetch_max(now, Ordering::SeqCst);
                    std::thread::sleep(std::time::Duration::from_millis(5));
                    live.fetch_sub(1, Ordering::SeqCst);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(peak.load(Ordering::SeqCst) <= 2, "semaphore overshoot");
    }

    #[test]
    fn permit_releases_on_panic() {
        let gate = Arc::new(SemaphoreGate::new(1));
        let dyn_gate: Arc<dyn TaskGate> = Arc::clone(&gate) as Arc<dyn TaskGate>;
        let g2 = Arc::clone(&dyn_gate);
        let _ = std::thread::spawn(move || {
            let _permit = GatePermit::acquire(&g2);
            panic!("task died holding a permit");
        })
        .join();
        // The permit must have been returned by the unwind.
        let _permit = GatePermit::acquire(&dyn_gate);
    }

    #[test]
    #[should_panic(expected = "at least one permit")]
    fn zero_permits_rejected() {
        SemaphoreGate::new(0);
    }
}
