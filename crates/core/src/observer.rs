//! Run observation: the paper gives the client a callback consuming "final
//! aggregator results & the number of steps taken"; [`RunObserver`]
//! generalizes that to per-step visibility — progress reporting, tracing,
//! and experiment instrumentation hook in here without touching jobs.

use crate::profile::{StepProfile, WorkerProfile};
use crate::AggregateSnapshot;

/// Callbacks invoked by the synchronized engine at run boundaries.
///
/// All methods have empty defaults; implement only what you need.
/// Observers must be cheap — they run on the controller thread between
/// barriers.
pub trait RunObserver: Send + Sync + 'static {
    /// A step completed: its number, how many components are enabled for
    /// the *next* step, and the just-merged aggregator results.
    fn on_step(&self, step: u32, enabled_next: u64, aggregates: &AggregateSnapshot) {
        let _ = (step, enabled_next, aggregates);
    }

    /// A checkpoint was captured at the barrier after `step`.
    fn on_checkpoint(&self, step: u32) {
        let _ = step;
    }

    /// A part failure was detected and the run rolled back to the
    /// checkpoint taken after `rewound_to_step`.
    fn on_recovery(&self, rewound_to_step: u32) {
        let _ = rewound_to_step;
    }

    /// A single failed part was restored and replayed alone (fast
    /// recovery) instead of rolling the whole group back; `replayed_steps`
    /// is how many steps the part re-executed.
    fn on_fast_recovery(&self, part: u32, replayed_steps: u32) {
        let _ = (part, replayed_steps);
    }

    /// The engine observed a transient store fault at `part`; `detail`
    /// describes it.  Fired before any retry decision.
    fn on_fault_injected(&self, part: u32, detail: &str) {
        let _ = (part, detail);
    }

    /// The engine is about to retry a transient fault at `part`;
    /// `attempt` is the 1-based number of the attempt that just failed.
    fn on_retry(&self, part: u32, attempt: u32) {
        let _ = (part, attempt);
    }

    /// The store's failure detector declared the server hosting `part`
    /// down while its replica group was fenced at `epoch`.  Fired by
    /// networked backends; in-process stores never emit it.
    fn on_part_down(&self, part: u32, epoch: u64) {
        let _ = (part, epoch);
    }

    /// The store promoted a standby to primary for the group hosting
    /// `part`; `epoch` is the new fencing epoch after promotion.
    fn on_failover(&self, part: u32, epoch: u64) {
        let _ = (part, epoch);
    }

    /// A synchronized step's profile, emitted right after the step's
    /// barrier when profiling is enabled
    /// ([`JobRunner::profile`](crate::JobRunner::profile)).
    fn on_step_profile(&self, profile: &StepProfile) {
        let _ = profile;
    }

    /// One unsynchronized worker's run-level profile, emitted as the run
    /// drains when profiling is enabled.
    fn on_worker_profile(&self, profile: &WorkerProfile) {
        let _ = profile;
    }

    /// The property auditor reported a finding — a declared-property
    /// violation, or an inference-mode advisory.  Fired by the audit
    /// harness (`ripple-audit`) as findings are established, not by the
    /// engines themselves.
    fn on_audit_finding(&self, finding: &crate::AuditFinding) {
        let _ = finding;
    }
}

/// Forwards every callback to each of a list of observers, in order — how
/// the runner composes a user observer with an internal
/// [`TraceRecorder`](crate::TraceRecorder).
pub struct FanoutObserver {
    observers: Vec<std::sync::Arc<dyn RunObserver>>,
}

impl FanoutObserver {
    /// Creates a fan-out over `observers`.
    pub fn new(observers: Vec<std::sync::Arc<dyn RunObserver>>) -> Self {
        Self { observers }
    }
}

impl RunObserver for FanoutObserver {
    fn on_step(&self, step: u32, enabled_next: u64, aggregates: &AggregateSnapshot) {
        for o in &self.observers {
            o.on_step(step, enabled_next, aggregates);
        }
    }
    fn on_checkpoint(&self, step: u32) {
        for o in &self.observers {
            o.on_checkpoint(step);
        }
    }
    fn on_recovery(&self, rewound_to_step: u32) {
        for o in &self.observers {
            o.on_recovery(rewound_to_step);
        }
    }
    fn on_fast_recovery(&self, part: u32, replayed_steps: u32) {
        for o in &self.observers {
            o.on_fast_recovery(part, replayed_steps);
        }
    }
    fn on_fault_injected(&self, part: u32, detail: &str) {
        for o in &self.observers {
            o.on_fault_injected(part, detail);
        }
    }
    fn on_retry(&self, part: u32, attempt: u32) {
        for o in &self.observers {
            o.on_retry(part, attempt);
        }
    }
    fn on_part_down(&self, part: u32, epoch: u64) {
        for o in &self.observers {
            o.on_part_down(part, epoch);
        }
    }
    fn on_failover(&self, part: u32, epoch: u64) {
        for o in &self.observers {
            o.on_failover(part, epoch);
        }
    }
    fn on_step_profile(&self, profile: &StepProfile) {
        for o in &self.observers {
            o.on_step_profile(profile);
        }
    }
    fn on_worker_profile(&self, profile: &WorkerProfile) {
        for o in &self.observers {
            o.on_worker_profile(profile);
        }
    }
    fn on_audit_finding(&self, finding: &crate::AuditFinding) {
        for o in &self.observers {
            o.on_audit_finding(finding);
        }
    }
}

/// An observer that records every callback, for tests and diagnostics.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: parking_lot::Mutex<Vec<ObservedEvent>>,
}

/// One recorded engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservedEvent {
    /// `on_step(step, enabled_next)`.
    Step(u32, u64),
    /// `on_checkpoint(step)`.
    Checkpoint(u32),
    /// `on_recovery(rewound_to_step)`.
    Recovery(u32),
    /// `on_fast_recovery(part, replayed_steps)`.
    FastRecovery(u32, u32),
    /// `on_fault_injected(part, detail)`.
    FaultInjected(u32, String),
    /// `on_retry(part, attempt)`.
    Retry(u32, u32),
    /// `on_part_down(part, epoch)`.
    PartDown(u32, u64),
    /// `on_failover(part, epoch)`.
    Failover(u32, u64),
    /// `on_step_profile(profile)` — the step number.
    StepProfile(u32),
    /// `on_worker_profile(profile)` — the part.
    WorkerProfile(u32),
    /// `on_audit_finding(finding)` — the property and step.
    AuditFinding(&'static str, u32),
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns the events recorded so far.
    pub fn take(&self) -> Vec<ObservedEvent> {
        std::mem::take(&mut self.events.lock())
    }
}

impl RunObserver for RecordingObserver {
    fn on_step(&self, step: u32, enabled_next: u64, _aggregates: &AggregateSnapshot) {
        self.events
            .lock()
            .push(ObservedEvent::Step(step, enabled_next));
    }
    fn on_checkpoint(&self, step: u32) {
        self.events.lock().push(ObservedEvent::Checkpoint(step));
    }
    fn on_recovery(&self, rewound_to_step: u32) {
        self.events
            .lock()
            .push(ObservedEvent::Recovery(rewound_to_step));
    }
    fn on_fast_recovery(&self, part: u32, replayed_steps: u32) {
        self.events
            .lock()
            .push(ObservedEvent::FastRecovery(part, replayed_steps));
    }
    fn on_fault_injected(&self, part: u32, detail: &str) {
        self.events
            .lock()
            .push(ObservedEvent::FaultInjected(part, detail.to_owned()));
    }
    fn on_retry(&self, part: u32, attempt: u32) {
        self.events.lock().push(ObservedEvent::Retry(part, attempt));
    }
    fn on_part_down(&self, part: u32, epoch: u64) {
        self.events
            .lock()
            .push(ObservedEvent::PartDown(part, epoch));
    }
    fn on_failover(&self, part: u32, epoch: u64) {
        self.events
            .lock()
            .push(ObservedEvent::Failover(part, epoch));
    }
    fn on_step_profile(&self, profile: &StepProfile) {
        self.events
            .lock()
            .push(ObservedEvent::StepProfile(profile.step));
    }
    fn on_worker_profile(&self, profile: &WorkerProfile) {
        self.events
            .lock()
            .push(ObservedEvent::WorkerProfile(profile.part));
    }
    fn on_audit_finding(&self, finding: &crate::AuditFinding) {
        self.events
            .lock()
            .push(ObservedEvent::AuditFinding(finding.property, finding.step));
    }
}
