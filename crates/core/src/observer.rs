//! Run observation: the paper gives the client a callback consuming "final
//! aggregator results & the number of steps taken"; [`RunObserver`]
//! generalizes that to per-step visibility — progress reporting, tracing,
//! and experiment instrumentation hook in here without touching jobs.

use crate::AggregateSnapshot;

/// Callbacks invoked by the synchronized engine at run boundaries.
///
/// All methods have empty defaults; implement only what you need.
/// Observers must be cheap — they run on the controller thread between
/// barriers.
pub trait RunObserver: Send + Sync + 'static {
    /// A step completed: its number, how many components are enabled for
    /// the *next* step, and the just-merged aggregator results.
    fn on_step(&self, step: u32, enabled_next: u64, aggregates: &AggregateSnapshot) {
        let _ = (step, enabled_next, aggregates);
    }

    /// A checkpoint was captured at the barrier after `step`.
    fn on_checkpoint(&self, step: u32) {
        let _ = step;
    }

    /// A part failure was detected and the run rolled back to the
    /// checkpoint taken after `rewound_to_step`.
    fn on_recovery(&self, rewound_to_step: u32) {
        let _ = rewound_to_step;
    }
}

/// An observer that records every callback, for tests and diagnostics.
#[derive(Debug, Default)]
pub struct RecordingObserver {
    events: parking_lot::Mutex<Vec<ObservedEvent>>,
}

/// One recorded engine event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObservedEvent {
    /// `on_step(step, enabled_next)`.
    Step(u32, u64),
    /// `on_checkpoint(step)`.
    Checkpoint(u32),
    /// `on_recovery(rewound_to_step)`.
    Recovery(u32),
}

impl RecordingObserver {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Removes and returns the events recorded so far.
    pub fn take(&self) -> Vec<ObservedEvent> {
        std::mem::take(&mut self.events.lock())
    }
}

impl RunObserver for RecordingObserver {
    fn on_step(&self, step: u32, enabled_next: u64, _aggregates: &AggregateSnapshot) {
        self.events.lock().push(ObservedEvent::Step(step, enabled_next));
    }
    fn on_checkpoint(&self, step: u32) {
        self.events.lock().push(ObservedEvent::Checkpoint(step));
    }
    fn on_recovery(&self, rewound_to_step: u32) {
        self.events.lock().push(ObservedEvent::Recovery(rewound_to_step));
    }
}
