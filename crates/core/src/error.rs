use std::error::Error;
use std::fmt;

use ripple_kv::KvError;
use ripple_mq::MqError;
use ripple_wire::WireError;

/// Error produced while setting up or running a K/V EBSP job.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum EbspError {
    /// The job definition is inconsistent (no state tables, bad reference
    /// table, duplicate aggregator names, ...).
    InvalidJob {
        /// Human-readable reason.
        reason: String,
    },
    /// A state-table index passed to the compute context was out of range.
    StateTableIndex {
        /// The offending index.
        index: usize,
        /// Number of state tables the job declared.
        tables: usize,
    },
    /// An aggregator name was not declared by the job.
    NoSuchAggregator {
        /// The undeclared name.
        name: String,
    },
    /// A declared job property was observed to be false at run time (e.g.
    /// `one-msg` with two messages for one key in one step).
    PropertyViolation {
        /// Which property was violated.
        property: &'static str,
        /// What was observed.
        detail: String,
    },
    /// The requested execution mode is not permitted by the job's
    /// properties (e.g. unsynchronized execution with aggregators).
    PlanViolation {
        /// Why the plan is not permitted.
        reason: String,
    },
    /// The step limit given in the run options was reached.
    StepLimitExceeded {
        /// The limit that was hit.
        limit: u32,
    },
    /// Unsynchronized execution did not quiesce within the safety timeout.
    QuiescenceTimeout {
        /// How long the engine waited before giving up.
        waited: std::time::Duration,
    },
    /// A run option asks for something the configured store cannot do
    /// (e.g. checkpointing on a store without shard snapshots).
    ConfigUnsupported {
        /// The offending option.
        option: &'static str,
        /// Why the option cannot be honored.
        reason: String,
    },
    /// A part failed and no recovery was configured.
    Unrecoverable {
        /// The failed part.
        part: u32,
    },
    /// The key/value store failed.
    Kv(KvError),
    /// The message-queuing layer failed.
    Mq(MqError),
    /// Marshalled bytes could not be decoded (corrupt spill or state).
    Wire(WireError),
}

impl fmt::Display for EbspError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EbspError::InvalidJob { reason } => write!(f, "invalid job: {reason}"),
            EbspError::StateTableIndex { index, tables } => {
                write!(
                    f,
                    "state table index {index} out of range ({tables} tables)"
                )
            }
            EbspError::NoSuchAggregator { name } => {
                write!(f, "aggregator {name:?} was not declared by the job")
            }
            EbspError::PropertyViolation { property, detail } => {
                write!(f, "declared property {property} violated: {detail}")
            }
            EbspError::PlanViolation { reason } => {
                write!(f, "execution plan not permitted: {reason}")
            }
            EbspError::StepLimitExceeded { limit } => {
                write!(f, "step limit of {limit} exceeded")
            }
            EbspError::QuiescenceTimeout { waited } => {
                write!(
                    f,
                    "unsynchronized execution did not quiesce within {:.3}s",
                    waited.as_secs_f64()
                )
            }
            EbspError::ConfigUnsupported { option, reason } => {
                write!(f, "run option {option} not supported here: {reason}")
            }
            EbspError::Unrecoverable { part } => {
                write!(f, "part {part} failed and no recovery was configured")
            }
            EbspError::Kv(e) => write!(f, "store error: {e}"),
            EbspError::Mq(e) => write!(f, "queuing error: {e}"),
            EbspError::Wire(e) => write!(f, "codec error: {e}"),
        }
    }
}

impl Error for EbspError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            EbspError::Kv(e) => Some(e),
            EbspError::Mq(e) => Some(e),
            EbspError::Wire(e) => Some(e),
            _ => None,
        }
    }
}

impl From<KvError> for EbspError {
    fn from(e: KvError) -> Self {
        EbspError::Kv(e)
    }
}

impl From<MqError> for EbspError {
    fn from(e: MqError) -> Self {
        EbspError::Mq(e)
    }
}

impl From<WireError> for EbspError {
    fn from(e: WireError) -> Self {
        EbspError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sources_chain() {
        assert!(EbspError::from(KvError::StoreClosed).source().is_some());
        assert!(EbspError::from(WireError::InvalidUtf8).source().is_some());
        assert!(EbspError::QuiescenceTimeout {
            waited: std::time::Duration::from_secs(1),
        }
        .source()
        .is_none());
    }

    #[test]
    fn timeout_and_config_errors_render_specifics() {
        let e = EbspError::QuiescenceTimeout {
            waited: std::time::Duration::from_millis(1500),
        };
        assert!(e.to_string().contains("1.500"));
        let e = EbspError::ConfigUnsupported {
            option: "checkpoint_interval",
            reason: "store has no shard snapshots".into(),
        };
        assert!(e.to_string().contains("checkpoint_interval"));
        assert!(e.to_string().contains("shard snapshots"));
    }

    #[test]
    fn is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<EbspError>();
    }
}
