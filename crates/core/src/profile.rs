//! Step-level run profiles: the measurement substrate for the BSP cost
//! model.
//!
//! The paper's evaluation reasons entirely in per-superstep costs, and the
//! classic BSP cost model prices a run as `T = Σᵢ (wᵢ + g·hᵢ + l)` — per
//! step, the longest local work `wᵢ`, the h-relation `hᵢ` (data exchanged
//! across part boundaries), and the barrier latency `l`.  [`RunMetrics`]
//! only reports whole-run totals; a [`StepProfile`] is one step's term of
//! the sum:
//!
//! - `wᵢ` — the per-part compute wall times ([`PartStepProfile::compute`];
//!   the step's critical path is the maximum over parts),
//! - `g·hᵢ` — the per-step [`StoreMetrics`] delta ([`StepProfile::store`]:
//!   bytes marshalled, local vs remote operations),
//! - `l` — approximated from below by [`StepProfile::barrier_skew`], the
//!   spread between the first and last part to reach the barrier (time the
//!   fast parts spend waiting).
//!
//! The unsynchronized engine has no steps; its analogue is the per-worker
//! [`WorkerProfile`] — busy/idle split and batch-shape counters over the
//! whole run.
//!
//! Profiles are collected only when [`JobRunner::profile`] (or
//! [`JobRunner::trace_to`]) is enabled, stream through
//! [`RunObserver::on_step_profile`] as each barrier completes, and land on
//! [`RunOutcome::profiles`] / [`RunOutcome::worker_profiles`].
//!
//! [`JobRunner::profile`]: crate::JobRunner::profile
//! [`JobRunner::trace_to`]: crate::JobRunner::trace_to
//! [`RunObserver::on_step_profile`]: crate::RunObserver::on_step_profile
//! [`RunOutcome::profiles`]: crate::RunOutcome::profiles
//! [`RunOutcome::worker_profiles`]: crate::RunOutcome::worker_profiles
//! [`RunMetrics`]: crate::RunMetrics

use std::time::Duration;

use ripple_kv::StoreMetrics;

use crate::metrics::PartCounters;

/// One part's timings within one synchronized step.
///
/// All instants are offsets from the start of the run, so profiles from
/// one run share a single timeline (which is what a trace viewer wants).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PartStepProfile {
    /// The part.
    pub part: u32,
    /// When this part's compute task started, as an offset from run start.
    pub compute_start: Duration,
    /// Wall time the part spent in the compute phase.
    pub compute: Duration,
    /// When this part's inbox-build task started, offset from run start.
    pub inbox_start: Duration,
    /// Wall time the part spent building the next step's inbox.
    pub inbox_build: Duration,
    /// This part's store-operation delta over the step (compute plus inbox
    /// build), when the store attributes counters per part
    /// ([`KvStore::part_metrics`](ripple_kv::KvStore::part_metrics));
    /// all-zero otherwise.
    pub store: StoreMetrics,
}

/// Aggregate work counters for one step — the same quantities
/// [`RunMetrics`](crate::RunMetrics) totals over the run, so summing the
/// steps of a run reproduces the run-level numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StepCounters {
    /// Compute invocations this step.
    pub invocations: u64,
    /// Messages sent this step (before combining).
    pub messages_sent: u64,
    /// Message pairs merged by the combiner while building the next inbox.
    pub messages_combined: u64,
    /// State-table reads.
    pub state_reads: u64,
    /// State-table writes.
    pub state_writes: u64,
    /// State-table deletes.
    pub state_deletes: u64,
    /// Component-state creations requested.
    pub creates: u64,
    /// Direct job output pairs emitted.
    pub direct_outputs: u64,
    /// Spill batches written to the transport table.
    pub spill_batches: u64,
}

impl StepCounters {
    pub(crate) fn from_part_counters(c: &PartCounters) -> Self {
        Self {
            invocations: c.invocations,
            messages_sent: c.messages_sent,
            messages_combined: c.messages_combined,
            state_reads: c.state_reads,
            state_writes: c.state_writes,
            state_deletes: c.state_deletes,
            creates: c.creates,
            direct_outputs: c.direct_outputs,
            spill_batches: c.spill_batches,
        }
    }
}

/// The profile of one synchronized step: per-part compute and inbox-build
/// wall times, barrier skew, per-step work counters, and the store's
/// operation/marshalling delta attributable to the step.
///
/// Per-step store deltas are taken back-to-back (each step's interval ends
/// where the next begins, and the first begins at the run's own baseline),
/// so over a run without recoveries they sum exactly to the run-level
/// [`RunMetrics::store`](crate::RunMetrics::store) delta.  Steps that are
/// rolled back by recovery are not re-emitted; their cost folds into the
/// successful re-execution's delta.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StepProfile {
    /// The step number (1-based, as observed by `compute`).
    pub step: u32,
    /// When the step's compute phase started, offset from run start.
    pub start: Duration,
    /// Controller wall time of the compute phase (dispatch to barrier).
    pub compute_wall: Duration,
    /// Controller wall time of the inbox-build phase.
    pub inbox_wall: Duration,
    /// Barrier skew: latest minus earliest part finish time of the compute
    /// phase — how long the fastest part waited at the barrier.
    pub barrier_skew: Duration,
    /// Components enabled for the *next* step.
    pub enabled_next: u64,
    /// Per-part timings.  Empty when the compute phase ran work-stealing
    /// (`run_anywhere`), where work has no per-part home.
    pub parts: Vec<PartStepProfile>,
    /// Work counters for this step.
    pub counters: StepCounters,
    /// The store's operation/marshalling delta over this step — the
    /// h-relation term of the BSP cost model.
    pub store: StoreMetrics,
}

impl StepProfile {
    /// The step's critical-path compute time: the slowest part, or the
    /// whole phase wall when per-part timings are unavailable.
    pub fn critical_compute(&self) -> Duration {
        self.parts
            .iter()
            .map(|p| p.compute)
            .max()
            .unwrap_or(self.compute_wall)
    }
}

/// The run-level profile of one unsynchronized worker: how its wall time
/// split between computing and waiting, and the shape of the batches it
/// drained (the queue-depth signal — a worker that always drains full
/// batches is saturated; one that mostly times out is idle).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct WorkerProfile {
    /// The part this worker served.
    pub part: u32,
    /// When this worker first went busy (its first batch arrived), as an
    /// offset from run start — the anchor for this worker's lane on the
    /// shared run timeline.  Zero if the worker never saw work.
    pub start: Duration,
    /// Wall time spent processing batches (decode through weight
    /// give-back, including compute and sends).
    pub busy: Duration,
    /// Wall time spent blocked on the queue (idle polls and the waits that
    /// preceded each first-of-batch message).
    pub idle: Duration,
    /// Batches drained.
    pub batches: u64,
    /// Envelopes consumed across all batches.
    pub envelopes: u64,
    /// Largest single batch drained (bounded by the engine's batch limit).
    pub max_batch: u64,
    /// Idle polls that returned no message.
    pub empty_polls: u64,
}

impl WorkerProfile {
    /// Fraction of observed wall time this worker was busy (0 when nothing
    /// was observed).
    pub fn utilization(&self) -> f64 {
        let total = self.busy.as_secs_f64() + self.idle.as_secs_f64();
        if total == 0.0 {
            0.0
        } else {
            self.busy.as_secs_f64() / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_counters_mirror_part_counters() {
        let c = PartCounters {
            invocations: 3,
            messages_sent: 5,
            creates: 2,
            direct_outputs: 7,
            ..Default::default()
        };
        let s = StepCounters::from_part_counters(&c);
        assert_eq!(s.invocations, 3);
        assert_eq!(s.messages_sent, 5);
        assert_eq!(s.creates, 2);
        assert_eq!(s.direct_outputs, 7);
    }

    #[test]
    fn critical_compute_prefers_part_maximum() {
        let mut p = StepProfile {
            compute_wall: Duration::from_millis(10),
            ..Default::default()
        };
        assert_eq!(p.critical_compute(), Duration::from_millis(10));
        p.parts = vec![
            PartStepProfile {
                part: 0,
                compute: Duration::from_millis(3),
                ..Default::default()
            },
            PartStepProfile {
                part: 1,
                compute: Duration::from_millis(8),
                ..Default::default()
            },
        ];
        assert_eq!(p.critical_compute(), Duration::from_millis(8));
    }

    #[test]
    fn utilization_is_busy_fraction() {
        let w = WorkerProfile {
            busy: Duration::from_millis(30),
            idle: Duration::from_millis(10),
            ..Default::default()
        };
        assert!((w.utilization() - 0.75).abs() < 1e-9);
        assert_eq!(WorkerProfile::default().utilization(), 0.0);
    }
}
