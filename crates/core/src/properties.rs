//! Declared job properties and the execution plan derived from them
//! (paper §II-A).

/// The nine job properties of §II-A that unlock execution optimizations.
///
/// `no-agg` and `no-client-sync` are *detected* by the engine (from the
/// job's aggregator list and aborter flag); the remaining seven must be
/// declared by the job through this struct.  Declaring a property the job
/// does not actually have is a contract violation; where cheap, the engine
/// checks at run time and fails with
/// [`EbspError::PropertyViolation`](crate::EbspError::PropertyViolation).
///
/// # Examples
///
/// ```
/// use ripple_core::JobProperties;
///
/// // A SUMMA-style pipelined job: single message streams, no continue
/// // signal beyond messaging, order-insensitive per step.
/// let props = JobProperties {
///     incremental: true,
///     deterministic: true,
///     ..JobProperties::default()
/// };
/// assert!(props.incremental);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobProperties {
    /// Collocated compute invocations must be ordered by key.
    pub needs_order: bool,
    /// The compute method always returns the negative continue signal.
    pub no_continue: bool,
    /// For a given destination key and step there is at most one message.
    pub one_msg: bool,
    /// The bandwidth of state access is much less than the bandwidth of
    /// messaging.
    pub rare_state: bool,
    /// Compute invocations for a given key need not be in step order.
    pub no_ss_order: bool,
    /// Messages for a component can be delivered in any order and grouping,
    /// with no regard for steps, provided per-(sender, receiver) order is
    /// preserved.
    pub incremental: bool,
    /// The compute function is deterministic.
    pub deterministic: bool,
}

impl JobProperties {
    /// Rejects contradictory declarations before a plan is derived.
    ///
    /// `needs_order` promises per-step key-ordered invocation — a notion
    /// that only exists under barriers — so combining it with a property
    /// whose entire point is to license barrier-free (`incremental`) or
    /// step-order-free (`no_ss_order`) execution is a contract the engine
    /// cannot honour either way.  Deriving a plan from such a declaration
    /// silently picks one side; failing typed at launch is honest.
    ///
    /// # Errors
    ///
    /// [`EbspError::ConfigUnsupported`](crate::EbspError::ConfigUnsupported)
    /// naming the contradictory pair.
    pub fn validate(&self) -> Result<(), crate::EbspError> {
        let contradiction = if self.needs_order && self.no_ss_order {
            Some(
                "needs_order promises per-step key-ordered invocation; no_ss_order waives step \
                  order for a key — the engine cannot honour both",
            )
        } else if self.needs_order && self.incremental {
            Some(
                "needs_order promises per-step key-ordered invocation; incremental licenses \
                  barrier-free delivery with no steps to order within",
            )
        } else {
            None
        };
        match contradiction {
            Some(reason) => Err(crate::EbspError::ConfigUnsupported {
                option: "properties",
                reason: reason.to_owned(),
            }),
            None => Ok(()),
        }
    }
}

/// Which engine executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Step-synchronized BSP execution with barriers.
    Synchronized,
    /// One dispatch to a queue set; no barriers; termination detection.
    Unsynchronized,
}

/// The optimizations the engine applies, derived from the job's properties
/// by the implication rules of §II-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPlan {
    /// Sort collocated invocations by key (`needs-order`); otherwise the
    /// engine skips sorting (*no-sort*).
    pub sort: bool,
    /// Collect multiple messages per (key, step) into a value list;
    /// `one-msg ∧ no-continue` lets the engine skip this (*no-collect*).
    pub collect: bool,
    /// Work-stealing is permitted (*run-anywhere*):
    /// `no-collect ∧ rare-state`.
    pub run_anywhere: bool,
    /// Whether execution uses barriers at all; *no-sync* applies when
    /// `(no-collect ∧ no-ss-order ∨ incremental) ∧ no-agg ∧ no-client-sync`.
    pub mode: ExecMode,
    /// Deterministic jobs can amortize checkpoints over several steps and
    /// replay; non-deterministic jobs checkpoint every barrier.
    pub fast_recovery: bool,
}

impl ExecutionPlan {
    /// Applies the implication rules to a job's declared properties plus
    /// the two detected ones.
    pub fn derive(props: &JobProperties, no_agg: bool, no_client_sync: bool) -> Self {
        let no_collect = props.one_msg && props.no_continue;
        let run_anywhere = no_collect && props.rare_state;
        let no_sync =
            ((no_collect && props.no_ss_order) || props.incremental) && no_agg && no_client_sync;
        ExecutionPlan {
            sort: props.needs_order,
            collect: !no_collect,
            run_anywhere,
            mode: if no_sync {
                ExecMode::Unsynchronized
            } else {
                ExecMode::Synchronized
            },
            fast_recovery: props.deterministic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> JobProperties {
        JobProperties::default()
    }

    #[test]
    fn default_plan_is_conservative() {
        let plan = ExecutionPlan::derive(&p(), true, true);
        assert!(!plan.sort);
        assert!(plan.collect);
        assert!(!plan.run_anywhere);
        assert_eq!(plan.mode, ExecMode::Synchronized);
        assert!(!plan.fast_recovery);
    }

    #[test]
    fn needs_order_implies_sort() {
        let props = JobProperties {
            needs_order: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&props, true, true).sort);
    }

    #[test]
    fn no_collect_requires_one_msg_and_no_continue() {
        let both = JobProperties {
            one_msg: true,
            no_continue: true,
            ..p()
        };
        assert!(!ExecutionPlan::derive(&both, true, true).collect);
        let only_one_msg = JobProperties {
            one_msg: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&only_one_msg, true, true).collect);
        let only_no_continue = JobProperties {
            no_continue: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&only_no_continue, true, true).collect);
    }

    #[test]
    fn run_anywhere_requires_no_collect_and_rare_state() {
        let full = JobProperties {
            one_msg: true,
            no_continue: true,
            rare_state: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&full, true, true).run_anywhere);
        let no_rare = JobProperties {
            one_msg: true,
            no_continue: true,
            ..p()
        };
        assert!(!ExecutionPlan::derive(&no_rare, true, true).run_anywhere);
        let rare_only = JobProperties {
            rare_state: true,
            ..p()
        };
        assert!(!ExecutionPlan::derive(&rare_only, true, true).run_anywhere);
    }

    #[test]
    fn no_sync_via_no_collect_and_no_ss_order() {
        let props = JobProperties {
            one_msg: true,
            no_continue: true,
            no_ss_order: true,
            ..p()
        };
        assert_eq!(
            ExecutionPlan::derive(&props, true, true).mode,
            ExecMode::Unsynchronized
        );
    }

    #[test]
    fn no_sync_via_incremental() {
        let props = JobProperties {
            incremental: true,
            ..p()
        };
        assert_eq!(
            ExecutionPlan::derive(&props, true, true).mode,
            ExecMode::Unsynchronized
        );
    }

    #[test]
    fn aggregators_or_aborter_force_synchronization() {
        let props = JobProperties {
            incremental: true,
            ..p()
        };
        assert_eq!(
            ExecutionPlan::derive(&props, false, true).mode,
            ExecMode::Synchronized,
            "aggregators involve step boundaries"
        );
        assert_eq!(
            ExecutionPlan::derive(&props, true, false).mode,
            ExecMode::Synchronized,
            "an aborter involves step boundaries"
        );
    }

    #[test]
    fn deterministic_enables_fast_recovery() {
        let props = JobProperties {
            deterministic: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&props, true, true).fast_recovery);
    }

    /// Builds the property combination with index `i` in `0..128`, one bit
    /// per declared property.
    fn combo(i: u32) -> JobProperties {
        JobProperties {
            needs_order: i & 1 != 0,
            no_continue: i & 2 != 0,
            one_msg: i & 4 != 0,
            rare_state: i & 8 != 0,
            no_ss_order: i & 16 != 0,
            incremental: i & 32 != 0,
            deterministic: i & 64 != 0,
        }
    }

    /// Checks every §II-A implication rule against one derived plan,
    /// recomputing each rule independently of `derive`'s internals.
    fn check_plan(props: &JobProperties, no_agg: bool, no_client_sync: bool) {
        let plan = ExecutionPlan::derive(props, no_agg, no_client_sync);
        let ctx = format!("{props:?} no_agg={no_agg} no_client_sync={no_client_sync}");

        // sort ⇔ needs-order.
        assert_eq!(plan.sort, props.needs_order, "sort rule: {ctx}");

        // no-collect ⇔ one-msg ∧ no-continue.
        let no_collect = props.one_msg && props.no_continue;
        assert_eq!(plan.collect, !no_collect, "collect rule: {ctx}");

        // run-anywhere ⇔ no-collect ∧ rare-state.
        assert_eq!(
            plan.run_anywhere,
            no_collect && props.rare_state,
            "run-anywhere rule: {ctx}"
        );

        // no-sync ⇔ (no-collect ∧ no-ss-order ∨ incremental) ∧ no-agg
        //           ∧ no-client-sync.
        let no_sync =
            ((no_collect && props.no_ss_order) || props.incremental) && no_agg && no_client_sync;
        assert_eq!(
            plan.mode,
            if no_sync {
                ExecMode::Unsynchronized
            } else {
                ExecMode::Synchronized
            },
            "no-sync rule: {ctx}"
        );

        // fast-recovery ⇔ deterministic.
        assert_eq!(
            plan.fast_recovery, props.deterministic,
            "fast-recovery rule: {ctx}"
        );
    }

    /// Satellite: the full truth table.  All 2^7 declared combinations ×
    /// the 2 × 2 detected properties = 512 rows, each checked against the
    /// implication rules restated independently above.
    #[test]
    fn derive_truth_table_is_exhaustive() {
        for i in 0..128 {
            let props = combo(i);
            for (no_agg, no_client_sync) in
                [(false, false), (false, true), (true, false), (true, true)]
            {
                check_plan(&props, no_agg, no_client_sync);
            }
        }
    }

    /// Monotonicity spot-check across the whole table: turning a detected
    /// property *off* can only remove `no-sync`, never grant it.
    #[test]
    fn detected_properties_only_restrict() {
        for i in 0..128 {
            let props = combo(i);
            let free = ExecutionPlan::derive(&props, true, true);
            for (no_agg, no_client_sync) in [(false, true), (true, false), (false, false)] {
                let plan = ExecutionPlan::derive(&props, no_agg, no_client_sync);
                assert_eq!(plan.mode, ExecMode::Synchronized, "restriction: {props:?}");
                // Everything except the mode is unaffected by detection.
                assert_eq!(plan.sort, free.sort);
                assert_eq!(plan.collect, free.collect);
                assert_eq!(plan.run_anywhere, free.run_anywhere);
                assert_eq!(plan.fast_recovery, free.fast_recovery);
            }
        }
    }

    #[test]
    fn validate_accepts_all_non_contradictory_combinations() {
        for i in 0..128 {
            let props = combo(i);
            let contradictory = props.needs_order && (props.no_ss_order || props.incremental);
            assert_eq!(
                props.validate().is_err(),
                contradictory,
                "validate disagrees with the contradiction rule: {props:?}"
            );
        }
    }

    #[test]
    fn validate_rejects_needs_order_with_no_ss_order() {
        let props = JobProperties {
            needs_order: true,
            no_ss_order: true,
            ..p()
        };
        match props.validate() {
            Err(crate::EbspError::ConfigUnsupported { option, reason }) => {
                assert_eq!(option, "properties");
                assert!(reason.contains("no_ss_order"), "reason: {reason}");
            }
            other => panic!("expected ConfigUnsupported, got {other:?}"),
        }
    }

    #[test]
    fn validate_rejects_needs_order_with_incremental() {
        let props = JobProperties {
            needs_order: true,
            incremental: true,
            ..p()
        };
        match props.validate() {
            Err(crate::EbspError::ConfigUnsupported { option, reason }) => {
                assert_eq!(option, "properties");
                assert!(reason.contains("incremental"), "reason: {reason}");
            }
            other => panic!("expected ConfigUnsupported, got {other:?}"),
        }
    }

    mod property_based {
        use super::*;
        use proptest::prelude::*;

        fn arb_props() -> impl Strategy<Value = JobProperties> {
            (0u32..128).prop_map(combo)
        }

        proptest! {
            /// Randomized restatement of the truth table — redundant with
            /// the exhaustive loop by construction, kept so the invariants
            /// survive if the property set ever outgrows 2^7 enumeration.
            #[test]
            fn derive_respects_every_rule(
                props in arb_props(),
                no_agg in any::<bool>(),
                no_client_sync in any::<bool>(),
            ) {
                check_plan(&props, no_agg, no_client_sync);
            }

            /// Declaring *more* properties never produces a strictly worse
            /// plan: flipping any single property on keeps each optimization
            /// that was already unlocked, except that the flipped property
            /// may change `sort`/`collect` semantics it directly controls.
            #[test]
            fn adding_rare_state_never_loses_optimizations(
                props in arb_props(),
                no_agg in any::<bool>(),
                no_client_sync in any::<bool>(),
            ) {
                let with = JobProperties { rare_state: true, ..props };
                let before = ExecutionPlan::derive(&props, no_agg, no_client_sync);
                let after = ExecutionPlan::derive(&with, no_agg, no_client_sync);
                prop_assert_eq!(after.sort, before.sort);
                prop_assert_eq!(after.collect, before.collect);
                prop_assert_eq!(after.fast_recovery, before.fast_recovery);
                prop_assert_eq!(after.mode, before.mode);
                prop_assert!(after.run_anywhere || !before.run_anywhere);
            }
        }
    }
}
