//! Declared job properties and the execution plan derived from them
//! (paper §II-A).

/// The nine job properties of §II-A that unlock execution optimizations.
///
/// `no-agg` and `no-client-sync` are *detected* by the engine (from the
/// job's aggregator list and aborter flag); the remaining seven must be
/// declared by the job through this struct.  Declaring a property the job
/// does not actually have is a contract violation; where cheap, the engine
/// checks at run time and fails with
/// [`EbspError::PropertyViolation`](crate::EbspError::PropertyViolation).
///
/// # Examples
///
/// ```
/// use ripple_core::JobProperties;
///
/// // A SUMMA-style pipelined job: single message streams, no continue
/// // signal beyond messaging, order-insensitive per step.
/// let props = JobProperties {
///     incremental: true,
///     deterministic: true,
///     ..JobProperties::default()
/// };
/// assert!(props.incremental);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobProperties {
    /// Collocated compute invocations must be ordered by key.
    pub needs_order: bool,
    /// The compute method always returns the negative continue signal.
    pub no_continue: bool,
    /// For a given destination key and step there is at most one message.
    pub one_msg: bool,
    /// The bandwidth of state access is much less than the bandwidth of
    /// messaging.
    pub rare_state: bool,
    /// Compute invocations for a given key need not be in step order.
    pub no_ss_order: bool,
    /// Messages for a component can be delivered in any order and grouping,
    /// with no regard for steps, provided per-(sender, receiver) order is
    /// preserved.
    pub incremental: bool,
    /// The compute function is deterministic.
    pub deterministic: bool,
}

/// Which engine executes the job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Step-synchronized BSP execution with barriers.
    Synchronized,
    /// One dispatch to a queue set; no barriers; termination detection.
    Unsynchronized,
}

/// The optimizations the engine applies, derived from the job's properties
/// by the implication rules of §II-A.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionPlan {
    /// Sort collocated invocations by key (`needs-order`); otherwise the
    /// engine skips sorting (*no-sort*).
    pub sort: bool,
    /// Collect multiple messages per (key, step) into a value list;
    /// `one-msg ∧ no-continue` lets the engine skip this (*no-collect*).
    pub collect: bool,
    /// Work-stealing is permitted (*run-anywhere*):
    /// `no-collect ∧ rare-state`.
    pub run_anywhere: bool,
    /// Whether execution uses barriers at all; *no-sync* applies when
    /// `(no-collect ∧ no-ss-order ∨ incremental) ∧ no-agg ∧ no-client-sync`.
    pub mode: ExecMode,
    /// Deterministic jobs can amortize checkpoints over several steps and
    /// replay; non-deterministic jobs checkpoint every barrier.
    pub fast_recovery: bool,
}

impl ExecutionPlan {
    /// Applies the implication rules to a job's declared properties plus
    /// the two detected ones.
    pub fn derive(props: &JobProperties, no_agg: bool, no_client_sync: bool) -> Self {
        let no_collect = props.one_msg && props.no_continue;
        let run_anywhere = no_collect && props.rare_state;
        let no_sync =
            ((no_collect && props.no_ss_order) || props.incremental) && no_agg && no_client_sync;
        ExecutionPlan {
            sort: props.needs_order,
            collect: !no_collect,
            run_anywhere,
            mode: if no_sync {
                ExecMode::Unsynchronized
            } else {
                ExecMode::Synchronized
            },
            fast_recovery: props.deterministic,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> JobProperties {
        JobProperties::default()
    }

    #[test]
    fn default_plan_is_conservative() {
        let plan = ExecutionPlan::derive(&p(), true, true);
        assert!(!plan.sort);
        assert!(plan.collect);
        assert!(!plan.run_anywhere);
        assert_eq!(plan.mode, ExecMode::Synchronized);
        assert!(!plan.fast_recovery);
    }

    #[test]
    fn needs_order_implies_sort() {
        let props = JobProperties {
            needs_order: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&props, true, true).sort);
    }

    #[test]
    fn no_collect_requires_one_msg_and_no_continue() {
        let both = JobProperties {
            one_msg: true,
            no_continue: true,
            ..p()
        };
        assert!(!ExecutionPlan::derive(&both, true, true).collect);
        let only_one_msg = JobProperties {
            one_msg: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&only_one_msg, true, true).collect);
        let only_no_continue = JobProperties {
            no_continue: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&only_no_continue, true, true).collect);
    }

    #[test]
    fn run_anywhere_requires_no_collect_and_rare_state() {
        let full = JobProperties {
            one_msg: true,
            no_continue: true,
            rare_state: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&full, true, true).run_anywhere);
        let no_rare = JobProperties {
            one_msg: true,
            no_continue: true,
            ..p()
        };
        assert!(!ExecutionPlan::derive(&no_rare, true, true).run_anywhere);
        let rare_only = JobProperties {
            rare_state: true,
            ..p()
        };
        assert!(!ExecutionPlan::derive(&rare_only, true, true).run_anywhere);
    }

    #[test]
    fn no_sync_via_no_collect_and_no_ss_order() {
        let props = JobProperties {
            one_msg: true,
            no_continue: true,
            no_ss_order: true,
            ..p()
        };
        assert_eq!(
            ExecutionPlan::derive(&props, true, true).mode,
            ExecMode::Unsynchronized
        );
    }

    #[test]
    fn no_sync_via_incremental() {
        let props = JobProperties {
            incremental: true,
            ..p()
        };
        assert_eq!(
            ExecutionPlan::derive(&props, true, true).mode,
            ExecMode::Unsynchronized
        );
    }

    #[test]
    fn aggregators_or_aborter_force_synchronization() {
        let props = JobProperties {
            incremental: true,
            ..p()
        };
        assert_eq!(
            ExecutionPlan::derive(&props, false, true).mode,
            ExecMode::Synchronized,
            "aggregators involve step boundaries"
        );
        assert_eq!(
            ExecutionPlan::derive(&props, true, false).mode,
            ExecMode::Synchronized,
            "an aborter involves step boundaries"
        );
    }

    #[test]
    fn deterministic_enables_fast_recovery() {
        let props = JobProperties {
            deterministic: true,
            ..p()
        };
        assert!(ExecutionPlan::derive(&props, true, true).fast_recovery);
    }
}
