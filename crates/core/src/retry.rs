//! Bounded retry of transient store faults.
//!
//! The store SPI distinguishes transient faults
//! ([`KvError::Transient`](ripple_kv::KvError)) from structural failures;
//! both engines wrap their per-part state operations in a [`RetryPolicy`]
//! so a flaky store op costs a short, bounded backoff instead of a full
//! part recovery.  Backoff delays are deterministic — exponential growth
//! plus SplitMix64 jitter keyed by `(seed, part, attempt)` — so chaos runs
//! reproduce exactly from their seeds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use ripple_kv::KvError;

use crate::RunObserver;

/// How the engines respond to transient store faults: up to
/// `max_attempts` tries per operation with exponentially growing,
/// deterministically jittered delays between them.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use ripple_core::RetryPolicy;
///
/// let policy = RetryPolicy::default().max_attempts(8);
/// // Deterministic: the same (attempt, salt) always yields the same delay.
/// assert_eq!(policy.delay_for(2, 7), policy.delay_for(2, 7));
/// assert!(policy.delay_for(1, 0) <= policy.delay_for(4, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    max_attempts: u32,
    base_delay: Duration,
    max_delay: Duration,
    jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 5,
            base_delay: Duration::from_micros(200),
            max_delay: Duration::from_millis(20),
            jitter_seed: 0x9e37_79b9_7f4a_7c15,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries: every transient fault surfaces
    /// immediately.
    pub fn none() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Total attempts per operation (first try included); clamped to at
    /// least 1.
    pub fn max_attempts(mut self, attempts: u32) -> Self {
        self.max_attempts = attempts.max(1);
        self
    }

    /// Delay before the second attempt; later attempts double it.
    pub fn base_delay(mut self, delay: Duration) -> Self {
        self.base_delay = delay;
        self
    }

    /// Upper bound on any single backoff delay.
    pub fn max_delay(mut self, delay: Duration) -> Self {
        self.max_delay = delay;
        self
    }

    /// Seed for the deterministic jitter stream.
    pub fn jitter_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The configured attempt bound.
    pub fn attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The backoff before retrying after failed attempt number `attempt`
    /// (1-based): `base * 2^(attempt-1)` capped at `max_delay`, scaled by
    /// a deterministic jitter factor in `[0.5, 1.5)` drawn from
    /// `(jitter_seed, salt, attempt)`.
    pub fn delay_for(&self, attempt: u32, salt: u64) -> Duration {
        let doublings = attempt.saturating_sub(1).min(20);
        let exp = self
            .base_delay
            .saturating_mul(1u32 << doublings)
            .min(self.max_delay);
        let mut z = self
            .jitter_seed
            .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
            .wrapping_add(u64::from(attempt).wrapping_mul(0xbf58_476d_1ce4_e5b9));
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        let unit = (z >> 11) as f64 / (1u64 << 53) as f64;
        exp.mul_f64(0.5 + unit)
    }
}

/// Shared per-run retry state: the policy, the observer to notify, and the
/// run-wide retry counter the engines fold into
/// [`RunMetrics::retries`](crate::RunMetrics).
pub(crate) struct FaultRetry {
    pub(crate) policy: RetryPolicy,
    pub(crate) observer: Option<Arc<dyn RunObserver>>,
    retries: AtomicU64,
}

impl FaultRetry {
    pub(crate) fn new(policy: RetryPolicy, observer: Option<Arc<dyn RunObserver>>) -> Self {
        Self {
            policy,
            observer,
            retries: AtomicU64::new(0),
        }
    }

    pub(crate) fn count(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }
}

/// Runs `op`, retrying transient [`KvError`]s per the policy.  Permanent
/// errors and exhausted budgets surface unchanged.
pub(crate) fn kv_with_retry<T>(
    retry: Option<&FaultRetry>,
    part: u32,
    mut op: impl FnMut() -> Result<T, KvError>,
) -> Result<T, KvError> {
    let Some(retry) = retry else { return op() };
    let mut attempt = 1u32;
    loop {
        match op() {
            Ok(value) => return Ok(value),
            Err(e) if e.is_transient() && attempt < retry.policy.max_attempts => {
                if let Some(observer) = &retry.observer {
                    observer.on_fault_injected(part, &e.to_string());
                    observer.on_retry(part, attempt);
                }
                retry.retries.fetch_add(1, Ordering::Relaxed);
                std::thread::sleep(retry.policy.delay_for(attempt, u64::from(part)));
                attempt += 1;
            }
            Err(e) => {
                if let (Some(observer), true) = (&retry.observer, e.is_transient()) {
                    observer.on_fault_injected(part, &e.to_string());
                }
                return Err(e);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    #[test]
    fn delays_grow_and_cap() {
        let policy = RetryPolicy::default()
            .base_delay(Duration::from_micros(100))
            .max_delay(Duration::from_micros(800))
            .jitter_seed(9);
        // Jitter is within [0.5, 1.5), so attempt 1 stays under 150µs and
        // any attempt stays under 1.5 * cap.
        assert!(policy.delay_for(1, 0) < Duration::from_micros(150));
        assert!(policy.delay_for(30, 0) < Duration::from_micros(1200));
    }

    #[test]
    fn retries_transients_until_success() {
        let fails = Mutex::new(3u32);
        let retry = FaultRetry::new(
            RetryPolicy::default().base_delay(Duration::from_micros(1)),
            None,
        );
        let out = kv_with_retry(Some(&retry), 0, || {
            let mut left = fails.lock().unwrap();
            if *left > 0 {
                *left -= 1;
                Err(KvError::Transient {
                    op: "get",
                    part: 0,
                    detail: "flaky".into(),
                })
            } else {
                Ok(42)
            }
        });
        assert_eq!(out, Ok(42));
        assert_eq!(retry.count(), 3);
    }

    #[test]
    fn exhausted_budget_surfaces_the_transient() {
        let retry = FaultRetry::new(RetryPolicy::none(), None);
        let out: Result<(), _> = kv_with_retry(Some(&retry), 1, || {
            Err(KvError::Transient {
                op: "put",
                part: 1,
                detail: "always".into(),
            })
        });
        assert!(matches!(out, Err(KvError::Transient { .. })));
        assert_eq!(retry.count(), 0);
    }

    #[test]
    fn permanent_errors_are_not_retried() {
        let calls = Mutex::new(0u32);
        let retry = FaultRetry::new(RetryPolicy::default(), None);
        let out: Result<(), _> = kv_with_retry(Some(&retry), 2, || {
            *calls.lock().unwrap() += 1;
            Err(KvError::PartFailed { part: 2 })
        });
        assert_eq!(out, Err(KvError::PartFailed { part: 2 }));
        assert_eq!(*calls.lock().unwrap(), 1);
        assert_eq!(retry.count(), 0);
    }
}
