use std::hash::Hash;
use std::sync::Arc;

use ripple_wire::Wire;

use crate::{
    AggValue, Aggregate, AggregateSnapshot, ComputeContext, Exporter, JobProperties, Loader,
};

/// The per-table exporters a job attaches to its final state (`getWriters`).
pub type StateExporters<J> = Vec<(usize, Arc<dyn Exporter<<J as Job>::Key, <J as Job>::State>>)>;

/// A K/V EBSP job: the central application programming concept (paper §II,
/// Listings 1–3 folded into one idiomatic Rust trait).
///
/// A job is *mobile code*: the engine distributes it (via `Arc`) and
/// invokes [`Job::compute`] near each component's data.
///
/// The paper's `Job`, `Compute` and `ComputeContext` interfaces map as:
///
/// | Paper                        | Here                                       |
/// |------------------------------|--------------------------------------------|
/// | `getStateTableNames`         | [`Job::state_tables`]                      |
/// | `getReferenceTable`          | [`Job::reference_table`]                   |
/// | `getCompute` / `compute`     | [`Job::compute`]                           |
/// | `combine2msgs`               | [`Job::combine_messages`]                  |
/// | `combine2states`             | [`Job::combine_states`]                    |
/// | `getAggregators` + `getComputeAggregate` | [`Job::aggregators`]          |
/// | broadcast table              | [`Job::broadcast_table`]                   |
/// | `getLoaders`                 | [`Job::loaders`]                           |
/// | direct output                | [`Job::direct_output`]                     |
/// | aborter                      | [`Job::has_aborter`] / [`Job::aborter`]    |
/// | declared properties (§II-A)  | [`Job::properties`]                        |
pub trait Job: Send + Sync + Sized + 'static {
    /// Component identifier.  Components are identified by a key.
    type Key: Wire + Eq + Hash + Ord;
    /// Per-component local state held in the state tables.
    type State: Wire;
    /// The message type flowing between components.
    type Message: Wire;
    /// Key type of direct job output.
    type OutKey: Wire;
    /// Value type of direct job output.
    type OutValue: Wire;

    /// Names of the job's state tables, in `tab` index order.  The engine
    /// requires at least one and creates any that do not already exist,
    /// co-partitioned with the reference table.
    fn state_tables(&self) -> Vec<String>;

    /// The table whose partitioning governs component placement; defaults
    /// to the first state table.
    fn reference_table(&self) -> String {
        self.state_tables().first().cloned().unwrap_or_default()
    }

    /// Name of the ubiquitous table holding immutable broadcast data, if
    /// the job uses one.
    fn broadcast_table(&self) -> Option<String> {
        None
    }

    /// One component execution: consume the input messages and previous
    /// state from `ctx`, write new state and outgoing messages into it, and
    /// return the continue signal — `Ok(true)` to stay enabled next step.
    ///
    /// (The paper's `compute` returns a bare boolean; the `Result` wrapper
    /// is the idiomatic Rust rendering of state-access failures.)
    ///
    /// # Errors
    ///
    /// Propagate [`EbspError`](crate::EbspError)s from context operations;
    /// the engine treats a part failure as recoverable when checkpointing
    /// is on.
    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, crate::EbspError>;

    /// Pairwise message combiner: return `Some(combined)` to replace `a`
    /// and `b` with one message, or `None` to keep both (the default: no
    /// combining).  May be invoked at arbitrary times and places.
    fn combine_messages(
        &self,
        key: &Self::Key,
        a: &Self::Message,
        b: &Self::Message,
    ) -> Option<Self::Message> {
        let _ = (key, a, b);
        None
    }

    /// Merges conflicting component states when two creations (or a
    /// creation and an existing entry) collide; the default keeps the
    /// later one.
    fn combine_states(&self, key: &Self::Key, a: Self::State, b: Self::State) -> Self::State {
        let _ = (key, a);
        b
    }

    /// The job's individual aggregators: (name, technique) pairs.
    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        Vec::new()
    }

    /// Whether the job supplies an aborter.  Jobs overriding
    /// [`Job::aborter`] must also override this to return `true`; the
    /// engine uses it to detect the `no-client-sync` property.
    fn has_aborter(&self) -> bool {
        false
    }

    /// Invoked between steps (with the just-merged aggregator results);
    /// returning `true` stops execution immediately.
    fn aborter(&self, aggregates: &AggregateSnapshot, next_step: u32) -> bool {
        let _ = (aggregates, next_step);
        false
    }

    /// Loaders producing the job's initial condition: initial component
    /// states, initial messages, additionally enabled components, and
    /// initial aggregator input.
    fn loaders(&self) -> Vec<Box<dyn Loader<Self>>> {
        Vec::new()
    }

    /// Where direct job output goes, if the job produces any.
    fn direct_output(&self) -> Option<Arc<dyn Exporter<Self::OutKey, Self::OutValue>>> {
        None
    }

    /// Exporters for final state-table contents (the paper's `getWriters`):
    /// pairs of (state table index, exporter).  After the run completes,
    /// the engine enumerates each named table and hands every (key, state)
    /// pair to its exporter.
    fn state_exporters(&self) -> StateExporters<Self> {
        Vec::new()
    }

    /// The job's declared execution properties (§II-A).
    fn properties(&self) -> JobProperties {
        JobProperties::default()
    }

    /// Initial aggregator results visible in step 1 (before any barrier).
    /// Most jobs leave this as the identities.
    fn initial_aggregates(&self) -> Vec<(String, AggValue)> {
        Vec::new()
    }
}
