//! Distributed termination detection for unsynchronized execution.
//!
//! The paper detects distributed termination "essentially by Huang's
//! algorithm" [Huang 1989].  This is Huang's weight-throwing scheme with
//! integer weights and minting: instead of splitting a fixed rational
//! weight (which can exhaust), the controller *mints* fresh atoms of weight
//! whenever a sender needs them, growing the outstanding total.  The
//! invariant is identical to Huang's:
//!
//! > every message in flight, and every busy worker, holds at least one
//! > un-returned atom; therefore `returned == total` implies global
//! > quiescence.
//!
//! Protocol obligations for workers:
//!
//! 1. call [`WeightThrow::mint`] for each message **before** sending it and
//!    attach the minted weight to the message;
//! 2. accumulate the weights of consumed messages and call
//!    [`WeightThrow::give_back`] only **after** all processing of those
//!    messages — including the mint+send of any resulting messages — is
//!    done.
//!
//! Under those rules, [`WeightThrow::quiescent`] never reports `true` while
//! work remains (see the property test below), and always eventually
//! reports `true` once the system drains.
//!
//! The detector also carries the wakeup channel for whoever watches it:
//! [`WeightThrow::wait_until`] sleeps on a condition variable that
//! [`WeightThrow::give_back`] signals when the outstanding weight drains
//! (and that [`WeightThrow::notify`] signals for out-of-band events such
//! as a recorded failure), so a watcher needs no polling loop — its only
//! timed wait is the caller's deadline.

// Under `--cfg loom` the synchronization primitives come from the loom
// model-checking harness so `tests/loom_termination.rs` can explore
// interleavings of mint / give_back / wait_until; the production build uses
// std directly.
#[cfg(loom)]
use loom::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::PoisonError;
#[cfg(not(loom))]
use std::sync::{Condvar, Mutex};
use std::time::Instant;

/// Huang-style weight-throwing termination detector with integer weights.
#[derive(Debug, Default)]
pub struct WeightThrow {
    total: AtomicU64,
    returned: AtomicU64,
    /// Pairs with `wake`: waiters check their predicate while holding this
    /// lock and notifiers acquire it before signalling, so a quiescence or
    /// failure transition cannot slip between a predicate check and the
    /// sleep that follows it.
    gate: Mutex<()>,
    wake: Condvar,
}

impl WeightThrow {
    /// Creates a detector with no outstanding weight (trivially quiescent
    /// until something is minted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints `n` atoms of weight to attach to outgoing messages.  Must be
    /// called *before* the messages become visible to receivers.
    pub fn mint(&self, n: u64) -> u64 {
        self.total.fetch_add(n, Ordering::AcqRel);
        n
    }

    /// Returns `n` consumed atoms to the controller.  Must be called only
    /// after all work caused by the carrying messages (including sends) is
    /// complete.  Wakes any [`WeightThrow::wait_until`] sleeper when this
    /// return drains the outstanding weight.
    pub fn give_back(&self, n: u64) {
        self.returned.fetch_add(n, Ordering::AcqRel);
        if self.quiescent() {
            self.notify();
        }
    }

    /// Wakes every thread sleeping in [`WeightThrow::wait_until`] so it
    /// re-checks its predicate — for conditions the detector cannot see
    /// itself, such as a failure recorded elsewhere.
    pub fn notify(&self) {
        // Acquire-and-release the gate so a waiter that has checked its
        // predicate but not yet slept cannot miss this signal.
        drop(self.gate.lock().unwrap_or_else(PoisonError::into_inner));
        self.wake.notify_all();
    }

    /// Blocks until `condition()` holds or `deadline` passes, waking on
    /// [`WeightThrow::give_back`]-driven quiescence and on
    /// [`WeightThrow::notify`]; returns whether the condition held.
    ///
    /// The predicate is evaluated under the detector's internal lock, so
    /// any notification sent after a `false` evaluation is guaranteed to
    /// wake the sleep that follows it.
    pub fn wait_until(&self, deadline: Instant, condition: &dyn Fn() -> bool) -> bool {
        let mut guard = self.gate.lock().unwrap_or_else(PoisonError::into_inner);
        loop {
            if condition() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return condition();
            }
            guard = self
                .wake
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner)
                .0;
        }
    }

    /// Whether the system is globally quiescent: every minted atom has been
    /// returned.
    ///
    /// Reads `returned` before `total`; since both are monotone and
    /// `returned <= total` always holds, observing equality proves that at
    /// the instant `total` was read no atom was held by any message or
    /// worker.
    pub fn quiescent(&self) -> bool {
        let returned = self.returned.load(Ordering::Acquire);
        let total = self.total.load(Ordering::Acquire);
        returned == total
    }

    /// Total atoms minted so far (diagnostics).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_detector_is_quiescent() {
        assert!(WeightThrow::new().quiescent());
    }

    #[test]
    fn outstanding_weight_blocks_quiescence() {
        let d = WeightThrow::new();
        d.mint(1);
        assert!(!d.quiescent());
        d.give_back(1);
        assert!(d.quiescent());
    }

    #[test]
    fn interleaved_mint_and_return() {
        let d = WeightThrow::new();
        d.mint(3);
        d.give_back(2);
        assert!(!d.quiescent());
        d.mint(1);
        d.give_back(2);
        assert!(d.quiescent());
        assert_eq!(d.total(), 4);
    }

    #[test]
    fn wait_until_wakes_on_quiescence() {
        let d = Arc::new(WeightThrow::new());
        d.mint(1);
        let waiter = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                let held = d.wait_until(deadline, &|| d.quiescent());
                (held, std::time::Instant::now())
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        d.give_back(1);
        let (held, _) = waiter.join().unwrap();
        assert!(held, "waiter must observe the drained detector");
    }

    #[test]
    fn wait_until_respects_deadline() {
        let d = WeightThrow::new();
        d.mint(1);
        let started = std::time::Instant::now();
        let held = d.wait_until(started + std::time::Duration::from_millis(30), &|| {
            d.quiescent()
        });
        assert!(!held, "weight is still outstanding");
        assert!(started.elapsed() >= std::time::Duration::from_millis(30));
    }

    #[test]
    fn notify_wakes_a_foreign_condition() {
        let d = Arc::new(WeightThrow::new());
        d.mint(1); // never returned: only notify() can end the wait early
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let waiter = {
            let d = Arc::clone(&d);
            let flag = Arc::clone(&flag);
            std::thread::spawn(move || {
                let deadline = std::time::Instant::now() + std::time::Duration::from_secs(30);
                d.wait_until(deadline, &|| flag.load(Ordering::Acquire))
            })
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        flag.store(true, Ordering::Release);
        d.notify();
        assert!(waiter.join().unwrap());
    }

    /// A randomized message storm across threads: workers forward messages
    /// with decreasing TTL, following the protocol (mint before send,
    /// give back after).  The detector must never report quiescence while
    /// messages remain, and must report it after the storm drains.
    #[test]
    fn storm_never_terminates_early() {
        use crossbeam::channel::unbounded;
        let d = Arc::new(WeightThrow::new());
        let (tx, rx) = unbounded::<(u32, u64)>(); // (ttl, weight)
        let in_flight = Arc::new(AtomicU64::new(0));

        // Seed 50 messages with ttl up to 6.
        for i in 0..50u32 {
            let w = d.mint(1);
            in_flight.fetch_add(1, Ordering::SeqCst);
            tx.send((i % 7, w)).unwrap();
        }

        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = Arc::clone(&d);
            let tx = tx.clone();
            let rx = rx.clone();
            let in_flight = Arc::clone(&in_flight);
            handles.push(std::thread::spawn(move || {
                while let Ok((ttl, w)) = rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    // While this worker holds weight, quiescent() must be
                    // false.
                    assert!(!d.quiescent(), "early termination detected");
                    if ttl > 0 {
                        // Forward two children.
                        for _ in 0..2 {
                            let cw = d.mint(1);
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            tx.send((ttl - 1, cw)).unwrap();
                        }
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    d.give_back(w);
                }
            }));
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(in_flight.load(Ordering::SeqCst), 0);
        assert!(d.quiescent(), "must be quiescent after the storm drains");
    }
}
