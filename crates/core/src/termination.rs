//! Distributed termination detection for unsynchronized execution.
//!
//! The paper detects distributed termination "essentially by Huang's
//! algorithm" [Huang 1989].  This is Huang's weight-throwing scheme with
//! integer weights and minting: instead of splitting a fixed rational
//! weight (which can exhaust), the controller *mints* fresh atoms of weight
//! whenever a sender needs them, growing the outstanding total.  The
//! invariant is identical to Huang's:
//!
//! > every message in flight, and every busy worker, holds at least one
//! > un-returned atom; therefore `returned == total` implies global
//! > quiescence.
//!
//! Protocol obligations for workers:
//!
//! 1. call [`WeightThrow::mint`] for each message **before** sending it and
//!    attach the minted weight to the message;
//! 2. accumulate the weights of consumed messages and call
//!    [`WeightThrow::give_back`] only **after** all processing of those
//!    messages — including the mint+send of any resulting messages — is
//!    done.
//!
//! Under those rules, [`WeightThrow::quiescent`] never reports `true` while
//! work remains (see the property test below), and always eventually
//! reports `true` once the system drains.

use std::sync::atomic::{AtomicU64, Ordering};

/// Huang-style weight-throwing termination detector with integer weights.
#[derive(Debug, Default)]
pub struct WeightThrow {
    total: AtomicU64,
    returned: AtomicU64,
}

impl WeightThrow {
    /// Creates a detector with no outstanding weight (trivially quiescent
    /// until something is minted).
    pub fn new() -> Self {
        Self::default()
    }

    /// Mints `n` atoms of weight to attach to outgoing messages.  Must be
    /// called *before* the messages become visible to receivers.
    pub fn mint(&self, n: u64) -> u64 {
        self.total.fetch_add(n, Ordering::AcqRel);
        n
    }

    /// Returns `n` consumed atoms to the controller.  Must be called only
    /// after all work caused by the carrying messages (including sends) is
    /// complete.
    pub fn give_back(&self, n: u64) {
        self.returned.fetch_add(n, Ordering::AcqRel);
    }

    /// Whether the system is globally quiescent: every minted atom has been
    /// returned.
    ///
    /// Reads `returned` before `total`; since both are monotone and
    /// `returned <= total` always holds, observing equality proves that at
    /// the instant `total` was read no atom was held by any message or
    /// worker.
    pub fn quiescent(&self) -> bool {
        let returned = self.returned.load(Ordering::Acquire);
        let total = self.total.load(Ordering::Acquire);
        returned == total
    }

    /// Total atoms minted so far (diagnostics).
    pub fn total(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fresh_detector_is_quiescent() {
        assert!(WeightThrow::new().quiescent());
    }

    #[test]
    fn outstanding_weight_blocks_quiescence() {
        let d = WeightThrow::new();
        d.mint(1);
        assert!(!d.quiescent());
        d.give_back(1);
        assert!(d.quiescent());
    }

    #[test]
    fn interleaved_mint_and_return() {
        let d = WeightThrow::new();
        d.mint(3);
        d.give_back(2);
        assert!(!d.quiescent());
        d.mint(1);
        d.give_back(2);
        assert!(d.quiescent());
        assert_eq!(d.total(), 4);
    }

    /// A randomized message storm across threads: workers forward messages
    /// with decreasing TTL, following the protocol (mint before send,
    /// give back after).  The detector must never report quiescence while
    /// messages remain, and must report it after the storm drains.
    #[test]
    fn storm_never_terminates_early() {
        use crossbeam::channel::unbounded;
        let d = Arc::new(WeightThrow::new());
        let (tx, rx) = unbounded::<(u32, u64)>(); // (ttl, weight)
        let in_flight = Arc::new(AtomicU64::new(0));

        // Seed 50 messages with ttl up to 6.
        for i in 0..50u32 {
            let w = d.mint(1);
            in_flight.fetch_add(1, Ordering::SeqCst);
            tx.send((i % 7, w)).unwrap();
        }

        let mut handles = Vec::new();
        for _ in 0..4 {
            let d = Arc::clone(&d);
            let tx = tx.clone();
            let rx = rx.clone();
            let in_flight = Arc::clone(&in_flight);
            handles.push(std::thread::spawn(move || {
                while let Ok((ttl, w)) = rx.recv_timeout(std::time::Duration::from_millis(50)) {
                    // While this worker holds weight, quiescent() must be
                    // false.
                    assert!(!d.quiescent(), "early termination detected");
                    if ttl > 0 {
                        // Forward two children.
                        for _ in 0..2 {
                            let cw = d.mint(1);
                            in_flight.fetch_add(1, Ordering::SeqCst);
                            tx.send((ttl - 1, cw)).unwrap();
                        }
                    }
                    in_flight.fetch_sub(1, Ordering::SeqCst);
                    d.give_back(w);
                }
            }));
        }
        drop(tx);
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(in_flight.load(Ordering::SeqCst), 0);
        assert!(d.quiescent(), "must be quiescent after the storm drains");
    }
}
