//! The unsynchronized engine (*no-sync*, §II-A/§IV-A).
//!
//! "When synchronization is not needed, the job is instead executed in one
//! dispatch of EBSP implementation code to a queue set, where its instances
//! invoke components and exchange messages until there is no more work to
//! do" — with distributed termination detected essentially by Huang's
//! algorithm.
//!
//! One worker runs per part, collocated with the part's data.  Messages
//! are delivered as they arrive (batched opportunistically), preserving
//! per-(sender, receiver) order — the guarantee the `incremental` property
//! relies on.  The continue signal is meaningless without steps and is
//! ignored; a component is re-invoked whenever messages arrive for it.
//!
//! # Worker self-recovery
//!
//! There is no barrier to rendezvous recovery at, so each worker
//! supervises itself.  The weighted envelopes of the round in flight stay
//! in a *ledger* outside the panic boundary; when the worker's own part
//! fails (or its compute panics) and a heal hook is available, the worker
//! heals the part (promoting surviving replicas), re-mints fresh detector
//! weight for each ledgered envelope, re-enqueues them, gives the old held
//! weight back — mint-before-give-back, so the detector never observes a
//! spurious quiescence — and re-enters its loop on the same thread and
//! view.  Redelivery is at-least-once: a crash mid-round may have already
//! applied some state writes and forwarded some sends, so jobs recovered
//! this way must be idempotent (the `incremental` jobs this engine serves,
//! such as monotone shortest-paths relaxation, are).  When the store
//! cannot heal the part or the respawn budget is exhausted, the run fails
//! with the typed [`EbspError::Unrecoverable`].

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use parking_lot::Mutex;
use ripple_kv::{KvError, PartId};
use ripple_kv::{KvStore, PartView};
use ripple_mq::{ChannelQueueSet, QueueReceiver, QueueSet, TableQueueSet};
use ripple_wire::{from_wire, to_wire, ByteReader, ByteWriter, Decode, Encode, WireError};

use crate::context::Outbox;
use crate::engine::{dst_part, EngineLoadSink, JobEnv, LoadBuffer, LocalStateOps};
use crate::metrics::PartCounters;
use crate::retry::{kv_with_retry, FaultRetry};
use crate::{
    AggregateSnapshot, EbspError, Envelope, ExecMode, Job, Loader, QueueKind, RetryPolicy,
    RunMetrics, RunOutcome, WeightThrow, WorkerProfile,
};

/// Heals one failed part (e.g. by promoting surviving replicas); returns
/// how many tables were restored.  Type-erased so the engine does not
/// carry a `HealableStore` bound.
pub(crate) type HealFn = dyn Fn(PartId) -> Result<usize, KvError> + Send + Sync;

/// How many times one worker may heal its part and respawn before the
/// failure is declared unrecoverable.
const MAX_RESPAWNS: u32 = 3;

/// Options for an unsynchronized run.
pub(crate) struct NosyncOptions {
    pub(crate) quiescence_timeout: Duration,
    pub(crate) idle_timeout: Duration,
    pub(crate) batch_limit: usize,
    /// How transient store faults are retried before surfacing.
    pub(crate) retry: RetryPolicy,
    /// Retry/fault callbacks.
    pub(crate) observer: Option<Arc<dyn crate::RunObserver>>,
    /// Store-side part healing for worker self-recovery.
    pub(crate) heal: Option<Arc<HealFn>>,
    /// Collect per-worker [`WorkerProfile`]s and emit them through the
    /// observer as the run drains.
    pub(crate) profile: bool,
    /// Audit instrumentation called from every compute invocation
    /// ([`RunOptions::audit`](crate::RunOptions::audit)).
    pub(crate) probe: Option<Arc<dyn crate::AuditProbe>>,
}

impl Default for NosyncOptions {
    fn default() -> Self {
        Self {
            quiescence_timeout: Duration::from_secs(300),
            idle_timeout: Duration::from_millis(2),
            batch_limit: 256,
            retry: RetryPolicy::default(),
            observer: None,
            heal: None,
            profile: false,
            probe: None,
        }
    }
}

/// Traffic on the queue set: weighted envelopes, or the stop signal the
/// controller broadcasts once quiescence is detected.
enum NosyncMsg<J: Job> {
    Env { weight: u64, env: Envelope<J> },
    Stop,
}

impl<J: Job> Encode for NosyncMsg<J> {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            NosyncMsg::Env { weight, env } => {
                w.push(0);
                weight.encode(w);
                env.encode(w);
            }
            NosyncMsg::Stop => w.push(1),
        }
    }
}

impl<J: Job> Decode for NosyncMsg<J> {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(NosyncMsg::Env {
                weight: u64::decode(r)?,
                env: Envelope::decode(r)?,
            }),
            1 => Ok(NosyncMsg::Stop),
            tag => Err(WireError::InvalidTag {
                target: "NosyncMsg",
                tag,
            }),
        }
    }
}

pub(crate) fn run_nosync<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    loaders: Vec<Box<dyn Loader<J>>>,
    opts: &NosyncOptions,
    kind: QueueKind,
) -> Result<RunOutcome, EbspError> {
    if !env.registry.is_empty() {
        return Err(EbspError::PlanViolation {
            reason: "unsynchronized execution cannot serve individual aggregators".to_owned(),
        });
    }
    if env.job.has_aborter() {
        return Err(EbspError::PlanViolation {
            reason: "unsynchronized execution cannot serve an aborter".to_owned(),
        });
    }

    match kind {
        QueueKind::Channel => {
            let qs = ChannelQueueSet::create(&env.store, &env.reference, &queue_name())?;
            let out = drive(env, loaders, opts, &qs);
            let _ = qs.delete();
            out
        }
        QueueKind::Table => {
            let qs = TableQueueSet::create(&env.store, &env.reference, &queue_name())?;
            let out = drive(env, loaders, opts, &qs);
            let _ = qs.delete();
            out
        }
    }
}

fn queue_name() -> String {
    use std::sync::atomic::AtomicU64;
    static NONCE: AtomicU64 = AtomicU64::new(1);
    format!("__ebsp_nosync_{}", NONCE.fetch_add(1, Ordering::Relaxed))
}

fn drive<S: KvStore, J: Job, Q: QueueSet>(
    env: &JobEnv<S, J>,
    loaders: Vec<Box<dyn Loader<J>>>,
    opts: &NosyncOptions,
    qs: &Q,
) -> Result<RunOutcome, EbspError> {
    let started = Instant::now();
    let store_before = env.store.metrics();
    let parts = env.parts();
    let detector = Arc::new(WeightThrow::new());
    let failure: Arc<Mutex<Option<EbspError>>> = Arc::new(Mutex::new(None));
    let retry = Arc::new(FaultRetry::new(opts.retry, opts.observer.clone()));

    // ----- Initial condition ------------------------------------------------
    let mut buffer = LoadBuffer::new();
    {
        let mut sink = EngineLoadSink::<S, J> {
            tables: &env.tables,
            registry: &env.registry,
            buffer: &mut buffer,
            retry: Some(&retry),
        };
        for loader in loaders {
            loader.load(&mut sink)?;
        }
    }
    let mut seeded = 0u64;
    for envelope in buffer.envelopes {
        let dst = dst_part(envelope.key(), parts);
        let weight = detector.mint(1);
        qs.put(
            PartId(dst),
            to_wire(&NosyncMsg::<J>::Env {
                weight,
                env: envelope,
            }),
        )?;
        seeded += 1;
    }

    // ----- Quiescence watcher -----------------------------------------------
    // Event-driven: the watcher sleeps on the detector's condition
    // variable — woken by the `give_back` that drains the outstanding
    // weight, or by `notify()` when a worker records a failure — with the
    // quiescence deadline as its only timed wait.  On timeout it reports
    // how long it actually waited (measured from its own start, not the
    // run's, which also covers loading and seeding).
    let watcher = {
        let detector = Arc::clone(&detector);
        let failure = Arc::clone(&failure);
        let qs = qs.clone();
        let timeout = opts.quiescence_timeout;
        std::thread::Builder::new()
            .name("ripple-nosync-watch".to_owned())
            .spawn(move || -> Option<Duration> {
                let watch_started = Instant::now();
                let deadline = watch_started + timeout;
                let done = detector.wait_until(deadline, &|| {
                    detector.quiescent() || failure.lock().is_some()
                });
                for p in 0..qs.parts() {
                    let _ = qs.put(PartId(p), to_wire(&NosyncMsg::<J>::Stop));
                }
                (!done).then(|| watch_started.elapsed())
            })
            .expect("spawn nosync watcher")
    };

    // ----- Workers ------------------------------------------------------
    let worker_env = Arc::new(WorkerEnv {
        started,
        job: Arc::clone(&env.job),
        table_names: Arc::clone(&env.table_names),
        broadcast: env.broadcast_name.clone(),
        direct: env.direct.clone(),
        detector: Arc::clone(&detector),
        failure: Arc::clone(&failure),
        parts,
        idle: opts.idle_timeout,
        batch_limit: opts.batch_limit,
        prev_agg: AggregateSnapshot::default(),
        registry: env.registry.clone(),
        retry: Arc::clone(&retry),
        heal: opts.heal.clone(),
        recoveries: std::sync::atomic::AtomicU32::new(0),
        probe: opts.probe.clone(),
    });
    let results = {
        let worker_env = Arc::clone(&worker_env);
        let qs_inner = qs.clone();
        qs.run_workers(move |view, rx| worker_loop(&worker_env, &qs_inner, view, rx))?
    };
    let waited = watcher.join().expect("nosync watcher never panics");

    if let Some(e) = failure.lock().take() {
        return Err(e);
    }
    if let Some(waited) = waited {
        return Err(EbspError::QuiescenceTimeout { waited });
    }

    let mut metrics = RunMetrics::default();
    let mut worker_profiles: Vec<WorkerProfile> = Vec::new();
    for (c, profile) in results.into_iter().flatten() {
        metrics.absorb(&c);
        if opts.profile {
            if let Some(observer) = &opts.observer {
                observer.on_worker_profile(&profile);
            }
            worker_profiles.push(profile);
        }
    }
    metrics.steps = 0;
    metrics.barriers = 0;
    metrics.messages_sent += seeded;
    metrics.retries = retry.count();
    metrics.recoveries = worker_env.recoveries.load(Ordering::Relaxed);
    metrics.store = env.store.metrics() - store_before;
    metrics.elapsed = started.elapsed();
    Ok(RunOutcome {
        steps: 0,
        aborted: false,
        aggregates: AggregateSnapshot::default(),
        metrics,
        mode: ExecMode::Unsynchronized,
        profiles: None,
        worker_profiles: opts.profile.then_some(worker_profiles),
    })
}

struct WorkerEnv<J: Job> {
    /// When the run started — the shared timeline origin worker profiles
    /// anchor their first-activity offsets to.
    started: Instant,
    job: Arc<J>,
    table_names: Arc<Vec<String>>,
    broadcast: Option<String>,
    direct: Option<Arc<dyn crate::Exporter<J::OutKey, J::OutValue>>>,
    detector: Arc<WeightThrow>,
    failure: Arc<Mutex<Option<EbspError>>>,
    parts: u32,
    idle: Duration,
    batch_limit: usize,
    prev_agg: AggregateSnapshot,
    registry: crate::AggregatorRegistry,
    retry: Arc<FaultRetry>,
    heal: Option<Arc<HealFn>>,
    recoveries: std::sync::atomic::AtomicU32,
    probe: Option<Arc<dyn crate::AuditProbe>>,
}

/// Whether a worker failure is worth healing the part and respawning for:
/// the worker's *own* part failed underneath it, or its compute panicked.
fn recoverable_failure(err: &EbspError, own_part: u32) -> bool {
    matches!(
        err,
        EbspError::Kv(KvError::PartFailed { part }) if *part == own_part
    ) || matches!(err, EbspError::Kv(KvError::TaskPanicked { .. }))
}

/// One part's worker: runs [`worker_inner`] under a panic boundary and
/// supervises it — healing the part and redelivering the in-flight ledger
/// on recoverable failures, recording the failure otherwise.
fn worker_loop<J: Job, Q: QueueSet>(
    wenv: &WorkerEnv<J>,
    qs: &Q,
    view: &dyn PartView,
    rx: &mut dyn QueueReceiver,
) -> Option<(PartCounters, WorkerProfile)> {
    let own_part = view.part().0;
    let mut counters = PartCounters::default();
    let mut profile = WorkerProfile {
        part: own_part,
        ..WorkerProfile::default()
    };
    // The round in flight, outside the panic boundary so it survives a
    // crash and can be redelivered.  The per-component invocation counter
    // lives out here too: it feeds `ctx.step`, which must stay monotone
    // for a component across heal-respawns, not reset to 1.
    let ledger: Mutex<Vec<Bytes>> = Mutex::new(Vec::new());
    let mut invocation_seq: HashMap<J::Key, u32> = HashMap::new();
    let mut respawns = 0u32;
    loop {
        // Contain application panics so the watcher learns of the failure
        // immediately instead of waiting out the quiescence timeout.
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            worker_inner(
                wenv,
                qs,
                view,
                rx,
                &ledger,
                &mut counters,
                &mut invocation_seq,
                &mut profile,
            )
        }))
        .unwrap_or_else(|panic| {
            Err(EbspError::Kv(KvError::TaskPanicked {
                part: own_part,
                message: ripple_kv::panic_message(panic.as_ref()),
            }))
        });
        let error = match result {
            Ok(()) => return Some((counters, profile)),
            Err(e) => e,
        };

        // Self-recovery: heal the part, redeliver the ledger with fresh
        // weight, and re-enter the loop on this same thread and view.
        // Without a heal hook the failure surfaces as-is; with one, an
        // exhausted budget or failed heal is the typed unrecoverable end.
        let recoverable = recoverable_failure(&error, own_part);
        let heal = wenv
            .heal
            .as_ref()
            .filter(|_| recoverable && respawns < MAX_RESPAWNS);
        let healed = match heal {
            None => None,
            Some(heal) => heal(PartId(own_part)).ok(),
        };
        if healed.is_none() {
            let fatal = if recoverable && wenv.heal.is_some() {
                EbspError::Unrecoverable { part: own_part }
            } else {
                error
            };
            {
                let mut slot = wenv.failure.lock();
                if slot.is_none() {
                    *slot = Some(fatal);
                }
            }
            // Wake the watcher so it broadcasts Stop without waiting out
            // the quiescence deadline.
            wenv.detector.notify();
            return None;
        }
        respawns += 1;
        wenv.recoveries.fetch_add(1, Ordering::Relaxed);
        if redeliver_ledger::<J, Q>(wenv, qs, &ledger).is_err() {
            {
                let mut slot = wenv.failure.lock();
                if slot.is_none() {
                    *slot = Some(EbspError::Unrecoverable { part: own_part });
                }
            }
            wenv.detector.notify();
            return None;
        }
    }
}

/// Re-enqueues every envelope of the crashed round: fresh weight is minted
/// *before* the old held weight goes home, so the detector's outstanding
/// total never dips to zero mid-recovery (a spurious quiescence would stop
/// the run with work still pending).
fn redeliver_ledger<J: Job, Q: QueueSet>(
    wenv: &WorkerEnv<J>,
    qs: &Q,
    ledger: &Mutex<Vec<Bytes>>,
) -> Result<(), EbspError> {
    let held = std::mem::take(&mut *ledger.lock());
    let mut old_weight = 0u64;
    for bytes in held {
        match from_wire::<NosyncMsg<J>>(&bytes)? {
            NosyncMsg::Stop => {}
            NosyncMsg::Env { weight, env } => {
                old_weight += weight;
                let dst = dst_part(env.key(), wenv.parts);
                let fresh = wenv.detector.mint(1);
                qs.put(PartId(dst), to_wire(&NosyncMsg::Env { weight: fresh, env }))?;
            }
        }
    }
    wenv.detector.give_back(old_weight);
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn worker_inner<J: Job, Q: QueueSet>(
    wenv: &WorkerEnv<J>,
    qs: &Q,
    view: &dyn PartView,
    rx: &mut dyn QueueReceiver,
    ledger: &Mutex<Vec<Bytes>>,
    counters: &mut PartCounters,
    invocation_seq: &mut HashMap<J::Key, u32>,
    profile: &mut WorkerProfile,
) -> Result<(), EbspError> {
    let ops = LocalStateOps {
        view,
        tables: &wenv.table_names,
        broadcast: wenv.broadcast.as_deref(),
        retry: Some(&wenv.retry),
    };
    let part = view.part();

    'main: loop {
        let wait_started = Instant::now();
        let Some(first) = rx.recv_timeout(wenv.idle)? else {
            // Idle poll; all weight already returned.
            profile.idle += wait_started.elapsed();
            profile.empty_polls += 1;
            continue;
        };
        profile.idle += wait_started.elapsed();
        let busy_started = Instant::now();
        if profile.batches == 0 && profile.start.is_zero() {
            // First activity: anchor this worker's lane on the run
            // timeline (a heal-respawn re-enters with batches > 0 and
            // keeps the original anchor).
            profile.start = busy_started.duration_since(wenv.started);
        }
        let mut stop_after_batch = false;
        let mut batch: Vec<(u64, Envelope<J>)> = Vec::new();
        match from_wire::<NosyncMsg<J>>(&first)? {
            NosyncMsg::Stop => break 'main,
            NosyncMsg::Env { weight, env } => {
                ledger.lock().push(first);
                batch.push((weight, env));
            }
        }
        while batch.len() < wenv.batch_limit {
            match rx.recv_timeout(Duration::ZERO)? {
                None => break,
                Some(bytes) => match from_wire::<NosyncMsg<J>>(&bytes)? {
                    NosyncMsg::Stop => {
                        stop_after_batch = true;
                        break;
                    }
                    NosyncMsg::Env { weight, env } => {
                        ledger.lock().push(bytes);
                        batch.push((weight, env));
                    }
                },
            }
        }

        // Group per component, preserving arrival order within each.
        let batch_len = batch.len() as u64;
        let mut order: Vec<J::Key> = Vec::new();
        let mut grouped: HashMap<J::Key, (Vec<J::Message>, bool)> = HashMap::new();
        let mut hold = 0u64;
        for (weight, envelope) in batch {
            hold += weight;
            match envelope {
                Envelope::Message { to, msg } => {
                    let entry = grouped.entry(to.clone()).or_insert_with(|| {
                        order.push(to);
                        (Vec::new(), true)
                    });
                    entry.0.push(msg);
                }
                Envelope::Continue { key } => {
                    grouped.entry(key.clone()).or_insert_with(|| {
                        order.push(key);
                        (Vec::new(), true)
                    });
                }
                Envelope::Create { tab, key, state } => {
                    apply_create(wenv, view, tab, key, state)?;
                }
            }
        }

        let mut out = Outbox::<J>::new();
        for key in order {
            let (messages, _) = grouped.remove(&key).expect("grouped by the same keys");
            let seq = invocation_seq.entry(key.clone()).or_insert(0);
            *seq += 1;
            let step = *seq;
            out.metrics.invocations += 1;
            let routed = crate::key_to_routed(&key);
            if let Some(probe) = wenv.probe.as_deref() {
                probe.on_invocation(step, part.0, routed.body());
            }
            let mut ctx = crate::ComputeContext {
                step,
                mode: crate::ExecMode::Unsynchronized,
                part,
                key: key.clone(),
                routed,
                messages,
                ops: &ops,
                out: &mut out,
                registry: &wenv.registry,
                prev_agg: &wenv.prev_agg,
                direct: wenv.direct.as_deref(),
                probe: wenv.probe.as_deref(),
            };
            // The continue signal is step-scheduling machinery; without
            // steps it is ignored (components re-run when messages arrive).
            let _ = wenv.job.compute(&mut ctx)?;
            // Forward this invocation's output immediately (pipelining).
            for envelope in out.envelopes.drain(..) {
                let dst = dst_part(envelope.key(), wenv.parts);
                let weight = wenv.detector.mint(1);
                qs.put(
                    PartId(dst),
                    to_wire(&NosyncMsg::Env {
                        weight,
                        env: envelope,
                    }),
                )?;
            }
        }
        counters.merge(&out.metrics);
        // All sends of this round are visible; now the consumed weight may
        // go home, and the round is off the books.
        wenv.detector.give_back(hold);
        ledger.lock().clear();
        profile.busy += busy_started.elapsed();
        profile.batches += 1;
        profile.envelopes += batch_len;
        profile.max_batch = profile.max_batch.max(batch_len);
        if stop_after_batch {
            break 'main;
        }
    }
    Ok(())
}

fn apply_create<J: Job>(
    wenv: &WorkerEnv<J>,
    view: &dyn PartView,
    tab: u16,
    key: J::Key,
    state: J::State,
) -> Result<(), EbspError> {
    let idx = tab as usize;
    let name = wenv
        .table_names
        .get(idx)
        .ok_or(EbspError::StateTableIndex {
            index: idx,
            tables: wenv.table_names.len(),
        })?;
    let routed = crate::key_to_routed(&key);
    let part = view.part().0;
    let existing = kv_with_retry(Some(&wenv.retry), part, || view.get(name, &routed))?;
    let merged = match existing {
        Some(existing) => {
            let old: J::State = from_wire(&existing)?;
            wenv.job.combine_states(&key, old, state)
        }
        None => state,
    };
    let value = to_wire(&merged);
    kv_with_retry(Some(&wenv.retry), part, || {
        view.put(name, routed.clone(), value.clone()).map(|_| ())
    })?;
    Ok(())
}
