//! The synchronized (barrier-per-step) engine.
//!
//! Each step runs in two parallel-per-part phases with a controller join
//! (the BSP barrier) between them:
//!
//! 1. **compute** — every part drains its inbox, invokes its enabled
//!    components, and spills outgoing envelopes to the transport table;
//! 2. **inbox build** — every part drains its transport slice and
//!    constructs the next step's per-component message lists (ordered,
//!    combined, one-msg-checked per the plan) plus state creations.
//!
//! Aggregator partials merge at the barrier; the aborter runs between
//! steps; execution ends when no component is enabled.  With recovery
//! hooks, every part is checkpointed at configured barriers and a part
//! failure rolls the whole group back to the last checkpoint and replays —
//! the shard-transaction discipline of §IV-A at simulation fidelity.
//!
//! # Fast single-part recovery
//!
//! Whole-group rollback re-executes every part for every rewound step.
//! When the job is deterministic (`plan.fast_recovery`) and fast recovery
//! is enabled, the engine instead keeps a controller-side *replay log* —
//! the materialized inbox of every step since the last checkpoint, plus
//! the aggregate snapshot each step observed — and runs its temporary
//! tables replicated.  A single crashed part is then healed alone: its
//! surviving replicas are promoted (bringing the transport and inbox back
//! to their crash-instant contents), only its state tables rewind to the
//! checkpoint, and the part replays the logged steps by itself — past
//! steps for their state effects only, the failed step in full — while
//! every surviving part keeps its state, spills, and aggregator partials.
//! Determinism makes the replay produce byte-identical state and
//! messages, so the group never notices.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use ripple_kv::{KvError, KvStore, PartId, RoutedKey, StoreMetrics, Table};

use crate::engine::{
    build_inbox_at_part, compute_at_part, write_spills, EngineLoadSink, JobEnv, LoadBuffer,
    TableGuard,
};
use crate::metrics::PartCounters;
use crate::profile::{PartStepProfile, StepCounters, StepProfile};
use crate::retry::{kv_with_retry, FaultRetry};
use crate::{
    AggValue, AggregateSnapshot, EbspError, ExecMode, Job, Loader, RetryPolicy, RunMetrics,
    RunObserver, RunOutcome,
};

/// Options for a synchronized run.
pub(crate) struct SyncOptions {
    pub(crate) max_steps: u32,
    pub(crate) checkpoint_interval: Option<u32>,
    /// At or above this many aggregators, partials flow through auxiliary
    /// tables plus an enumeration round instead of returning to the
    /// controller (§IV-A).
    pub(crate) agg_table_threshold: usize,
    /// Optional per-step/checkpoint/recovery callbacks.
    pub(crate) observer: Option<std::sync::Arc<dyn crate::RunObserver>>,
    /// How transient store faults are retried before surfacing.
    pub(crate) retry: RetryPolicy,
    /// Replay a single failed part alone instead of rolling the whole
    /// group back, where the plan's determinism allows it.
    pub(crate) fast_recovery: bool,
    /// Collect a [`StepProfile`] per step and emit it through the observer
    /// as each barrier completes.
    pub(crate) profile: bool,
    /// Audit instrumentation called from every compute invocation and
    /// inbox build ([`RunOptions::audit`](crate::RunOptions::audit)).
    pub(crate) probe: Option<Arc<dyn crate::AuditProbe>>,
    /// Replace invocation ordering with a seeded permutation
    /// ([`RunOptions::shuffle_delivery`](crate::RunOptions::shuffle_delivery)).
    pub(crate) shuffle: Option<u64>,
    /// Permit gate bracketing every compute and inbox-build part-task
    /// ([`JobRunner::task_gate`](crate::JobRunner::task_gate)) — the
    /// worker-sharing hook for a resident multi-tenant job service.
    pub(crate) task_gate: Option<Arc<dyn crate::TaskGate>>,
}

/// A captured, type-erased shard checkpoint.
pub(crate) type AnyCheckpoint = Box<dyn Any + Send>;
/// Captures one part into a checkpoint.
pub(crate) type CheckpointFn = dyn Fn(PartId) -> Result<AnyCheckpoint, KvError> + Send + Sync;
/// Restores one captured part.
pub(crate) type RestoreFn = dyn Fn(&(dyn Any + Send)) -> Result<(), KvError> + Send + Sync;
/// Restores only the named tables of one captured part (fast recovery
/// rewinds state tables while the promoted replicas keep everything else).
pub(crate) type RestoreTablesFn =
    dyn Fn(&(dyn Any + Send), &[String]) -> Result<(), KvError> + Send + Sync;
/// Heals a failed part by promoting surviving replicas; returns how many
/// tables were restored from replicas.
pub(crate) type PromoteFn = dyn Fn(PartId) -> Result<usize, KvError> + Send + Sync;

/// Store-specific checkpoint/restore callbacks, type-erased so the engine
/// does not carry a `RecoverableStore` bound.
pub(crate) struct RecoveryHooks {
    pub(crate) checkpoint: Box<CheckpointFn>,
    pub(crate) restore: Box<RestoreFn>,
    pub(crate) restore_tables: Box<RestoreTablesFn>,
    pub(crate) promote: Box<PromoteFn>,
}

/// The journalled consistent cut a durable run resumes from: the barrier
/// at `step`, with the inbox for `step + 1` already built and durable.
pub(crate) struct ResumePoint {
    pub(crate) step: u32,
    pub(crate) enabled: u64,
    pub(crate) agg: AggregateSnapshot,
}

/// A barrier-epoch durability callback (`commit` / `compact`).
pub(crate) type EpochFn = Box<dyn Fn(u64) -> Result<(), EbspError> + Send + Sync>;
/// Persists the cut descriptor `(step, enabled, aggregates)` durably.
pub(crate) type JournalFn =
    Box<dyn Fn(u32, u64, &AggregateSnapshot) -> Result<(), EbspError> + Send + Sync>;
/// Removes the journal at a successful finish.
pub(crate) type ClearFn = Box<dyn Fn() -> Result<(), EbspError> + Send + Sync>;

/// Store-specific durability callbacks plus resume state, type-erased so
/// the engine does not carry a `DurableStore` bound.
///
/// At every checkpoint barrier the engine runs the commit protocol in
/// order: `commit` (barrier markers into every group shard log, made
/// stable), `journal` (persist the cut descriptor durably), `compact`
/// (fold committed log prefixes into snapshots — safe only now that the
/// journal points at the epoch).  `clear` removes the journal at a
/// successful finish, *before* the temporary tables are dropped, so a
/// crash between the two yields a fresh start rather than a resume into
/// missing tables.
pub(crate) struct DurableOpts {
    pub(crate) commit: EpochFn,
    pub(crate) journal: JournalFn,
    pub(crate) compact: EpochFn,
    pub(crate) clear: ClearFn,
    pub(crate) resume: Option<ResumePoint>,
    /// Restart-stable token for temporary table names: a resumed run must
    /// find the same transport/inbox tables the interrupted run wrote.
    pub(crate) nonce: String,
}

/// A consistent cut the run can rewind to.
struct CheckRecord {
    step: u32,
    enabled: u64,
    agg: AggregateSnapshot,
    parts: Vec<AnyCheckpoint>,
}

/// The controller-side inputs needed to replay one part through one step:
/// its recorded inbox entries per part, per step fed.
type ReplayLog = HashMap<u32, Vec<Vec<(RoutedKey, Bytes)>>>;

pub(crate) fn run_sync<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    loaders: Vec<Box<dyn Loader<J>>>,
    opts: &SyncOptions,
    recovery: Option<RecoveryHooks>,
    durable: Option<DurableOpts>,
) -> Result<RunOutcome, EbspError> {
    let started = std::time::Instant::now();
    let store_before = env.store.metrics();
    let parts = env.parts();
    let fault_retry = Arc::new(FaultRetry::new(opts.retry, opts.observer.clone()));
    // Fast recovery needs determinism (the plan), a checkpoint to rewind
    // state tables to, and pinned execution.
    let fast = opts.fast_recovery
        && env.plan.fast_recovery
        && recovery.is_some()
        && opts.checkpoint_interval.is_some()
        && !env.plan.run_anywhere;
    let nonce = match &durable {
        Some(d) => d.nonce.clone(),
        None => run_nonce().to_string(),
    };
    let resuming = durable.as_ref().is_some_and(|d| d.resume.is_some());
    // Temp-table DDL is retried like every other store operation: against
    // a networked store a transient fault here would otherwise kill the
    // run before the first step.
    let make_table = |name: &str| {
        kv_with_retry(Some(&fault_retry), 0, || {
            if resuming {
                // The interrupted run's durable temporaries carry the
                // messages the resume continues from; rewind has already
                // cut them to the journalled barrier.
                if let Ok(t) = env.store.lookup_table(name) {
                    return Ok(t);
                }
            }
            if fast {
                // Replicated, so a crashed part's transport/inbox slices
                // can be promoted back to their crash-instant contents.
                env.store.create_table_like_replicated(name, &env.reference)
            } else {
                env.store.create_table_like(name, &env.reference)
            }
        })
    };
    let transport_name = format!("__ebsp_xport_{nonce}");
    let inbox_name = format!("__ebsp_inbox_{nonce}");
    let transport = make_table(&transport_name)?;
    let _inbox = make_table(&inbox_name)?;
    let large_aggs = env.registry.names().count() >= opts.agg_table_threshold.max(1)
        && !env.registry.is_empty()
        && !env.plan.run_anywhere;
    let agg_tables = if large_aggs {
        let a1 = format!("__ebsp_agg1_{nonce}");
        let a2 = format!("__ebsp_agg2_{nonce}");
        let t1 = make_table(&a1)?;
        let t2 = make_table(&a2)?;
        Some(((a1, t1), (a2, t2)))
    } else {
        None
    };
    let mut guard_names = vec![transport_name.clone(), inbox_name.clone()];
    if let Some(((a1, _), (a2, _))) = &agg_tables {
        guard_names.push(a1.clone());
        guard_names.push(a2.clone());
    }
    // Durable runs keep their temporaries on failure — they *are* the
    // resume state — and clean up manually at a successful finish.
    let temp_names = guard_names.clone();
    let _guard = if durable.is_some() {
        None
    } else {
        Some(TableGuard {
            store: env.store.clone(),
            names: guard_names,
        })
    };

    let mut metrics = RunMetrics::default();

    // ----- Step profiling ---------------------------------------------------
    // Per-step store deltas telescope: each emitted step's interval starts
    // where the previous one ended (the first at the run's own baseline),
    // so the emitted deltas sum to the run-level delta — checkpoint
    // traffic between steps lands in the step that follows it, and a final
    // checkpoint after the last step stays run-level only.
    let profiling = opts.profile;
    let mut profiles: Vec<StepProfile> = Vec::new();
    // Snapshots at each emitted profile, so a rollback can rewind the
    // telescoping baseline in lockstep with `profiles`.
    let mut profile_snaps: Vec<(StoreMetrics, Vec<StoreMetrics>)> = Vec::new();
    let initial_part_base: Vec<StoreMetrics> = if profiling {
        env.store.part_metrics()
    } else {
        Vec::new()
    };
    let mut store_base = store_before;
    let mut part_base = initial_part_base.clone();

    let mut replay_log: ReplayLog = HashMap::new();
    let mut agg_history: HashMap<u32, AggregateSnapshot> = HashMap::new();
    let mut enabled: u64;
    let mut agg_snapshot: AggregateSnapshot;
    let mut step: u32;
    if let Some(rp) = durable.as_ref().and_then(|d| d.resume.as_ref()) {
        // ----- Resume from a journalled barrier -----------------------------
        // The store was rewound to the barrier at `rp.step`: state tables
        // hold that step's committed contents and the inbox for the next
        // step is already built and durable.  Loaders must not run again —
        // their effects are part of the rewound state.
        enabled = rp.enabled;
        agg_snapshot = rp.agg.clone();
        step = rp.step;
    } else {
        // ----- Initial condition --------------------------------------------
        let mut buffer = LoadBuffer::new();
        {
            let mut sink = EngineLoadSink::<S, J> {
                tables: &env.tables,
                registry: &env.registry,
                buffer: &mut buffer,
                retry: Some(&fault_retry),
            };
            for loader in loaders {
                loader.load(&mut sink)?;
            }
        }
        let mut initial_counters = PartCounters::default();
        write_spills(
            &transport,
            parts,
            0,
            u32::MAX, // the controller as a pseudo-source
            buffer.envelopes,
            &mut initial_counters,
            Some(&fault_retry),
        )?;
        metrics.absorb(&initial_counters);

        let mut agg_values = env.registry.identities();
        env.registry.merge(&mut agg_values, buffer.agg);
        for (name, value) in env.job.initial_aggregates() {
            env.registry.fold(&mut agg_values, &name, value)?;
        }
        agg_snapshot = AggregateSnapshot::new(agg_values);

        // ----- Inbox for step 1 ---------------------------------------------
        // Nothing to recover to yet if this fails.
        let (n, _, recorded, _) = run_inbox_phase(
            env,
            &transport_name,
            &inbox_name,
            &mut metrics,
            &fault_retry,
            fast,
            opts.probe.clone(),
            opts.task_gate.clone(),
        )?;
        enabled = n;
        if fast {
            replay_log.insert(1, recorded);
            agg_history.insert(1, agg_snapshot.clone());
        }
        step = 0;
    }

    let mut aborted = false;
    let mut checkpoint: Option<CheckRecord> = None;
    if let (Some(hooks), Some(_)) = (&recovery, opts.checkpoint_interval) {
        checkpoint = Some(take_checkpoint(hooks, parts, step, enabled, &agg_snapshot)?);
    }
    if let Some(d) = &durable {
        if d.resume.is_none() {
            // The step-0 commit gives the very first in-flight step a
            // barrier to rewind to; a resume already has one.
            commit_durable(d, step, enabled, &agg_snapshot, &mut metrics)?;
        }
    }

    // ----- Step loop ----------------------------------------------------
    loop {
        if enabled == 0 {
            break;
        }
        if step >= opts.max_steps {
            return Err(EbspError::StepLimitExceeded {
                limit: opts.max_steps,
            });
        }
        let next_step = step + 1;
        if env.job.has_aborter() && env.job.aborter(&agg_snapshot, next_step) {
            aborted = true;
            break;
        }

        // Compute phase: pinned to each component's part, or stealing
        // from a shared queue when the plan allows run-anywhere.
        let compute_begin = Instant::now();
        let mut compute_times: Vec<Option<(Instant, Instant)>> = Vec::new();
        let compute_result = if env.plan.run_anywhere {
            crate::engine::anywhere::run_compute_phase_anywhere(
                env,
                next_step,
                &agg_snapshot,
                &transport,
                &inbox_name,
                opts.probe.clone(),
            )
        } else {
            let per_part = run_compute_phase(
                env,
                next_step,
                &agg_snapshot,
                &transport,
                &inbox_name,
                agg_tables.as_ref().map(|((_, t), _)| t),
                &fault_retry,
                opts.probe.clone(),
                opts.shuffle,
                opts.task_gate.clone(),
            );
            let mut aggs = env.registry.identities();
            let mut counters = PartCounters::default();
            let mut failures: Vec<(u32, EbspError)> = Vec::new();
            for (p, (result, timing)) in per_part.into_iter().enumerate() {
                compute_times.push(timing);
                match result {
                    Ok((partial, c)) => {
                        env.registry.merge(&mut aggs, partial);
                        counters.merge(&c);
                    }
                    Err(e) => failures.push((p as u32, e)),
                }
            }
            if failures.is_empty() {
                Ok((aggs, counters))
            } else {
                // Fast path: exactly one part failed, it failed *as
                // itself* (no survivor tripped over it), and the replay
                // inputs are on hand.
                let sole_crash = failures.len() == 1
                    && matches!(
                        &failures[0].1,
                        EbspError::Kv(KvError::PartFailed { part }) if *part == failures[0].0
                    );
                let mut recovered = false;
                if fast && sole_crash {
                    if let (Some(hooks), Some(record)) = (&recovery, &checkpoint) {
                        if let Some((replayed_aggs, replayed_counters)) = fast_recover(
                            env,
                            hooks,
                            record,
                            failures[0].0,
                            next_step,
                            &replay_log,
                            &agg_history,
                            &transport,
                            &inbox_name,
                            agg_tables.as_ref().map(|((_, t), _)| t),
                            &fault_retry,
                            &mut metrics,
                            &opts.observer,
                            opts.shuffle,
                        ) {
                            env.registry.merge(&mut aggs, replayed_aggs);
                            counters.merge(&replayed_counters);
                            recovered = true;
                        }
                    }
                }
                if recovered {
                    Ok((aggs, counters))
                } else {
                    Err(failures.swap_remove(0).1)
                }
            }
        };
        let compute_wall = compute_begin.elapsed();
        let (step_aggs, mut step_counters) = match compute_result {
            Ok((aggs, counters)) => {
                metrics.absorb(&counters);
                let aggs = match &agg_tables {
                    None => aggs,
                    Some(((a1, _), (a2, t2))) => {
                        // The extra enumeration round of the large path.
                        let _ = t2.clear();
                        match run_agg_merge_phase(env, a1, a2, &fault_retry) {
                            Ok(merged) => merged,
                            Err(e) => {
                                recover_or_fail(
                                    env,
                                    &recovery,
                                    &checkpoint,
                                    e,
                                    next_step,
                                    &mut step,
                                    &mut enabled,
                                    &mut agg_snapshot,
                                    &mut metrics,
                                )?;
                                if profiling {
                                    rewind_profiles(
                                        step,
                                        &mut profiles,
                                        &mut profile_snaps,
                                        &mut store_base,
                                        &mut part_base,
                                        store_before,
                                        &initial_part_base,
                                    );
                                }
                                if let Some(observer) = &opts.observer {
                                    observer.on_recovery(step);
                                }
                                continue;
                            }
                        }
                    }
                };
                (aggs, counters)
            }
            Err(e) => {
                recover_or_fail(
                    env,
                    &recovery,
                    &checkpoint,
                    e,
                    next_step,
                    &mut step,
                    &mut enabled,
                    &mut agg_snapshot,
                    &mut metrics,
                )?;
                if profiling {
                    rewind_profiles(
                        step,
                        &mut profiles,
                        &mut profile_snaps,
                        &mut store_base,
                        &mut part_base,
                        store_before,
                        &initial_part_base,
                    );
                }
                if let Some(observer) = &opts.observer {
                    observer.on_recovery(step);
                }
                continue;
            }
        };

        // Barrier: merge aggregates.
        let mut merged = env.registry.identities();
        env.registry.merge(&mut merged, step_aggs);
        let next_snapshot = AggregateSnapshot::new(merged);

        // Inbox build phase.
        let inbox_begin = Instant::now();
        match run_inbox_phase(
            env,
            &transport_name,
            &inbox_name,
            &mut metrics,
            &fault_retry,
            fast,
            opts.probe.clone(),
            opts.task_gate.clone(),
        ) {
            Ok((n, inbox_counters, recorded, inbox_times)) => {
                let inbox_wall = inbox_begin.elapsed();
                enabled = n;
                agg_snapshot = next_snapshot;
                step = next_step;
                if fast {
                    replay_log.insert(step + 1, recorded);
                    agg_history.insert(step + 1, agg_snapshot.clone());
                }
                if let Some(observer) = &opts.observer {
                    observer.on_step(step, enabled, &agg_snapshot);
                }
                if profiling {
                    step_counters.merge(&inbox_counters);
                    let profile = build_step_profile(
                        &env.store,
                        started,
                        step,
                        enabled,
                        compute_begin,
                        compute_wall,
                        inbox_wall,
                        &compute_times,
                        &inbox_times,
                        &step_counters,
                        !env.plan.run_anywhere,
                        &mut store_base,
                        &mut part_base,
                    );
                    profile_snaps.push((store_base, part_base.clone()));
                    if let Some(observer) = &opts.observer {
                        observer.on_step_profile(&profile);
                    }
                    profiles.push(profile);
                }
            }
            Err(e) => {
                recover_or_fail(
                    env,
                    &recovery,
                    &checkpoint,
                    e,
                    next_step,
                    &mut step,
                    &mut enabled,
                    &mut agg_snapshot,
                    &mut metrics,
                )?;
                if profiling {
                    rewind_profiles(
                        step,
                        &mut profiles,
                        &mut profile_snaps,
                        &mut store_base,
                        &mut part_base,
                        store_before,
                        &initial_part_base,
                    );
                }
                if let Some(observer) = &opts.observer {
                    observer.on_recovery(step);
                }
                continue;
            }
        }

        if let (Some(hooks), Some(interval)) = (&recovery, opts.checkpoint_interval) {
            if step.is_multiple_of(interval.max(1)) {
                checkpoint = Some(take_checkpoint(hooks, parts, step, enabled, &agg_snapshot)?);
                if fast {
                    // Steps at or before the checkpoint can never be
                    // replayed again.
                    replay_log.retain(|s, _| *s > step);
                    agg_history.retain(|s, _| *s > step);
                }
                if let Some(d) = &durable {
                    commit_durable(d, step, enabled, &agg_snapshot, &mut metrics)?;
                }
                if let Some(observer) = &opts.observer {
                    observer.on_checkpoint(step);
                }
            }
        }
    }

    if let Some(d) = &durable {
        // Clear the journal *before* dropping the temporaries: a crash in
        // between leaves a fresh start (stale temporaries are swept by the
        // next durable run), never a resume pointing at missing tables.
        (d.clear)()?;
        for name in &temp_names {
            let _ = env.store.drop_table(name);
        }
    }

    metrics.steps = step;
    metrics.barriers = step;
    metrics.retries = fault_retry.count();
    metrics.store = env.store.metrics() - store_before;
    metrics.elapsed = started.elapsed();
    Ok(RunOutcome {
        steps: step,
        aborted,
        aggregates: agg_snapshot,
        metrics,
        mode: ExecMode::Synchronized,
        profiles: profiling.then_some(profiles),
        worker_profiles: None,
    })
}

/// Assembles one step's profile from the phase timings, charging each part
/// its store delta since the previous emitted step, and advances the
/// telescoping baselines.
#[allow(clippy::too_many_arguments)]
fn build_step_profile<S: KvStore>(
    store: &S,
    started: Instant,
    step: u32,
    enabled_next: u64,
    compute_begin: Instant,
    compute_wall: Duration,
    inbox_wall: Duration,
    compute_times: &[Option<(Instant, Instant)>],
    inbox_times: &[Option<(Instant, Instant)>],
    counters: &PartCounters,
    per_part_homes: bool,
    store_base: &mut StoreMetrics,
    part_base: &mut Vec<StoreMetrics>,
) -> StepProfile {
    let store_now = store.metrics();
    let part_now = store.part_metrics();
    let finishes: Vec<Instant> = compute_times.iter().flatten().map(|&(_, f)| f).collect();
    let barrier_skew = match (finishes.iter().min(), finishes.iter().max()) {
        (Some(first), Some(last)) => last.duration_since(*first),
        _ => Duration::ZERO,
    };
    let span = |timing: Option<(Instant, Instant)>| match timing {
        Some((from, to)) => (from.duration_since(started), to.duration_since(from)),
        None => (Duration::ZERO, Duration::ZERO),
    };
    let parts = if per_part_homes {
        (0..compute_times.len().max(inbox_times.len()))
            .map(|p| {
                let (compute_start, compute) = span(compute_times.get(p).copied().flatten());
                let (inbox_start, inbox_build) = span(inbox_times.get(p).copied().flatten());
                let now = part_now.get(p).copied().unwrap_or_default();
                let base = part_base.get(p).copied().unwrap_or_default();
                PartStepProfile {
                    part: p as u32,
                    compute_start,
                    compute,
                    inbox_start,
                    inbox_build,
                    store: now - base,
                }
            })
            .collect()
    } else {
        // Work-stealing compute has no per-part home to attribute to.
        Vec::new()
    };
    let profile = StepProfile {
        step,
        start: compute_begin.duration_since(started),
        compute_wall,
        inbox_wall,
        barrier_skew,
        enabled_next,
        parts,
        counters: StepCounters::from_part_counters(counters),
        store: store_now - *store_base,
    };
    *store_base = store_now;
    *part_base = part_now;
    profile
}

/// Discards profiles of steps a rollback undid and rewinds the telescoping
/// store baseline to the last surviving emission, so the rolled-back
/// work's store cost folds into the re-execution's deltas instead of
/// vanishing from the per-step sum.
fn rewind_profiles(
    step: u32,
    profiles: &mut Vec<StepProfile>,
    snaps: &mut Vec<(StoreMetrics, Vec<StoreMetrics>)>,
    store_base: &mut StoreMetrics,
    part_base: &mut Vec<StoreMetrics>,
    store_before: StoreMetrics,
    initial_part_base: &[StoreMetrics],
) {
    while profiles.last().is_some_and(|p| p.step > step) {
        profiles.pop();
        snaps.pop();
    }
    match snaps.last() {
        Some((whole, parts)) => {
            *store_base = *whole;
            *part_base = parts.clone();
        }
        None => {
            *store_base = store_before;
            *part_base = initial_part_base.to_vec();
        }
    }
}

/// Dispatches the compute task to every part and joins (the barrier);
/// returns each part's result — so the caller can recover a single failed
/// part without discarding the survivors' work — alongside the part task's
/// start/finish instants (absent when the dispatch itself failed).
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_compute_phase<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    step: u32,
    prev_agg: &AggregateSnapshot,
    transport: &S::Table,
    inbox_name: &str,
    agg_table: Option<&S::Table>,
    retry: &Arc<FaultRetry>,
    probe: Option<Arc<dyn crate::AuditProbe>>,
    shuffle: Option<u64>,
    gate: Option<Arc<dyn crate::TaskGate>>,
) -> Vec<(
    Result<(HashMap<String, AggValue>, PartCounters), EbspError>,
    Option<(Instant, Instant)>,
)> {
    let parts = env.parts();
    let agg_table = agg_table.cloned();
    let handles: Vec<_> = (0..parts)
        .map(|p| {
            let job = Arc::clone(&env.job);
            let plan = env.plan;
            let table_names = Arc::clone(&env.table_names);
            let broadcast = env.broadcast_name.clone();
            let registry = env.registry.clone();
            let prev = prev_agg.clone();
            let transport = transport.clone();
            let inbox = inbox_name.to_owned();
            let direct = env.direct.clone();
            let agg_table = agg_table.clone();
            let retry = Arc::clone(retry);
            let probe = probe.clone();
            let gate = gate.clone();
            env.store.run_at(&env.reference, PartId(p), move |view| {
                // Acquire before the timed span: per-part compute walls then
                // measure actual work, while scheduler queueing shows up in
                // the gate's own accounting (and as barrier skew).
                let _permit = gate.as_ref().map(crate::GatePermit::acquire);
                let begun = Instant::now();
                let result = compute_at_part::<S::Table, J>(
                    &job,
                    &plan,
                    view,
                    step,
                    &transport,
                    &inbox,
                    &table_names,
                    broadcast.as_deref(),
                    &registry,
                    &prev,
                    direct.as_deref(),
                    parts,
                    agg_table.as_ref(),
                    Some(&retry),
                    None,
                    false,
                    probe.as_deref(),
                    shuffle,
                );
                (begun, Instant::now(), result)
            })
        })
        .collect();

    handles
        .into_iter()
        .map(|handle| match handle.join() {
            Ok((begun, finished, result)) => (result, Some((begun, finished))),
            Err(e) => (Err(EbspError::Kv(e)), None),
        })
        .collect()
}

/// Dispatches the inbox-build task to every part and joins; returns the
/// total enabled component count for the next step, the phase's merged
/// work counters (also absorbed into `metrics`), the per-part task
/// timings, and — when `record` is set — every part's materialized inbox
/// entries, indexed by part.
#[allow(clippy::type_complexity, clippy::too_many_arguments)]
fn run_inbox_phase<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    transport_name: &str,
    inbox_name: &str,
    metrics: &mut RunMetrics,
    retry: &Arc<FaultRetry>,
    record: bool,
    probe: Option<Arc<dyn crate::AuditProbe>>,
    gate: Option<Arc<dyn crate::TaskGate>>,
) -> Result<
    (
        u64,
        PartCounters,
        Vec<Vec<(RoutedKey, Bytes)>>,
        Vec<Option<(Instant, Instant)>>,
    ),
    EbspError,
> {
    let handles: Vec<_> = (0..env.parts())
        .map(|p| {
            let job = Arc::clone(&env.job);
            let plan = env.plan;
            let table_names = Arc::clone(&env.table_names);
            let transport = transport_name.to_owned();
            let inbox = inbox_name.to_owned();
            let retry = Arc::clone(retry);
            let probe = probe.clone();
            let gate = gate.clone();
            env.store.run_at(&env.reference, PartId(p), move |view| {
                let _permit = gate.as_ref().map(crate::GatePermit::acquire);
                let begun = Instant::now();
                let result = build_inbox_at_part::<J>(
                    &job,
                    &plan,
                    view,
                    &transport,
                    &inbox,
                    &table_names,
                    Some(&retry),
                    record,
                    probe.as_deref(),
                );
                (begun, Instant::now(), result)
            })
        })
        .collect();

    let mut enabled = 0u64;
    let mut phase_counters = PartCounters::default();
    let mut recorded = Vec::with_capacity(handles.len());
    let mut timings = Vec::with_capacity(handles.len());
    let mut first_err: Option<EbspError> = None;
    for handle in handles {
        match handle.join() {
            Ok((begun, finished, Ok((n, counters, entries)))) => {
                enabled += n;
                phase_counters.merge(&counters);
                recorded.push(entries);
                timings.push(Some((begun, finished)));
            }
            Ok((_, _, Err(e))) => {
                recorded.push(Vec::new());
                timings.push(None);
                first_err = Some(first_err.unwrap_or(e));
            }
            Err(e) => {
                recorded.push(Vec::new());
                timings.push(None);
                first_err = Some(first_err.unwrap_or(EbspError::Kv(e)));
            }
        }
    }
    metrics.absorb(&phase_counters);
    match first_err {
        None => Ok((enabled, phase_counters, recorded, timings)),
        Some(e) => Err(e),
    }
}

/// The large-aggregator merge round: every part folds the partials routed
/// to it and records them in the second auxiliary table.
fn run_agg_merge_phase<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    agg1_name: &str,
    agg2_name: &str,
    retry: &Arc<FaultRetry>,
) -> Result<HashMap<String, AggValue>, EbspError> {
    let results = {
        let registry = env.registry.clone();
        let a1 = agg1_name.to_owned();
        let a2 = agg2_name.to_owned();
        let retry = Arc::clone(retry);
        env.store.run_at_all(&env.reference, move |view| {
            crate::engine::merge_aggregates_at_part(&registry, view, &a1, &a2, Some(&retry))
        })?
    };
    let mut merged = env.registry.identities();
    for part_result in results {
        for (name, value) in part_result? {
            // Each name routes to exactly one part, so this never
            // double-counts; fold is still the right merge.
            merged.insert(name, value);
        }
    }
    Ok(merged)
}

/// Runs the durable commit protocol for the barrier at `step`: markers,
/// journal, compaction — in that order, which is what makes the journalled
/// epoch always rewindable.
fn commit_durable(
    d: &DurableOpts,
    step: u32,
    enabled: u64,
    agg: &AggregateSnapshot,
    metrics: &mut RunMetrics,
) -> Result<(), EbspError> {
    let epoch = u64::from(step);
    (d.commit)(epoch)?;
    (d.journal)(step, enabled, agg)?;
    (d.compact)(epoch)?;
    metrics.durable_barriers += 1;
    Ok(())
}

fn take_checkpoint(
    hooks: &RecoveryHooks,
    parts: u32,
    step: u32,
    enabled: u64,
    agg: &AggregateSnapshot,
) -> Result<CheckRecord, EbspError> {
    let mut captured = Vec::with_capacity(parts as usize);
    for p in 0..parts {
        captured.push((hooks.checkpoint)(PartId(p))?);
    }
    Ok(CheckRecord {
        step,
        enabled,
        agg: agg.clone(),
        parts: captured,
    })
}

/// Restores and replays a single failed part from the last checkpoint
/// while every surviving part keeps its state.  Returns the replayed
/// part's aggregator partials and counters for the failed step, or `None`
/// if anything about the fast path is not satisfiable — the caller then
/// falls back to whole-group rollback, which overwrites any partial work
/// done here.
#[allow(clippy::too_many_arguments)]
fn fast_recover<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    hooks: &RecoveryHooks,
    record: &CheckRecord,
    part: u32,
    next_step: u32,
    replay_log: &ReplayLog,
    agg_history: &HashMap<u32, AggregateSnapshot>,
    transport: &S::Table,
    inbox_name: &str,
    agg_table: Option<&S::Table>,
    retry: &Arc<FaultRetry>,
    metrics: &mut RunMetrics,
    observer: &Option<Arc<dyn RunObserver>>,
    shuffle: Option<u64>,
) -> Option<(HashMap<String, AggValue>, PartCounters)> {
    let from = record.step;
    // Every replayed step needs its recorded inbox and the aggregate
    // snapshot its compute observed.
    for s in (from + 1)..=next_step {
        replay_log.get(&s)?.get(part as usize)?;
        agg_history.get(&s)?;
    }
    let captured = record.parts.get(part as usize)?;

    // Heal: promote surviving replicas (the replicated temporaries come
    // back at their crash-instant contents), then rewind only this part's
    // state tables to the checkpoint.
    (hooks.promote)(PartId(part)).ok()?;
    (hooks.restore_tables)(captured.as_ref(), &env.table_names).ok()?;

    // The promoted inbox replica may hold entries the failed compute was
    // mid-drain over; replay feeds from the controller-side log instead.
    {
        let inbox = inbox_name.to_owned();
        let handle = env.store.run_at(&env.reference, PartId(part), move |view| {
            view.drain(&inbox, &mut |_k, _v| ripple_kv::ScanControl::Continue)
        });
        handle.join().ok()?.ok()?;
    }

    let mut aggs = env.registry.identities();
    let mut counters = PartCounters::default();
    for s in (from + 1)..=next_step {
        let entries = replay_log.get(&s)?.get(part as usize)?.clone();
        let prev = agg_history.get(&s)?.clone();
        // Past steps replay purely for their state effects; the failed
        // step replays in full (its sends and partials never happened).
        let suppress = s < next_step;
        let job = Arc::clone(&env.job);
        let plan = env.plan;
        let table_names = Arc::clone(&env.table_names);
        let broadcast = env.broadcast_name.clone();
        let registry = env.registry.clone();
        let transport = transport.clone();
        let inbox = inbox_name.to_owned();
        let direct = env.direct.clone();
        let agg_table = agg_table.cloned();
        let retry = Arc::clone(retry);
        let parts = env.parts();
        let handle = env.store.run_at(&env.reference, PartId(part), move |view| {
            compute_at_part::<S::Table, J>(
                &job,
                &plan,
                view,
                s,
                &transport,
                &inbox,
                &table_names,
                broadcast.as_deref(),
                &registry,
                &prev,
                direct.as_deref(),
                parts,
                agg_table.as_ref(),
                Some(&retry),
                Some(entries),
                suppress,
                // Replay never re-fires audit probes (it would double-count
                // observations), but must keep the original invocation
                // order, so the shuffle seed carries over.
                None,
                shuffle,
            )
        });
        match handle.join() {
            Ok(Ok((partial, c))) => {
                env.registry.merge(&mut aggs, partial);
                counters.merge(&c);
            }
            _ => return None,
        }
    }

    let replayed = next_step - from;
    metrics.recoveries += 1;
    metrics.replayed_part_steps += u64::from(replayed);
    if let Some(observer) = observer {
        observer.on_fast_recovery(part, replayed);
    }
    Some((aggs, counters))
}

/// Rolls the whole group back to the last checkpoint if the failure is a
/// recoverable part failure; otherwise propagates.  `failed_step` is the
/// step whose phase failed — every part re-executes from the checkpoint
/// through it, which is what [`RunMetrics::replayed_part_steps`] records.
#[allow(clippy::too_many_arguments)]
fn recover_or_fail<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    recovery: &Option<RecoveryHooks>,
    checkpoint: &Option<CheckRecord>,
    error: EbspError,
    failed_step: u32,
    step: &mut u32,
    enabled: &mut u64,
    agg: &mut AggregateSnapshot,
    metrics: &mut RunMetrics,
) -> Result<(), EbspError> {
    let part = match &error {
        EbspError::Kv(KvError::PartFailed { part }) => *part,
        _ => return Err(error),
    };
    let (Some(hooks), Some(record)) = (recovery, checkpoint) else {
        return Err(EbspError::Unrecoverable { part });
    };
    for captured in &record.parts {
        (hooks.restore)(captured.as_ref())?;
    }
    *step = record.step;
    *enabled = record.enabled;
    *agg = record.agg.clone();
    metrics.recoveries += 1;
    metrics.replayed_part_steps +=
        u64::from(env.parts()) * u64::from(failed_step.saturating_sub(record.step));
    Ok(())
}

fn run_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(1);
    NONCE.fetch_add(1, Ordering::Relaxed)
}
