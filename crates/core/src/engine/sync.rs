//! The synchronized (barrier-per-step) engine.
//!
//! Each step runs in two parallel-per-part phases with a controller join
//! (the BSP barrier) between them:
//!
//! 1. **compute** — every part drains its inbox, invokes its enabled
//!    components, and spills outgoing envelopes to the transport table;
//! 2. **inbox build** — every part drains its transport slice and
//!    constructs the next step's per-component message lists (ordered,
//!    combined, one-msg-checked per the plan) plus state creations.
//!
//! Aggregator partials merge at the barrier; the aborter runs between
//! steps; execution ends when no component is enabled.  With recovery
//! hooks, every part is checkpointed at configured barriers and a part
//! failure rolls the whole group back to the last checkpoint and replays —
//! the shard-transaction discipline of §IV-A at simulation fidelity.

use std::any::Any;
use std::collections::HashMap;
use std::sync::Arc;

use ripple_kv::{KvError, KvStore, PartId, Table};

use crate::engine::{
    build_inbox_at_part, compute_at_part, write_spills, EngineLoadSink, JobEnv, LoadBuffer,
    TableGuard,
};
use crate::metrics::PartCounters;
use crate::{
    AggValue, AggregateSnapshot, EbspError, ExecMode, Job, Loader, RunMetrics, RunOutcome,
};

/// Options for a synchronized run.
pub(crate) struct SyncOptions {
    pub(crate) max_steps: u32,
    pub(crate) checkpoint_interval: Option<u32>,
    /// At or above this many aggregators, partials flow through auxiliary
    /// tables plus an enumeration round instead of returning to the
    /// controller (§IV-A).
    pub(crate) agg_table_threshold: usize,
    /// Optional per-step/checkpoint/recovery callbacks.
    pub(crate) observer: Option<std::sync::Arc<dyn crate::RunObserver>>,
}

/// A captured, type-erased shard checkpoint.
pub(crate) type AnyCheckpoint = Box<dyn Any + Send>;
/// Captures one part into a checkpoint.
pub(crate) type CheckpointFn = dyn Fn(PartId) -> Result<AnyCheckpoint, KvError> + Send + Sync;
/// Restores one captured part.
pub(crate) type RestoreFn = dyn Fn(&(dyn Any + Send)) -> Result<(), KvError> + Send + Sync;

/// Store-specific checkpoint/restore callbacks, type-erased so the engine
/// does not carry a `RecoverableStore` bound.
pub(crate) struct RecoveryHooks {
    pub(crate) checkpoint: Box<CheckpointFn>,
    pub(crate) restore: Box<RestoreFn>,
}

/// A consistent cut the run can rewind to.
struct CheckRecord {
    step: u32,
    enabled: u64,
    agg: AggregateSnapshot,
    parts: Vec<AnyCheckpoint>,
}

pub(crate) fn run_sync<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    loaders: Vec<Box<dyn Loader<J>>>,
    opts: &SyncOptions,
    recovery: Option<RecoveryHooks>,
) -> Result<RunOutcome, EbspError> {
    let started = std::time::Instant::now();
    let store_before = env.store.metrics();
    let parts = env.parts();
    let nonce = run_nonce();
    let transport_name = format!("__ebsp_xport_{nonce}");
    let inbox_name = format!("__ebsp_inbox_{nonce}");
    let transport = env.store.create_table_like(&transport_name, &env.reference)?;
    let _inbox = env.store.create_table_like(&inbox_name, &env.reference)?;
    let large_aggs = env.registry.names().count() >= opts.agg_table_threshold.max(1)
        && !env.registry.is_empty()
        && !env.plan.run_anywhere;
    let agg_tables = if large_aggs {
        let a1 = format!("__ebsp_agg1_{nonce}");
        let a2 = format!("__ebsp_agg2_{nonce}");
        let t1 = env.store.create_table_like(&a1, &env.reference)?;
        let t2 = env.store.create_table_like(&a2, &env.reference)?;
        Some(((a1, t1), (a2, t2)))
    } else {
        None
    };
    let mut guard_names = vec![transport_name.clone(), inbox_name.clone()];
    if let Some(((a1, _), (a2, _))) = &agg_tables {
        guard_names.push(a1.clone());
        guard_names.push(a2.clone());
    }
    let _guard = TableGuard {
        store: env.store.clone(),
        names: guard_names,
    };

    let mut metrics = RunMetrics::default();

    // ----- Initial condition ------------------------------------------------
    let mut buffer = LoadBuffer::new();
    {
        let mut sink = EngineLoadSink::<S, J> {
            tables: &env.tables,
            registry: &env.registry,
            buffer: &mut buffer,
        };
        for loader in loaders {
            loader.load(&mut sink)?;
        }
    }
    let mut initial_counters = PartCounters::default();
    write_spills(
        &transport,
        parts,
        0,
        u32::MAX, // the controller as a pseudo-source
        buffer.envelopes,
        &mut initial_counters,
    )?;
    metrics.absorb(&initial_counters);

    let mut agg_values = env.registry.identities();
    env.registry.merge(&mut agg_values, buffer.agg);
    for (name, value) in env.job.initial_aggregates() {
        env.registry.fold(&mut agg_values, &name, value)?;
    }
    let mut agg_snapshot = AggregateSnapshot::new(agg_values);

    // ----- Inbox for step 1 -------------------------------------------------
    // Nothing to recover to yet if this fails.
    let mut enabled = run_inbox_phase(env, &transport_name, &inbox_name, &mut metrics)?;

    let mut step: u32 = 0;
    let mut aborted = false;
    let mut checkpoint: Option<CheckRecord> = None;
    if let (Some(hooks), Some(_)) = (&recovery, opts.checkpoint_interval) {
        checkpoint = Some(take_checkpoint(hooks, parts, step, enabled, &agg_snapshot)?);
    }

    // ----- Step loop ----------------------------------------------------
    loop {
        if enabled == 0 {
            break;
        }
        if step >= opts.max_steps {
            return Err(EbspError::StepLimitExceeded {
                limit: opts.max_steps,
            });
        }
        let next_step = step + 1;
        if env.job.has_aborter() && env.job.aborter(&agg_snapshot, next_step) {
            aborted = true;
            break;
        }

        // Compute phase: pinned to each component's part, or stealing
        // from a shared queue when the plan allows run-anywhere.
        let compute_result = if env.plan.run_anywhere {
            crate::engine::anywhere::run_compute_phase_anywhere(
                env,
                next_step,
                &agg_snapshot,
                &transport,
                &inbox_name,
            )
        } else {
            run_compute_phase(
                env,
                next_step,
                &agg_snapshot,
                &transport,
                &inbox_name,
                agg_tables.as_ref().map(|((_, t), _)| t),
            )
        };
        let step_aggs = match compute_result {
            Ok((aggs, counters)) => {
                metrics.absorb(&counters);
                match &agg_tables {
                    None => aggs,
                    Some(((a1, _), (a2, t2))) => {
                        // The extra enumeration round of the large path.
                        let _ = t2.clear();
                        match run_agg_merge_phase(env, a1, a2) {
                            Ok(merged) => merged,
                            Err(e) => {
                                recover_or_fail(
                                    env,
                                    &recovery,
                                    &checkpoint,
                                    e,
                                    &mut step,
                                    &mut enabled,
                                    &mut agg_snapshot,
                                    &mut metrics,
                                )?;
                                if let Some(observer) = &opts.observer {
                                    observer.on_recovery(step);
                                }
                                continue;
                            }
                        }
                    }
                }
            }
            Err(e) => {
                recover_or_fail(
                    env,
                    &recovery,
                    &checkpoint,
                    e,
                    &mut step,
                    &mut enabled,
                    &mut agg_snapshot,
                    &mut metrics,
                )?;
                if let Some(observer) = &opts.observer {
                    observer.on_recovery(step);
                }
                continue;
            }
        };

        // Barrier: merge aggregates.
        let mut merged = env.registry.identities();
        env.registry.merge(&mut merged, step_aggs);
        let next_snapshot = AggregateSnapshot::new(merged);

        // Inbox build phase.
        match run_inbox_phase(env, &transport_name, &inbox_name, &mut metrics) {
            Ok(n) => {
                enabled = n;
                agg_snapshot = next_snapshot;
                step = next_step;
                if let Some(observer) = &opts.observer {
                    observer.on_step(step, enabled, &agg_snapshot);
                }
            }
            Err(e) => {
                recover_or_fail(
                    env,
                    &recovery,
                    &checkpoint,
                    e,
                    &mut step,
                    &mut enabled,
                    &mut agg_snapshot,
                    &mut metrics,
                )?;
                if let Some(observer) = &opts.observer {
                    observer.on_recovery(step);
                }
                continue;
            }
        }

        if let (Some(hooks), Some(interval)) = (&recovery, opts.checkpoint_interval) {
            if step.is_multiple_of(interval.max(1)) {
                checkpoint = Some(take_checkpoint(hooks, parts, step, enabled, &agg_snapshot)?);
                if let Some(observer) = &opts.observer {
                    observer.on_checkpoint(step);
                }
            }
        }
    }

    metrics.steps = step;
    metrics.barriers = step;
    metrics.store = env.store.metrics() - store_before;
    metrics.elapsed = started.elapsed();
    Ok(RunOutcome {
        steps: step,
        aborted,
        aggregates: agg_snapshot,
        metrics,
        mode: ExecMode::Synchronized,
    })
}

/// Dispatches the compute task to every part and joins (the barrier).
fn run_compute_phase<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    step: u32,
    prev_agg: &AggregateSnapshot,
    transport: &S::Table,
    inbox_name: &str,
    agg_table: Option<&S::Table>,
) -> Result<(HashMap<String, AggValue>, PartCounters), EbspError> {
    let parts = env.parts();
    let agg_table = agg_table.cloned();
    let handles: Vec<_> = (0..parts)
        .map(|p| {
            let job = Arc::clone(&env.job);
            let plan = env.plan;
            let table_names = Arc::clone(&env.table_names);
            let broadcast = env.broadcast_name.clone();
            let registry = env.registry.clone();
            let prev = prev_agg.clone();
            let transport = transport.clone();
            let inbox = inbox_name.to_owned();
            let direct = env.direct.clone();
            let agg_table = agg_table.clone();
            env.store.run_at(&env.reference, PartId(p), move |view| {
                compute_at_part::<S::Table, J>(
                    &job,
                    &plan,
                    view,
                    step,
                    &transport,
                    &inbox,
                    &table_names,
                    broadcast.as_deref(),
                    &registry,
                    &prev,
                    direct.as_deref(),
                    parts,
                    agg_table.as_ref(),
                )
            })
        })
        .collect();

    let mut aggs = env.registry.identities();
    let mut counters = PartCounters::default();
    let mut first_err: Option<EbspError> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((partial, c))) => {
                env.registry.merge(&mut aggs, partial);
                counters.merge(&c);
            }
            Ok(Err(e)) => first_err = Some(first_err.unwrap_or(e)),
            Err(e) => first_err = Some(first_err.unwrap_or(EbspError::Kv(e))),
        }
    }
    match first_err {
        None => Ok((aggs, counters)),
        Some(e) => Err(e),
    }
}

/// Dispatches the inbox-build task to every part and joins; returns the
/// total enabled component count for the next step.
fn run_inbox_phase<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    transport_name: &str,
    inbox_name: &str,
    metrics: &mut RunMetrics,
) -> Result<u64, EbspError> {
    let handles: Vec<_> = (0..env.parts())
        .map(|p| {
            let job = Arc::clone(&env.job);
            let plan = env.plan;
            let table_names = Arc::clone(&env.table_names);
            let transport = transport_name.to_owned();
            let inbox = inbox_name.to_owned();
            env.store.run_at(&env.reference, PartId(p), move |view| {
                build_inbox_at_part::<J>(&job, &plan, view, &transport, &inbox, &table_names)
            })
        })
        .collect();

    let mut enabled = 0u64;
    let mut first_err: Option<EbspError> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((n, counters))) => {
                enabled += n;
                metrics.absorb(&counters);
            }
            Ok(Err(e)) => first_err = Some(first_err.unwrap_or(e)),
            Err(e) => first_err = Some(first_err.unwrap_or(EbspError::Kv(e))),
        }
    }
    match first_err {
        None => Ok(enabled),
        Some(e) => Err(e),
    }
}

/// The large-aggregator merge round: every part folds the partials routed
/// to it and records them in the second auxiliary table.
fn run_agg_merge_phase<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    agg1_name: &str,
    agg2_name: &str,
) -> Result<HashMap<String, AggValue>, EbspError> {
    let results = {
        let registry = env.registry.clone();
        let a1 = agg1_name.to_owned();
        let a2 = agg2_name.to_owned();
        env.store.run_at_all(&env.reference, move |view| {
            crate::engine::merge_aggregates_at_part(&registry, view, &a1, &a2)
        })?
    };
    let mut merged = env.registry.identities();
    for part_result in results {
        for (name, value) in part_result? {
            // Each name routes to exactly one part, so this never
            // double-counts; fold is still the right merge.
            merged.insert(name, value);
        }
    }
    Ok(merged)
}

fn take_checkpoint(
    hooks: &RecoveryHooks,
    parts: u32,
    step: u32,
    enabled: u64,
    agg: &AggregateSnapshot,
) -> Result<CheckRecord, EbspError> {
    let mut captured = Vec::with_capacity(parts as usize);
    for p in 0..parts {
        captured.push((hooks.checkpoint)(PartId(p))?);
    }
    Ok(CheckRecord {
        step,
        enabled,
        agg: agg.clone(),
        parts: captured,
    })
}

/// Rolls the whole group back to the last checkpoint if the failure is a
/// recoverable part failure; otherwise propagates.
#[allow(clippy::too_many_arguments)]
fn recover_or_fail<S: KvStore, J: Job>(
    _env: &JobEnv<S, J>,
    recovery: &Option<RecoveryHooks>,
    checkpoint: &Option<CheckRecord>,
    error: EbspError,
    step: &mut u32,
    enabled: &mut u64,
    agg: &mut AggregateSnapshot,
    metrics: &mut RunMetrics,
) -> Result<(), EbspError> {
    let part = match &error {
        EbspError::Kv(KvError::PartFailed { part }) => *part,
        _ => return Err(error),
    };
    let (Some(hooks), Some(record)) = (recovery, checkpoint) else {
        return Err(EbspError::Unrecoverable { part });
    };
    for captured in &record.parts {
        (hooks.restore)(captured.as_ref())?;
    }
    *step = record.step;
    *enabled = record.enabled;
    *agg = record.agg.clone();
    metrics.recoveries += 1;
    Ok(())
}

fn run_nonce() -> u64 {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NONCE: AtomicU64 = AtomicU64::new(1);
    NONCE.fetch_add(1, Ordering::Relaxed)
}
