//! The K/V EBSP execution engines and their shared plumbing.

pub(crate) mod anywhere;
pub(crate) mod nosync;
pub(crate) mod sync;

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use ripple_kv::{KvError, KvStore, PartView, RoutedKey, Table};
use ripple_wire::{from_wire, to_wire, Encode};

use crate::context::{Outbox, StateOps};
use crate::metrics::PartCounters;
use crate::retry::{kv_with_retry, FaultRetry};
use crate::{
    key_to_routed, AggValue, AggregatorRegistry, EbspError, Envelope, ExecutionPlan, Exporter, Job,
    LoadSink,
};

/// Everything about one job run that both engines (and every part task)
/// need: the store, job, plan, table handles, registry, and exporters.
pub(crate) struct JobEnv<S: KvStore, J: Job> {
    pub(crate) store: S,
    pub(crate) job: Arc<J>,
    pub(crate) registry: AggregatorRegistry,
    pub(crate) plan: ExecutionPlan,
    pub(crate) table_names: Arc<Vec<String>>,
    pub(crate) tables: Vec<S::Table>,
    pub(crate) reference: S::Table,
    pub(crate) broadcast_name: Option<String>,
    pub(crate) direct: Option<Arc<dyn Exporter<J::OutKey, J::OutValue>>>,
}

impl<S: KvStore, J: Job> JobEnv<S, J> {
    pub(crate) fn parts(&self) -> u32 {
        self.reference.part_count()
    }
}

/// Collocated state access for pinned execution.  Transient store faults
/// are absorbed by the run's [`FaultRetry`] before they surface.
pub(crate) struct LocalStateOps<'a> {
    pub(crate) view: &'a dyn PartView,
    pub(crate) tables: &'a [String],
    pub(crate) broadcast: Option<&'a str>,
    pub(crate) retry: Option<&'a FaultRetry>,
}

impl LocalStateOps<'_> {
    fn part(&self) -> u32 {
        self.view.part().0
    }
}

impl StateOps for LocalStateOps<'_> {
    fn get(&self, tab: usize, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        kv_with_retry(self.retry, self.part(), || {
            self.view.get(&self.tables[tab], key)
        })
    }
    fn put(&self, tab: usize, key: RoutedKey, value: Bytes) -> Result<(), KvError> {
        kv_with_retry(self.retry, self.part(), || {
            self.view.put(&self.tables[tab], key.clone(), value.clone())
        })?;
        Ok(())
    }
    fn delete(&self, tab: usize, key: &RoutedKey) -> Result<bool, KvError> {
        kv_with_retry(self.retry, self.part(), || {
            self.view.delete(&self.tables[tab], key)
        })
    }
    fn broadcast_get(&self, key: &RoutedKey) -> Result<Option<Option<Bytes>>, KvError> {
        match self.broadcast {
            None => Ok(None),
            Some(name) => Ok(Some(kv_with_retry(self.retry, self.part(), || {
                self.view.get(name, key)
            })?)),
        }
    }
    fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// Table-handle state access for *run-anywhere* execution (used by the
/// work-stealing compute phase): a stolen
/// invocation may run at any part, so state operations go through the
/// ordinary table handles and pay marshalling when non-local — cheap by
/// assumption (`rare-state`).
pub(crate) struct GlobalStateOps<S: KvStore> {
    pub(crate) tables: Vec<S::Table>,
    pub(crate) broadcast: Option<S::Table>,
}

impl<S: KvStore> StateOps for GlobalStateOps<S> {
    fn get(&self, tab: usize, key: &RoutedKey) -> Result<Option<Bytes>, KvError> {
        self.tables[tab].get(key)
    }
    fn put(&self, tab: usize, key: RoutedKey, value: Bytes) -> Result<(), KvError> {
        self.tables[tab].put(key, value)?;
        Ok(())
    }
    fn delete(&self, tab: usize, key: &RoutedKey) -> Result<bool, KvError> {
        self.tables[tab].delete(key)
    }
    fn broadcast_get(&self, key: &RoutedKey) -> Result<Option<Option<Bytes>>, KvError> {
        match &self.broadcast {
            None => Ok(None),
            Some(t) => Ok(Some(t.get(key)?)),
        }
    }
    fn table_count(&self) -> usize {
        self.tables.len()
    }
}

/// The destination part of an envelope addressed to `key`.
pub(crate) fn dst_part<K: Encode>(key: &K, parts: u32) -> u32 {
    key_to_routed(key).part_for(parts).0
}

/// Groups `envelopes` by destination part and writes one spill batch per
/// non-empty destination into the transport table, keyed `(step, src, seq)`
/// and routed to the destination part.
pub(crate) fn write_spills<T: Table, J: Job>(
    transport: &T,
    parts: u32,
    step: u32,
    src: u32,
    envelopes: Vec<Envelope<J>>,
    counters: &mut PartCounters,
    retry: Option<&FaultRetry>,
) -> Result<(), EbspError> {
    if envelopes.is_empty() {
        return Ok(());
    }
    let mut by_dst: Vec<Vec<Envelope<J>>> = (0..parts).map(|_| Vec::new()).collect();
    for env in envelopes {
        let dst = dst_part(env.key(), parts) as usize;
        by_dst[dst].push(env);
    }
    for (dst, batch) in by_dst.into_iter().enumerate() {
        if batch.is_empty() {
            continue;
        }
        let body = to_wire(&(step, src, counters.spill_batches));
        let key = RoutedKey::with_route(dst as u64, body.to_vec().into());
        let value = to_wire(&batch);
        kv_with_retry(retry, src, || {
            transport.put(key.clone(), value.clone()).map(|_| ())
        })?;
        counters.spill_batches += 1;
    }
    Ok(())
}

/// Drains this part's slice of the transport table and builds the inbox
/// for the next step: per-component message lists (combined pairwise where
/// the job's combiner applies), continue-enabled components, and applied
/// state creations.  Returns the number of enabled components, the
/// counters, and — when `record` is set — the materialized inbox entries,
/// which the synchronized engine keeps controller-side as the replay log
/// for fast single-part recovery.
#[allow(clippy::too_many_arguments, clippy::type_complexity)]
pub(crate) fn build_inbox_at_part<J: Job>(
    job: &J,
    plan: &ExecutionPlan,
    view: &dyn PartView,
    transport_name: &str,
    inbox_name: &str,
    table_names: &[String],
    retry: Option<&FaultRetry>,
    record: bool,
    probe: Option<&dyn crate::AuditProbe>,
) -> Result<(u64, PartCounters, Vec<(RoutedKey, Bytes)>), EbspError> {
    let mut counters = PartCounters::default();
    // Drain spills; order deterministically by (step, src, seq) so that
    // replay after recovery sees identical message orders.  The
    // accumulator lives inside the retry closure so a drain that fails
    // transiently (e.g. a severed connection mid-stream) starts each
    // attempt from a clean slate — no pair is delivered twice.
    let mut batches = kv_with_retry(retry, view.part().0, || {
        let mut acc: Vec<((u32, u32, u64), Bytes)> = Vec::new();
        view.drain(transport_name, &mut |key, value| {
            if let Ok(tag) = from_wire::<(u32, u32, u64)>(key.body()) {
                acc.push((tag, value));
            }
            ripple_kv::ScanControl::Continue
        })?;
        Ok(acc)
    })?;
    batches.sort_by_key(|(tag, _)| *tag);
    // Spills tagged with step s are delivered for step s + 1; loader
    // spills (tagged 0) feed step 1.
    let deliver_step = batches
        .iter()
        .map(|((s, _, _), _)| s + 1)
        .max()
        .unwrap_or(1);

    // Fold envelopes into per-component inboxes, preserving arrival order
    // and applying the pairwise combiner opportunistically.
    let mut inbox: HashMap<J::Key, Vec<J::Message>> = HashMap::new();
    let mut creates: Vec<(u16, J::Key, J::State)> = Vec::new();
    for (_, bytes) in batches {
        let envelopes: Vec<Envelope<J>> = from_wire(&bytes)?;
        for env in envelopes {
            match env {
                Envelope::Message { to, msg } => {
                    inbox.entry(to).or_default().push(msg);
                }
                Envelope::Continue { key } => {
                    inbox.entry(key).or_default();
                }
                Envelope::Create { tab, key, state } => creates.push((tab, key, state)),
            }
        }
    }

    // Apply the pairwise combiner per component.  "The platform may combine
    // some of them by one or more invocations (at arbitrary times and
    // places)"; a single adjacent-pair pass over the arrival-ordered list
    // is one such choice.
    for (key, list) in inbox.iter_mut() {
        if list.len() < 2 {
            continue;
        }
        let mut combined: Vec<J::Message> = Vec::with_capacity(list.len());
        for msg in list.drain(..) {
            match combined.last_mut() {
                Some(last) => match job.combine_messages(key, last, &msg) {
                    Some(merged) => {
                        *last = merged;
                        counters.messages_combined += 1;
                    }
                    None => combined.push(msg),
                },
                None => combined.push(msg),
            }
        }
        *list = combined;
    }

    // Apply state creations, merging conflicts.
    for (tab, key, state) in creates {
        let idx = tab as usize;
        let name = table_names.get(idx).ok_or(EbspError::StateTableIndex {
            index: idx,
            tables: table_names.len(),
        })?;
        let routed = key_to_routed(&key);
        let part = view.part().0;
        let existing = kv_with_retry(retry, part, || view.get(name, &routed))?;
        let merged = match existing {
            Some(existing) => {
                let old: J::State = from_wire(&existing)?;
                job.combine_states(&key, old, state)
            }
            None => state,
        };
        let value = to_wire(&merged);
        kv_with_retry(retry, part, || {
            view.put(name, routed.clone(), value.clone()).map(|_| ())
        })?;
    }

    // Audit the post-combine delivery counts — the `one-msg` contract is
    // about what arrives per (key, step) after combining, not about how
    // many raw sends targeted the key.
    if let Some(probe) = probe {
        let part = view.part().0;
        for (key, list) in &inbox {
            probe.on_deliver(deliver_step, part, &to_wire(key), list.len() as u32);
        }
    }

    // Enforce one-msg when the plan dropped collection.
    if !plan.collect {
        for (_key, list) in inbox.iter() {
            if list.len() > 1 {
                return Err(EbspError::PropertyViolation {
                    property: "one-msg",
                    detail: format!("{} messages arrived for one key in one step", list.len()),
                });
            }
        }
    }

    // Materialize the inbox table: one entry per enabled component.
    let enabled = inbox.len() as u64;
    let part = view.part().0;
    let mut recorded = Vec::new();
    for (key, msgs) in inbox {
        let routed = key_to_routed(&key);
        let value = to_wire(&msgs);
        kv_with_retry(retry, part, || {
            view.put(inbox_name, routed.clone(), value.clone())
                .map(|_| ())
        })?;
        if record {
            recorded.push((routed, value));
        }
    }
    Ok((enabled, counters, recorded))
}

/// Runs the compute invocations of one part for one step: drains the
/// inbox, invokes enabled components (sorted by key iff the plan says so),
/// appends continue signals, and spills outgoing envelopes.
///
/// When `replay_entries` is supplied (fast recovery), the inbox table is
/// ignored and the given entries are computed instead; `suppress` replays
/// a *past* step purely for its state effects — sends, aggregator partials
/// and direct outputs already happened in the original execution and are
/// dropped so they cannot duplicate.
#[allow(clippy::too_many_arguments)]
pub(crate) fn compute_at_part<T: Table, J: Job>(
    job: &J,
    plan: &ExecutionPlan,
    view: &dyn PartView,
    step: u32,
    transport: &T,
    inbox_name: &str,
    table_names: &[String],
    broadcast_name: Option<&str>,
    registry: &AggregatorRegistry,
    prev_agg: &crate::AggregateSnapshot,
    direct: Option<&dyn Exporter<J::OutKey, J::OutValue>>,
    parts: u32,
    agg_table: Option<&T>,
    retry: Option<&FaultRetry>,
    replay_entries: Option<Vec<(RoutedKey, Bytes)>>,
    suppress: bool,
    probe: Option<&dyn crate::AuditProbe>,
    shuffle: Option<u64>,
) -> Result<(HashMap<String, AggValue>, PartCounters), EbspError> {
    // Collect this step's enabled components at this part.  As with the
    // transport drain, the accumulator is per-attempt so a transient
    // drain failure retries without duplicating entries.
    let entries: Vec<(RoutedKey, Bytes)> = match replay_entries {
        Some(replayed) => replayed,
        None => kv_with_retry(retry, view.part().0, || {
            let mut acc: Vec<(RoutedKey, Bytes)> = Vec::new();
            view.drain(inbox_name, &mut |key, value| {
                acc.push((key, value));
                ripple_kv::ScanControl::Continue
            })?;
            Ok(acc)
        })?,
    };

    let mut decoded: Vec<(J::Key, RoutedKey, Vec<J::Message>)> = Vec::with_capacity(entries.len());
    for (routed, bytes) in entries {
        let key: J::Key = from_wire(routed.body())?;
        let msgs: Vec<J::Message> = from_wire(&bytes)?;
        decoded.push((key, routed, msgs));
    }
    if let Some(seed) = shuffle {
        // Audit mode: a deterministic Fisher–Yates permutation keyed by
        // (seed, step, part) *replaces* the plan's ordering, so a job whose
        // output survives several seeds demonstrably does not depend on
        // invocation order.  Sort first: the permutation must be a pure
        // function of (seed, step, part), not of the store's iteration
        // order, or same-seed runs would not be comparable.
        decoded.sort_by(|a, b| a.0.cmp(&b.0));
        let mut state = seed
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(u64::from(step) << 32)
            .wrapping_add(u64::from(view.part().0))
            | 1;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for i in (1..decoded.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            decoded.swap(i, j);
        }
    } else if plan.sort {
        decoded.sort_by(|a, b| a.0.cmp(&b.0));
    }

    let ops = LocalStateOps {
        view,
        tables: table_names,
        broadcast: broadcast_name,
        retry,
    };
    let no_continue = job.properties().no_continue;
    let part = view.part();
    let mut out = Outbox::<J>::new();
    for (key, routed, messages) in decoded {
        out.metrics.invocations += 1;
        // Keep the encoded key on hand for the post-compute probe calls;
        // `routed` itself moves into the context.
        let key_bytes = probe.map(|p| {
            p.on_invocation(step, part.0, routed.body());
            routed.body().clone()
        });
        let mut ctx = crate::ComputeContext {
            step,
            mode: crate::ExecMode::Synchronized,
            part,
            key: key.clone(),
            routed,
            messages,
            ops: &ops,
            out: &mut out,
            registry,
            prev_agg,
            direct: if suppress { None } else { direct },
            probe,
        };
        let cont = job.compute(&mut ctx)?;
        if let (Some(p), Some(kb)) = (probe, &key_bytes) {
            // Before the no-continue enforcement below, so the audit
            // recorder holds the evidence when the engine aborts the run.
            p.on_continue(step, part.0, kb, cont);
        }
        if cont {
            if no_continue {
                return Err(EbspError::PropertyViolation {
                    property: "no-continue",
                    detail: "compute returned the positive continue signal".to_owned(),
                });
            }
            out.envelopes.push(Envelope::Continue { key });
        }
    }

    let envelopes = std::mem::take(&mut out.envelopes);
    if suppress {
        // Replaying a completed step: its messages were already delivered
        // and its aggregator contribution already merged.
        drop(envelopes);
        out.agg.clear();
        return Ok((out.agg, out.metrics));
    }
    write_spills(
        transport,
        parts,
        step,
        part.0,
        envelopes,
        &mut out.metrics,
        retry,
    )?;

    // Large-aggregator path (§IV-A): rather than returning partials to the
    // table client, write them into an auxiliary table keyed (and routed)
    // by aggregator name; a later enumeration round merges them.
    if let Some(aux) = agg_table {
        for (name, value) in std::mem::take(&mut out.agg) {
            let route = key_to_routed(&name).route();
            let body = to_wire(&(name, part.0));
            aux.put(
                RoutedKey::with_route(route, body.to_vec().into()),
                to_wire(&value),
            )?;
        }
    }
    Ok((out.agg, out.metrics))
}

/// The merge-and-redistribute round of the large-aggregator path: every
/// part folds the partials whose aggregator names route to it, records the
/// merged value in the second auxiliary table, and reports it back.
pub(crate) fn merge_aggregates_at_part(
    registry: &AggregatorRegistry,
    view: &dyn PartView,
    agg1_name: &str,
    agg2_name: &str,
    retry: Option<&FaultRetry>,
) -> Result<Vec<(String, AggValue)>, EbspError> {
    let raw = kv_with_retry(retry, view.part().0, || {
        let mut acc: Vec<(Bytes, Bytes)> = Vec::new();
        view.drain(agg1_name, &mut |key, value| {
            acc.push((key.body().clone(), value));
            ripple_kv::ScanControl::Continue
        })?;
        Ok(acc)
    })?;
    let mut merged: HashMap<String, AggValue> = HashMap::new();
    for (key_body, value_bytes) in raw {
        let (name, _src): (String, u32) = from_wire(&key_body)?;
        let value: AggValue = from_wire(&value_bytes)?;
        registry.fold(&mut merged, &name, value)?;
    }
    for (name, value) in &merged {
        kv_with_retry(retry, view.part().0, || {
            view.put(agg2_name, key_to_routed(name), to_wire(value))
                .map(|_| ())
        })?;
    }
    Ok(merged.into_iter().collect())
}

/// Loader output buffered at the controller before the run starts.
pub(crate) struct LoadBuffer<J: Job> {
    pub(crate) envelopes: Vec<Envelope<J>>,
    pub(crate) agg: HashMap<String, AggValue>,
}

impl<J: Job> LoadBuffer<J> {
    pub(crate) fn new() -> Self {
        Self {
            envelopes: Vec::new(),
            agg: HashMap::new(),
        }
    }
}

/// The engine-side [`LoadSink`]: initial states go straight to the state
/// tables (retried through the run's policy, since against a networked
/// store a load-time put can fail transiently like any other operation);
/// messages and enables buffer as step-0 envelopes.
pub(crate) struct EngineLoadSink<'a, S: KvStore, J: Job> {
    pub(crate) tables: &'a [S::Table],
    pub(crate) registry: &'a AggregatorRegistry,
    pub(crate) buffer: &'a mut LoadBuffer<J>,
    pub(crate) retry: Option<&'a crate::retry::FaultRetry>,
}

impl<S: KvStore, J: Job> LoadSink<J> for EngineLoadSink<'_, S, J> {
    fn state(&mut self, tab: usize, key: J::Key, state: J::State) -> Result<(), EbspError> {
        let table = self.tables.get(tab).ok_or(EbspError::StateTableIndex {
            index: tab,
            tables: self.tables.len(),
        })?;
        let routed = key_to_routed(&key);
        let value = to_wire(&state);
        crate::retry::kv_with_retry(self.retry, routed.part_for(table.part_count()).0, || {
            table.put(routed.clone(), value.clone())
        })?;
        Ok(())
    }

    fn message(&mut self, to: J::Key, msg: J::Message) -> Result<(), EbspError> {
        self.buffer.envelopes.push(Envelope::Message { to, msg });
        Ok(())
    }

    fn enable(&mut self, key: J::Key) -> Result<(), EbspError> {
        self.buffer.envelopes.push(Envelope::Continue { key });
        Ok(())
    }

    fn aggregate(&mut self, name: &str, value: AggValue) -> Result<(), EbspError> {
        self.registry.fold(&mut self.buffer.agg, name, value)
    }
}

/// Drops the named tables when the run ends, however it ends.
pub(crate) struct TableGuard<S: KvStore> {
    pub(crate) store: S,
    pub(crate) names: Vec<String>,
}

impl<S: KvStore> Drop for TableGuard<S> {
    fn drop(&mut self) {
        for name in &self.names {
            // Cleanup failures at teardown are not actionable.
            let _ = self.store.drop_table(name);
        }
    }
}
