//! The *run-anywhere* compute phase (§II-A): `no-collect ∧ rare-state ⇒
//! run-anywhere` — "the implementation can freely engage in work-stealing,
//! for example to balance load.  As the work done by a given component in a
//! given step requires little access to its associated state, there is
//! little penalty to performing this work at a location distant from the
//! state.  As there is at most one message per key and step, there is no
//! need to pin a compute invocation to a rendezvous point for multiple
//! messages."
//!
//! Implementation: each part drains its inbox and hands the entries to the
//! controller, which puts them in a shared work queue; one worker per part
//! then steals batches from that queue and invokes components *wherever it
//! runs*, reaching state through ordinary table handles (paying remote
//! marshalling where non-local — cheap by the `rare-state` assumption).

use std::collections::HashMap;
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use ripple_kv::{KvStore, PartId, RoutedKey};
use ripple_wire::from_wire;

use crate::context::Outbox;
use crate::engine::{write_spills, GlobalStateOps, JobEnv};
use crate::metrics::PartCounters;
use crate::{AggValue, AggregateSnapshot, EbspError, Job};

/// How many inbox entries a worker steals per lock acquisition.
const STEAL_BATCH: usize = 16;

/// Runs one step's compute invocations with work-stealing across all
/// parts, returning merged aggregates and counters.
pub(crate) fn run_compute_phase_anywhere<S: KvStore, J: Job>(
    env: &JobEnv<S, J>,
    step: u32,
    prev_agg: &AggregateSnapshot,
    transport: &S::Table,
    inbox_name: &str,
    probe: Option<Arc<dyn crate::AuditProbe>>,
) -> Result<(HashMap<String, AggValue>, PartCounters), EbspError> {
    let parts = env.parts();

    // Phase A: every part drains its inbox and ships the entries to the
    // controller (this is the "distant from the state" traffic the
    // rare-state property declares cheap).
    let drained: Vec<Vec<(RoutedKey, Bytes)>> = {
        let inbox = inbox_name.to_owned();
        env.store.run_at_all(&env.reference, move |view| {
            let mut entries = Vec::new();
            let _ = view.drain(&inbox, &mut |k, v| {
                entries.push((k, v));
                ripple_kv::ScanControl::Continue
            });
            entries
        })?
    };
    let mut queue: Vec<(RoutedKey, Bytes)> = drained.into_iter().flatten().collect();
    // Deterministic stealing order (matters for deterministic replay).
    queue.sort_by(|a, b| a.0.cmp(&b.0));
    let queue = Arc::new(Mutex::new(queue));

    // Phase B: one stealing worker per part.
    let handles: Vec<_> = (0..parts)
        .map(|p| {
            let job = Arc::clone(&env.job);
            let queue = Arc::clone(&queue);
            let transport = transport.clone();
            let registry = env.registry.clone();
            let prev = prev_agg.clone();
            let direct = env.direct.clone();
            let probe = probe.clone();
            let ops = GlobalStateOps::<S> {
                tables: env.tables.clone(),
                broadcast: env
                    .broadcast_name
                    .as_ref()
                    .and_then(|n| env.store.lookup_table(n).ok()),
            };
            env.store.run_at(
                &env.reference,
                PartId(p),
                move |view| -> Result<(HashMap<String, AggValue>, PartCounters), EbspError> {
                    let part = view.part();
                    let mut out = Outbox::<J>::new();
                    loop {
                        let batch: Vec<(RoutedKey, Bytes)> = {
                            let mut q = queue.lock();
                            let take = q.len().min(STEAL_BATCH);
                            if take == 0 {
                                break;
                            }
                            let at = q.len() - take;
                            q.split_off(at)
                        };
                        for (routed, bytes) in batch {
                            let key: J::Key = from_wire(routed.body())?;
                            let messages: Vec<J::Message> = from_wire(&bytes)?;
                            out.metrics.invocations += 1;
                            let key_bytes = probe.as_deref().map(|p| {
                                p.on_invocation(step, part.0, routed.body());
                                routed.body().clone()
                            });
                            let mut ctx = crate::ComputeContext {
                                step,
                                mode: crate::ExecMode::Synchronized,
                                part,
                                key: key.clone(),
                                routed,
                                messages,
                                ops: &ops,
                                out: &mut out,
                                registry: &registry,
                                prev_agg: &prev,
                                direct: direct.as_deref(),
                                probe: probe.as_deref(),
                            };
                            let cont = job.compute(&mut ctx)?;
                            if let (Some(p), Some(kb)) = (probe.as_deref(), &key_bytes) {
                                p.on_continue(step, part.0, kb, cont);
                            }
                            if cont {
                                // run-anywhere implies no-collect implies
                                // no-continue; the plan guaranteed this.
                                return Err(EbspError::PropertyViolation {
                                    property: "no-continue",
                                    detail: "compute returned the positive continue signal"
                                        .to_owned(),
                                });
                            }
                        }
                    }
                    let envelopes = std::mem::take(&mut out.envelopes);
                    write_spills(
                        &transport,
                        parts,
                        step,
                        part.0,
                        envelopes,
                        &mut out.metrics,
                        None,
                    )?;
                    Ok((out.agg, out.metrics))
                },
            )
        })
        .collect();

    let mut aggs = env.registry.identities();
    let mut counters = PartCounters::default();
    let mut first_err: Option<EbspError> = None;
    for handle in handles {
        match handle.join() {
            Ok(Ok((partial, c))) => {
                env.registry.merge(&mut aggs, partial);
                counters.merge(&c);
            }
            Ok(Err(e)) => first_err = Some(first_err.unwrap_or(e)),
            Err(e) => first_err = Some(first_err.unwrap_or(EbspError::Kv(e))),
        }
    }
    match first_err {
        None => Ok((aggs, counters)),
        Some(e) => Err(e),
    }
}
