//! Trace export: serializing the profile stream to Chrome trace-event
//! JSON, loadable in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev).
//!
//! [`TraceRecorder`] is a [`RunObserver`]: attach it (or just call
//! [`JobRunner::trace_to`](crate::JobRunner::trace_to)) and every
//! [`StepProfile`] becomes a set of complete (`"ph": "X"`) duration events
//! — one lane per part plus a controller lane — with counter tracks for
//! enablement and marshalled bytes.  Unsynchronized workers contribute one
//! aggregate busy span each from their [`WorkerProfile`].
//!
//! The emitted document is the JSON-object flavor of the trace-event
//! format: `{"traceEvents": [...]}`, timestamps in microseconds.

use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::time::Duration;

use parking_lot::Mutex;

use crate::profile::{StepProfile, WorkerProfile};
use crate::RunObserver;

/// Lane (Chrome `tid`) used for controller-scope events; part `p` maps to
/// lane `p + 1`.
const CONTROLLER_LANE: u32 = 0;

fn micros(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// An observer that serializes step and worker profiles into Chrome
/// trace-event JSON.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ripple_core::TraceRecorder;
///
/// let recorder = Arc::new(TraceRecorder::new());
/// // runner.observer(recorder.clone()); runner.profile(true); runner.launch(...)
/// let json = recorder.to_json();
/// assert!(json.starts_with("{\"traceEvents\":["));
/// ```
#[derive(Debug, Default)]
pub struct TraceRecorder {
    /// Pre-serialized JSON event objects, in arrival order.
    events: Mutex<Vec<String>>,
}

impl TraceRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of trace events recorded so far.
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }

    fn push(&self, event: String) {
        self.events.lock().push(event);
    }

    /// A complete-duration event (`"ph": "X"`).
    fn push_span(&self, name: &str, lane: u32, ts: Duration, dur: Duration, args: &str) {
        self.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"ripple\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
             \"pid\":0,\"tid\":{},\"args\":{{{}}}}}",
            escape(name),
            micros(ts),
            micros(dur),
            lane,
            args
        ));
    }

    /// A counter event (`"ph": "C"`), one numeric series per call.
    fn push_counter(&self, name: &str, ts: Duration, value: u64) {
        self.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"ripple\",\"ph\":\"C\",\"ts\":{:.3},\"pid\":0,\
             \"tid\":{CONTROLLER_LANE},\"args\":{{\"value\":{value}}}}}",
            escape(name),
            micros(ts),
        ));
    }

    /// Serializes everything recorded so far as a Chrome trace-event JSON
    /// document (`{"traceEvents": [...]}`), including thread-name metadata
    /// for the controller and part lanes.
    pub fn to_json(&self) -> String {
        let events = self.events.lock();
        // Name the lanes that actually appear.
        let mut lanes: Vec<u32> = Vec::new();
        for e in events.iter() {
            if let Some(rest) = e.split("\"tid\":").nth(1) {
                let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
                if let Ok(lane) = digits.parse::<u32>() {
                    if !lanes.contains(&lane) {
                        lanes.push(lane);
                    }
                }
            }
        }
        lanes.sort_unstable();
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for lane in lanes {
            let name = if lane == CONTROLLER_LANE {
                "controller".to_owned()
            } else {
                format!("part {}", lane - 1)
            };
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{lane},\
                 \"args\":{{\"name\":\"{name}\"}}}}"
            );
        }
        for e in events.iter() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(e);
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Writes [`TraceRecorder::to_json`] to `path`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_to(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

impl RunObserver for TraceRecorder {
    fn on_step_profile(&self, profile: &StepProfile) {
        let step = profile.step;
        self.push_span(
            &format!("step {step}"),
            CONTROLLER_LANE,
            profile.start,
            profile.compute_wall + profile.inbox_wall,
            &format!(
                "\"step\":{step},\"enabled_next\":{},\"invocations\":{},\
                 \"messages_sent\":{},\"barrier_skew_us\":{:.3}",
                profile.enabled_next,
                profile.counters.invocations,
                profile.counters.messages_sent,
                micros(profile.barrier_skew),
            ),
        );
        for part in &profile.parts {
            self.push_span(
                &format!("compute s{step}"),
                part.part + 1,
                part.compute_start,
                part.compute,
                &format!("\"step\":{step},\"part\":{}", part.part),
            );
            self.push_span(
                &format!("inbox s{step}"),
                part.part + 1,
                part.inbox_start,
                part.inbox_build,
                &format!("\"step\":{step},\"part\":{}", part.part),
            );
        }
        let end = profile.start + profile.compute_wall + profile.inbox_wall;
        self.push_counter("enabled components", end, profile.enabled_next);
        self.push_counter("bytes marshalled", end, profile.store.bytes_marshalled);
        // Network tracks only appear when a networked store is in play.
        if profile.store.rpcs != 0 {
            self.push_counter("rpcs", end, profile.store.rpcs);
            self.push_counter(
                "net bytes",
                end,
                profile.store.net_bytes_in + profile.store.net_bytes_out,
            );
        }
        // Failure tracks only appear once something actually went wrong,
        // so healthy traces stay uncluttered.
        if profile.store.retries != 0 {
            self.push_counter("store retries", end, profile.store.retries);
        }
        if profile.store.retry_bytes != 0 {
            self.push_counter("retry bytes", end, profile.store.retry_bytes);
        }
        if profile.store.reconnects != 0 {
            self.push_counter("reconnects", end, profile.store.reconnects);
        }
        if profile.store.failovers != 0 {
            self.push_counter("failovers", end, profile.store.failovers);
        }
    }

    fn on_worker_profile(&self, profile: &WorkerProfile) {
        // Unsynchronized workers report run-level aggregates, not
        // interleaved spans: one parent span per worker lane, anchored at
        // the worker's first activity on the run timeline, with the
        // busy/idle split as two aggregate sub-spans inside it.  (The
        // aggregates compress the real interleaving — busy first, idle
        // after — but the anchor and extents are faithful.)
        let args = format!(
            "\"part\":{},\"start_us\":{:.3},\"busy_us\":{:.3},\"idle_us\":{:.3},\
             \"utilization\":{:.4},\"batches\":{},\"envelopes\":{},\"max_batch\":{},\
             \"empty_polls\":{}",
            profile.part,
            micros(profile.start),
            micros(profile.busy),
            micros(profile.idle),
            profile.utilization(),
            profile.batches,
            profile.envelopes,
            profile.max_batch,
            profile.empty_polls,
        );
        let lane = profile.part + 1;
        self.push_span(
            "worker (aggregate)",
            lane,
            profile.start,
            profile.busy + profile.idle,
            &args,
        );
        self.push_span("busy (aggregate)", lane, profile.start, profile.busy, &args);
        self.push_span(
            "idle (aggregate)",
            lane,
            profile.start + profile.busy,
            profile.idle,
            &args,
        );
    }
}

/// Serializes step profiles as a plain JSON array (one object per step),
/// for harnesses that want the raw numbers rather than a trace timeline.
pub fn step_profiles_json(profiles: &[StepProfile]) -> String {
    let mut out = String::from("[");
    for (i, p) in profiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"step\":{},\"start_us\":{:.3},\"compute_wall_us\":{:.3},\
             \"inbox_wall_us\":{:.3},\"barrier_skew_us\":{:.3},\"enabled_next\":{},\
             \"invocations\":{},\"messages_sent\":{},\"messages_combined\":{},\
             \"state_reads\":{},\"state_writes\":{},\"state_deletes\":{},\"creates\":{},\
             \"direct_outputs\":{},\"spill_batches\":{},\"local_ops\":{},\"remote_ops\":{},\
             \"bytes_marshalled\":{},\"wal_bytes\":{},\"fsyncs\":{},\"replayed_records\":{},\
             \"rpcs\":{},\"net_bytes_in\":{},\"net_bytes_out\":{},\"retries\":{},\
             \"retry_bytes\":{},\"reconnects\":{},\"failovers\":{},\"rpc_p50_us\":{},\
             \"rpc_p99_us\":{},\"parts\":[",
            p.step,
            micros(p.start),
            micros(p.compute_wall),
            micros(p.inbox_wall),
            micros(p.barrier_skew),
            p.enabled_next,
            p.counters.invocations,
            p.counters.messages_sent,
            p.counters.messages_combined,
            p.counters.state_reads,
            p.counters.state_writes,
            p.counters.state_deletes,
            p.counters.creates,
            p.counters.direct_outputs,
            p.counters.spill_batches,
            p.store.local_ops,
            p.store.remote_ops,
            p.store.bytes_marshalled,
            p.store.wal_bytes,
            p.store.fsyncs,
            p.store.replayed_records,
            p.store.rpcs,
            p.store.net_bytes_in,
            p.store.net_bytes_out,
            p.store.retries,
            p.store.retry_bytes,
            p.store.reconnects,
            p.store.failovers,
            p.store.rpc_latency.quantile_upper_us(0.50),
            p.store.rpc_latency.quantile_upper_us(0.99),
        );
        for (j, part) in p.parts.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"part\":{},\"compute_us\":{:.3},\"inbox_us\":{:.3},\"local_ops\":{},\
                 \"remote_ops\":{},\"bytes_marshalled\":{},\"wal_bytes\":{},\"fsyncs\":{},\
                 \"rpcs\":{},\"net_bytes_in\":{},\"net_bytes_out\":{}}}",
                part.part,
                micros(part.compute),
                micros(part.inbox_build),
                part.store.local_ops,
                part.store.remote_ops,
                part.store.bytes_marshalled,
                part.store.wal_bytes,
                part.store.fsyncs,
                part.store.rpcs,
                part.store.net_bytes_in,
                part.store.net_bytes_out,
            );
        }
        out.push_str("]}");
    }
    out.push(']');
    out
}

/// Serializes worker profiles as a plain JSON array.
pub fn worker_profiles_json(profiles: &[WorkerProfile]) -> String {
    let mut out = String::from("[");
    for (i, w) in profiles.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"part\":{},\"start_us\":{:.3},\"busy_us\":{:.3},\"idle_us\":{:.3},\
             \"utilization\":{:.4},\
             \"batches\":{},\"envelopes\":{},\"max_batch\":{},\"empty_polls\":{}}}",
            w.part,
            micros(w.start),
            micros(w.busy),
            micros(w.idle),
            w.utilization(),
            w.batches,
            w.envelopes,
            w.max_batch,
            w.empty_polls,
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{PartStepProfile, StepCounters};

    /// A tiny structural validator: balanced braces/brackets outside
    /// strings, no trailing garbage — enough to catch malformed emission.
    pub(crate) fn json_is_balanced(s: &str) -> bool {
        let mut depth: i64 = 0;
        let mut in_str = false;
        let mut esc = false;
        for c in s.chars() {
            if in_str {
                if esc {
                    esc = false;
                } else if c == '\\' {
                    esc = true;
                } else if c == '"' {
                    in_str = false;
                }
                continue;
            }
            match c {
                '"' => in_str = true,
                '{' | '[' => depth += 1,
                '}' | ']' => {
                    depth -= 1;
                    if depth < 0 {
                        return false;
                    }
                }
                _ => {}
            }
        }
        depth == 0 && !in_str
    }

    fn sample_profile() -> StepProfile {
        StepProfile {
            step: 3,
            start: Duration::from_micros(100),
            compute_wall: Duration::from_micros(50),
            inbox_wall: Duration::from_micros(25),
            barrier_skew: Duration::from_micros(5),
            enabled_next: 7,
            parts: vec![PartStepProfile {
                part: 0,
                compute_start: Duration::from_micros(101),
                compute: Duration::from_micros(40),
                inbox_start: Duration::from_micros(151),
                inbox_build: Duration::from_micros(20),
                ..Default::default()
            }],
            counters: StepCounters {
                invocations: 9,
                ..Default::default()
            },
            store: Default::default(),
        }
    }

    #[test]
    fn recorder_emits_balanced_trace_json() {
        let r = TraceRecorder::new();
        r.on_step_profile(&sample_profile());
        r.on_worker_profile(&WorkerProfile {
            part: 1,
            busy: Duration::from_micros(10),
            ..Default::default()
        });
        let json = r.to_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json_is_balanced(&json), "unbalanced: {json}");
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"C\""));
        assert!(json.contains("thread_name"));
        assert!(json.contains("\"name\":\"controller\""));
        assert!(json.contains("\"name\":\"part 0\""));
    }

    #[test]
    fn worker_spans_anchor_at_first_activity() {
        let r = TraceRecorder::new();
        r.on_worker_profile(&WorkerProfile {
            part: 2,
            start: Duration::from_micros(500),
            busy: Duration::from_micros(40),
            idle: Duration::from_micros(60),
            ..Default::default()
        });
        let json = r.to_json();
        assert!(json_is_balanced(&json), "unbalanced: {json}");
        // The parent and busy spans anchor at the first-activity offset,
        // not t=0; the idle sub-span follows the busy one.
        assert!(json.contains("\"name\":\"worker (aggregate)\""));
        assert!(json.contains("\"name\":\"busy (aggregate)\""));
        assert!(json.contains("\"name\":\"idle (aggregate)\""));
        assert!(json.contains("\"ts\":500.000"));
        assert!(json.contains("\"ts\":540.000"));
        assert!(!json.contains("\"ts\":0.000"));
    }

    #[test]
    fn empty_recorder_is_still_a_valid_document() {
        let json = TraceRecorder::new().to_json();
        assert!(json_is_balanced(&json));
        assert!(TraceRecorder::new().is_empty());
    }

    #[test]
    fn profile_arrays_are_balanced() {
        let steps = step_profiles_json(&[sample_profile()]);
        assert!(json_is_balanced(&steps), "unbalanced: {steps}");
        assert!(steps.contains("\"step\":3"));
        let workers = worker_profiles_json(&[WorkerProfile::default()]);
        assert!(json_is_balanced(&workers));
        assert_eq!(worker_profiles_json(&[]), "[]");
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
