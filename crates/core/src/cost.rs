//! BSP cost model derived from measured step profiles.
//!
//! The classic BSP cost of a run is `T = Σᵢ (wᵢ + g·hᵢ + l)` — per
//! superstep the critical-path work `wᵢ`, the h-relation `hᵢ` (data
//! exchanged across part boundaries), and two machine parameters: `g`,
//! the reciprocal throughput of the communication fabric, and `l`, the
//! fixed synchronization latency (Valiant; see the Bulk docs excerpted in
//! SNIPPETS.md).  `w` and `h` are algorithm properties, obtained here by
//! *measurement* instead of analysis; `g` and `l` are platform constants,
//! fitted here from the same measurements.
//!
//! [`CostModel::derive`] turns the [`StepProfile`]s of one run into one
//! [`StepCost`] per superstep:
//!
//! - `w` — [`StepProfile::critical_compute`], the slowest part's compute
//!   wall (the step cannot finish sooner).
//! - `h` — the step's useful cross-part traffic from the store delta:
//!   wire bytes on networked backends (minus
//!   [`StoreMetrics::retry_bytes`], which re-sends data already priced
//!   once), marshalled bytes on in-process backends.
//! - `g` — fitted bytes-per-second: the step's useful bytes over the
//!   network time estimated from the [`rpc_latency`] histogram.  `None`
//!   where the step did no network I/O (an in-process backend has no
//!   meaningful `g`; its h-relation is priced by `w` already).
//! - `l` — the step's synchronization overhead from below:
//!   [`barrier_skew`] (time fast parts spent waiting) plus the barrier
//!   wall (compute wall past the critical path — dispatch and barrier
//!   bookkeeping).
//!
//! The run-level [`CostModel::g_bytes_per_sec`] and [`CostModel::l_mean`]
//! are the fitted platform parameters; feeding them back into
//! [`CostModel::predicted`] reprices the run and should land near the
//! measured wall time on a healthy run — a cheap self-test of the model
//! that the bench trajectory records alongside the raw terms.
//!
//! [`rpc_latency`]: ripple_kv::StoreMetrics::rpc_latency
//! [`barrier_skew`]: StepProfile::barrier_skew

use std::fmt;
use std::time::Duration;

use ripple_kv::{LatencyBuckets, StoreMetrics};

use crate::profile::StepProfile;

/// The BSP cost terms of one superstep, derived from its [`StepProfile`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepCost {
    /// The step number (1-based, matching [`StepProfile::step`]).
    pub step: u32,
    /// `w` — critical-path compute: the slowest part's compute wall.
    pub w: Duration,
    /// `h` — useful cross-part bytes (retry traffic excluded).
    pub h_bytes: u64,
    /// Messages sent this step — `h` in message units.
    pub h_msgs: u64,
    /// `g` fitted for this step: useful bytes over estimated network
    /// seconds.  `None` when the step did no network I/O.
    pub g_bytes_per_sec: Option<f64>,
    /// `l` — barrier skew plus barrier wall: the step's synchronization
    /// overhead, a lower bound on the platform's `l`.
    pub l: Duration,
}

impl StepCost {
    /// The step's cost `w + h/g + l` under machine parameters
    /// `g_bytes_per_sec` and using the step's own measured `l`.  The `h`
    /// term is zero when the run has no fitted `g` (in-process backends:
    /// communication is memory traffic already inside `w`).
    pub fn priced(&self, g_bytes_per_sec: Option<f64>) -> Duration {
        let comm = match g_bytes_per_sec {
            Some(g) if g > 0.0 => Duration::from_secs_f64(self.h_bytes as f64 / g),
            _ => Duration::ZERO,
        };
        self.w + comm + self.l
    }
}

/// The BSP cost decomposition of one run: per-step terms plus the fitted
/// platform parameters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CostModel {
    /// One cost term per superstep, in step order.
    pub steps: Vec<StepCost>,
    /// `g` fitted over the whole run: total useful bytes over total
    /// estimated network time.  `None` when the run did no network I/O.
    pub g_bytes_per_sec: Option<f64>,
    /// `l` fitted over the whole run: the mean per-step synchronization
    /// overhead.
    pub l_mean: Duration,
}

impl CostModel {
    /// Derives the cost model from the step profiles of one run.
    pub fn derive(profiles: &[StepProfile]) -> Self {
        let steps: Vec<StepCost> = profiles.iter().map(step_cost).collect();
        let total_bytes: u64 = profiles.iter().map(|p| useful_h_bytes(&p.store)).sum();
        let total_net = profiles
            .iter()
            .map(|p| estimated_network_time(&p.store.rpc_latency))
            .sum::<Duration>();
        let g_bytes_per_sec = fit_g(total_bytes, total_net);
        let l_mean = if steps.is_empty() {
            Duration::ZERO
        } else {
            steps.iter().map(|s| s.l).sum::<Duration>() / steps.len() as u32
        };
        Self {
            steps,
            g_bytes_per_sec,
            l_mean,
        }
    }

    /// Total critical-path work `Σ wᵢ`.
    pub fn total_w(&self) -> Duration {
        self.steps.iter().map(|s| s.w).sum()
    }

    /// Total useful h-relation bytes `Σ hᵢ`.
    pub fn total_h_bytes(&self) -> u64 {
        self.steps.iter().map(|s| s.h_bytes).sum()
    }

    /// Total messages sent.
    pub fn total_h_msgs(&self) -> u64 {
        self.steps.iter().map(|s| s.h_msgs).sum()
    }

    /// Total synchronization overhead `Σ lᵢ`.
    pub fn total_l(&self) -> Duration {
        self.steps.iter().map(|s| s.l).sum()
    }

    /// The model's repriced run cost `Σᵢ (wᵢ + hᵢ/g + lᵢ)` under the
    /// run-fitted `g`.  On a healthy run this lands near the measured
    /// wall time; a large gap means the model is missing a term (or the
    /// run was not healthy).
    pub fn predicted(&self) -> Duration {
        self.steps
            .iter()
            .map(|s| s.priced(self.g_bytes_per_sec))
            .sum()
    }
}

impl fmt::Display for CostModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps: w {:?}, h {} B / {} msgs, l {:?} (mean {:?}/step)",
            self.steps.len(),
            self.total_w(),
            self.total_h_bytes(),
            self.total_h_msgs(),
            self.total_l(),
            self.l_mean,
        )?;
        if let Some(g) = self.g_bytes_per_sec {
            write!(f, ", g {:.0} B/s", g)?;
        }
        write!(f, ", predicted {:?}", self.predicted())
    }
}

/// The useful h-relation bytes of one store delta: wire bytes minus retry
/// traffic on networked backends, marshalled bytes on in-process ones.
///
/// Retry bytes re-send data the h-relation already prices once; counting
/// them would let chaos inflate `h` (and the fitted `g`) without any
/// change to the algorithm's communication pattern.
pub fn useful_h_bytes(delta: &StoreMetrics) -> u64 {
    let wire = delta.net_bytes_in + delta.net_bytes_out;
    if wire > 0 {
        wire.saturating_sub(delta.retry_bytes)
    } else {
        delta.bytes_marshalled
    }
}

/// Estimates the wall time spent in network round trips from a latency
/// histogram: each bucket contributes its count at the bucket's midpoint
/// (bucket `i` spans `[2^i, 2^(i+1))` µs, midpoint `1.5 · 2^i` µs).
///
/// Round trips pipelined over one connection overlap, so this is an upper
/// bound on the wire time — and therefore `g` fitted from it is a lower
/// bound on the fabric's true throughput.  Good enough to trend: the same
/// workload on the same platform lands in the same place run over run.
pub fn estimated_network_time(lat: &LatencyBuckets) -> Duration {
    let us: u64 = lat
        .0
        .iter()
        .enumerate()
        .map(|(i, &count)| count.saturating_mul(3 * (1u64 << i) / 2))
        .sum();
    Duration::from_micros(us)
}

fn fit_g(useful_bytes: u64, net_time: Duration) -> Option<f64> {
    if useful_bytes == 0 || net_time.is_zero() {
        None
    } else {
        Some(useful_bytes as f64 / net_time.as_secs_f64())
    }
}

fn step_cost(p: &StepProfile) -> StepCost {
    let w = p.critical_compute();
    let h_bytes = useful_h_bytes(&p.store);
    let net_time = estimated_network_time(&p.store.rpc_latency);
    // Barrier wall: compute wall past the critical path — controller
    // dispatch plus barrier bookkeeping.  Saturating, because on a
    // stolen-work phase `critical_compute` falls back to the wall itself.
    let barrier_wall = p.compute_wall.saturating_sub(w);
    StepCost {
        step: p.step,
        w,
        h_bytes,
        h_msgs: p.counters.messages_sent,
        g_bytes_per_sec: fit_g(h_bytes, net_time),
        l: p.barrier_skew + barrier_wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{PartStepProfile, StepCounters};

    fn mem_step(step: u32, compute_ms: u64, bytes: u64, msgs: u64) -> StepProfile {
        StepProfile {
            step,
            compute_wall: Duration::from_millis(compute_ms + 1),
            barrier_skew: Duration::from_millis(1),
            parts: vec![PartStepProfile {
                part: 0,
                compute: Duration::from_millis(compute_ms),
                ..Default::default()
            }],
            counters: StepCounters {
                messages_sent: msgs,
                ..Default::default()
            },
            store: StoreMetrics {
                bytes_marshalled: bytes,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn derives_w_h_l_per_step() {
        let model = CostModel::derive(&[mem_step(1, 10, 100, 5), mem_step(2, 20, 300, 7)]);
        assert_eq!(model.steps.len(), 2);
        assert_eq!(model.steps[0].w, Duration::from_millis(10));
        assert_eq!(model.steps[0].h_bytes, 100);
        assert_eq!(model.steps[0].h_msgs, 5);
        // l = skew (1 ms) + barrier wall (compute_wall − w = 1 ms).
        assert_eq!(model.steps[0].l, Duration::from_millis(2));
        assert_eq!(model.total_w(), Duration::from_millis(30));
        assert_eq!(model.total_h_bytes(), 400);
        assert_eq!(model.total_h_msgs(), 12);
        assert_eq!(model.l_mean, Duration::from_millis(2));
        // No network I/O: no fitted g, and the h term prices at zero.
        assert_eq!(model.g_bytes_per_sec, None);
        assert_eq!(model.predicted(), Duration::from_millis(34));
    }

    #[test]
    fn retry_bytes_are_excluded_from_h() {
        let mut p = mem_step(1, 10, 0, 0);
        p.store = StoreMetrics {
            net_bytes_in: 600,
            net_bytes_out: 400,
            retry_bytes: 250,
            ..Default::default()
        };
        assert_eq!(useful_h_bytes(&p.store), 750);
        // In-process fallback uses marshalled bytes.
        assert_eq!(
            useful_h_bytes(&StoreMetrics {
                bytes_marshalled: 42,
                ..Default::default()
            }),
            42
        );
    }

    #[test]
    fn g_is_fitted_from_latency_and_bytes() {
        let mut lat = LatencyBuckets::new();
        // Two round trips in bucket 10 (1024–2048 µs): midpoint 1536 µs
        // each, 3072 µs total.
        lat.observe_us(1100);
        lat.observe_us(1500);
        assert_eq!(estimated_network_time(&lat), Duration::from_micros(3072));
        let mut p = mem_step(1, 1, 0, 0);
        p.store = StoreMetrics {
            net_bytes_in: 1536,
            net_bytes_out: 1536,
            rpc_latency: lat,
            ..Default::default()
        };
        let model = CostModel::derive(&[p]);
        let g = model.g_bytes_per_sec.expect("networked run fits g");
        // 3072 useful bytes over 3072 µs → 1 byte/µs → 1e6 bytes/sec.
        assert!((g - 1_000_000.0).abs() < 1.0, "g = {g}");
        assert!(model.predicted() > Duration::ZERO);
    }

    #[test]
    fn empty_run_is_well_formed() {
        let model = CostModel::derive(&[]);
        assert!(model.steps.is_empty());
        assert_eq!(model.g_bytes_per_sec, None);
        assert_eq!(model.l_mean, Duration::ZERO);
        assert_eq!(model.predicted(), Duration::ZERO);
        assert!(!model.to_string().is_empty());
    }
}
