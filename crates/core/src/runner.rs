use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use ripple_kv::{
    DurableStore, HealableStore, KvStore, RecoverableStore, RoutedKey, Table, TableSpec,
};
use ripple_wire::{from_wire, to_wire};

use crate::engine::nosync::{run_nosync, HealFn, NosyncOptions};
use crate::engine::sync::{run_sync, DurableOpts, RecoveryHooks, ResumePoint, SyncOptions};
use crate::engine::JobEnv;
use crate::options::{AuditOpts, Basic, Durable, Heal, LaunchMode, Recover, RunOptions};
use crate::{
    AggValue, AggregateSnapshot, AggregatorRegistry, EbspError, ExecMode, ExecutionPlan, Job,
    Loader, RetryPolicy, RunMetrics,
};

/// Which message-queuing implementation unsynchronized runs use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QueueKind {
    /// In-process FIFO channels (the fast path).
    #[default]
    Channel,
    /// The paper's generic table-backed queue sets.
    Table,
}

/// The results of a completed job run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Steps taken (0 for unsynchronized runs — that is the point).
    pub steps: u32,
    /// Whether the job's aborter stopped execution early.
    pub aborted: bool,
    /// Final aggregator results.
    pub aggregates: AggregateSnapshot,
    /// What the run did and what it cost.
    pub metrics: RunMetrics,
    /// Which engine ran the job.
    pub mode: ExecMode,
    /// One [`StepProfile`](crate::StepProfile) per synchronized step, in
    /// step order, when [`JobRunner::profile`] was enabled; `None` when
    /// profiling was off or the run was unsynchronized.
    pub profiles: Option<Vec<crate::StepProfile>>,
    /// One [`WorkerProfile`](crate::WorkerProfile) per unsynchronized
    /// worker that drained normally, when [`JobRunner::profile`] was
    /// enabled; `None` when profiling was off or the run was synchronized.
    pub worker_profiles: Option<Vec<crate::WorkerProfile>>,
}

/// Configures and runs K/V EBSP jobs against a store.
///
/// `JobRunner` is a non-consuming builder: configure it, then call
/// [`JobRunner::launch`] any number of times.  The launch takes a
/// [`RunOptions`] selecting extra loaders and the run mode — healing,
/// recovery, durability — checked against the store's capabilities at
/// compile time.
///
/// # Examples
///
/// A tiny converging job — each component halves a counter in its state
/// until it reaches zero:
///
/// ```
/// use std::sync::Arc;
/// use ripple_core::{ComputeContext, EbspError, FnLoader, Job, JobRunner, LoadSink};
/// use ripple_store_mem::MemStore;
///
/// struct Halver;
///
/// impl Job for Halver {
///     type Key = u32;
///     type State = u64;
///     type Message = ();
///     type OutKey = ();
///     type OutValue = ();
///
///     fn state_tables(&self) -> Vec<String> {
///         vec!["counters".to_owned()]
///     }
///
///     fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
///         let v = ctx.read_state(0)?.unwrap_or(0) / 2;
///         ctx.write_state(0, &v)?;
///         Ok(v > 0) // stay enabled until the counter hits zero
///     }
/// }
///
/// # fn main() -> Result<(), EbspError> {
/// use ripple_core::RunOptions;
///
/// let store = MemStore::builder().default_parts(4).build();
/// let loader = FnLoader::new(|sink: &mut dyn LoadSink<Halver>| {
///     for k in 0..10u32 {
///         sink.state(0, k, 1 << k)?;
///         sink.enable(k)?;
///     }
///     Ok(())
/// });
/// let outcome = JobRunner::new(store).launch(
///     Arc::new(Halver),
///     RunOptions::new().loader(Box::new(loader)),
/// )?;
/// assert_eq!(outcome.steps, 10); // 1 << 9 reaches zero after 10 halvings
/// # Ok(())
/// # }
/// ```
#[derive(Clone)]
pub struct JobRunner<S: KvStore> {
    store: S,
    max_steps: u32,
    checkpoint_interval: Option<u32>,
    force_mode: Option<ExecMode>,
    queue_kind: QueueKind,
    quiescence_timeout: Duration,
    agg_table_threshold: usize,
    observer: Option<Arc<dyn crate::RunObserver>>,
    retry: RetryPolicy,
    fast_recovery: bool,
    profile: bool,
    trace_to: Option<std::path::PathBuf>,
    task_gate: Option<Arc<dyn crate::TaskGate>>,
}

impl<S: KvStore> std::fmt::Debug for JobRunner<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobRunner")
            .field("max_steps", &self.max_steps)
            .field("checkpoint_interval", &self.checkpoint_interval)
            .field("force_mode", &self.force_mode)
            .field("queue_kind", &self.queue_kind)
            .field("quiescence_timeout", &self.quiescence_timeout)
            .field("agg_table_threshold", &self.agg_table_threshold)
            .field("observer", &self.observer.is_some())
            .field("retry", &self.retry)
            .field("fast_recovery", &self.fast_recovery)
            .field("profile", &self.profile)
            .field("trace_to", &self.trace_to)
            .field("task_gate", &self.task_gate.is_some())
            .finish_non_exhaustive()
    }
}

impl<S: KvStore> JobRunner<S> {
    /// Creates a runner over `store` with default options.
    pub fn new(store: S) -> Self {
        Self {
            store,
            max_steps: 1_000_000,
            checkpoint_interval: None,
            force_mode: None,
            queue_kind: QueueKind::default(),
            quiescence_timeout: Duration::from_secs(300),
            agg_table_threshold: 16,
            observer: None,
            retry: RetryPolicy::default(),
            fast_recovery: true,
            profile: false,
            trace_to: None,
            task_gate: None,
        }
    }

    /// Throttles this runner's synchronized part-tasks through `gate`: every
    /// compute and inbox-build task acquires a permit before touching its
    /// part and releases it when done.  This is the worker-sharing hook a
    /// resident multi-tenant service uses to interleave part-tasks from
    /// concurrent jobs fairly over a bounded worker pool; a solo runner
    /// (the default, `None`) runs ungated.  The gate does not alter
    /// results — it only schedules *when* each part-task runs within its
    /// phase, never reordering work across a barrier.
    pub fn task_gate(&mut self, gate: Arc<dyn crate::TaskGate>) -> &mut Self {
        self.task_gate = Some(gate);
        self
    }

    /// Collects step-level profiles: synchronized runs yield one
    /// [`StepProfile`](crate::StepProfile) per step (per-part compute and
    /// inbox-build wall times, barrier skew, per-step store deltas),
    /// streamed through
    /// [`RunObserver::on_step_profile`](crate::RunObserver::on_step_profile)
    /// as each barrier completes and collected on
    /// [`RunOutcome::profiles`]; unsynchronized runs yield one
    /// [`WorkerProfile`](crate::WorkerProfile) per worker on
    /// [`RunOutcome::worker_profiles`].  Off by default.
    pub fn profile(&mut self, enabled: bool) -> &mut Self {
        self.profile = enabled;
        self
    }

    /// Writes a Chrome trace-event JSON file (loadable in
    /// `chrome://tracing` or Perfetto) to `path` when a run finishes.
    /// Implies [`JobRunner::profile`]; composes with any user
    /// [`JobRunner::observer`].
    pub fn trace_to(&mut self, path: impl Into<std::path::PathBuf>) -> &mut Self {
        self.trace_to = Some(path.into());
        self
    }

    /// Sets how the engines retry transient store faults
    /// ([`KvError::Transient`](ripple_kv::KvError)) before surfacing them.
    /// Defaults to [`RetryPolicy::default`]; use [`RetryPolicy::none`] to
    /// fail fast.
    pub fn retry_policy(&mut self, policy: RetryPolicy) -> &mut Self {
        self.retry = policy;
        self
    }

    /// Whether recovery launches ([`RunOptions::recovery`]) may replay a
    /// single failed part alone instead of rolling the whole group back.
    /// Enabled by default; it only takes effect when the job's declared
    /// determinism lets the plan allow it.
    pub fn fast_recovery(&mut self, enabled: bool) -> &mut Self {
        self.fast_recovery = enabled;
        self
    }

    /// Attaches a [`RunObserver`](crate::RunObserver) receiving per-step,
    /// checkpoint, and recovery callbacks from synchronized runs.
    pub fn observer(&mut self, observer: Arc<dyn crate::RunObserver>) -> &mut Self {
        self.observer = Some(observer);
        self
    }

    /// At or above this many declared aggregators, per-part partial
    /// aggregates flow through auxiliary tables plus an extra enumeration
    /// round instead of returning to the controller (§IV-A); below it they
    /// return directly.  Default 16.
    pub fn aggregator_table_threshold(&mut self, n: usize) -> &mut Self {
        self.agg_table_threshold = n;
        self
    }

    /// Caps the number of steps a synchronized run may take.
    pub fn max_steps(&mut self, limit: u32) -> &mut Self {
        self.max_steps = limit;
        self
    }

    /// Enables barrier checkpoints every `steps` steps for recovery and
    /// durable launches ([`RunOptions::recovery`]).  Deterministic jobs can
    /// afford larger intervals (replay is exact); non-deterministic jobs
    /// should checkpoint every barrier.
    pub fn checkpoint_interval(&mut self, steps: u32) -> &mut Self {
        self.checkpoint_interval = Some(steps.max(1));
        self
    }

    /// Overrides the engine choice.  Forcing [`ExecMode::Synchronized`] is
    /// always sound (the SUMMA experiment runs the same job both ways);
    /// forcing [`ExecMode::Unsynchronized`] is checked against the job's
    /// properties.
    pub fn force_mode(&mut self, mode: ExecMode) -> &mut Self {
        self.force_mode = Some(mode);
        self
    }

    /// Selects the queue-set implementation for unsynchronized runs.
    pub fn queue_kind(&mut self, kind: QueueKind) -> &mut Self {
        self.queue_kind = kind;
        self
    }

    /// Safety limit for unsynchronized runs: if the system has not
    /// quiesced within this duration the run fails with
    /// [`EbspError::QuiescenceTimeout`].
    pub fn quiescence_timeout(&mut self, timeout: Duration) -> &mut Self {
        self.quiescence_timeout = timeout;
        self
    }

    /// Runs `job` as configured by `options` — the one entry point for
    /// every run mode.
    ///
    /// `options` carries extra loaders and the mode: [`RunOptions::new`]
    /// for a plain run, upgraded with [`RunOptions::healing`],
    /// [`RunOptions::recovery`] or [`RunOptions::durable`].  Each mode
    /// compiles only against a store with the matching capability traits,
    /// so an impossible combination (say, durability on a memory-only
    /// store) is rejected by the type checker rather than at runtime.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::InvalidJob`] for inconsistent job
    /// definitions, [`EbspError::PlanViolation`] for impossible forced
    /// modes, [`EbspError::ConfigUnsupported`] when a
    /// [`JobRunner::checkpoint_interval`] is set on a mode that takes no
    /// checkpoints (it would be silently ignored), and engine/store errors
    /// from the run itself.  Recovery modes add
    /// [`EbspError::Unrecoverable`] when a part cannot be brought back.
    pub fn launch<J: Job, M: LaunchMode<S>>(
        &self,
        job: Arc<J>,
        options: RunOptions<J, M>,
    ) -> Result<RunOutcome, EbspError> {
        if let Some(deadline) = options.op_deadline_opt() {
            self.store.set_op_deadline(Some(deadline));
        }
        M::launch_on(self, job, options)
    }

    fn run_inner<J: Job>(
        &self,
        job: Arc<J>,
        extra_loaders: Vec<Box<dyn Loader<J>>>,
        heal: Option<Arc<HealFn>>,
        audit: AuditOpts,
    ) -> Result<RunOutcome, EbspError> {
        if self.checkpoint_interval.is_some() {
            return Err(EbspError::ConfigUnsupported {
                option: "checkpoint_interval",
                reason: "this entry point takes no checkpoints; launch with \
                         RunOptions::new().recovery() on a store with shard snapshots"
                    .to_owned(),
            });
        }
        let (env, mode) = self.prepare(job)?;
        let mut loaders = env.job.loaders();
        loaders.extend(extra_loaders);
        let (profile, observer, recorder) = self.profiling_setup();
        let result = match mode {
            ExecMode::Synchronized => run_sync(
                &env,
                loaders,
                &SyncOptions {
                    max_steps: self.max_steps,
                    checkpoint_interval: None,
                    agg_table_threshold: self.agg_table_threshold,
                    observer,
                    retry: self.retry,
                    fast_recovery: self.fast_recovery,
                    profile,
                    probe: audit.probe.clone(),
                    shuffle: audit.shuffle_seed,
                    task_gate: self.task_gate.clone(),
                },
                None,
                None,
            ),
            ExecMode::Unsynchronized => run_nosync(
                &env,
                loaders,
                &NosyncOptions {
                    quiescence_timeout: self.quiescence_timeout,
                    retry: self.retry,
                    observer,
                    heal,
                    profile,
                    probe: audit.probe.clone(),
                    ..NosyncOptions::default()
                },
                self.queue_kind,
            ),
        };
        // A trace of a failed run is still worth having, but the run's own
        // error takes precedence over a trace-write error.
        let trace_result = self.write_trace(recorder.as_deref());
        let outcome = result?;
        trace_result?;
        self.apply_state_exporters(&env)?;
        Ok(outcome)
    }

    /// Resolves the effective profiling flag and observer: `trace_to`
    /// implies profiling and splices an internal [`crate::TraceRecorder`]
    /// in front of any user observer via [`crate::FanoutObserver`].
    ///
    /// When an observer exists it is also installed as the store's event
    /// sink, so store-level failure detection (part down, replica
    /// promotion) surfaces through [`crate::RunObserver::on_part_down`] /
    /// [`crate::RunObserver::on_failover`] instead of being visible only
    /// as latency.  In-process stores ignore the sink.
    #[allow(clippy::type_complexity)]
    fn profiling_setup(
        &self,
    ) -> (
        bool,
        Option<Arc<dyn crate::RunObserver>>,
        Option<Arc<crate::TraceRecorder>>,
    ) {
        let profile = self.profile || self.trace_to.is_some();
        let recorder = self
            .trace_to
            .as_ref()
            .map(|_| Arc::new(crate::TraceRecorder::new()));
        let observer = match (&self.observer, &recorder) {
            (Some(user), Some(rec)) => Some(Arc::new(crate::FanoutObserver::new(vec![
                Arc::clone(user),
                Arc::clone(rec) as Arc<dyn crate::RunObserver>,
            ])) as Arc<dyn crate::RunObserver>),
            (Some(user), None) => Some(Arc::clone(user)),
            (None, Some(rec)) => Some(Arc::clone(rec) as Arc<dyn crate::RunObserver>),
            (None, None) => None,
        };
        if let Some(obs) = &observer {
            self.store
                .set_event_sink(Arc::new(ObserverEventSink(Arc::clone(obs))));
        }
        (profile, observer, recorder)
    }

    /// Writes the run's trace to the configured path, if both exist.
    fn write_trace(&self, recorder: Option<&crate::TraceRecorder>) -> Result<(), EbspError> {
        if let (Some(recorder), Some(path)) = (recorder, &self.trace_to) {
            recorder
                .write_to(path)
                .map_err(|e| EbspError::ConfigUnsupported {
                    option: "trace_to",
                    reason: format!("cannot write trace to {}: {e}", path.display()),
                })?;
        }
        Ok(())
    }

    /// Runs the job's `state_exporters` over the final table contents.
    fn apply_state_exporters<J: Job>(&self, env: &JobEnv<S, J>) -> Result<(), EbspError> {
        for (tab, exporter) in env.job.state_exporters() {
            let table = env.tables.get(tab).ok_or(EbspError::StateTableIndex {
                index: tab,
                tables: env.tables.len(),
            })?;
            crate::export_state_table::<S, J::Key, J::State, _>(&self.store, table, exporter)?;
        }
        Ok(())
    }

    /// Validates the job, materializes its tables (creating missing ones
    /// co-partitioned with the reference table), and picks the engine.
    fn prepare<J: Job>(&self, job: Arc<J>) -> Result<(JobEnv<S, J>, ExecMode), EbspError> {
        job.properties().validate()?;
        let table_names = job.state_tables();
        if table_names.is_empty() {
            return Err(EbspError::InvalidJob {
                reason: "a job needs at least one state table".to_owned(),
            });
        }
        let reference_name = job.reference_table();
        if reference_name.is_empty() {
            return Err(EbspError::InvalidJob {
                reason: "the reference table name is empty".to_owned(),
            });
        }
        let reference = match self.store.lookup_table(&reference_name) {
            Ok(t) => t,
            Err(_) => self.store.create_table(&TableSpec::new(&reference_name))?,
        };
        let mut tables = Vec::with_capacity(table_names.len());
        for name in &table_names {
            let table = if *name == reference_name {
                reference.clone()
            } else {
                match self.store.lookup_table(name) {
                    Ok(t) => {
                        if t.partitioning_id() != reference.partitioning_id() {
                            return Err(EbspError::InvalidJob {
                                reason: format!(
                                    "state table {name:?} is not co-partitioned with the \
                                     reference table {reference_name:?}"
                                ),
                            });
                        }
                        t
                    }
                    Err(_) => self.store.create_table_like(name, &reference)?,
                }
            };
            tables.push(table);
        }
        let broadcast_name = match job.broadcast_table() {
            None => None,
            Some(name) => {
                let t = self.store.lookup_table(&name)?;
                if !t.is_ubiquitous() {
                    return Err(EbspError::InvalidJob {
                        reason: format!("broadcast table {name:?} is not ubiquitous"),
                    });
                }
                Some(name)
            }
        };
        let registry = AggregatorRegistry::new(job.aggregators())?;
        let plan =
            ExecutionPlan::derive(&job.properties(), registry.is_empty(), !job.has_aborter());
        let mode = match self.force_mode {
            None => plan.mode,
            Some(ExecMode::Synchronized) => ExecMode::Synchronized,
            Some(ExecMode::Unsynchronized) => {
                if plan.mode != ExecMode::Unsynchronized {
                    return Err(EbspError::PlanViolation {
                        reason: "the job's properties do not permit unsynchronized execution"
                            .to_owned(),
                    });
                }
                ExecMode::Unsynchronized
            }
        };
        let direct = job.direct_output();
        Ok((
            JobEnv {
                store: self.store.clone(),
                job,
                registry,
                plan,
                table_names: Arc::new(table_names),
                tables,
                reference,
                broadcast_name,
                direct,
            },
            mode,
        ))
    }
}

/// Adapts a [`crate::RunObserver`] to the store SPI's event sink so
/// store-internal failure detection lands in the same observer stream as
/// engine events.  Calls may arrive from store threads; the observer
/// contract (cheap, non-blocking) already covers that.
struct ObserverEventSink(Arc<dyn crate::RunObserver>);

impl ripple_kv::StoreEventSink for ObserverEventSink {
    fn on_part_down(&self, part: u32, epoch: u64) {
        self.0.on_part_down(part, epoch);
    }
    fn on_failover(&self, part: u32, epoch: u64) {
        self.0.on_failover(part, epoch);
    }
}

impl<S: KvStore> LaunchMode<S> for Basic {
    fn launch_on<J: Job>(
        runner: &JobRunner<S>,
        job: Arc<J>,
        options: RunOptions<J, Self>,
    ) -> Result<RunOutcome, EbspError> {
        let (loaders, audit) = options.into_parts();
        runner.run_inner(job, loaders, None, audit)
    }
}

/// Store-side part *healing*: an unsynchronized worker whose part fails
/// underneath it (or whose compute panics) promotes the part's surviving
/// replicas, re-mints termination-detector weight for its in-flight round,
/// redelivers it, and carries on.  Redelivery is at-least-once, so the job
/// must be idempotent — which the incremental jobs this engine serves are.
/// Adds [`EbspError::Unrecoverable`] when the store cannot restore the
/// part or the respawn budget is exhausted.
impl<S: HealableStore> LaunchMode<S> for Heal {
    fn launch_on<J: Job>(
        runner: &JobRunner<S>,
        job: Arc<J>,
        options: RunOptions<J, Self>,
    ) -> Result<RunOutcome, EbspError> {
        let (loaders, audit) = options.into_parts();
        let store = runner.store.clone();
        let reference_name = job.reference_table();
        let heal: Arc<HealFn> = Arc::new(move |part| {
            let reference = store.lookup_table(&reference_name)?;
            store.recover_part(&reference, part)
        });
        runner.run_inner(job, loaders, Some(heal), audit)
    }
}

impl<S: RecoverableStore + HealableStore> JobRunner<S> {
    /// Builds the type-erased checkpoint/restore/promote callbacks the
    /// synchronized engine drives, anchored at `reference`'s partitioning
    /// group.
    fn recovery_hooks(&self, reference: &S::Table) -> RecoveryHooks {
        let store = self.store.clone();
        let reference = reference.clone();
        let restore_store = store.clone();
        let tables_store = store.clone();
        let promote_store = store.clone();
        let promote_reference = reference.clone();
        RecoveryHooks {
            checkpoint: Box::new(move |part| {
                store
                    .checkpoint_part(&reference, part)
                    .map(|cp| Box::new(cp) as Box<dyn std::any::Any + Send>)
            }),
            restore: Box::new(move |any| {
                let cp = any
                    .downcast_ref::<S::Checkpoint>()
                    .expect("checkpoint type is fixed per store");
                restore_store.restore_part(cp)
            }),
            restore_tables: Box::new(move |any, tables| {
                let cp = any
                    .downcast_ref::<S::Checkpoint>()
                    .expect("checkpoint type is fixed per store");
                tables_store.restore_part_tables(cp, tables)
            }),
            promote: Box::new(move |part| promote_store.recover_part(&promote_reference, part)),
        }
    }

    /// Barrier checkpointing and automatic recovery from part failures:
    /// whole-group rollback-replay by default, or — when the job's
    /// determinism allows it and [`JobRunner::fast_recovery`] is left
    /// enabled — restore-and-replay of the failed part *alone* while
    /// surviving parts keep their state.  Requires a store with shard
    /// checkpoints; the cadence comes from
    /// [`JobRunner::checkpoint_interval`] (defaulting to every barrier if
    /// unset).  Only synchronized execution supports recovery; the mode is
    /// forced.  Adds [`EbspError::Unrecoverable`] if a part fails with no
    /// checkpoint to rewind to.
    fn launch_recoverable<J: Job>(
        &self,
        job: Arc<J>,
        extra_loaders: Vec<Box<dyn Loader<J>>>,
        audit: AuditOpts,
    ) -> Result<RunOutcome, EbspError> {
        let (env, _) = self.prepare(job)?;
        let mut loaders = env.job.loaders();
        loaders.extend(extra_loaders);
        let hooks = self.recovery_hooks(&env.reference);
        let interval = self.checkpoint_interval.unwrap_or(1);
        let (profile, observer, recorder) = self.profiling_setup();
        let result = run_sync(
            &env,
            loaders,
            &SyncOptions {
                max_steps: self.max_steps,
                checkpoint_interval: Some(interval),
                agg_table_threshold: self.agg_table_threshold,
                observer,
                retry: self.retry,
                fast_recovery: self.fast_recovery,
                profile,
                probe: audit.probe,
                shuffle: audit.shuffle_seed,
                task_gate: self.task_gate.clone(),
            },
            Some(hooks),
            None,
        );
        let trace_result = self.write_trace(recorder.as_deref());
        let outcome = result?;
        trace_result?;
        self.apply_state_exporters(&env)?;
        Ok(outcome)
    }
}

impl<S: RecoverableStore + HealableStore> LaunchMode<S> for Recover {
    fn launch_on<J: Job>(
        runner: &JobRunner<S>,
        job: Arc<J>,
        options: RunOptions<J, Self>,
    ) -> Result<RunOutcome, EbspError> {
        let (loaders, audit) = options.into_parts();
        runner.launch_recoverable(job, loaders, audit)
    }
}

impl<S: RecoverableStore + HealableStore + DurableStore> JobRunner<S> {
    /// Durable barrier commits and cross-restart resume.
    ///
    /// On top of everything the recovery mode does, every
    /// checkpoint barrier also runs the durable commit protocol: barrier
    /// markers into the store's logs
    /// ([`DurableStore::commit_barrier`]), a resume *journal* describing
    /// the cut (step, enabled count, aggregate snapshot) written and
    /// flushed, then log compaction ([`DurableStore::compact_group`]).
    /// If the process dies mid-run — crash, kill, step-limit abort — a
    /// later durable launch of the same job against a reopened store finds
    /// the journal, rewinds the store to the journalled barrier
    /// ([`DurableStore::rewind_group`]), skips the loaders, and continues
    /// from the step after it.  For deterministic jobs the resumed run's
    /// output is byte-identical to an uninterrupted one.
    ///
    /// The journal lives in an ordinary table named
    /// `__durable_journal_<reference>`, deliberately *not* co-partitioned
    /// with the reference table so rewinds never touch it.  A successful
    /// finish clears the journal and drops the run's temporary tables.
    ///
    /// Additionally fails if the store cannot honour a journalled rewind
    /// (e.g. a memory store that lost the logged bytes with the process).
    fn launch_durable<J: Job>(
        &self,
        job: Arc<J>,
        extra_loaders: Vec<Box<dyn Loader<J>>>,
        audit: AuditOpts,
    ) -> Result<RunOutcome, EbspError> {
        let (env, _) = self.prepare(job)?;
        let mut loaders = env.job.loaders();
        loaders.extend(extra_loaders);
        let reference_name = env.reference.name().to_owned();
        let nonce = format!("dur_{reference_name}");

        let journal_name = format!("__durable_journal_{reference_name}");
        let journal = match self.store.lookup_table(&journal_name) {
            Ok(t) => t,
            Err(_) => self.store.create_table(&TableSpec::new(&journal_name))?,
        };
        let journal_key = RoutedKey::with_route(0, Bytes::from_static(b"__durable_journal"));

        let resume = match journal.get(&journal_key)? {
            None => None,
            Some(bytes) => {
                let (step, enabled, entries): (u32, u64, Vec<(String, AggValue)>) =
                    from_wire(&bytes)?;
                Some(ResumePoint {
                    step,
                    enabled,
                    agg: AggregateSnapshot::new(entries.into_iter().collect()),
                })
            }
        };
        match &resume {
            Some(rp) => {
                // Re-establish the journalled cut: discard every log byte
                // after the barrier markers for the journalled step.
                self.store
                    .rewind_group(&env.reference, u64::from(rp.step))?;
            }
            None => {
                // Fresh start: sweep temporaries a cleared-but-interrupted
                // earlier run may have left behind.
                for kind in ["xport", "inbox", "agg1", "agg2"] {
                    let _ = self.store.drop_table(&format!("__ebsp_{kind}_{nonce}"));
                }
            }
        }

        let hooks = self.recovery_hooks(&env.reference);
        let commit_store = self.store.clone();
        let commit_reference = env.reference.clone();
        let compact_store = self.store.clone();
        let compact_reference = env.reference.clone();
        let journal_table = journal.clone();
        let journal_store = self.store.clone();
        let jkey = journal_key.clone();
        let clear_table = journal;
        let clear_store = self.store.clone();
        let clear_key = journal_key;
        let durable = DurableOpts {
            commit: Box::new(move |epoch| {
                commit_store
                    .commit_barrier(&commit_reference, epoch)
                    .map_err(EbspError::from)
            }),
            journal: Box::new(move |step, enabled, agg| {
                let mut entries: Vec<(String, AggValue)> =
                    agg.iter().map(|(n, v)| (n.to_owned(), v)).collect();
                entries.sort_by(|a, b| a.0.cmp(&b.0));
                journal_table.put(jkey.clone(), to_wire(&(step, enabled, entries)))?;
                journal_store.flush()?;
                Ok(())
            }),
            compact: Box::new(move |epoch| {
                compact_store
                    .compact_group(&compact_reference, epoch)
                    .map_err(EbspError::from)
            }),
            clear: Box::new(move || {
                clear_table.delete(&clear_key)?;
                clear_store.flush()?;
                Ok(())
            }),
            resume,
            nonce,
        };

        let interval = self.checkpoint_interval.unwrap_or(1);
        let (profile, observer, recorder) = self.profiling_setup();
        let result = run_sync(
            &env,
            loaders,
            &SyncOptions {
                max_steps: self.max_steps,
                checkpoint_interval: Some(interval),
                agg_table_threshold: self.agg_table_threshold,
                observer,
                retry: self.retry,
                fast_recovery: self.fast_recovery,
                profile,
                probe: audit.probe,
                shuffle: audit.shuffle_seed,
                task_gate: self.task_gate.clone(),
            },
            Some(hooks),
            Some(durable),
        );
        let trace_result = self.write_trace(recorder.as_deref());
        let outcome = result?;
        trace_result?;
        self.apply_state_exporters(&env)?;
        Ok(outcome)
    }
}

impl<S: RecoverableStore + HealableStore + DurableStore> LaunchMode<S> for Durable {
    fn launch_on<J: Job>(
        runner: &JobRunner<S>,
        job: Arc<J>,
        options: RunOptions<J, Self>,
    ) -> Result<RunOutcome, EbspError> {
        let (loaders, audit) = options.into_parts();
        runner.launch_durable(job, loaders, audit)
    }
}
