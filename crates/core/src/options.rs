//! One launch configuration for every run mode.
//!
//! [`JobRunner::launch`](crate::JobRunner::launch) replaced five parallel
//! entry points (`run`, `run_with_loaders`, `run_healable`,
//! `run_recoverable`, `run_durable` — deprecated for a release cycle, now
//! removed) with a single method taking a [`RunOptions`].  The options value starts basic and is upgraded by
//! builder methods — [`RunOptions::healing`], [`RunOptions::recovery`],
//! [`RunOptions::durable`] — each of which moves the value into a new
//! *mode* type.  The mode is checked against the store at compile time:
//! launching a healing run needs a [`HealableStore`](ripple_kv::HealableStore),
//! a recoverable run needs a healable
//! [`RecoverableStore`](ripple_kv::RecoverableStore), and a durable run
//! additionally needs a [`DurableStore`](ripple_kv::DurableStore).  Asking
//! a store for a capability it lacks is a type error at the `launch` call,
//! not a runtime surprise.
//!
//! # Examples
//!
//! ```
//! use std::sync::Arc;
//! use ripple_core::{ComputeContext, EbspError, FnLoader, Job, JobRunner, LoadSink, RunOptions};
//! use ripple_store_mem::MemStore;
//!
//! struct Noop;
//! impl Job for Noop {
//!     type Key = u32;
//!     type State = u32;
//!     type Message = ();
//!     type OutKey = ();
//!     type OutValue = ();
//!     fn state_tables(&self) -> Vec<String> {
//!         vec!["s".to_owned()]
//!     }
//!     fn compute(&self, _ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
//!         Ok(false)
//!     }
//! }
//!
//! # fn main() -> Result<(), EbspError> {
//! let store = MemStore::builder().default_parts(2).build();
//! let loader = FnLoader::new(|sink: &mut dyn LoadSink<Noop>| {
//!     sink.state(0, 1, 7)?;
//!     sink.enable(1)
//! });
//! // A basic run with an extra loader; swap `.healing()` etc. in for more.
//! let outcome = JobRunner::new(store)
//!     .launch(Arc::new(Noop), RunOptions::new().loader(Box::new(loader)))?;
//! assert_eq!(outcome.steps, 1);
//! # Ok(())
//! # }
//! ```

use std::marker::PhantomData;
use std::sync::Arc;

use ripple_kv::KvStore;

use crate::{AuditProbe, EbspError, Job, JobRunner, Loader, RunOutcome};

mod sealed {
    pub trait Sealed {}
    impl Sealed for super::Basic {}
    impl Sealed for super::Heal {}
    impl Sealed for super::Recover {}
    impl Sealed for super::Durable {}
}

/// Mode marker: plain execution against any [`KvStore`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Basic;

/// Mode marker: unsynchronized part-healing; needs a
/// [`HealableStore`](ripple_kv::HealableStore).
#[derive(Debug, Clone, Copy, Default)]
pub struct Heal;

/// Mode marker: barrier checkpointing + rollback recovery; needs a
/// [`RecoverableStore`](ripple_kv::RecoverableStore) that can also heal.
#[derive(Debug, Clone, Copy, Default)]
pub struct Recover;

/// Mode marker: durable barrier commits + cross-restart resume; needs
/// recovery plus a [`DurableStore`](ripple_kv::DurableStore).
#[derive(Debug, Clone, Copy, Default)]
pub struct Durable;

/// A run mode [`JobRunner::launch`] can execute against stores of type `S`.
///
/// Implemented by the mode markers [`Basic`], [`Heal`], [`Recover`] and
/// [`Durable`] — each under exactly the store-trait bounds that mode
/// needs, which is how `launch` checks capabilities at compile time.  The
/// trait is sealed; the four markers are the complete set of modes.
pub trait LaunchMode<S: KvStore>: sealed::Sealed + Sized {
    /// Runs `job` on `runner` in this mode.  Called by
    /// [`JobRunner::launch`]; not part of the public API surface.
    #[doc(hidden)]
    fn launch_on<J: Job>(
        runner: &JobRunner<S>,
        job: Arc<J>,
        options: RunOptions<J, Self>,
    ) -> Result<RunOutcome, EbspError>;
}

/// The audit-related launch configuration, split out of [`RunOptions`] so
/// the runner's internal entry points can thread it without generics.
pub(crate) struct AuditOpts {
    pub(crate) probe: Option<Arc<dyn AuditProbe>>,
    pub(crate) shuffle_seed: Option<u64>,
}

/// Per-launch configuration for [`JobRunner::launch`]: extra loaders plus
/// the run mode, selected by the typestate builder methods.
///
/// Runner-level knobs (step caps, retry policy, profiling, checkpoint
/// interval) stay on [`JobRunner`], which is reused across launches;
/// `RunOptions` holds what varies per run.
pub struct RunOptions<J: Job, M = Basic> {
    loaders: Vec<Box<dyn Loader<J>>>,
    audit_probe: Option<Arc<dyn AuditProbe>>,
    shuffle_seed: Option<u64>,
    op_deadline: Option<std::time::Duration>,
    _mode: PhantomData<M>,
}

impl<J: Job> RunOptions<J, Basic> {
    /// Options for a basic run: no extra loaders, no recovery machinery.
    pub fn new() -> Self {
        Self {
            loaders: Vec::new(),
            audit_probe: None,
            shuffle_seed: None,
            op_deadline: None,
            _mode: PhantomData,
        }
    }
}

impl<J: Job> Default for RunOptions<J, Basic> {
    fn default() -> Self {
        Self::new()
    }
}

impl<J: Job, M> RunOptions<J, M> {
    /// Appends extra loaders, run after the job's own declared loaders.
    pub fn loaders(mut self, loaders: Vec<Box<dyn Loader<J>>>) -> Self {
        self.loaders.extend(loaders);
        self
    }

    /// Appends one extra loader, run after the job's own declared loaders.
    pub fn loader(mut self, loader: Box<dyn Loader<J>>) -> Self {
        self.loaders.push(loader);
        self
    }

    /// Installs audit instrumentation: the engines call `probe` on every
    /// compute invocation, send, state access, continue signal, and
    /// post-combine delivery.  Used by the `ripple-audit` conformance
    /// checker; without a probe the run takes the unchanged default path.
    pub fn audit(mut self, probe: Arc<dyn AuditProbe>) -> Self {
        self.audit_probe = Some(probe);
        self
    }

    /// Replaces the plan's per-part invocation ordering (sorted or
    /// arrival-ordered) with a deterministic pseudo-random permutation
    /// keyed by `(seed, step, part)`.  This deliberately breaks the
    /// engine's `needs-order` guarantee — it exists so the auditor can
    /// probe whether declared ordering properties actually matter; do not
    /// use it outside audits.
    pub fn shuffle_delivery(mut self, seed: u64) -> Self {
        self.shuffle_seed = Some(seed);
        self
    }

    /// Bounds every store operation issued during the run: a silent peer
    /// surfaces as a transient fault after `deadline` instead of blocking
    /// the worker indefinitely.  Forwarded to the store via
    /// [`KvStore::set_op_deadline`](ripple_kv::KvStore::set_op_deadline);
    /// in-process stores ignore it.
    pub fn op_deadline(mut self, deadline: std::time::Duration) -> Self {
        self.op_deadline = Some(deadline);
        self
    }

    /// The per-operation store deadline configured for this run, if any.
    pub(crate) fn op_deadline_opt(&self) -> Option<std::time::Duration> {
        self.op_deadline
    }

    /// Splits the options into loaders and audit configuration, consumed
    /// at launch.
    pub(crate) fn into_parts(self) -> (Vec<Box<dyn Loader<J>>>, AuditOpts) {
        (
            self.loaders,
            AuditOpts {
                probe: self.audit_probe,
                shuffle_seed: self.shuffle_seed,
            },
        )
    }

    fn into_mode<N>(self) -> RunOptions<J, N> {
        RunOptions {
            loaders: self.loaders,
            audit_probe: self.audit_probe,
            shuffle_seed: self.shuffle_seed,
            op_deadline: self.op_deadline,
            _mode: PhantomData,
        }
    }
}

impl<J: Job> RunOptions<J, Basic> {
    /// Selects store-side part healing for unsynchronized runs (formerly
    /// the `run_healable` wrapper): a worker whose part fails underneath it promotes
    /// replicas and redelivers in-flight work.  Launching then requires a
    /// [`HealableStore`](ripple_kv::HealableStore).
    pub fn healing(self) -> RunOptions<J, Heal> {
        self.into_mode()
    }

    /// Selects barrier checkpointing and automatic rollback recovery
    /// (formerly the `run_recoverable` wrapper).  Launching then requires a
    /// [`RecoverableStore`](ripple_kv::RecoverableStore) that is also
    /// healable; the checkpoint cadence comes from
    /// [`JobRunner::checkpoint_interval`] (default: every barrier).
    pub fn recovery(self) -> RunOptions<J, Recover> {
        self.into_mode()
    }
}

impl<J: Job> RunOptions<J, Recover> {
    /// Upgrades recovery to durable barrier commits with cross-restart
    /// resume (formerly the `run_durable` wrapper).  Launching then additionally
    /// requires a [`DurableStore`](ripple_kv::DurableStore).
    pub fn durable(self) -> RunOptions<J, Durable> {
        self.into_mode()
    }
}

impl<J: Job, M> std::fmt::Debug for RunOptions<J, M> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RunOptions")
            .field("mode", &std::any::type_name::<M>())
            .field("extra_loaders", &self.loaders.len())
            .field("audit", &self.audit_probe.is_some())
            .field("shuffle_seed", &self.shuffle_seed)
            .field("op_deadline", &self.op_deadline)
            .finish()
    }
}
