//! Loaders: how a job's initial condition is produced (paper §II).
//!
//! "A job's initial condition includes: initial local component states, a
//! set of incoming messages, initial aggregator states, and a designation
//! of which additional components are enabled."  A loader computes
//! key/value pairs from some source and feeds them to the engine through a
//! [`LoadSink`]; it may also enable components and feed aggregators.

use ripple_kv::{FnPairConsumer, KvStore, RoutedKey};
use ripple_wire::from_wire;

use crate::{AggValue, EbspError, Job};

/// The engine-side receiver of a loader's output.
pub trait LoadSink<J: Job> {
    /// Sets the initial state of component `key` in state table `tab`.
    ///
    /// # Errors
    ///
    /// Fails on bad table index or a store error.
    fn state(&mut self, tab: usize, key: J::Key, state: J::State) -> Result<(), EbspError>;

    /// Queues an initial message for `to` (delivering it — and enabling
    /// `to` — in step 1).
    ///
    /// # Errors
    ///
    /// Fails on a store error.
    fn message(&mut self, to: J::Key, msg: J::Message) -> Result<(), EbspError>;

    /// Enables component `key` for step 1 without sending it a message.
    ///
    /// # Errors
    ///
    /// Fails on a store error.
    fn enable(&mut self, key: J::Key) -> Result<(), EbspError>;

    /// Supplies initial input to the aggregator named `name`.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::NoSuchAggregator`] for undeclared names.
    fn aggregate(&mut self, name: &str, value: AggValue) -> Result<(), EbspError>;
}

/// Computes a job's initial condition from some source.
pub trait Loader<J: Job>: Send {
    /// Feeds the initial condition into `sink`.
    ///
    /// # Errors
    ///
    /// Propagates sink and source errors.
    fn load(self: Box<Self>, sink: &mut dyn LoadSink<J>) -> Result<(), EbspError>;
}

/// A loader built from a closure — the usual way to write ad-hoc loaders.
///
/// # Examples
///
/// ```no_run
/// # use ripple_core::{FnLoader, Job, LoadSink, EbspError};
/// # fn with_job<J: Job<Key = u32, State = f64>>() -> Box<dyn ripple_core::Loader<J>> {
/// Box::new(FnLoader::new(|sink: &mut dyn LoadSink<J>| {
///     for v in 0..100u32 {
///         sink.state(0, v, 0.0)?;
///         sink.enable(v)?;
///     }
///     Ok(())
/// }))
/// # }
/// ```
pub struct FnLoader<F> {
    f: F,
}

impl<F> FnLoader<F> {
    /// Wraps `f`.
    pub fn new(f: F) -> Self {
        Self { f }
    }
}

impl<J, F> Loader<J> for FnLoader<F>
where
    J: Job,
    F: FnOnce(&mut dyn LoadSink<J>) -> Result<(), EbspError> + Send,
{
    fn load(self: Box<Self>, sink: &mut dyn LoadSink<J>) -> Result<(), EbspError> {
        (self.f)(sink)
    }
}

impl<F> std::fmt::Debug for FnLoader<F> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FnLoader").finish_non_exhaustive()
    }
}

/// A loader that installs a batch of (key, state) pairs into one state
/// table, optionally enabling each component.
#[derive(Debug)]
pub struct PairsLoader<K, V> {
    tab: usize,
    pairs: Vec<(K, V)>,
    enable: bool,
}

impl<K, V> PairsLoader<K, V> {
    /// States for table `tab`, with components left disabled.
    pub fn new(tab: usize, pairs: Vec<(K, V)>) -> Self {
        Self {
            tab,
            pairs,
            enable: false,
        }
    }

    /// Also enable every loaded component for step 1.
    pub fn enabling(mut self) -> Self {
        self.enable = true;
        self
    }
}

impl<J> Loader<J> for PairsLoader<J::Key, J::State>
where
    J: Job,
{
    fn load(self: Box<Self>, sink: &mut dyn LoadSink<J>) -> Result<(), EbspError> {
        let enable = self.enable;
        let tab = self.tab;
        for (key, state) in self.pairs {
            if enable {
                sink.enable(key.clone())?;
            }
            sink.state(tab, key, state)?;
        }
        Ok(())
    }
}

/// A loader that reads a job's initial condition out of an *existing*
/// key/value table: each `(key, state)` pair of the source table becomes a
/// component state (and optionally an enablement).  This is the
/// application-integration story of §II — "running a new analysis need not
/// involve changing existing data".
pub struct TableLoader<S: KvStore> {
    store: S,
    source: S::Table,
    tab: usize,
    enable: bool,
}

impl<S: KvStore> TableLoader<S> {
    /// Loads every pair of `source` into state table `tab`.
    pub fn new(store: &S, source: &S::Table, tab: usize) -> Self {
        Self {
            store: store.clone(),
            source: source.clone(),
            tab,
            enable: false,
        }
    }

    /// Also enable every loaded component for step 1.
    pub fn enabling(mut self) -> Self {
        self.enable = true;
        self
    }
}

impl<S, J> Loader<J> for TableLoader<S>
where
    S: KvStore,
    J: Job,
{
    fn load(self: Box<Self>, sink: &mut dyn LoadSink<J>) -> Result<(), EbspError> {
        let consumer = FnPairConsumer::new(|key: &RoutedKey, value: &[u8]| {
            (key.body().clone(), bytes::Bytes::copy_from_slice(value))
        });
        let pairs = self.store.enumerate_pairs(&self.source, consumer)?;
        for (key_body, state_bytes) in pairs {
            let key: J::Key = from_wire(&key_body)?;
            let state: J::State = from_wire(&state_bytes)?;
            if self.enable {
                sink.enable(key.clone())?;
            }
            sink.state(self.tab, key, state)?;
        }
        Ok(())
    }
}
