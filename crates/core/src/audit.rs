//! Audit instrumentation: the "detected" half of the paper's "declared or
//! detected" job properties (§II-A).
//!
//! The engines *trust* declared [`JobProperties`](crate::JobProperties) —
//! a job that wrongly declares `one_msg` or `deterministic` silently gets
//! no-collect / fast-recovery semantics and corrupt output.  An
//! [`AuditProbe`] installed through
//! [`RunOptions::audit`](crate::RunOptions::audit) observes every compute
//! invocation, send, state access, continue signal, and post-combine
//! delivery, so a checker (the `ripple-audit` crate) can verify each
//! declared property against observed behaviour and report
//! [`AuditFinding`]s.  The probe is opt-in: without one, the engines take
//! the exact pre-audit code paths, with only an `Option` test per hook
//! site.

use std::fmt;

/// Which state-table operation a compute invocation performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StateOp {
    /// [`ComputeContext::read_state`](crate::ComputeContext::read_state).
    Read,
    /// [`ComputeContext::write_state`](crate::ComputeContext::write_state).
    Write,
    /// [`ComputeContext::delete_state`](crate::ComputeContext::delete_state).
    Delete,
}

/// How serious an [`AuditFinding`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FindingKind {
    /// A declared property was observed *not* to hold: the job lied and
    /// the derived [`ExecutionPlan`](crate::ExecutionPlan) is unsound.
    Violation,
    /// An undeclared property held across the audited runs; declaring it
    /// would unlock a stronger plan (inference mode), or a declared
    /// property was never exercised.
    Advisory,
}

/// One structured audit result: which property, where, and the evidence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditFinding {
    /// The property the finding is about (`"one-msg"`, `"no-continue"`,
    /// `"deterministic"`, ...), matching the paper's §II-A names.
    pub property: &'static str,
    /// Violation of a declaration, or an inference/advisory note.
    pub kind: FindingKind,
    /// The step at which the evidence was observed (0 when the finding is
    /// run-level, e.g. a whole-run digest divergence with no known first
    /// step).
    pub step: u32,
    /// The part at which the evidence was observed (0 when run-level).
    pub part: u32,
    /// The component key involved, rendered for humans, if one is.
    pub key: Option<String>,
    /// What was observed, in one sentence.
    pub evidence: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            FindingKind::Violation => "violation",
            FindingKind::Advisory => "advisory",
        };
        write!(f, "[{kind}] {}: {}", self.property, self.evidence)?;
        if self.step > 0 {
            write!(f, " (step {}, part {}", self.step, self.part)?;
            if let Some(key) = &self.key {
                write!(f, ", key {key}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

/// Checking instrumentation the engines call when a probe is installed via
/// [`RunOptions::audit`](crate::RunOptions::audit).
///
/// Keys and messages arrive wire-encoded (`&[u8]`), which keeps the trait
/// object-safe and the engines free of extra generic bounds; a checker
/// that needs the typed key decodes it itself.  All methods default to
/// no-ops.  Probes run inside part tasks, concurrently across parts —
/// implementations must be `Send + Sync` and cheap.
pub trait AuditProbe: Send + Sync + 'static {
    /// A compute invocation is about to run for `key` at `part` in `step`.
    fn on_invocation(&self, step: u32, part: u32, key: &[u8]) {
        let _ = (step, part, key);
    }

    /// A compute invocation for `key` returned its continue signal.
    fn on_continue(&self, step: u32, part: u32, key: &[u8], continued: bool) {
        let _ = (step, part, key, continued);
    }

    /// The invocation for `from` sent `msg` to `to` (both wire-encoded).
    fn on_send(&self, step: u32, part: u32, from: &[u8], to: &[u8], msg: &[u8]) {
        let _ = (step, part, from, to, msg);
    }

    /// The running invocation touched state table `table`.
    fn on_state_access(&self, step: u32, part: u32, op: StateOp, table: usize) {
        let _ = (step, part, op, table);
    }

    /// The inbox build delivered `msgs` messages (counted *after* the
    /// combiner pass — the count the `one-msg` contract is about) to `key`
    /// for `step`.
    fn on_deliver(&self, step: u32, part: u32, key: &[u8], msgs: u32) {
        let _ = (step, part, key, msgs);
    }
}
