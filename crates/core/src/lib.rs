//! **K/V EBSP** — key/value extended bulk-synchronous-parallel processing,
//! the core programming model and engine of the Ripple analytics platform
//! (ICDCS 2013).
//!
//! # The programming model (paper §II)
//!
//! The central concept is a [`Job`].  A job's computation is spread over
//! *components*, one per key; a component's private local state is the
//! values associated with its key in each of a list of key/value *state
//! tables*.  Temporally the computation is a series of *steps*: during a
//! step, enabled components execute the job's
//! [`compute`](Job::compute) function
//!
//! ```text
//! compute: (previous state, incoming messages)
//!            -> (new state, outgoing messages, continue signal)
//! ```
//!
//! with a synchronization barrier between steps — all messages flow across
//! barriers, so a message sent in step *i* is received in step *i + 1*.
//!
//! Extensions beyond plain iterated MapReduce, all implemented here:
//!
//! - **Selective enablement**: a component runs in a step iff it returned
//!   the positive continue signal in the previous step *or* was sent a
//!   message in the previous step.  Work is proportional to activity, not
//!   to data size.
//! - **Multiple state tables**, entries created and deleted as the job
//!   runs; a component *exists* when it has state entries or input
//!   messages.
//! - **Message combiners** and **conflicting-state mergers**.
//! - **Aggregators** (named, read back the following step), **broadcast
//!   data** (a ubiquitous table), **direct job output**, **loaders** and
//!   **exporters**, and an optional **aborter**.
//! - **Declared job properties** ([`JobProperties`]) from which the engine
//!   derives an [`ExecutionPlan`]: skip sorting, skip collecting value
//!   lists, run anywhere (work stealing), *run with no synchronization at
//!   all* (queue-set execution with Huang-style termination detection), and
//!   checkpoint/replay failure recovery tuned by determinism.
//!
//! # Quick start
//!
//! See [`JobRunner`] for a runnable end-to-end example, and the repository
//! `examples/` directory for PageRank, SUMMA matrix multiplication, and
//! incremental single-source shortest paths.

mod aggregate;
mod audit;
mod context;
mod cost;
mod envelope;
mod error;
mod export;
mod job;
mod loader;
mod metrics;
mod observer;
mod options;
mod profile;
mod properties;
mod retry;
mod runner;
mod sched;
mod simple;
mod termination;
mod trace;

pub(crate) mod engine;

pub use aggregate::{
    AggValue, Aggregate, AggregateSnapshot, AggregatorRegistry, CountAgg, MaxI64, MinI64, SumF64,
    SumI64,
};
pub use audit::{AuditFinding, AuditProbe, FindingKind, StateOp};
pub use context::ComputeContext;
pub use cost::{estimated_network_time, useful_h_bytes, CostModel, StepCost};
pub use envelope::Envelope;
pub use error::EbspError;
pub use export::{export_state_table, CollectingExporter, DiscardExporter, Exporter};
pub use job::{Job, StateExporters};
pub use loader::{FnLoader, LoadSink, Loader, PairsLoader, TableLoader};
pub use metrics::RunMetrics;
pub use observer::{FanoutObserver, ObservedEvent, RecordingObserver, RunObserver};
pub use options::{Basic, Durable, Heal, LaunchMode, Recover, RunOptions};
pub use profile::{PartStepProfile, StepCounters, StepProfile, WorkerProfile};
pub use properties::{ExecMode, ExecutionPlan, JobProperties};
pub use retry::RetryPolicy;
pub use runner::{JobRunner, QueueKind, RunOutcome};
pub use sched::{GatePermit, SemaphoreGate, TaskGate};
pub use simple::{SimpleJob, SimpleJobBuilder};
pub use termination::WeightThrow;
pub use trace::{step_profiles_json, worker_profiles_json, TraceRecorder};

use ripple_kv::RoutedKey;
use ripple_wire::{to_wire, Encode};

/// Routes a component key: encode, hash, place — the one true mapping from
/// component keys to store keys used by state tables, messages, and the
/// transport table, so that everything about one component is collocated.
pub fn key_to_routed<K: Encode>(key: &K) -> RoutedKey {
    RoutedKey::from_body(to_wire(key))
}
