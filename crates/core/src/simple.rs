//! Closure-based jobs: the paper argues the practical value of
//! MapReduce-style platforms is that "the analytic application can supply
//! some relatively small, simple, and essentially functional code".
//! [`SimpleJob`] is that path for K/V EBSP — a whole job from a compute
//! closure (plus optional combiner and properties), no trait impl needed.

use std::hash::Hash;
use std::sync::Arc;

use ripple_wire::Wire;

use crate::{Aggregate, ComputeContext, EbspError, Job, JobProperties};

type ComputeFn<K, S, M> =
    dyn Fn(&mut ComputeContext<'_, SimpleJob<K, S, M>>) -> Result<bool, EbspError> + Send + Sync;
type CombineFn<K, M> = dyn Fn(&K, &M, &M) -> Option<M> + Send + Sync;

/// A job assembled from closures.  Direct output and state writers are not
/// supported here — implement [`Job`] directly when you need them.
///
/// # Examples
///
/// ```
/// use std::sync::Arc;
/// use ripple_core::{FnLoader, JobRunner, LoadSink, RunOptions, SimpleJob};
/// use ripple_store_mem::MemStore;
///
/// # fn main() -> Result<(), ripple_core::EbspError> {
/// // Counters that tick down to zero, one whole job from closures.
/// let job = SimpleJob::<u32, u64, ()>::builder("tick")
///     .compute(|ctx| {
///         let left = ctx.read_state(0)?.unwrap_or(0);
///         ctx.write_state(0, &left.saturating_sub(1))?;
///         Ok(left > 1)
///     })
///     .build();
/// let store = MemStore::builder().default_parts(2).build();
/// let outcome = JobRunner::new(store).launch(
///     Arc::new(job),
///     RunOptions::new().loader(Box::new(FnLoader::new(|sink: &mut dyn LoadSink<_>| {
///         sink.state(0, 7, 5)?;
///         sink.enable(7)
///     }))),
/// )?;
/// assert_eq!(outcome.steps, 5);
/// # Ok(())
/// # }
/// ```
pub struct SimpleJob<K, S, M>
where
    K: Wire + Eq + Hash + Ord,
    S: Wire,
    M: Wire,
{
    tables: Vec<String>,
    compute: Box<ComputeFn<K, S, M>>,
    combine: Option<Box<CombineFn<K, M>>>,
    aggregators: Vec<(String, Arc<dyn Aggregate>)>,
    broadcast: Option<String>,
    properties: JobProperties,
}

impl<K, S, M> SimpleJob<K, S, M>
where
    K: Wire + Eq + Hash + Ord,
    S: Wire,
    M: Wire,
{
    /// Starts building a job whose first (reference) state table is
    /// `table`.
    pub fn builder(table: impl Into<String>) -> SimpleJobBuilder<K, S, M> {
        SimpleJobBuilder {
            tables: vec![table.into()],
            compute: None,
            combine: None,
            aggregators: Vec::new(),
            broadcast: None,
            properties: JobProperties::default(),
        }
    }
}

/// Builder for [`SimpleJob`]; see its docs.
pub struct SimpleJobBuilder<K, S, M>
where
    K: Wire + Eq + Hash + Ord,
    S: Wire,
    M: Wire,
{
    tables: Vec<String>,
    compute: Option<Box<ComputeFn<K, S, M>>>,
    combine: Option<Box<CombineFn<K, M>>>,
    aggregators: Vec<(String, Arc<dyn Aggregate>)>,
    broadcast: Option<String>,
    properties: JobProperties,
}

impl<K, S, M> SimpleJobBuilder<K, S, M>
where
    K: Wire + Eq + Hash + Ord,
    S: Wire,
    M: Wire,
{
    /// Adds another state table (index = call order, after the reference
    /// table at 0).
    pub fn state_table(mut self, name: impl Into<String>) -> Self {
        self.tables.push(name.into());
        self
    }

    /// Sets the compute function (required).
    pub fn compute<F>(mut self, f: F) -> Self
    where
        F: Fn(&mut ComputeContext<'_, SimpleJob<K, S, M>>) -> Result<bool, EbspError>
            + Send
            + Sync
            + 'static,
    {
        self.compute = Some(Box::new(f));
        self
    }

    /// Sets the pairwise message combiner.
    pub fn combine<F>(mut self, f: F) -> Self
    where
        F: Fn(&K, &M, &M) -> Option<M> + Send + Sync + 'static,
    {
        self.combine = Some(Box::new(f));
        self
    }

    /// Declares an aggregator.
    pub fn aggregator(mut self, name: impl Into<String>, technique: Arc<dyn Aggregate>) -> Self {
        self.aggregators.push((name.into(), technique));
        self
    }

    /// Names the ubiquitous broadcast table.
    pub fn broadcast_table(mut self, name: impl Into<String>) -> Self {
        self.broadcast = Some(name.into());
        self
    }

    /// Declares execution properties (§II-A).
    pub fn properties(mut self, properties: JobProperties) -> Self {
        self.properties = properties;
        self
    }

    /// Finishes the job.
    ///
    /// # Panics
    ///
    /// Panics if no compute function was supplied.
    pub fn build(self) -> SimpleJob<K, S, M> {
        SimpleJob {
            tables: self.tables,
            compute: self.compute.expect("SimpleJob needs a compute closure"),
            combine: self.combine,
            aggregators: self.aggregators,
            broadcast: self.broadcast,
            properties: self.properties,
        }
    }
}

impl<K, S, M> Job for SimpleJob<K, S, M>
where
    K: Wire + Eq + Hash + Ord,
    S: Wire,
    M: Wire,
{
    type Key = K;
    type State = S;
    type Message = M;
    type OutKey = ();
    type OutValue = ();

    fn state_tables(&self) -> Vec<String> {
        self.tables.clone()
    }

    fn broadcast_table(&self) -> Option<String> {
        self.broadcast.clone()
    }

    fn aggregators(&self) -> Vec<(String, Arc<dyn Aggregate>)> {
        self.aggregators.clone()
    }

    fn properties(&self) -> JobProperties {
        self.properties
    }

    fn compute(&self, ctx: &mut ComputeContext<'_, Self>) -> Result<bool, EbspError> {
        (self.compute)(ctx)
    }

    fn combine_messages(&self, key: &K, a: &M, b: &M) -> Option<M> {
        self.combine.as_ref().and_then(|f| f(key, a, b))
    }
}
