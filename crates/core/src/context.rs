use std::collections::HashMap;

use bytes::Bytes;
use ripple_kv::{KvError, PartId, RoutedKey};
use ripple_wire::{from_wire, to_wire, Decode, Encode};

use crate::{
    key_to_routed, AggValue, AggregateSnapshot, AggregatorRegistry, EbspError, Envelope, Exporter,
    Job,
};

/// Object-safe access to the job's state tables (and broadcast table) for
/// one compute invocation.  The engine provides a collocated implementation
/// for pinned execution and a table-handle implementation for
/// *run-anywhere* execution.
pub(crate) trait StateOps {
    /// Reads from state table `tab`.
    fn get(&self, tab: usize, key: &RoutedKey) -> Result<Option<Bytes>, KvError>;
    /// Writes to state table `tab`.
    fn put(&self, tab: usize, key: RoutedKey, value: Bytes) -> Result<(), KvError>;
    /// Deletes from state table `tab`.
    fn delete(&self, tab: usize, key: &RoutedKey) -> Result<bool, KvError>;
    /// Reads from the broadcast table, if the job declared one.
    fn broadcast_get(&self, key: &RoutedKey) -> Result<Option<Option<Bytes>>, KvError>;
    /// Number of state tables.
    fn table_count(&self) -> usize;
}

/// Everything a batch of compute invocations produces, gathered per part
/// (or per worker) and merged by the engine.
pub(crate) struct Outbox<J: Job> {
    /// Outgoing envelopes (messages, continues, creations).
    pub(crate) envelopes: Vec<Envelope<J>>,
    /// Partial aggregation, folded as invocations aggregate values.
    pub(crate) agg: HashMap<String, AggValue>,
    /// Per-part metric counters.
    pub(crate) metrics: crate::metrics::PartCounters,
}

impl<J: Job> Outbox<J> {
    pub(crate) fn new() -> Self {
        Self {
            envelopes: Vec::new(),
            agg: HashMap::new(),
            metrics: crate::metrics::PartCounters::default(),
        }
    }
}

/// The context handed to [`Job::compute`]: the paper's `ComputeContext`
/// (Listing 3) in idiomatic Rust.
///
/// Through it an invocation reads/writes/deletes its own local state,
/// requests creation of other components' state, consumes the messages
/// sent to it in the previous step, sends messages to arbitrary components
/// (delivered next step), feeds and reads aggregators, reads broadcast
/// data, and emits direct job output.
pub struct ComputeContext<'a, J: Job> {
    pub(crate) step: u32,
    pub(crate) mode: crate::ExecMode,
    pub(crate) part: PartId,
    pub(crate) key: J::Key,
    pub(crate) routed: RoutedKey,
    pub(crate) messages: Vec<J::Message>,
    pub(crate) ops: &'a dyn StateOps,
    pub(crate) out: &'a mut Outbox<J>,
    pub(crate) registry: &'a AggregatorRegistry,
    pub(crate) prev_agg: &'a AggregateSnapshot,
    pub(crate) direct: Option<&'a dyn Exporter<J::OutKey, J::OutValue>>,
    /// Audit instrumentation; `None` (the default path) costs one branch
    /// per hook site.
    pub(crate) probe: Option<&'a dyn crate::AuditProbe>,
}

impl<'a, J: Job> ComputeContext<'a, J> {
    /// The current step number (1-based).  In unsynchronized execution this
    /// is the component's invocation index instead, since steps do not
    /// exist there.
    pub fn step(&self) -> u32 {
        self.step
    }

    /// Which engine is running the job: synchronized jobs may pace
    /// per-step work against the barrier, unsynchronized jobs should do
    /// all the work each delivery allows.
    pub fn mode(&self) -> crate::ExecMode {
        self.mode
    }

    /// The key identifying this component.
    pub fn key(&self) -> &J::Key {
        &self.key
    }

    /// The part this invocation runs at.
    pub fn part(&self) -> PartId {
        self.part
    }

    /// The messages sent to this component in the previous step.
    pub fn messages(&self) -> &[J::Message] {
        &self.messages
    }

    /// Takes ownership of the input messages (they are consumed either
    /// way at the end of the invocation).
    pub fn take_messages(&mut self) -> Vec<J::Message> {
        std::mem::take(&mut self.messages)
    }

    fn check_tab(&self, tab: usize) -> Result<(), EbspError> {
        let tables = self.ops.table_count();
        if tab >= tables {
            return Err(EbspError::StateTableIndex { index: tab, tables });
        }
        Ok(())
    }

    /// Reads this component's state from state table `tab`.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::StateTableIndex`] for a bad index, or a
    /// store/codec error.
    pub fn read_state(&mut self, tab: usize) -> Result<Option<J::State>, EbspError> {
        self.check_tab(tab)?;
        self.out.metrics.state_reads += 1;
        if let Some(probe) = self.probe {
            probe.on_state_access(self.step, self.part.0, crate::StateOp::Read, tab);
        }
        match self.ops.get(tab, &self.routed)? {
            None => Ok(None),
            Some(bytes) => Ok(Some(from_wire(&bytes)?)),
        }
    }

    /// Writes this component's state into state table `tab`.
    ///
    /// # Errors
    ///
    /// As for [`ComputeContext::read_state`].
    pub fn write_state(&mut self, tab: usize, state: &J::State) -> Result<(), EbspError> {
        self.check_tab(tab)?;
        self.out.metrics.state_writes += 1;
        if let Some(probe) = self.probe {
            probe.on_state_access(self.step, self.part.0, crate::StateOp::Write, tab);
        }
        self.ops.put(tab, self.routed.clone(), to_wire(state))?;
        Ok(())
    }

    /// Deletes this component's state from state table `tab`, returning
    /// whether an entry existed.
    ///
    /// # Errors
    ///
    /// As for [`ComputeContext::read_state`].
    pub fn delete_state(&mut self, tab: usize) -> Result<bool, EbspError> {
        self.check_tab(tab)?;
        self.out.metrics.state_deletes += 1;
        if let Some(probe) = self.probe {
            probe.on_state_access(self.step, self.part.0, crate::StateOp::Delete, tab);
        }
        Ok(self.ops.delete(tab, &self.routed)?)
    }

    /// Requests creation of a *new component's* state: an entry for `key`
    /// in state table `tab`, applied at the next barrier; collisions are
    /// merged with [`Job::combine_states`].
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::StateTableIndex`] for a bad index.
    pub fn create_state(
        &mut self,
        tab: usize,
        key: J::Key,
        state: J::State,
    ) -> Result<(), EbspError> {
        self.check_tab(tab)?;
        self.out.metrics.creates += 1;
        self.out.envelopes.push(Envelope::Create {
            tab: tab as u16,
            key,
            state,
        });
        Ok(())
    }

    /// Sends `msg` to component `to`; it will be delivered in the following
    /// step (and enable `to` for that step).
    pub fn send(&mut self, to: J::Key, msg: J::Message) {
        self.out.metrics.messages_sent += 1;
        if let Some(probe) = self.probe {
            // Wire-encode destination and payload only on the audit path.
            probe.on_send(
                self.step,
                self.part.0,
                self.routed.body(),
                &to_wire(&to),
                &to_wire(&msg),
            );
        }
        self.out.envelopes.push(Envelope::Message { to, msg });
    }

    /// Feeds `value` into the aggregator named `name`; the merged result is
    /// readable next step via [`ComputeContext::aggregate_prev`].
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::NoSuchAggregator`] for undeclared names.
    pub fn aggregate(&mut self, name: &str, value: AggValue) -> Result<(), EbspError> {
        self.registry.fold(&mut self.out.agg, name, value)
    }

    /// The result of aggregator `name` from the previous step.
    pub fn aggregate_prev(&self, name: &str) -> Option<AggValue> {
        self.prev_agg.get(name)
    }

    /// Reads a broadcast datum by key from the job's ubiquitous broadcast
    /// table.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::InvalidJob`] if the job declared no
    /// broadcast table, or a store/codec error.
    pub fn broadcast<Q: Encode, T: Decode>(&self, key: &Q) -> Result<Option<T>, EbspError> {
        let routed = key_to_routed(key);
        match self.ops.broadcast_get(&routed)? {
            None => Err(EbspError::InvalidJob {
                reason: "job declared no broadcast table".to_owned(),
            }),
            Some(None) => Ok(None),
            Some(Some(bytes)) => Ok(Some(from_wire(&bytes)?)),
        }
    }

    /// Emits one pair of direct job output.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::InvalidJob`] if the job configured no direct
    /// output exporter.
    pub fn output(&mut self, key: J::OutKey, value: J::OutValue) -> Result<(), EbspError> {
        match self.direct {
            Some(exporter) => {
                self.out.metrics.direct_outputs += 1;
                exporter.export(self.part, &key, &value);
                Ok(())
            }
            None => Err(EbspError::InvalidJob {
                reason: "job configured no direct output exporter".to_owned(),
            }),
        }
    }

    /// Convenience: read-modify-write state in one call (the paper's
    /// `readWriteState` access pattern).
    ///
    /// # Errors
    ///
    /// As for [`ComputeContext::read_state`] / [`ComputeContext::write_state`].
    pub fn modify_state<F>(&mut self, tab: usize, f: F) -> Result<(), EbspError>
    where
        F: FnOnce(Option<J::State>) -> Option<J::State>,
    {
        let current = self.read_state(tab)?;
        match f(current) {
            Some(new) => self.write_state(tab, &new),
            None => {
                self.delete_state(tab)?;
                Ok(())
            }
        }
    }
}
