//! Individual aggregators (paper §II): named, fed values during compute
//! invocations, results readable in the following step.
//!
//! The engine aggregates partially in each part as components are invoked,
//! then merges the partials at the barrier — exactly the strategy §IV-A
//! describes for a modest number of aggregators.

use std::collections::HashMap;
use std::sync::Arc;

use ripple_wire::{ByteReader, ByteWriter, Decode, Encode, WireError};

use crate::EbspError;

/// A value flowing into or out of an aggregator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AggValue {
    /// A signed integer.
    I64(i64),
    /// A double-precision float.
    F64(f64),
}

impl AggValue {
    /// The integer payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `I64` — aggregator type confusion is a
    /// programming error.
    pub fn as_i64(&self) -> i64 {
        match self {
            AggValue::I64(v) => *v,
            AggValue::F64(v) => panic!("expected I64 aggregate, found F64({v})"),
        }
    }

    /// The float payload.
    ///
    /// # Panics
    ///
    /// Panics if the value is not an `F64`.
    pub fn as_f64(&self) -> f64 {
        match self {
            AggValue::F64(v) => *v,
            AggValue::I64(v) => panic!("expected F64 aggregate, found I64({v})"),
        }
    }
}

impl From<i64> for AggValue {
    fn from(v: i64) -> Self {
        AggValue::I64(v)
    }
}

impl From<f64> for AggValue {
    fn from(v: f64) -> Self {
        AggValue::F64(v)
    }
}

impl Encode for AggValue {
    fn encode(&self, w: &mut ByteWriter) {
        match self {
            AggValue::I64(v) => {
                w.push(0);
                v.encode(w);
            }
            AggValue::F64(v) => {
                w.push(1);
                v.encode(w);
            }
        }
    }
}

impl Decode for AggValue {
    fn decode(r: &mut ByteReader<'_>) -> Result<Self, WireError> {
        match r.read_byte()? {
            0 => Ok(AggValue::I64(i64::decode(r)?)),
            1 => Ok(AggValue::F64(f64::decode(r)?)),
            tag => Err(WireError::InvalidTag {
                target: "AggValue",
                tag,
            }),
        }
    }
}

/// An aggregation technique: an identity element and an associative,
/// commutative combine.
pub trait Aggregate: Send + Sync + 'static {
    /// The identity element (what an aggregator reads as before any input).
    fn identity(&self) -> AggValue;

    /// Combines two partial results.
    fn combine(&self, a: AggValue, b: AggValue) -> AggValue;
}

/// Sums `I64` inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumI64;

impl Aggregate for SumI64 {
    fn identity(&self) -> AggValue {
        AggValue::I64(0)
    }
    fn combine(&self, a: AggValue, b: AggValue) -> AggValue {
        AggValue::I64(a.as_i64() + b.as_i64())
    }
}

/// Sums `F64` inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct SumF64;

impl Aggregate for SumF64 {
    fn identity(&self) -> AggValue {
        AggValue::F64(0.0)
    }
    fn combine(&self, a: AggValue, b: AggValue) -> AggValue {
        AggValue::F64(a.as_f64() + b.as_f64())
    }
}

/// Minimum of `I64` inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinI64;

impl Aggregate for MinI64 {
    fn identity(&self) -> AggValue {
        AggValue::I64(i64::MAX)
    }
    fn combine(&self, a: AggValue, b: AggValue) -> AggValue {
        AggValue::I64(a.as_i64().min(b.as_i64()))
    }
}

/// Maximum of `I64` inputs.
#[derive(Debug, Clone, Copy, Default)]
pub struct MaxI64;

impl Aggregate for MaxI64 {
    fn identity(&self) -> AggValue {
        AggValue::I64(i64::MIN)
    }
    fn combine(&self, a: AggValue, b: AggValue) -> AggValue {
        AggValue::I64(a.as_i64().max(b.as_i64()))
    }
}

/// Counts inputs, ignoring their payloads.
#[derive(Debug, Clone, Copy, Default)]
pub struct CountAgg;

impl Aggregate for CountAgg {
    fn identity(&self) -> AggValue {
        AggValue::I64(0)
    }
    fn combine(&self, a: AggValue, b: AggValue) -> AggValue {
        // Inputs fed by compute invocations count as 1 each; the engine
        // feeds `I64(1)` per `aggregate` call for counting aggregators,
        // so combine is a plain sum.
        AggValue::I64(a.as_i64() + b.as_i64())
    }
}

/// The job's named aggregators, shared by all parts of a run.
#[derive(Clone)]
pub struct AggregatorRegistry {
    aggs: Arc<Vec<(String, Arc<dyn Aggregate>)>>,
}

impl std::fmt::Debug for AggregatorRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AggregatorRegistry")
            .field("names", &self.names().collect::<Vec<_>>())
            .finish()
    }
}

impl AggregatorRegistry {
    /// Builds a registry from (name, technique) pairs.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::InvalidJob`] on duplicate names.
    pub fn new(aggs: Vec<(String, Arc<dyn Aggregate>)>) -> Result<Self, EbspError> {
        for (i, (name, _)) in aggs.iter().enumerate() {
            if aggs[..i].iter().any(|(n, _)| n == name) {
                return Err(EbspError::InvalidJob {
                    reason: format!("duplicate aggregator name {name:?}"),
                });
            }
        }
        Ok(Self {
            aggs: Arc::new(aggs),
        })
    }

    /// Whether no aggregators were declared (the detected `no-agg`
    /// property).
    pub fn is_empty(&self) -> bool {
        self.aggs.is_empty()
    }

    /// Declared aggregator names, in declaration order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.aggs.iter().map(|(n, _)| n.as_str())
    }

    /// The technique registered under `name`.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::NoSuchAggregator`].
    pub fn technique(&self, name: &str) -> Result<&dyn Aggregate, EbspError> {
        self.aggs
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, a)| a.as_ref())
            .ok_or_else(|| EbspError::NoSuchAggregator {
                name: name.to_owned(),
            })
    }

    /// A fresh partial-aggregation map holding each identity.
    pub fn identities(&self) -> HashMap<String, AggValue> {
        self.aggs
            .iter()
            .map(|(n, a)| (n.clone(), a.identity()))
            .collect()
    }

    /// Folds `value` into the partial map under `name`.
    ///
    /// # Errors
    ///
    /// Fails with [`EbspError::NoSuchAggregator`].
    pub fn fold(
        &self,
        partial: &mut HashMap<String, AggValue>,
        name: &str,
        value: AggValue,
    ) -> Result<(), EbspError> {
        let technique = self.technique(name)?;
        let slot = partial
            .entry(name.to_owned())
            .or_insert_with(|| technique.identity());
        *slot = technique.combine(*slot, value);
        Ok(())
    }

    /// Merges partial map `b` into `a`.
    pub fn merge(&self, a: &mut HashMap<String, AggValue>, b: HashMap<String, AggValue>) {
        for (name, value) in b {
            if let Ok(technique) = self.technique(&name) {
                let slot = a.entry(name).or_insert_with(|| technique.identity());
                *slot = technique.combine(*slot, value);
            }
        }
    }
}

/// The aggregator results of a completed step, readable by compute
/// invocations (and the aborter) in the following step.
#[derive(Debug, Clone, Default)]
pub struct AggregateSnapshot {
    values: HashMap<String, AggValue>,
}

impl AggregateSnapshot {
    /// Wraps merged step results.
    pub fn new(values: HashMap<String, AggValue>) -> Self {
        Self { values }
    }

    /// The result of aggregator `name`, if it was declared.
    pub fn get(&self, name: &str) -> Option<AggValue> {
        self.values.get(name).copied()
    }

    /// All (name, value) pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, AggValue)> {
        self.values.iter().map(|(n, v)| (n.as_str(), *v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> AggregatorRegistry {
        AggregatorRegistry::new(vec![
            ("sum".to_owned(), Arc::new(SumI64)),
            ("min".to_owned(), Arc::new(MinI64)),
            ("fsum".to_owned(), Arc::new(SumF64)),
        ])
        .unwrap()
    }

    #[test]
    fn duplicate_names_rejected() {
        let err = AggregatorRegistry::new(vec![
            ("a".to_owned(), Arc::new(SumI64) as Arc<dyn Aggregate>),
            ("a".to_owned(), Arc::new(MinI64)),
        ])
        .unwrap_err();
        assert!(matches!(err, EbspError::InvalidJob { .. }));
    }

    #[test]
    fn fold_and_merge() {
        let reg = registry();
        let mut a = HashMap::new();
        reg.fold(&mut a, "sum", 3i64.into()).unwrap();
        reg.fold(&mut a, "sum", 4i64.into()).unwrap();
        reg.fold(&mut a, "min", 9i64.into()).unwrap();
        let mut b = HashMap::new();
        reg.fold(&mut b, "sum", 10i64.into()).unwrap();
        reg.fold(&mut b, "min", 2i64.into()).unwrap();
        reg.fold(&mut b, "fsum", 0.5f64.into()).unwrap();
        reg.merge(&mut a, b);
        assert_eq!(a["sum"], AggValue::I64(17));
        assert_eq!(a["min"], AggValue::I64(2));
        assert_eq!(a["fsum"], AggValue::F64(0.5));
    }

    #[test]
    fn unknown_aggregator_is_an_error() {
        let reg = registry();
        let mut m = HashMap::new();
        assert!(matches!(
            reg.fold(&mut m, "nope", 1i64.into()),
            Err(EbspError::NoSuchAggregator { .. })
        ));
    }

    #[test]
    fn techniques_behave() {
        assert_eq!(
            SumF64.combine(AggValue::F64(1.5), AggValue::F64(2.5)),
            AggValue::F64(4.0)
        );
        assert_eq!(
            MaxI64.combine(AggValue::I64(3), AggValue::I64(9)),
            AggValue::I64(9)
        );
        assert_eq!(MinI64.identity(), AggValue::I64(i64::MAX));
        assert_eq!(
            CountAgg.combine(AggValue::I64(2), AggValue::I64(5)),
            AggValue::I64(7)
        );
    }

    #[test]
    #[should_panic(expected = "expected I64")]
    fn type_confusion_panics() {
        AggValue::F64(1.0).as_i64();
    }

    #[test]
    fn agg_value_wire_roundtrip() {
        for v in [AggValue::I64(-5), AggValue::F64(2.75)] {
            let back: AggValue = ripple_wire::from_wire(&ripple_wire::to_wire(&v)).unwrap();
            assert_eq!(back, v);
        }
    }

    #[test]
    fn snapshot_reads() {
        let mut m = HashMap::new();
        m.insert("x".to_owned(), AggValue::I64(4));
        let snap = AggregateSnapshot::new(m);
        assert_eq!(snap.get("x"), Some(AggValue::I64(4)));
        assert_eq!(snap.get("y"), None);
        assert_eq!(snap.iter().count(), 1);
    }
}
