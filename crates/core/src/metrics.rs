use std::fmt;
use std::time::Duration;

use ripple_kv::StoreMetrics;

/// Per-part (or per-worker) counters gathered while invoking components.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub(crate) struct PartCounters {
    pub(crate) invocations: u64,
    pub(crate) messages_sent: u64,
    pub(crate) messages_combined: u64,
    pub(crate) state_reads: u64,
    pub(crate) state_writes: u64,
    pub(crate) state_deletes: u64,
    pub(crate) creates: u64,
    pub(crate) direct_outputs: u64,
    pub(crate) spill_batches: u64,
}

impl PartCounters {
    pub(crate) fn merge(&mut self, other: &PartCounters) {
        self.invocations += other.invocations;
        self.messages_sent += other.messages_sent;
        self.messages_combined += other.messages_combined;
        self.state_reads += other.state_reads;
        self.state_writes += other.state_writes;
        self.state_deletes += other.state_deletes;
        self.creates += other.creates;
        self.direct_outputs += other.direct_outputs;
        self.spill_batches += other.spill_batches;
    }
}

/// What a completed job run did: the observable cost model of the paper's
/// evaluation — steps, synchronization barriers, compute invocations,
/// message and state traffic, spills, the store's marshalling delta, and
/// wall-clock time.
#[derive(Debug, Clone, Default)]
pub struct RunMetrics {
    /// Steps executed (0 for an unsynchronized run).
    pub steps: u32,
    /// Synchronization barriers crossed (= steps when synchronized, 0 when
    /// not — the quantity the SUMMA experiment varies).
    pub barriers: u32,
    /// Total compute invocations.
    pub invocations: u64,
    /// Messages sent by compute invocations (before combining).
    pub messages_sent: u64,
    /// Message pairs merged by the job's combiner.
    pub messages_combined: u64,
    /// State-table reads issued by compute invocations.
    pub state_reads: u64,
    /// State-table writes issued by compute invocations.
    pub state_writes: u64,
    /// State-table deletes issued by compute invocations.
    pub state_deletes: u64,
    /// Component-state creations requested.
    pub creates: u64,
    /// Direct job output pairs emitted.
    pub direct_outputs: u64,
    /// Spill batches written to the transport table.
    pub spill_batches: u64,
    /// Retries of transient store faults performed under the run's
    /// [`RetryPolicy`](crate::RetryPolicy).
    pub retries: u64,
    /// Recoveries performed after injected or real part failures.
    pub recoveries: u32,
    /// Part-steps re-executed by recovery: whole-group rollback counts
    /// every part for every rewound step, fast recovery counts only the
    /// failed part's replayed steps.
    pub replayed_part_steps: u64,
    /// Durable barrier commits performed by a durable launch: barrier
    /// markers logged, resume journal flushed, logs optionally compacted.
    /// Zero for every other entry point.
    pub durable_barriers: u64,
    /// The store's operation/marshalling counters, as a delta over the run.
    pub store: StoreMetrics,
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
}

impl RunMetrics {
    pub(crate) fn absorb(&mut self, c: &PartCounters) {
        self.invocations += c.invocations;
        self.messages_sent += c.messages_sent;
        self.messages_combined += c.messages_combined;
        self.state_reads += c.state_reads;
        self.state_writes += c.state_writes;
        self.state_deletes += c.state_deletes;
        self.creates += c.creates;
        self.direct_outputs += c.direct_outputs;
        self.spill_batches += c.spill_batches;
    }
}

impl fmt::Display for RunMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} steps, {} barriers, {} invocations, {} msgs ({} combined), \
             state r/w/d {}/{}/{}, {} creates, {} direct outputs, {} spills, \
             {} retries, {} recoveries \
             ({} part-steps replayed), {} durable barriers, {:.3}s [{}]",
            self.steps,
            self.barriers,
            self.invocations,
            self.messages_sent,
            self.messages_combined,
            self.state_reads,
            self.state_writes,
            self.state_deletes,
            self.creates,
            self.direct_outputs,
            self.spill_batches,
            self.retries,
            self.recoveries,
            self.replayed_part_steps,
            self.durable_barriers,
            self.elapsed.as_secs_f64(),
            self.store,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_merge_fieldwise() {
        let mut a = PartCounters {
            invocations: 1,
            messages_sent: 2,
            ..Default::default()
        };
        let b = PartCounters {
            invocations: 10,
            state_writes: 3,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.invocations, 11);
        assert_eq!(a.messages_sent, 2);
        assert_eq!(a.state_writes, 3);
    }

    #[test]
    fn run_metrics_absorbs_counters() {
        let mut m = RunMetrics::default();
        m.absorb(&PartCounters {
            invocations: 5,
            direct_outputs: 2,
            ..Default::default()
        });
        m.absorb(&PartCounters {
            invocations: 3,
            ..Default::default()
        });
        assert_eq!(m.invocations, 8);
        assert_eq!(m.direct_outputs, 2);
        assert!(!m.to_string().is_empty());
    }

    #[test]
    fn display_includes_every_documented_counter() {
        let m = RunMetrics {
            creates: 11,
            direct_outputs: 13,
            ..Default::default()
        };
        let s = m.to_string();
        assert!(s.contains("11 creates"), "creates missing from {s:?}");
        assert!(
            s.contains("13 direct outputs"),
            "direct_outputs missing from {s:?}"
        );
    }
}
