//! Exporters: what to do with each key/value pair of a job's results —
//! final state tables and direct job output (paper §II).

use parking_lot::Mutex;
use ripple_kv::{KvStore, PairConsumer, PartId, RoutedKey, ScanControl};
use ripple_wire::{from_wire, Decode};

use crate::EbspError;

/// Consumes result pairs, one call per pair, possibly from several parts
/// concurrently.
pub trait Exporter<K, V>: Send + Sync + 'static {
    /// Handles one pair produced at `part`.
    fn export(&self, part: PartId, key: &K, value: &V);
}

/// An exporter that gathers every pair into memory — convenient for tests
/// and small results.
///
/// # Examples
///
/// ```
/// use ripple_core::{CollectingExporter, Exporter};
/// use ripple_kv::PartId;
///
/// let exp = CollectingExporter::new();
/// exp.export(PartId(0), &1u32, &"one".to_owned());
/// assert_eq!(exp.take(), vec![(1, "one".to_owned())]);
/// ```
#[derive(Debug, Default)]
pub struct CollectingExporter<K, V> {
    pairs: Mutex<Vec<(K, V)>>,
}

impl<K, V> CollectingExporter<K, V> {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self {
            pairs: Mutex::new(Vec::new()),
        }
    }

    /// Removes and returns everything collected so far.
    pub fn take(&self) -> Vec<(K, V)> {
        std::mem::take(&mut self.pairs.lock())
    }

    /// Number of pairs collected so far.
    pub fn len(&self) -> usize {
        self.pairs.lock().len()
    }

    /// Whether nothing has been collected.
    pub fn is_empty(&self) -> bool {
        self.pairs.lock().is_empty()
    }
}

impl<K, V> Exporter<K, V> for CollectingExporter<K, V>
where
    K: Clone + Send + 'static,
    V: Clone + Send + 'static,
{
    fn export(&self, _part: PartId, key: &K, value: &V) {
        self.pairs.lock().push((key.clone(), value.clone()));
    }
}

/// An exporter that drops everything — for jobs whose output of record is
/// their state tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct DiscardExporter;

impl<K: Send + 'static, V: Send + 'static> Exporter<K, V> for DiscardExporter {
    fn export(&self, _part: PartId, _key: &K, _value: &V) {}
}

struct ExportConsumer<K, V, E: ?Sized> {
    exporter: std::sync::Arc<E>,
    count: u64,
    part: PartId,
    _marker: std::marker::PhantomData<fn() -> (K, V)>,
}

impl<K, V, E: ?Sized> Clone for ExportConsumer<K, V, E> {
    fn clone(&self) -> Self {
        Self {
            exporter: std::sync::Arc::clone(&self.exporter),
            count: 0,
            part: PartId(0),
            _marker: std::marker::PhantomData,
        }
    }
}

impl<K, V, E> PairConsumer for ExportConsumer<K, V, E>
where
    K: Decode + Send + 'static,
    V: Decode + Send + 'static,
    E: Exporter<K, V> + ?Sized,
{
    type Output = Result<u64, EbspError>;

    fn setup(&mut self, part: PartId) {
        self.part = part;
    }

    fn pair(&mut self, key: &RoutedKey, value: &[u8]) -> ScanControl {
        // Decode failures surface in finish; stop the scan early.
        match (from_wire::<K>(key.body()), from_wire::<V>(value)) {
            (Ok(k), Ok(v)) => {
                self.count += 1;
                self.exporter.export(self.part, &k, &v);
                ScanControl::Continue
            }
            _ => ScanControl::Stop,
        }
    }

    fn finish(&mut self, _part: PartId) -> Self::Output {
        Ok(self.count)
    }

    fn combine(&self, a: Self::Output, b: Self::Output) -> Self::Output {
        Ok(a? + b?)
    }
}

/// Exports the final contents of a state table: decodes every (key, state)
/// pair and hands it to `exporter`, returning the number of pairs.
///
/// # Errors
///
/// Fails on store errors; undecodable entries stop their part's scan.
pub fn export_state_table<S, K, V, E>(
    store: &S,
    table: &S::Table,
    exporter: std::sync::Arc<E>,
) -> Result<u64, EbspError>
where
    S: KvStore,
    K: Decode + Send + 'static,
    V: Decode + Send + 'static,
    E: Exporter<K, V> + ?Sized,
{
    let consumer = ExportConsumer {
        exporter,
        count: 0,
        part: PartId(0),
        _marker: std::marker::PhantomData,
    };
    store.enumerate_pairs(table, consumer)?
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collecting_exporter_gathers() {
        let e = CollectingExporter::new();
        assert!(e.is_empty());
        e.export(PartId(0), &1u8, &10u8);
        e.export(PartId(1), &2u8, &20u8);
        assert_eq!(e.len(), 2);
        let mut got = e.take();
        got.sort();
        assert_eq!(got, vec![(1, 10), (2, 20)]);
        assert!(e.is_empty());
    }

    #[test]
    fn discard_exporter_is_an_exporter() {
        fn assert_exporter<E: Exporter<u32, u32>>(_: E) {}
        assert_exporter(DiscardExporter);
    }
}
