/// Description of a table to create: its name, part count, and whether it is
/// ubiquitous (small, replicated everywhere, quick to read).
///
/// `TableSpec` is a non-consuming builder:
///
/// ```
/// use ripple_kv::TableSpec;
///
/// let spec = TableSpec::new("ranks").parts(6).clone();
/// assert_eq!(spec.part_count(), 6);
/// assert!(!spec.is_ubiquitous());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableSpec {
    name: String,
    parts: u32,
    ubiquitous: bool,
    replicated: bool,
}

impl TableSpec {
    /// Starts a spec for a table named `name` with one part.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            parts: 1,
            ubiquitous: false,
            replicated: false,
        }
    }

    /// Sets the number of parts.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn parts(&mut self, parts: u32) -> &mut Self {
        assert!(parts > 0, "a table must have at least one part");
        self.parts = parts;
        self
    }

    /// Marks the table ubiquitous: by contract it stays small, is fully
    /// replicated, and reads are local everywhere.  A ubiquitous table has a
    /// single logical part.
    pub fn ubiquitous(&mut self) -> &mut Self {
        self.ubiquitous = true;
        self.parts = 1;
        self
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The number of parts (always 1 for ubiquitous tables).
    pub fn part_count(&self) -> u32 {
        self.parts
    }

    /// Whether the table is ubiquitous.
    pub fn is_ubiquitous(&self) -> bool {
        self.ubiquitous
    }

    /// Requests a backup replica of each part ("a given table's parts may
    /// be replicated", §III-A).  Stores that support it keep every part's
    /// data twice and can recover a lost primary from its replica; stores
    /// that do not may ignore the request.
    pub fn replicated(&mut self) -> &mut Self {
        self.replicated = true;
        self
    }

    /// Whether part replication was requested.
    pub fn is_replicated(&self) -> bool {
        self.replicated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_to_one_part() {
        let spec = TableSpec::new("t");
        assert_eq!(spec.part_count(), 1);
        assert_eq!(spec.name(), "t");
    }

    #[test]
    fn ubiquitous_forces_single_part() {
        let spec = TableSpec::new("bcast").parts(8).ubiquitous().clone();
        assert!(spec.is_ubiquitous());
        assert_eq!(spec.part_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_parts_rejected() {
        TableSpec::new("t").parts(0);
    }

    #[test]
    fn replication_flag() {
        let spec = TableSpec::new("t").parts(2).replicated().clone();
        assert!(spec.is_replicated());
        assert!(!TableSpec::new("t").is_replicated());
    }
}
