use crate::{KvError, PairConsumer, PartConsumer, PartId, PartView, TableSpec, TaskHandle};

/// A key/value store that also places computation — Ripple's fundamental
/// storage+compute layer (paper §III-A).
///
/// Implementations provide partitioned byte tables plus the ability to run
/// mobile code adjacent to a given part ([`KvStore::run_at`]).  Everything
/// above this trait — the K/V EBSP engine, message queuing, loaders,
/// exporters — is store-independent.
pub trait KvStore: Clone + Send + Sync + Sized + 'static {
    /// The table handle type.
    type Table: crate::Table;

    /// Creates a table per `spec`.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::TableExists`] when the name is taken.
    fn create_table(&self, spec: &TableSpec) -> Result<Self::Table, KvError>;

    /// Creates a table named `name` guaranteed to be partitioned and placed
    /// consistently with `like`, so that equal-routed keys are collocated.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::TableExists`] when the name is taken.
    fn create_table_like(&self, name: &str, like: &Self::Table) -> Result<Self::Table, KvError>;

    /// Like [`KvStore::create_table_like`], but asks the store to also keep
    /// a replica of every part so the table survives a part failure.
    ///
    /// Stores without replication may ignore the request — the default
    /// implementation simply delegates to `create_table_like` — so callers
    /// must treat replication as best-effort.  The synchronized engine uses
    /// this for its transport tables when fast recovery is enabled.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::TableExists`] when the name is taken.
    fn create_table_like_replicated(
        &self,
        name: &str,
        like: &Self::Table,
    ) -> Result<Self::Table, KvError> {
        self.create_table_like(name, like)
    }

    /// Looks up an existing table.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::NoSuchTable`].
    fn lookup_table(&self, name: &str) -> Result<Self::Table, KvError>;

    /// Drops a table and its data.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::NoSuchTable`].
    fn drop_table(&self, name: &str) -> Result<(), KvError>;

    /// Names of all live tables, in no particular order.
    fn table_names(&self) -> Vec<String>;

    /// Dispatches `task` to run adjacent to part `part` of `reference`,
    /// returning immediately with a handle.
    ///
    /// Inside the task, the [`PartView`] gives marshalling-free access to
    /// the local slices of every table co-partitioned with `reference` (and
    /// read access to ubiquitous tables); remote data is reached through
    /// ordinary [`Table`](crate::Table) handles captured by the closure.
    fn run_at<R, F>(&self, reference: &Self::Table, part: PartId, task: F) -> TaskHandle<R>
    where
        R: Send + 'static,
        F: FnOnce(&dyn PartView) -> R + Send + 'static;

    /// The store's registry of named part-tasks, if it keeps one.
    ///
    /// Stores that support [`KvStore::run_named_at`] expose their registry
    /// here so jobs can register tasks through the trait; the default is
    /// `None`, meaning only closure dispatch ([`KvStore::run_at`]) works.
    fn task_registry(&self) -> Option<&crate::TaskRegistry> {
        None
    }

    /// Dispatches the *registered* task called `task` to run adjacent to
    /// part `part` of `reference` with argument `arg`.
    ///
    /// Unlike [`KvStore::run_at`], the task is addressed by name and its
    /// argument and result are byte strings, so the dispatch can cross a
    /// wire: a networked store forwards `(task, arg)` to the part's owning
    /// server and runs the registration there.  The default implementation
    /// looks the name up in [`KvStore::task_registry`] and dispatches the
    /// closure via `run_at`; the handle resolves to
    /// [`KvError::NoSuchTask`] when the name is not registered (or the
    /// store keeps no registry at all).
    fn run_named_at(
        &self,
        reference: &Self::Table,
        part: PartId,
        task: &str,
        arg: bytes::Bytes,
    ) -> TaskHandle<Result<bytes::Bytes, KvError>> {
        match self.task_registry().and_then(|reg| reg.get(task)) {
            Some(f) => self.run_at(reference, part, move |view| f(view, arg)),
            None => TaskHandle::ready(
                part,
                Err(KvError::NoSuchTask {
                    name: task.to_owned(),
                }),
            ),
        }
    }

    /// A snapshot of the store's operation/marshalling counters.
    fn metrics(&self) -> crate::StoreMetrics;

    /// Installs a sink for store-level failure events (part down, replica
    /// promotion).  Stores without failure detection ignore the sink — the
    /// default implementation drops it — so callers must treat event
    /// delivery as best-effort.  Installing a new sink replaces the old.
    fn set_event_sink(&self, sink: std::sync::Arc<dyn crate::StoreEventSink>) {
        let _ = sink;
    }

    /// Bounds how long a single store operation may wait on a silent peer
    /// before failing with [`KvError::Transient`]; `None` restores the
    /// store's default.  Purely local stores have no silent-peer hazard and
    /// ignore the deadline (the default implementation).
    fn set_op_deadline(&self, deadline: Option<std::time::Duration>) {
        let _ = deadline;
    }

    /// Probes liveness of the member currently serving `part` and returns
    /// the fencing epoch of its replica group.  Local stores are always
    /// live at epoch 0 (the default implementation); a networked store
    /// performs a heartbeat RPC.
    ///
    /// # Errors
    ///
    /// Fails with [`KvError::Transient`] when the peer cannot be reached
    /// within the operation deadline.
    fn ping_part(&self, part: PartId) -> Result<u64, KvError> {
        let _ = part;
        Ok(0)
    }

    /// Per-part snapshots of the store's counters, indexed by part id —
    /// the attribution layer step profiling uses to charge store traffic
    /// to the part that served it.
    ///
    /// Stores that do not attribute operations to parts return an empty
    /// vector (the default); callers must treat per-part attribution as
    /// best-effort.  Where supported, the field-wise sum over parts is
    /// bounded by [`KvStore::metrics`] (operations issued outside any part
    /// scope are counted store-wide only).
    fn part_metrics(&self) -> Vec<crate::StoreMetrics> {
        Vec::new()
    }

    /// Runs `task` near *every* part of `reference` in parallel and returns
    /// the part results in part order.
    ///
    /// # Errors
    ///
    /// Fails if any task panicked or the store closed.
    fn run_at_all<R, F>(&self, reference: &Self::Table, task: F) -> Result<Vec<R>, KvError>
    where
        R: Send + 'static,
        F: Fn(&dyn PartView) -> R + Clone + Send + 'static,
    {
        let parts = crate::Table::part_count(reference);
        let handles: Vec<_> = (0..parts)
            .map(|p| {
                let task = task.clone();
                self.run_at(reference, PartId(p), move |view| task(view))
            })
            .collect();
        handles.into_iter().map(TaskHandle::join).collect()
    }

    /// Enumerates the parts of `table` with a [`PartConsumer`]: one clone of
    /// `consumer` processes each part locally, and the per-part outputs are
    /// merged in part order.
    ///
    /// # Errors
    ///
    /// Fails if any part task panicked or the store closed.
    fn enumerate_parts<C>(&self, table: &Self::Table, consumer: C) -> Result<C::Output, KvError>
    where
        C: PartConsumer,
    {
        let combiner = consumer.clone();
        let outputs = self.run_at_all(table, move |view| {
            let mut c = consumer.clone();
            c.process(view.part(), view)
        })?;
        let mut iter = outputs.into_iter();
        let first = iter.next().expect("tables have at least one part");
        Ok(iter.fold(first, |acc, o| combiner.combine(acc, o)))
    }

    /// Enumerates the key/value pairs of `table` with a [`PairConsumer`]:
    /// per part, `setup` runs, then `pair` for each local entry, then
    /// `finish`; the per-part outputs are merged in part order.
    ///
    /// # Errors
    ///
    /// Fails if any part task panicked or the store closed.
    fn enumerate_pairs<C>(&self, table: &Self::Table, consumer: C) -> Result<C::Output, KvError>
    where
        C: PairConsumer,
    {
        let name = crate::Table::name(table).to_owned();
        let combiner = consumer.clone();
        let outputs = self.run_at_all(table, move |view| {
            let mut c = consumer.clone();
            let part = view.part();
            c.setup(part);
            view.scan(&name, &mut |k, v| c.pair(k, v))
                .map(|()| c.finish(part))
        })?;
        let mut iter = outputs.into_iter();
        let first = iter.next().expect("tables have at least one part")?;
        iter.try_fold(first, |acc, o| Ok(combiner.combine(acc, o?)))
    }

    /// Captures a point-in-time copy of `table`'s raw pairs — the
    /// *snapshot-read handle* a resident job service answers point queries
    /// from.
    ///
    /// The default implementation scans via [`KvStore::enumerate_pairs`],
    /// which is per-part atomic but only a consistent cross-part cut when
    /// writers are quiescent — e.g. taken from a `RunObserver::on_step`
    /// callback, where the engine is paused at the barrier.  Stores whose
    /// locking allows it (single global lock, or all-part lock acquisition)
    /// may override this with a cut that is consistent even against
    /// concurrent writers.
    ///
    /// # Errors
    ///
    /// Fails if any part scan panicked or the store closed.
    fn snapshot_table(&self, table: &Self::Table) -> Result<crate::TableSnapshot, KvError> {
        let pairs = self.enumerate_pairs(table, crate::CollectPairs::default())?;
        Ok(crate::TableSnapshot::from_entries(pairs))
    }
}
