use crate::{KvError, KvStore};

/// When a durable store forces buffered log bytes to stable storage.
///
/// The policy trades write latency against the failure window: `Always`
/// loses nothing a mutation ever acknowledged, `EveryN` bounds the loss
/// to the last batch, and `Never` relies entirely on barrier commits (and
/// the operating system) for durability.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// `fsync` after every appended record.
    Always,
    /// `fsync` after every `n` appended records (group commit).
    EveryN(u32),
    /// Never `fsync` on the mutation path; bytes reach the file (and the
    /// disk) only at explicit flushes and barrier commits.
    #[default]
    Never,
}

/// A store whose contents survive process restarts.
///
/// Every method has a default that makes a memory-only store a trivially
/// correct (if amnesiac) implementor: flushing nothing is durable enough
/// for data that never outlives the process.  The synchronized engine's
/// durable launch mode drives the barrier-commit protocol through
/// this trait:
///
/// 1. [`DurableStore::commit_barrier`] — mark and persist every shard of
///    the reference table's co-partitioned group at a barrier `epoch`;
/// 2. persist the run's resume journal (an ordinary table write followed
///    by [`DurableStore::flush`]);
/// 3. [`DurableStore::compact_group`] — fold committed log prefixes into
///    snapshots, now that the journal points at the epoch.
///
/// On restart, [`DurableStore::rewind_group`] discards everything after
/// the journalled epoch's barrier markers, re-establishing the exact
/// consistent cut the journal describes.
pub trait DurableStore: KvStore {
    /// The store's configured flush policy for ordinary mutations.
    fn sync_policy(&self) -> SyncPolicy {
        SyncPolicy::Never
    }

    /// Forces every buffered write in the store to stable storage.
    ///
    /// # Errors
    ///
    /// Fails if the backing medium rejects the writes.
    fn flush(&self) -> Result<(), KvError> {
        Ok(())
    }

    /// Appends a barrier marker for `epoch` to every shard log of the
    /// tables co-partitioned with `reference` and makes everything up to
    /// the markers durable.  Epochs must strictly increase per group.
    ///
    /// # Errors
    ///
    /// Fails if the reference was dropped or the medium rejects the
    /// writes.
    fn commit_barrier(&self, _reference: &Self::Table, _epoch: u64) -> Result<(), KvError> {
        Ok(())
    }

    /// Folds the committed log prefix of `reference`'s group into
    /// snapshots where the logs have grown past the store's threshold,
    /// truncating the folded logs.  Must only be called for an `epoch`
    /// that a resume journal already points at: a snapshot destroys the
    /// ability to rewind *past* it.
    ///
    /// # Errors
    ///
    /// Fails if the reference was dropped or the medium rejects the
    /// writes.
    fn compact_group(&self, _reference: &Self::Table, _epoch: u64) -> Result<(), KvError> {
        Ok(())
    }

    /// Rebuilds every shard of `reference`'s co-partitioned group to its
    /// exact state at the barrier marker for `epoch`, discarding all
    /// later (possibly mid-step) writes.  Ubiquitous tables are outside
    /// the group and keep their contents, mirroring shard checkpoints.
    ///
    /// # Errors
    ///
    /// The default fails with [`KvError::Backend`]: a store that keeps no
    /// log has nothing to rewind to, so a journalled resume cannot be
    /// honored.
    fn rewind_group(&self, _reference: &Self::Table, _epoch: u64) -> Result<(), KvError> {
        Err(KvError::Backend {
            detail: "store keeps no durable log; cannot rewind to a barrier".to_owned(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policy_is_never() {
        assert_eq!(SyncPolicy::default(), SyncPolicy::Never);
    }
}
