use std::fmt;
use std::ops::Sub;

/// Histogram of request latencies in power-of-two microsecond buckets.
///
/// Bucket `i` counts requests whose latency fell in `[2^i, 2^(i+1))`
/// microseconds (bucket 0 additionally absorbs sub-microsecond requests;
/// the last bucket absorbs everything slower).  Twelve buckets therefore
/// span 1 µs to ~2 s — the useful range for an RPC on anything from
/// loopback to a congested datacenter link — in a fixed-size, `Copy`
/// value that subtracts field-wise like the rest of [`StoreMetrics`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyBuckets(pub [u64; LatencyBuckets::BUCKETS]);

impl LatencyBuckets {
    /// Number of buckets.
    pub const BUCKETS: usize = 12;

    /// An empty histogram.
    pub const fn new() -> Self {
        Self([0; Self::BUCKETS])
    }

    /// The bucket index a latency of `us` microseconds falls in.
    pub fn bucket_for(us: u64) -> usize {
        (us.max(1).ilog2() as usize).min(Self::BUCKETS - 1)
    }

    /// Records one request of `us` microseconds.
    pub fn observe_us(&mut self, us: u64) {
        self.0[Self::bucket_for(us)] += 1;
    }

    /// Total requests recorded.
    pub fn total(&self) -> u64 {
        self.0.iter().sum()
    }

    /// An upper bound (in microseconds) on the latency quantile `q` in
    /// `[0, 1]`: the exclusive upper edge of the bucket the quantile
    /// falls in, or 0 for an empty histogram.
    pub fn quantile_upper_us(&self, q: f64) -> u64 {
        let total = self.total();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0;
        for (i, count) in self.0.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return 1 << (i + 1);
            }
        }
        1 << Self::BUCKETS
    }

    /// Field-wise merge of another histogram into this one.
    pub fn merge(&mut self, other: &LatencyBuckets) {
        for (a, b) in self.0.iter_mut().zip(other.0.iter()) {
            *a += b;
        }
    }
}

impl Default for LatencyBuckets {
    fn default() -> Self {
        Self::new()
    }
}

impl Sub for LatencyBuckets {
    type Output = LatencyBuckets;

    fn sub(self, rhs: LatencyBuckets) -> LatencyBuckets {
        let mut out = self;
        for (a, b) in out.0.iter_mut().zip(rhs.0.iter()) {
            *a = a.saturating_sub(*b);
        }
        out
    }
}

/// Snapshot of a store's operation and marshalling counters.
///
/// The Ripple evaluation leans on the distinction the debugging store makes:
/// "communication between emulated partitions involves marshalling, while
/// local operations do not".  These counters let the engine and the
/// experiment harnesses report exactly how much crossing happened.
///
/// This is a passive data snapshot, so its fields are public.  Subtracting
/// two snapshots gives the deltas for an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Operations served without crossing a part boundary.
    pub local_ops: u64,
    /// Operations that crossed a part boundary (request/response marshalled).
    pub remote_ops: u64,
    /// Bytes marshalled across part boundaries (keys + values, both ways).
    pub bytes_marshalled: u64,
    /// Mobile-code tasks dispatched to parts.
    pub tasks_dispatched: u64,
    /// Long-running enumerations served by the long-operation lanes.
    pub enumerations: u64,
    /// Bytes appended to write-ahead logs.  Zero on memory-only backends.
    pub wal_bytes: u64,
    /// `fsync`-class flushes issued to make log or snapshot bytes durable.
    /// Zero on memory-only backends.
    pub fsyncs: u64,
    /// Log records replayed while rebuilding memtables on open or rewind.
    /// Zero on memory-only backends.
    pub replayed_records: u64,
    /// Requests sent over a network connection.  Zero on in-process
    /// backends.
    pub rpcs: u64,
    /// Bytes received from the network (frame bytes, headers included).
    /// Zero on in-process backends.
    pub net_bytes_in: u64,
    /// Bytes written to the network (frame bytes, headers included).
    /// Zero on in-process backends.
    pub net_bytes_out: u64,
    /// Operations the store re-issued internally (fencing handshake redos,
    /// stale-epoch refreshes) — retries *below* the engine's own retry
    /// policy.  Zero on in-process backends.
    pub retries: u64,
    /// Network bytes attributable to retried or reconnect traffic: frame
    /// bytes re-sent after a stale-epoch refresh, a fencing handshake redo,
    /// a standby write retry, or a reconnect handshake.  Always a subset of
    /// the traffic already counted in [`StoreMetrics::net_bytes_out`], kept
    /// separately so cost accounting can report the useful h-relation
    /// (first-attempt bytes) under chaos.  Zero on in-process backends.
    pub retry_bytes: u64,
    /// Connections opened to a destination beyond its first — each one is
    /// a heal after a lost or severed connection.  Zero on in-process
    /// backends.
    pub reconnects: u64,
    /// Primary promotions: a replica group's primary was declared down and
    /// a standby took over at a higher epoch.  Zero on in-process and
    /// unreplicated backends.
    pub failovers: u64,
    /// Request-latency histogram for the networked operations counted in
    /// [`StoreMetrics::rpcs`], measured send-to-completion.
    pub rpc_latency: LatencyBuckets,
}

impl StoreMetrics {
    /// Total operations, local and remote.
    pub fn total_ops(&self) -> u64 {
        self.local_ops + self.remote_ops
    }
}

impl Sub for StoreMetrics {
    type Output = StoreMetrics;

    fn sub(self, rhs: StoreMetrics) -> StoreMetrics {
        StoreMetrics {
            local_ops: self.local_ops.saturating_sub(rhs.local_ops),
            remote_ops: self.remote_ops.saturating_sub(rhs.remote_ops),
            bytes_marshalled: self.bytes_marshalled.saturating_sub(rhs.bytes_marshalled),
            tasks_dispatched: self.tasks_dispatched.saturating_sub(rhs.tasks_dispatched),
            enumerations: self.enumerations.saturating_sub(rhs.enumerations),
            wal_bytes: self.wal_bytes.saturating_sub(rhs.wal_bytes),
            fsyncs: self.fsyncs.saturating_sub(rhs.fsyncs),
            replayed_records: self.replayed_records.saturating_sub(rhs.replayed_records),
            rpcs: self.rpcs.saturating_sub(rhs.rpcs),
            net_bytes_in: self.net_bytes_in.saturating_sub(rhs.net_bytes_in),
            net_bytes_out: self.net_bytes_out.saturating_sub(rhs.net_bytes_out),
            retries: self.retries.saturating_sub(rhs.retries),
            retry_bytes: self.retry_bytes.saturating_sub(rhs.retry_bytes),
            reconnects: self.reconnects.saturating_sub(rhs.reconnects),
            failovers: self.failovers.saturating_sub(rhs.failovers),
            rpc_latency: self.rpc_latency - rhs.rpc_latency,
        }
    }
}

impl fmt::Display for StoreMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops: {} local / {} remote, {} B marshalled, {} tasks, {} enumerations",
            self.local_ops,
            self.remote_ops,
            self.bytes_marshalled,
            self.tasks_dispatched,
            self.enumerations
        )?;
        // Durability counters only appear where a durable backend is in
        // play; memory-only stores leave them at zero and print compactly.
        if self.wal_bytes != 0 || self.fsyncs != 0 || self.replayed_records != 0 {
            write!(
                f,
                ", {} B WAL, {} fsyncs, {} replayed",
                self.wal_bytes, self.fsyncs, self.replayed_records
            )?;
        }
        // Network counters only appear on a networked backend; in-process
        // stores leave them at zero and print compactly.
        if self.rpcs != 0 || self.net_bytes_in != 0 || self.net_bytes_out != 0 {
            write!(
                f,
                ", {} rpcs, {} B in / {} B out, p99 ≤ {} µs",
                self.rpcs,
                self.net_bytes_in,
                self.net_bytes_out,
                self.rpc_latency.quantile_upper_us(0.99)
            )?;
        }
        // Failure-handling counters only appear when something actually
        // went wrong (or over); healthy runs print compactly.
        if self.retries != 0 || self.reconnects != 0 || self.failovers != 0 {
            write!(
                f,
                ", {} store retries, {} reconnects, {} failovers",
                self.retries, self.reconnects, self.failovers
            )?;
        }
        if self.retry_bytes != 0 {
            write!(f, ", {} retry B", self.retry_bytes)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_subtract_fieldwise() {
        let a = StoreMetrics {
            local_ops: 10,
            remote_ops: 5,
            bytes_marshalled: 100,
            tasks_dispatched: 3,
            enumerations: 2,
            wal_bytes: 900,
            fsyncs: 9,
            replayed_records: 7,
            rpcs: 20,
            net_bytes_in: 512,
            net_bytes_out: 256,
            retries: 8,
            retry_bytes: 120,
            reconnects: 4,
            failovers: 2,
            rpc_latency: LatencyBuckets([2, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
        };
        let b = StoreMetrics {
            local_ops: 4,
            remote_ops: 1,
            bytes_marshalled: 40,
            tasks_dispatched: 1,
            enumerations: 2,
            wal_bytes: 300,
            fsyncs: 4,
            replayed_records: 7,
            rpcs: 5,
            net_bytes_in: 12,
            net_bytes_out: 56,
            retries: 3,
            retry_bytes: 20,
            reconnects: 1,
            failovers: 2,
            rpc_latency: LatencyBuckets([1, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]),
        };
        let d = a - b;
        assert_eq!(d.local_ops, 6);
        assert_eq!(d.remote_ops, 4);
        assert_eq!(d.bytes_marshalled, 60);
        assert_eq!(d.tasks_dispatched, 2);
        assert_eq!(d.enumerations, 0);
        assert_eq!(d.total_ops(), 10);
        assert_eq!(d.wal_bytes, 600);
        assert_eq!(d.fsyncs, 5);
        assert_eq!(d.replayed_records, 0);
        assert_eq!(d.rpcs, 15);
        assert_eq!(d.net_bytes_in, 500);
        assert_eq!(d.net_bytes_out, 200);
        assert_eq!(d.retries, 5);
        assert_eq!(d.retry_bytes, 100);
        assert_eq!(d.reconnects, 3);
        assert_eq!(d.failovers, 0);
        assert_eq!(d.rpc_latency.total(), 1);
    }

    #[test]
    fn latency_buckets_observe_and_quantile() {
        let mut h = LatencyBuckets::new();
        assert_eq!(h.total(), 0);
        assert_eq!(h.quantile_upper_us(0.5), 0);
        h.observe_us(0); // clamps into bucket 0
        h.observe_us(1);
        h.observe_us(3);
        h.observe_us(100);
        h.observe_us(u64::MAX); // clamps into the last bucket
        assert_eq!(h.total(), 5);
        assert_eq!(LatencyBuckets::bucket_for(1), 0);
        assert_eq!(LatencyBuckets::bucket_for(3), 1);
        assert_eq!(LatencyBuckets::bucket_for(100), 6);
        assert_eq!(LatencyBuckets::bucket_for(u64::MAX), 11);
        // Two of five fall in bucket 0, so the 0.4 quantile ends there.
        assert_eq!(h.quantile_upper_us(0.4), 2);
        // The slowest observation dominates the tail.
        assert_eq!(h.quantile_upper_us(1.0), 1 << 12);
        let mut merged = LatencyBuckets::new();
        merged.merge(&h);
        merged.merge(&h);
        assert_eq!(merged.total(), 10);
        assert_eq!((merged - h).total(), 5);
    }

    #[test]
    fn display_mentions_network_only_when_nonzero() {
        assert!(!StoreMetrics::default().to_string().contains("rpcs"));
        let netted = StoreMetrics {
            rpcs: 7,
            net_bytes_in: 100,
            net_bytes_out: 50,
            ..StoreMetrics::default()
        }
        .to_string();
        assert!(netted.contains("7 rpcs"));
        assert!(netted.contains("100 B in / 50 B out"));
    }

    #[test]
    fn display_mentions_failover_only_when_nonzero() {
        assert!(!StoreMetrics::default().to_string().contains("failovers"));
        let failed_over = StoreMetrics {
            retries: 2,
            retry_bytes: 64,
            reconnects: 3,
            failovers: 1,
            ..StoreMetrics::default()
        }
        .to_string();
        assert!(failed_over.contains("2 store retries"));
        assert!(failed_over.contains("3 reconnects"));
        assert!(failed_over.contains("1 failovers"));
        assert!(failed_over.contains("64 retry B"));
        assert!(!StoreMetrics::default().to_string().contains("retry B"));
    }

    #[test]
    fn display_not_empty() {
        assert!(!StoreMetrics::default().to_string().is_empty());
    }

    #[test]
    fn display_mentions_durability_only_when_nonzero() {
        let zeroed = StoreMetrics::default().to_string();
        assert!(!zeroed.contains("WAL"));
        let durable = StoreMetrics {
            wal_bytes: 1024,
            fsyncs: 3,
            replayed_records: 12,
            ..StoreMetrics::default()
        }
        .to_string();
        assert!(durable.contains("1024 B WAL"));
        assert!(durable.contains("3 fsyncs"));
        assert!(durable.contains("12 replayed"));
    }
}
