use std::fmt;
use std::ops::Sub;

/// Snapshot of a store's operation and marshalling counters.
///
/// The Ripple evaluation leans on the distinction the debugging store makes:
/// "communication between emulated partitions involves marshalling, while
/// local operations do not".  These counters let the engine and the
/// experiment harnesses report exactly how much crossing happened.
///
/// This is a passive data snapshot, so its fields are public.  Subtracting
/// two snapshots gives the deltas for an interval.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreMetrics {
    /// Operations served without crossing a part boundary.
    pub local_ops: u64,
    /// Operations that crossed a part boundary (request/response marshalled).
    pub remote_ops: u64,
    /// Bytes marshalled across part boundaries (keys + values, both ways).
    pub bytes_marshalled: u64,
    /// Mobile-code tasks dispatched to parts.
    pub tasks_dispatched: u64,
    /// Long-running enumerations served by the long-operation lanes.
    pub enumerations: u64,
    /// Bytes appended to write-ahead logs.  Zero on memory-only backends.
    pub wal_bytes: u64,
    /// `fsync`-class flushes issued to make log or snapshot bytes durable.
    /// Zero on memory-only backends.
    pub fsyncs: u64,
    /// Log records replayed while rebuilding memtables on open or rewind.
    /// Zero on memory-only backends.
    pub replayed_records: u64,
}

impl StoreMetrics {
    /// Total operations, local and remote.
    pub fn total_ops(&self) -> u64 {
        self.local_ops + self.remote_ops
    }
}

impl Sub for StoreMetrics {
    type Output = StoreMetrics;

    fn sub(self, rhs: StoreMetrics) -> StoreMetrics {
        StoreMetrics {
            local_ops: self.local_ops.saturating_sub(rhs.local_ops),
            remote_ops: self.remote_ops.saturating_sub(rhs.remote_ops),
            bytes_marshalled: self.bytes_marshalled.saturating_sub(rhs.bytes_marshalled),
            tasks_dispatched: self.tasks_dispatched.saturating_sub(rhs.tasks_dispatched),
            enumerations: self.enumerations.saturating_sub(rhs.enumerations),
            wal_bytes: self.wal_bytes.saturating_sub(rhs.wal_bytes),
            fsyncs: self.fsyncs.saturating_sub(rhs.fsyncs),
            replayed_records: self.replayed_records.saturating_sub(rhs.replayed_records),
        }
    }
}

impl fmt::Display for StoreMetrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ops: {} local / {} remote, {} B marshalled, {} tasks, {} enumerations",
            self.local_ops,
            self.remote_ops,
            self.bytes_marshalled,
            self.tasks_dispatched,
            self.enumerations
        )?;
        // Durability counters only appear where a durable backend is in
        // play; memory-only stores leave them at zero and print compactly.
        if self.wal_bytes != 0 || self.fsyncs != 0 || self.replayed_records != 0 {
            write!(
                f,
                ", {} B WAL, {} fsyncs, {} replayed",
                self.wal_bytes, self.fsyncs, self.replayed_records
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_subtract_fieldwise() {
        let a = StoreMetrics {
            local_ops: 10,
            remote_ops: 5,
            bytes_marshalled: 100,
            tasks_dispatched: 3,
            enumerations: 2,
            wal_bytes: 900,
            fsyncs: 9,
            replayed_records: 7,
        };
        let b = StoreMetrics {
            local_ops: 4,
            remote_ops: 1,
            bytes_marshalled: 40,
            tasks_dispatched: 1,
            enumerations: 2,
            wal_bytes: 300,
            fsyncs: 4,
            replayed_records: 7,
        };
        let d = a - b;
        assert_eq!(d.local_ops, 6);
        assert_eq!(d.remote_ops, 4);
        assert_eq!(d.bytes_marshalled, 60);
        assert_eq!(d.tasks_dispatched, 2);
        assert_eq!(d.enumerations, 0);
        assert_eq!(d.total_ops(), 10);
        assert_eq!(d.wal_bytes, 600);
        assert_eq!(d.fsyncs, 5);
        assert_eq!(d.replayed_records, 0);
    }

    #[test]
    fn display_not_empty() {
        assert!(!StoreMetrics::default().to_string().is_empty());
    }

    #[test]
    fn display_mentions_durability_only_when_nonzero() {
        let zeroed = StoreMetrics::default().to_string();
        assert!(!zeroed.contains("WAL"));
        let durable = StoreMetrics {
            wal_bytes: 1024,
            fsyncs: 3,
            replayed_records: 12,
            ..StoreMetrics::default()
        }
        .to_string();
        assert!(durable.contains("1024 B WAL"));
        assert!(durable.contains("3 fsyncs"));
        assert!(durable.contains("12 replayed"));
    }
}
