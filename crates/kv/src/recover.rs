use crate::{KvError, KvStore, PartId};

/// A store that supports shard-granularity checkpoints, the substrate for
/// the EBSP engine's step-replay failure recovery (paper §IV-A: commit a
/// shard transaction per step, discard a failed shard's writes, retry).
pub trait RecoverableStore: KvStore {
    /// An opaque captured shard state.
    type Checkpoint: Send + 'static;

    /// Captures `part` across every table co-partitioned with `reference`.
    /// The caller must ensure quiescence (no concurrent writers to the
    /// part); the engine checkpoints only at barriers.
    ///
    /// # Errors
    ///
    /// Fails if the part is failed or the reference was dropped.
    fn checkpoint_part(
        &self,
        reference: &Self::Table,
        part: PartId,
    ) -> Result<Self::Checkpoint, KvError>;

    /// Restores a captured shard state and heals the part.
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint is inconsistent with the store's tables.
    fn restore_part(&self, checkpoint: &Self::Checkpoint) -> Result<(), KvError>;
}
