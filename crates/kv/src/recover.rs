use crate::{KvError, KvStore, PartId};

/// A store that supports shard-granularity checkpoints, the substrate for
/// the EBSP engine's step-replay failure recovery (paper §IV-A: commit a
/// shard transaction per step, discard a failed shard's writes, retry).
pub trait RecoverableStore: KvStore {
    /// An opaque captured shard state.
    type Checkpoint: Send + 'static;

    /// Captures `part` across every table co-partitioned with `reference`.
    /// The caller must ensure quiescence (no concurrent writers to the
    /// part); the engine checkpoints only at barriers.
    ///
    /// # Errors
    ///
    /// Fails if the part is failed or the reference was dropped.
    fn checkpoint_part(
        &self,
        reference: &Self::Table,
        part: PartId,
    ) -> Result<Self::Checkpoint, KvError>;

    /// Restores a captured shard state and heals the part.
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint is inconsistent with the store's tables.
    fn restore_part(&self, checkpoint: &Self::Checkpoint) -> Result<(), KvError>;

    /// Restores only the named tables of a captured shard state (and heals
    /// the part), leaving the part's other co-partitioned tables untouched.
    ///
    /// This is the substrate for *fast recovery*: a deterministic job's
    /// state tables are rewound to the last barrier while transport tables
    /// — recovered by other means, e.g. replica promotion — keep their
    /// newer contents.
    ///
    /// # Errors
    ///
    /// Fails if the checkpoint is inconsistent with the store's tables or
    /// if a named table is not part of the checkpoint.
    fn restore_part_tables(
        &self,
        checkpoint: &Self::Checkpoint,
        tables: &[String],
    ) -> Result<(), KvError>;
}

/// A store that can bring a failed part back online from replicas alone,
/// without a checkpoint — the substrate for the unsynchronized engine's
/// in-place worker recovery and for the synchronized engine's fast
/// single-part replay.
pub trait HealableStore: KvStore {
    /// Brings `part` back online across every table co-partitioned with
    /// `reference`, restoring each replicated table's contents from its
    /// surviving replica.  Unreplicated tables come back empty.  Returns
    /// how many tables had replica data to promote.
    ///
    /// # Errors
    ///
    /// Fails if the reference table was dropped or the store cannot bring
    /// the part back at all.
    fn recover_part(&self, reference: &Self::Table, part: PartId) -> Result<usize, KvError>;

    /// Whether `part` of `reference`'s co-partitioned group is currently
    /// failed.
    fn part_is_failed(&self, reference: &Self::Table, part: PartId) -> Result<bool, KvError>;
}
