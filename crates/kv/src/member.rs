//! Replica-group membership types and the store event sink.
//!
//! A replicated store hosts each part slot on a small **replica group**: a
//! primary plus zero or more standbys.  Promotion of a standby is fenced by
//! a monotonically increasing **epoch** so a deposed primary (a "zombie")
//! can never accept writes that the rest of the system no longer expects it
//! to hold (requests carrying an older epoch are refused with
//! [`KvError::StaleEpoch`](crate::KvError::StaleEpoch)).
//!
//! These types are deliberately plain data: the SPI layer only describes
//! membership; the mechanics of heartbeats, suspicion, and promotion live in
//! the store implementations.  The [`StoreEventSink`] trait is the reverse
//! channel — a store calls it to tell whoever is running a job that a part
//! went down or failed over, so observers can log the event instead of the
//! job silently stalling.

use std::fmt;

/// Receiver for store-level failure events.
///
/// Engines install a sink via
/// [`KvStore::set_event_sink`](crate::KvStore::set_event_sink) so failure
/// detection inside the store (missed heartbeats, dead connections, replica
/// promotion) surfaces as observer callbacks rather than being visible only
/// as latency.  All methods have empty defaults; implementations override
/// what they care about.  Calls may arrive from store-internal threads, so
/// implementations must be cheap and must not call back into the store.
pub trait StoreEventSink: Send + Sync + 'static {
    /// A member serving `part` was declared down while the group was at
    /// `epoch`.
    fn on_part_down(&self, part: u32, epoch: u64) {
        let _ = (part, epoch);
    }

    /// A standby was promoted to primary for `part`; the group is now
    /// fenced at `epoch` (the epoch *after* the promotion).
    fn on_failover(&self, part: u32, epoch: u64) {
        let _ = (part, epoch);
    }
}

/// One part slot's replica group: an ordered member list, the index of the
/// current primary, the fencing epoch, and per-member down flags.
///
/// `A` is the member address type (a socket address for the networked
/// store; tests may use plain indices).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSet<A> {
    /// The group's members in configuration order.  The first member is the
    /// initial primary.
    pub members: Vec<A>,
    /// Index into `members` of the current primary.
    pub primary: usize,
    /// The group's fencing epoch.  Starts at 1 and increases by exactly one
    /// per promotion; requests fenced at an older epoch are refused.
    pub epoch: u64,
    /// Per-member down flags, parallel to `members`.  A down member is
    /// never selected as primary and no longer receives replicated writes.
    pub down: Vec<bool>,
}

impl<A> ReplicaSet<A> {
    /// Number of members still considered alive.
    #[must_use]
    pub fn live_members(&self) -> usize {
        self.down.iter().filter(|d| !**d).count()
    }
}

impl<A: fmt::Display> fmt::Display for ReplicaSet<A> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "epoch {}: [", self.epoch)?;
        for (i, m) in self.members.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{m}")?;
            if i == self.primary {
                write!(f, "*")?;
            }
            if self.down[i] {
                write!(f, " (down)")?;
            }
        }
        write!(f, "]")
    }
}

/// A snapshot of every part slot's replica group.
///
/// Parts map onto slots by modulo: part `p` is served by
/// `groups[p % groups.len()]`, matching how the networked store assigns
/// parts to servers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MembershipView<A> {
    /// One replica group per part slot.
    pub groups: Vec<ReplicaSet<A>>,
}

impl<A> MembershipView<A> {
    /// The replica group serving `part`.
    ///
    /// # Panics
    ///
    /// Panics if the view has no groups.
    #[must_use]
    pub fn group_for_part(&self, part: u32) -> &ReplicaSet<A> {
        assert!(!self.groups.is_empty(), "membership view has no groups");
        &self.groups[part as usize % self.groups.len()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(primary: usize, epoch: u64, down: &[bool]) -> ReplicaSet<u32> {
        ReplicaSet {
            members: (0..down.len() as u32).collect(),
            primary,
            epoch,
            down: down.to_vec(),
        }
    }

    #[test]
    fn parts_map_to_groups_by_modulo() {
        let view = MembershipView {
            groups: vec![group(0, 1, &[false]), group(1, 3, &[true, false])],
        };
        assert_eq!(view.group_for_part(0).epoch, 1);
        assert_eq!(view.group_for_part(1).epoch, 3);
        assert_eq!(view.group_for_part(2).epoch, 1);
        assert_eq!(view.group_for_part(5).epoch, 3);
    }

    #[test]
    fn live_member_count_skips_down_members() {
        assert_eq!(group(1, 2, &[true, false, false]).live_members(), 2);
        assert_eq!(group(0, 1, &[false]).live_members(), 1);
    }

    #[test]
    fn display_marks_primary_and_down_members() {
        let s = group(1, 2, &[true, false]).to_string();
        assert!(s.contains("epoch 2"));
        assert!(s.contains("0 (down)"));
        assert!(s.contains("1*"));
    }

    #[test]
    fn default_sink_methods_are_no_ops() {
        struct Quiet;
        impl StoreEventSink for Quiet {}
        let q = Quiet;
        q.on_part_down(3, 7);
        q.on_failover(3, 8);
    }
}
