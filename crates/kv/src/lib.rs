//! Key/value store SPI for the Ripple analytics platform.
//!
//! Ripple indirects all storage *and compute placement* through the narrow
//! interfaces in this crate (paper §III).  The store is the fundamental
//! storage+compute layer: since it is in charge of placing data, it also
//! places computation, via [`KvStore::run_at`].  The K/V EBSP engine, the
//! message-queuing layer, loaders and exporters are all written against
//! these traits only, which keeps the rest of the platform store-independent
//! — exactly the openness argument the paper makes.
//!
//! Concepts, mirroring the paper:
//!
//! - data are organized into **tables**, each partitioned into **parts**
//!   identified by successive integers starting at 0 ([`PartId`]);
//! - a key is a general object; "the table client can control the assignment
//!   of keys to parts by controlling the hash values of its keys" — here a
//!   [`RoutedKey`] pairs an explicit 64-bit route with the key body;
//! - tables can be created **co-partitioned** with another table
//!   ([`KvStore::create_table_like`]) so corresponding entries land in the
//!   same part, enabling collocated joins;
//! - a **ubiquitous table** is quick to read and of limited size; its
//!   contents are expected to be replicated to every location
//!   ([`TableSpec::ubiquitous`]);
//! - tables are enumerated part-by-part with a [`PartConsumer`] and
//!   pair-by-pair with a [`PairConsumer`], each with setup/finish/combine
//!   hooks;
//! - mobile code is dispatched adjacent to a given part of a given table
//!   with [`KvStore::run_at`]; inside that code, operations against locally
//!   placed data skip marshalling while remote operations pay it.

mod consumer;
mod durable;
mod error;
mod handle;
mod key;
mod member;
mod metrics;
mod recover;
mod snapshot;
mod spec;
mod store;
mod table;
mod task;

pub use consumer::{FnPairConsumer, PairConsumer, PartConsumer, ScanControl};
pub use durable::{DurableStore, SyncPolicy};
pub use error::{panic_message, KvError};
pub use handle::TaskHandle;
pub use key::{fnv64, PartId, RoutedKey};
pub use member::{MembershipView, ReplicaSet, StoreEventSink};
pub use metrics::{LatencyBuckets, StoreMetrics};
pub use recover::{HealableStore, RecoverableStore};
pub use snapshot::{CollectPairs, TableSnapshot};
pub use spec::TableSpec;
pub use store::KvStore;
pub use table::{PartView, Table};
pub use task::{PartTask, TaskRegistry};
