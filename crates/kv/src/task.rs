//! Named part-tasks: mobile code that can cross a wire.
//!
//! [`KvStore::run_at`](crate::KvStore::run_at) ships a closure to a part —
//! free inside one process, impossible across a network.  The registered-task
//! mechanism is the networked escape hatch the paper's model implies: a job
//! registers a *named* function against the store under a stable string, and
//! [`KvStore::run_named_at`](crate::KvStore::run_named_at) dispatches by name
//! plus an argument byte string, which *can* travel.  A networked store
//! forwards the name and argument to the part's owning server and runs the
//! server-side registration there; in-process stores just look the name up
//! locally.  Jobs that skip registration still work everywhere — `run_at`
//! against a networked store executes the closure client-side, reaching
//! remote data through ordinary handles — registration only buys locality.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

use bytes::Bytes;

use crate::{KvError, PartView};

/// A named part-task: runs adjacent to one part with an argument byte
/// string, returning result bytes.  Both sides are raw bytes because the
/// pair must be able to cross a wire; callers marshal with `ripple-wire`.
pub type PartTask = Arc<dyn Fn(&dyn PartView, Bytes) -> Result<Bytes, KvError> + Send + Sync>;

/// A registry of named part-tasks, shared by all handles to one store.
///
/// Cloning is cheap and clones observe each other's registrations — the
/// registry is the store-wide name → task map, not a per-handle one.
#[derive(Clone, Default)]
pub struct TaskRegistry {
    tasks: Arc<RwLock<HashMap<String, PartTask>>>,
}

impl TaskRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) the task called `name`.
    pub fn register<F>(&self, name: &str, task: F)
    where
        F: Fn(&dyn PartView, Bytes) -> Result<Bytes, KvError> + Send + Sync + 'static,
    {
        self.tasks
            .write()
            .expect("task registry lock poisoned")
            .insert(name.to_owned(), Arc::new(task));
    }

    /// Looks up the task called `name`.
    pub fn get(&self, name: &str) -> Option<PartTask> {
        self.tasks
            .read()
            .expect("task registry lock poisoned")
            .get(name)
            .cloned()
    }

    /// Names of all registered tasks, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .tasks
            .read()
            .expect("task registry lock poisoned")
            .keys()
            .cloned()
            .collect();
        names.sort();
        names
    }
}

impl std::fmt::Debug for TaskRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TaskRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_lookup_and_names() {
        let reg = TaskRegistry::new();
        assert!(reg.get("sum").is_none());
        reg.register("sum", |_view, arg| Ok(arg));
        reg.register("count", |_view, _arg| Ok(Bytes::new()));
        assert!(reg.get("sum").is_some());
        assert_eq!(reg.names(), vec!["count".to_owned(), "sum".to_owned()]);
    }

    #[test]
    fn clones_share_registrations() {
        let reg = TaskRegistry::new();
        let other = reg.clone();
        reg.register("late", |_view, _arg| Ok(Bytes::new()));
        assert!(other.get("late").is_some());
    }

    #[test]
    fn reregistration_replaces() {
        let reg = TaskRegistry::new();
        reg.register("t", |_view, _arg| Ok(Bytes::from_static(b"old")));
        reg.register("t", |_view, _arg| Ok(Bytes::from_static(b"new")));
        let task = reg.get("t").unwrap();
        struct NoView;
        impl PartView for NoView {
            fn part(&self) -> crate::PartId {
                crate::PartId(0)
            }
            fn get(&self, _table: &str, _key: &crate::RoutedKey) -> Result<Option<Bytes>, KvError> {
                unimplemented!()
            }
            fn put(
                &self,
                _table: &str,
                _key: crate::RoutedKey,
                _value: Bytes,
            ) -> Result<Option<Bytes>, KvError> {
                unimplemented!()
            }
            fn delete(&self, _table: &str, _key: &crate::RoutedKey) -> Result<bool, KvError> {
                unimplemented!()
            }
            fn scan(
                &self,
                _table: &str,
                _f: &mut dyn FnMut(&crate::RoutedKey, &[u8]) -> crate::ScanControl,
            ) -> Result<(), KvError> {
                unimplemented!()
            }
            fn drain(
                &self,
                _table: &str,
                _f: &mut dyn FnMut(crate::RoutedKey, Bytes) -> crate::ScanControl,
            ) -> Result<(), KvError> {
                unimplemented!()
            }
            fn len(&self, _table: &str) -> Result<usize, KvError> {
                unimplemented!()
            }
        }
        assert_eq!(task(&NoView, Bytes::new()).unwrap().as_ref(), b"new");
    }
}
