use bytes::Bytes;

use crate::{fnv64, PairConsumer, PartId, RoutedKey, ScanControl};

/// An immutable point-in-time copy of a table's raw key/value pairs.
///
/// Snapshots exist for *consistent-cut reads*: a resident job service
/// answers point queries from the last barrier snapshot while the engine
/// keeps mutating live tables between barriers.  Taken while writers are
/// quiescent (e.g. from a `RunObserver::on_step` callback, where the
/// engine is paused at the barrier), the snapshot is a consistent cut of
/// the whole table; taken concurrently with writers it is only per-part
/// atomic at best, and stores that cannot even promise that document it.
///
/// Entries are held sorted by `(route, body)`, so equality (and
/// [`TableSnapshot::digest`]) is canonical: two snapshots of byte-identical
/// tables compare equal regardless of scan order or backend.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TableSnapshot {
    entries: Vec<(RoutedKey, Bytes)>,
}

impl TableSnapshot {
    /// Builds a snapshot from raw pairs in any order.
    pub fn from_entries(mut entries: Vec<(RoutedKey, Bytes)>) -> Self {
        entries.sort_unstable_by(|(a, _), (b, _)| a.cmp(b));
        Self { entries }
    }

    /// Number of pairs captured.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when the table was empty at the cut.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Point-reads one key from the cut.
    pub fn get(&self, key: &RoutedKey) -> Option<&Bytes> {
        self.entries
            .binary_search_by(|(k, _)| k.cmp(key))
            .ok()
            .map(|i| &self.entries[i].1)
    }

    /// The captured pairs, sorted by `(route, body)`.
    pub fn entries(&self) -> &[(RoutedKey, Bytes)] {
        &self.entries
    }

    /// Iterates the captured pairs in canonical order.
    pub fn iter(&self) -> impl Iterator<Item = (&RoutedKey, &Bytes)> {
        self.entries.iter().map(|(k, v)| (k, v))
    }

    /// FNV-1a digest over the canonical byte serialization of every pair —
    /// a cheap fingerprint for byte-identity assertions across backends.
    pub fn digest(&self) -> u64 {
        let mut buf = Vec::new();
        for (k, v) in &self.entries {
            buf.extend_from_slice(&k.route().to_le_bytes());
            buf.extend_from_slice(&(k.body().len() as u64).to_le_bytes());
            buf.extend_from_slice(k.body());
            buf.extend_from_slice(&(v.len() as u64).to_le_bytes());
            buf.extend_from_slice(v);
        }
        fnv64(&buf)
    }
}

impl<'a> IntoIterator for &'a TableSnapshot {
    type Item = &'a (RoutedKey, Bytes);
    type IntoIter = std::slice::Iter<'a, (RoutedKey, Bytes)>;
    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// [`PairConsumer`] that collects every pair verbatim — the default
/// engine behind [`KvStore::snapshot_table`](crate::KvStore::snapshot_table).
#[derive(Debug, Clone, Default)]
pub struct CollectPairs {
    acc: Vec<(RoutedKey, Bytes)>,
}

impl PairConsumer for CollectPairs {
    type Output = Vec<(RoutedKey, Bytes)>;

    fn pair(&mut self, key: &RoutedKey, value: &[u8]) -> ScanControl {
        self.acc.push((key.clone(), Bytes::copy_from_slice(value)));
        ScanControl::Continue
    }

    fn finish(&mut self, _part: PartId) -> Self::Output {
        std::mem::take(&mut self.acc)
    }

    fn combine(&self, mut a: Self::Output, mut b: Self::Output) -> Self::Output {
        a.append(&mut b);
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(route: u64, body: &[u8]) -> RoutedKey {
        RoutedKey::with_route(route, Bytes::copy_from_slice(body))
    }

    #[test]
    fn canonical_order_and_get() {
        let snap = TableSnapshot::from_entries(vec![
            (key(2, b"b"), Bytes::from_static(b"two")),
            (key(1, b"a"), Bytes::from_static(b"one")),
            (key(2, b"a"), Bytes::from_static(b"three")),
        ]);
        assert_eq!(snap.len(), 3);
        assert_eq!(snap.get(&key(1, b"a")), Some(&Bytes::from_static(b"one")));
        assert_eq!(snap.get(&key(9, b"z")), None);
        let routes: Vec<u64> = snap.iter().map(|(k, _)| k.route()).collect();
        assert_eq!(routes, vec![1, 2, 2]);
    }

    #[test]
    fn digest_is_order_insensitive_and_content_sensitive() {
        let a = TableSnapshot::from_entries(vec![
            (key(1, b"a"), Bytes::from_static(b"x")),
            (key(2, b"b"), Bytes::from_static(b"y")),
        ]);
        let b = TableSnapshot::from_entries(vec![
            (key(2, b"b"), Bytes::from_static(b"y")),
            (key(1, b"a"), Bytes::from_static(b"x")),
        ]);
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        let c = TableSnapshot::from_entries(vec![
            (key(1, b"a"), Bytes::from_static(b"x")),
            (key(2, b"b"), Bytes::from_static(b"z")),
        ]);
        assert_ne!(a.digest(), c.digest());
    }

    #[test]
    fn empty_snapshot() {
        let snap = TableSnapshot::default();
        assert!(snap.is_empty());
        assert_eq!(snap.len(), 0);
        assert_eq!(
            snap.digest(),
            TableSnapshot::from_entries(Vec::new()).digest()
        );
    }
}
