use crossbeam::channel::Receiver;

use crate::{KvError, PartId};

/// Handle to mobile code dispatched near a part with
/// [`KvStore::run_at`](crate::KvStore::run_at).
///
/// Dropping the handle detaches the task; [`TaskHandle::join`] blocks until
/// the task finishes and yields its result.
#[derive(Debug)]
pub struct TaskHandle<R> {
    part: PartId,
    rx: Receiver<std::thread::Result<R>>,
}

impl<R> TaskHandle<R> {
    /// Wraps a result channel; store implementations send exactly one value.
    pub fn from_channel(part: PartId, rx: Receiver<std::thread::Result<R>>) -> Self {
        Self { part, rx }
    }

    /// A handle that is already complete with `value` — for dispatch paths
    /// that fail before any task starts (say, an unregistered task name),
    /// where the caller still expects a joinable handle.
    pub fn ready(part: PartId, value: R) -> Self {
        let (tx, rx) = crossbeam::channel::bounded(1);
        tx.send(Ok(value)).expect("bounded(1) accepts one value");
        Self { part, rx }
    }

    /// The part the task was dispatched to.
    pub fn part(&self) -> PartId {
        self.part
    }

    /// Blocks until the task completes.
    ///
    /// # Errors
    ///
    /// Returns [`KvError::TaskPanicked`] if the mobile code panicked and
    /// [`KvError::StoreClosed`] if the store shut down before completion.
    pub fn join(self) -> Result<R, KvError> {
        match self.rx.recv() {
            Ok(Ok(value)) => Ok(value),
            Ok(Err(panic)) => Err(KvError::TaskPanicked {
                part: self.part.0,
                message: crate::panic_message(panic.as_ref()),
            }),
            Err(_) => Err(KvError::StoreClosed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crossbeam::channel::bounded;

    #[test]
    fn join_returns_value() {
        let (tx, rx) = bounded(1);
        tx.send(Ok(42u32)).unwrap();
        let h = TaskHandle::from_channel(PartId(3), rx);
        assert_eq!(h.part(), PartId(3));
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn join_surfaces_panic() {
        let (tx, rx) = bounded::<std::thread::Result<u32>>(1);
        tx.send(Err(Box::new("boom"))).unwrap();
        let h = TaskHandle::from_channel(PartId(1), rx);
        assert_eq!(
            h.join(),
            Err(KvError::TaskPanicked {
                part: 1,
                message: "boom".to_owned(),
            })
        );
    }

    #[test]
    fn join_surfaces_closed_store() {
        let (tx, rx) = bounded::<std::thread::Result<u32>>(1);
        drop(tx);
        let h = TaskHandle::from_channel(PartId(0), rx);
        assert_eq!(h.join(), Err(KvError::StoreClosed));
    }
}
