use std::error::Error;
use std::fmt;

/// Error produced by key/value store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KvError {
    /// A table with the given name already exists.
    TableExists {
        /// The conflicting table name.
        name: String,
    },
    /// No table with the given name exists.
    NoSuchTable {
        /// The requested table name.
        name: String,
    },
    /// A part index was at or past the table's part count.
    PartOutOfRange {
        /// The requested part.
        part: u32,
        /// The table's part count.
        parts: u32,
    },
    /// The table handle refers to a table that has been dropped.
    TableDropped {
        /// The dropped table's name.
        name: String,
    },
    /// The store has been shut down.
    StoreClosed,
    /// The addressed part is currently failed (fault injection or a lost
    /// shard); operations will succeed again after recovery.
    PartFailed {
        /// The failed part.
        part: u32,
    },
    /// Mobile code dispatched to a part panicked.
    TaskPanicked {
        /// The part the task ran at.
        part: u32,
        /// Best-effort rendering of the panic payload.
        message: String,
    },
    /// A transient store fault: the operation failed this time but may
    /// succeed if retried (injected fault, dropped connection, timeout).
    Transient {
        /// The operation that faulted (`"get"`, `"put"`, `"delete"`, ...).
        op: &'static str,
        /// The part the operation addressed.
        part: u32,
        /// Human-readable description.
        detail: String,
    },
    /// Tables passed to a multi-table operation are not co-partitioned.
    NotCopartitioned {
        /// One table name.
        left: String,
        /// The other table name.
        right: String,
    },
    /// A ubiquitous table was asked to do something only partitioned tables
    /// support, or vice versa.
    UbiquityMismatch {
        /// The table name.
        name: String,
    },
    /// No task with the given name is registered with the store, so a
    /// named dispatch ([`KvStore::run_named_at`](crate::KvStore::run_named_at))
    /// cannot run.  Registration happens per process; a networked store
    /// requires the name to be registered on the part's owning server.
    NoSuchTask {
        /// The requested task name.
        name: String,
    },
    /// An implementation-specific failure, described in text.
    Backend {
        /// Human-readable description.
        detail: String,
    },
    /// A write-ahead log ended in a torn or corrupt record; replay
    /// recovered everything up to the last valid record and discarded the
    /// rest.  This is the normal aftermath of a crash mid-append, so a
    /// durable store reports it as a recovery note rather than failing to
    /// open.
    WalTailDiscarded {
        /// The table whose log had the damaged tail.
        table: String,
        /// The part whose log had the damaged tail.
        part: u32,
        /// Records that survived and were replayed.
        valid_records: u64,
        /// Bytes truncated off the end of the log.
        discarded_bytes: u64,
    },
    /// A request carried a fencing epoch older than the one its server has
    /// been fenced at: the sender's view of the replica group is stale
    /// (typically a client, or a demoted primary, that has not yet observed
    /// a promotion).  The request was refused without touching state; the
    /// caller must refresh its membership view and re-handshake at the
    /// current epoch.
    StaleEpoch {
        /// The epoch the request carried.
        seen: u64,
        /// The epoch the server is fenced at.
        current: u64,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::TableExists { name } => write!(f, "table {name:?} already exists"),
            KvError::NoSuchTable { name } => write!(f, "no such table {name:?}"),
            KvError::PartOutOfRange { part, parts } => {
                write!(f, "part {part} out of range for table with {parts} parts")
            }
            KvError::TableDropped { name } => write!(f, "table {name:?} has been dropped"),
            KvError::StoreClosed => write!(f, "store has been shut down"),
            KvError::PartFailed { part } => write!(f, "part {part} is failed"),
            KvError::TaskPanicked { part, message } => {
                write!(f, "mobile code panicked at part {part}: {message}")
            }
            KvError::Transient { op, part, detail } => {
                write!(f, "transient {op} fault at part {part}: {detail}")
            }
            KvError::NotCopartitioned { left, right } => {
                write!(f, "tables {left:?} and {right:?} are not co-partitioned")
            }
            KvError::UbiquityMismatch { name } => {
                write!(f, "operation does not apply to ubiquitous table {name:?}")
            }
            KvError::NoSuchTask { name } => write!(f, "no registered task named {name:?}"),
            KvError::Backend { detail } => write!(f, "store backend error: {detail}"),
            KvError::WalTailDiscarded {
                table,
                part,
                valid_records,
                discarded_bytes,
            } => {
                write!(
                    f,
                    "table {table:?} part {part}: WAL tail discarded \
                     ({valid_records} records replayed, {discarded_bytes} B dropped)"
                )
            }
            KvError::StaleEpoch { seen, current } => {
                write!(
                    f,
                    "stale epoch {seen} refused (replica group is fenced at epoch {current})"
                )
            }
        }
    }
}

impl KvError {
    /// Whether retrying the same operation may succeed without any
    /// recovery action.  Engines consult this to drive their
    /// [`RetryPolicy`](https://docs.rs/ripple-core)-bounded retry loops;
    /// everything else (missing tables, failed parts, panics) needs a
    /// structural fix, not a retry.
    pub fn is_transient(&self) -> bool {
        matches!(self, KvError::Transient { .. })
    }
}

impl Error for KvError {}

/// Best-effort extraction of a human-readable message from a panic
/// payload (`Box<dyn Any + Send>` as produced by `catch_unwind`).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&'static str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KvError>();
    }

    #[test]
    fn display_mentions_specifics() {
        let e = KvError::NoSuchTable {
            name: "ranks".into(),
        };
        assert!(e.to_string().contains("ranks"));
        let e = KvError::PartOutOfRange { part: 9, parts: 6 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('6'));
        let e = KvError::TaskPanicked {
            part: 3,
            message: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("index out of bounds"));
        let e = KvError::Transient {
            op: "put",
            part: 2,
            detail: "injected".into(),
        };
        assert!(e.to_string().contains("transient put fault"));
    }

    #[test]
    fn transient_classification() {
        assert!(KvError::Transient {
            op: "get",
            part: 0,
            detail: String::new(),
        }
        .is_transient());
        assert!(!KvError::PartFailed { part: 0 }.is_transient());
        assert!(!KvError::StoreClosed.is_transient());
        // Stale epochs need a membership refresh, not a blind retry; the
        // networked client converts them to `Transient` only *after*
        // observing the newer fence.
        assert!(!KvError::StaleEpoch {
            seen: 1,
            current: 2
        }
        .is_transient());
    }

    #[test]
    fn panic_message_downcasts_common_payloads() {
        let p: Box<dyn std::any::Any + Send> = Box::new("boom");
        assert_eq!(panic_message(p.as_ref()), "boom");
        let p: Box<dyn std::any::Any + Send> = Box::new("formatted 7".to_owned());
        assert_eq!(panic_message(p.as_ref()), "formatted 7");
        let p: Box<dyn std::any::Any + Send> = Box::new(42u32);
        assert_eq!(panic_message(p.as_ref()), "non-string panic payload");
    }
}
