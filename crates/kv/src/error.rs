use std::error::Error;
use std::fmt;

/// Error produced by key/value store operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum KvError {
    /// A table with the given name already exists.
    TableExists {
        /// The conflicting table name.
        name: String,
    },
    /// No table with the given name exists.
    NoSuchTable {
        /// The requested table name.
        name: String,
    },
    /// A part index was at or past the table's part count.
    PartOutOfRange {
        /// The requested part.
        part: u32,
        /// The table's part count.
        parts: u32,
    },
    /// The table handle refers to a table that has been dropped.
    TableDropped {
        /// The dropped table's name.
        name: String,
    },
    /// The store has been shut down.
    StoreClosed,
    /// The addressed part is currently failed (fault injection or a lost
    /// shard); operations will succeed again after recovery.
    PartFailed {
        /// The failed part.
        part: u32,
    },
    /// Mobile code dispatched to a part panicked.
    TaskPanicked {
        /// The part the task ran at.
        part: u32,
    },
    /// Tables passed to a multi-table operation are not co-partitioned.
    NotCopartitioned {
        /// One table name.
        left: String,
        /// The other table name.
        right: String,
    },
    /// A ubiquitous table was asked to do something only partitioned tables
    /// support, or vice versa.
    UbiquityMismatch {
        /// The table name.
        name: String,
    },
    /// An implementation-specific failure, described in text.
    Backend {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvError::TableExists { name } => write!(f, "table {name:?} already exists"),
            KvError::NoSuchTable { name } => write!(f, "no such table {name:?}"),
            KvError::PartOutOfRange { part, parts } => {
                write!(f, "part {part} out of range for table with {parts} parts")
            }
            KvError::TableDropped { name } => write!(f, "table {name:?} has been dropped"),
            KvError::StoreClosed => write!(f, "store has been shut down"),
            KvError::PartFailed { part } => write!(f, "part {part} is failed"),
            KvError::TaskPanicked { part } => write!(f, "mobile code panicked at part {part}"),
            KvError::NotCopartitioned { left, right } => {
                write!(f, "tables {left:?} and {right:?} are not co-partitioned")
            }
            KvError::UbiquityMismatch { name } => {
                write!(f, "operation does not apply to ubiquitous table {name:?}")
            }
            KvError::Backend { detail } => write!(f, "store backend error: {detail}"),
        }
    }
}

impl Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_are_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<KvError>();
    }

    #[test]
    fn display_mentions_specifics() {
        let e = KvError::NoSuchTable {
            name: "ranks".into(),
        };
        assert!(e.to_string().contains("ranks"));
        let e = KvError::PartOutOfRange { part: 9, parts: 6 };
        assert!(e.to_string().contains('9'));
        assert!(e.to_string().contains('6'));
    }
}
